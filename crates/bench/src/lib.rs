//! Shared fixtures for the Criterion benches: deterministic synthetic
//! datasets at several scales.

use glove_core::Dataset;
use glove_synth::{generate, ScenarioConfig};

/// Generates a deterministic civ-like dataset of `users` subscribers sized
/// for benchmarking (fewer towers than the evaluation presets to keep
/// generation itself cheap).
pub fn bench_dataset(users: usize) -> Dataset {
    let mut cfg = ScenarioConfig::civ_like(users);
    cfg.num_towers = 300;
    cfg.seed = 0x000B_EAC4; // fixed: benches must compare like against like
    generate(&cfg).dataset
}

/// Generates a deterministic metro-like dataset of `users` subscribers —
/// the dense single-region workload of the `sharded_e2e` benchmark.
pub fn metro_bench_dataset(users: usize) -> Dataset {
    let mut cfg = ScenarioConfig::metro_like(users);
    cfg.num_towers = 300;
    cfg.seed = 0x000B_EAC5; // fixed: benches must compare like against like
    generate(&cfg).dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic() {
        let a = bench_dataset(12);
        let b = bench_dataset(12);
        assert_eq!(a.num_samples(), b.num_samples());
        for (fa, fb) in a.fingerprints.iter().zip(&b.fingerprints) {
            assert_eq!(fa.samples(), fb.samples());
        }
    }
}
