//! `hotloop` — the distance-cascade hot loop isolated on the `metro_like`
//! scenario, emitting a BENCH JSON point.
//!
//! Three monolithic runs over the same dataset pin down what each tier of
//! the candidate-filter cascade buys:
//!
//! * **exact** — `pruning: false`: the paper's full-matrix kernel, every
//!   candidate pair evaluated to completion (the byte-identity anchor);
//! * **pre-cascade** — `pruning: true, cascade: false`: the hull-bound-only
//!   pruner that predates the cascade (tier 1 alone);
//! * **cascade** — the default: tier-0 bit-packed signatures, tier-1 hulls
//!   and tier-2 early-abandoned exact evaluations.
//!
//! All three must publish byte-identical datasets and agree on
//! `pairs_computed + pairs_pruned` (every candidate is decided exactly
//! once); the JSON records wall clock, decisions per second
//! (`GloveStats::pairs_per_second`) and the per-tier skip split so CI can
//! track where candidates die. In `--bench` mode the cascade must clear
//! ≥ 2x the pre-cascade decision throughput — the tentpole number of the
//! hot-loop acceleration work.
//!
//! Modes mirror the other e2e benches: `--bench` measures at full size
//! (600 users), `--test` shrinks the population for CI smoke runs, and
//! `--users N` overrides either way.

use glove_bench::metro_bench_dataset;
use glove_core::glove::{anonymize, GloveOutput};
use glove_core::GloveConfig;
use std::time::Instant;

fn run(ds: &glove_core::Dataset, pruning: bool, cascade: bool) -> (f64, GloveOutput) {
    let config = GloveConfig {
        k: 2,
        threads: 0,
        pruning,
        cascade,
        ..GloveConfig::default()
    };
    let started = Instant::now();
    let out = anonymize(ds, &config).expect("anonymization succeeds");
    (started.elapsed().as_secs_f64(), out)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
    let mut users = if test_mode { 96 } else { 600 };
    if let Some(pos) = args.iter().position(|a| a == "--users") {
        users = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--users N");
    }

    eprintln!("[hotloop] generating metro_like ({users} users)…");
    let ds = metro_bench_dataset(users);
    let samples = ds.num_samples();

    eprintln!("[hotloop] exact run (pruning off)…");
    let (exact_s, exact) = run(&ds, false, false);
    eprintln!("[hotloop] pre-cascade run (hull bound only)…");
    let (hull_s, hull) = run(&ds, true, false);
    eprintln!("[hotloop] cascade run (signatures + hulls + early abandon)…");
    let (casc_s, casc) = run(&ds, true, true);

    // Exactness anchors: the cascade is a pure filter — all three modes
    // publish byte-identical datasets, and every candidate the exact kernel
    // evaluates is decided exactly once by each pruner.
    assert_eq!(
        hull.dataset.fingerprints, exact.dataset.fingerprints,
        "hull-only pruning diverged from the exact kernel"
    );
    assert_eq!(
        casc.dataset.fingerprints, exact.dataset.fingerprints,
        "cascade pruning diverged from the exact kernel"
    );
    for (label, out) in [("pre-cascade", &hull), ("cascade", &casc)] {
        assert_eq!(
            out.stats.pairs_computed + out.stats.pairs_pruned,
            exact.stats.pairs_computed,
            "{label}: candidate decisions do not cover the exact kernel's pairs"
        );
    }
    assert_eq!(hull.stats.pairs_skipped_tier0, 0);
    assert_eq!(hull.stats.pairs_abandoned, 0);

    let decisions = casc.stats.candidate_pairs();
    let exact_pps = exact.stats.pairs_per_second();
    let hull_pps = hull.stats.pairs_per_second();
    let casc_pps = casc.stats.pairs_per_second();
    let speedup_vs_hull = casc_pps / hull_pps.max(1e-9);
    let speedup_vs_exact = casc_pps / exact_pps.max(1e-9);
    if !test_mode {
        assert!(
            speedup_vs_hull >= 2.0,
            "cascade must at least double pre-cascade decision throughput, \
             got {speedup_vs_hull:.2}x ({hull_pps:.0} -> {casc_pps:.0} pairs/s)"
        );
    }

    let pct = |n: u64| n as f64 / decisions.max(1) as f64 * 100.0;
    let json = format!(
        "{{\"name\":\"hotloop\",\"scenario\":\"metro_like\",\"users\":{users},\
         \"samples\":{samples},\"mode\":\"{}\",\
         \"exact_s\":{exact_s:.3},\"precascade_s\":{hull_s:.3},\"cascade_s\":{casc_s:.3},\
         \"exact_pairs_per_s\":{exact_pps:.1},\"precascade_pairs_per_s\":{hull_pps:.1},\
         \"cascade_pairs_per_s\":{casc_pps:.1},\
         \"speedup_vs_precascade\":{speedup_vs_hull:.2},\
         \"speedup_vs_exact\":{speedup_vs_exact:.2},\
         \"candidate_pairs\":{decisions},\
         \"pairs_computed\":{},\"pairs_skipped_tier0\":{},\"pairs_skipped_tier1\":{},\
         \"pairs_abandoned\":{},\
         \"tier0_pct\":{:.1},\"tier1_pct\":{:.1},\"abandoned_pct\":{:.1},\"exact_pct\":{:.1},\
         \"precascade_computed\":{},\"precascade_pruned\":{},\
         \"peak_arena_bytes\":{},\"peak_store_bytes\":{},\
         \"resident_pages\":{},\"peak_rss_bytes\":{}}}",
        if test_mode { "test" } else { "bench" },
        casc.stats.pairs_computed,
        casc.stats.pairs_skipped_tier0,
        casc.stats.pairs_skipped_tier1,
        casc.stats.pairs_abandoned,
        pct(casc.stats.pairs_skipped_tier0),
        pct(casc.stats.pairs_skipped_tier1),
        pct(casc.stats.pairs_abandoned),
        pct(casc.stats.pairs_computed),
        hull.stats.pairs_computed,
        hull.stats.pairs_pruned,
        casc.stats.ledger.peak_arena_bytes,
        casc.stats.ledger.peak_store_bytes,
        casc.stats.ledger.resident_pages,
        casc.stats.ledger.peak_rss_bytes,
    );
    println!("BENCH {json}");
    let dir = std::env::var("BENCH_DIR").unwrap_or_else(|_| {
        let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
        if std::path::Path::new(&root).is_dir() {
            root
        } else {
            ".".to_string()
        }
    });
    let path = format!("{dir}/BENCH_hotloop.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("[hotloop] could not write {path}: {e}");
    }
    println!(
        "hotloop/metro_{users}: exact {exact_s:.2}s, pre-cascade {hull_s:.2}s, \
         cascade {casc_s:.2}s -> {speedup_vs_hull:.1}x decisions/s vs pre-cascade \
         (tier0 {:.0}%, tier1 {:.0}%, abandoned {:.0}%, exact {:.0}%)",
        pct(casc.stats.pairs_skipped_tier0),
        pct(casc.stats.pairs_skipped_tier1),
        pct(casc.stats.pairs_abandoned),
        pct(casc.stats.pairs_computed),
    );
}
