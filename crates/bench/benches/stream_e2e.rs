//! `stream_e2e` — end-to-end streamed vs batch GLOVE on the `metro_like`
//! scenario, emitting a BENCH JSON point.
//!
//! Like `sharded_e2e`, this target measures full runs directly rather than
//! through the Criterion shim: one monolithic batch run and streamed runs
//! (daily windows, fresh carry) over the same events — with the distance
//! cascade on and off for the before/after delta — printing a
//! `BENCH {...}` line and writing the JSON point to
//! `BENCH_stream_e2e.json` so CI can archive the trajectory.
//!
//! The two fingerprints CI watches:
//!
//! * **events/s** — streamed anonymization throughput, end to end;
//! * **peak-resident fingerprints/samples** — the engine's memory bound,
//!   which must follow the *window* population, not the dataset: the run
//!   asserts `peak_resident_samples` stays well below the dataset's sample
//!   count and `peak_resident_fingerprints` within the largest window's
//!   population.
//!
//! Modes mirror the criterion shim: `--bench` measures at full size,
//! `--test` (CI smoke) shrinks the population. `--users N` overrides.

use glove_bench::metro_bench_dataset;
use glove_core::api::{NullObserver, RunBuilder};
use glove_core::glove::anonymize;
use glove_core::stream::{events_of, run_stream};
use glove_core::{CarryPolicy, GloveConfig, StreamConfig, UnderKPolicy};
use std::time::Instant;

const WINDOW_MIN: u32 = 1_440; // daily epochs over the 14-day metro span

/// Wall-clock slack absorbing single-run timer noise when asserting the
/// run-API overhead bound (the recorded JSON carries the raw ratio).
const OVERHEAD_SLACK_S: f64 = 0.25;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
    let mut users = if test_mode { 96 } else { 600 };
    if let Some(pos) = args.iter().position(|a| a == "--users") {
        users = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--users N");
    }

    eprintln!("[stream_e2e] generating metro_like ({users} users)…");
    let ds = metro_bench_dataset(users);
    let samples = ds.num_samples();
    let events = events_of(&ds);

    eprintln!("[stream_e2e] monolithic batch run…");
    let started = Instant::now();
    let batch = anonymize(&ds, &GloveConfig::default()).expect("batch run succeeds");
    let batch_s = started.elapsed().as_secs_f64();

    eprintln!("[stream_e2e] streamed run ({WINDOW_MIN} min windows, fresh carry)…");
    let config = StreamConfig {
        window_min: WINDOW_MIN,
        carry: CarryPolicy::Fresh,
        under_k: UnderKPolicy::Defer,
        glove: GloveConfig::default(),
    };
    let started = Instant::now();
    let run =
        run_stream(ds.name.clone(), events.iter().copied(), config).expect("streamed run succeeds");
    let stream_s = started.elapsed().as_secs_f64();

    // The same streamed run with the distance cascade off (tier-1 hull
    // pruning only): the before/after delta of the hot-loop cascade, on
    // record in the JSON. Daily metro windows hold ~4 samples per
    // fingerprint — below the cascade's mean-length engagement gate — so
    // the delta here is expected to sit near 1.0 (the gate exists exactly
    // because tier 0 measured ~0.8x on this workload); the batch-regime
    // delta lives in BENCH_hotloop.json. The cascade is a pure filter, so
    // every epoch's published output must not move.
    eprintln!("[stream_e2e] streamed run, cascade off (before/after delta)…");
    let precascade_config = StreamConfig {
        glove: GloveConfig {
            cascade: false,
            ..GloveConfig::default()
        },
        ..config
    };
    let started = Instant::now();
    let precascade = run_stream(ds.name.clone(), events.iter().copied(), precascade_config)
        .expect("streamed run succeeds");
    let precascade_s = started.elapsed().as_secs_f64();
    let cascade_speedup = precascade_s / stream_s.max(1e-9);
    assert_eq!(precascade.epochs.len(), run.epochs.len());
    for (before, after) in precascade.epochs.iter().zip(&run.epochs) {
        assert_eq!(
            before.output.dataset.fingerprints, after.output.dataset.fingerprints,
            "cascade changed the streamed output at epoch {}",
            after.epoch
        );
    }

    // The same streamed run through the unified run API (bounded-memory
    // run_events path): epoch outputs must be identical and the
    // orchestration overhead negligible (< 1% with timer-noise slack; the
    // raw ratio is recorded in the JSON).
    eprintln!("[stream_e2e] streamed run through RunBuilder…");
    let started = Instant::now();
    let outcome = RunBuilder::new(config.glove)
        .stream(config)
        .run_events(
            &ds.name,
            &mut events.iter().copied().map(Ok),
            &mut NullObserver,
        )
        .expect("builder run succeeds");
    let api_s = started.elapsed().as_secs_f64();
    let api_overhead_pct = (api_s / stream_s.max(1e-9) - 1.0) * 100.0;
    let api_epochs = outcome.output.epochs();
    assert_eq!(api_epochs.len(), run.epochs.len());
    for (new, old) in api_epochs.iter().zip(&run.epochs) {
        assert_eq!(
            new.output.dataset.fingerprints, old.output.dataset.fingerprints,
            "run API diverged from the direct streamed call at epoch {}",
            old.epoch
        );
    }
    assert!(
        api_s <= stream_s * 1.01 + OVERHEAD_SLACK_S,
        "run-API overhead too high: direct {stream_s:.3} s vs builder {api_s:.3} s \
         ({api_overhead_pct:.2}%)"
    );

    // The benchmark doubles as an invariant check.
    assert!(batch.dataset.is_k_anonymous(2));
    assert_eq!(batch.dataset.num_users(), users);
    for epoch in &run.epochs {
        assert!(epoch.output.dataset.is_k_anonymous(2));
    }
    let max_window_users = run
        .stats
        .per_epoch
        .iter()
        .map(|e| e.users_in)
        .max()
        .unwrap_or(0);
    // Memory follows the window, not the dataset: the sample high-water
    // mark must sit far below the dataset (daily windows over a 14-day
    // span), and the fingerprint mark within the largest window population
    // (deferred under-k users ride along).
    assert!(
        run.stats.peak_resident_samples * 2 < samples,
        "peak resident samples {} not bounded by the window (dataset {})",
        run.stats.peak_resident_samples,
        samples
    );
    assert!(
        run.stats.peak_resident_fingerprints
            <= max_window_users + run.stats.deferred_users as usize,
        "peak resident fingerprints {} exceeded the window population {}",
        run.stats.peak_resident_fingerprints,
        max_window_users
    );
    // The columnar store obeys the same bound: its page residency peaks at
    // one window's samples (plus merge products), never at the dataset —
    // half the bytes a flat Vec<Sample> copy of the whole dataset would
    // take is a generous ceiling with daily windows over a 14-day span.
    let dataset_vec_bytes = samples as u64 * std::mem::size_of::<glove_core::Sample>() as u64;
    assert!(
        run.stats.ledger.peak_store_bytes * 2 < dataset_vec_bytes,
        "peak store bytes {} not bounded by the window (whole dataset {} bytes)",
        run.stats.ledger.peak_store_bytes,
        dataset_vec_bytes
    );

    let events_per_s = run.stats.events as f64 / stream_s.max(1e-9);
    let json = format!(
        "{{\"name\":\"stream_e2e\",\"scenario\":\"metro_like\",\"users\":{users},\
         \"samples\":{samples},\"events\":{},\"window_min\":{WINDOW_MIN},\"mode\":\"{}\",\
         \"batch_s\":{batch_s:.3},\"stream_s\":{stream_s:.3},\"stream_api_s\":{api_s:.3},\
         \"stream_precascade_s\":{precascade_s:.3},\"cascade_speedup\":{cascade_speedup:.2},\
         \"api_overhead_pct\":{api_overhead_pct:.2},\"events_per_s\":{events_per_s:.0},\
         \"epochs\":{},\"peak_resident_fingerprints\":{},\"max_window_users\":{max_window_users},\
         \"peak_resident_samples\":{},\"suppressed_user_slices\":{},\
         \"deferred_user_slices\":{},\
         \"stream_tier0\":{},\"stream_tier1\":{},\"stream_abandoned\":{},\
         \"peak_arena_bytes\":{},\"peak_store_bytes\":{},\
         \"resident_pages\":{},\"peak_rss_bytes\":{}}}",
        run.stats.events,
        if test_mode { "test" } else { "bench" },
        run.stats.epochs,
        run.stats.peak_resident_fingerprints,
        run.stats.peak_resident_samples,
        run.stats.suppressed_users,
        run.stats.deferred_users,
        run.stats.pairs_skipped_tier0,
        run.stats.pairs_skipped_tier1,
        run.stats.pairs_abandoned,
        run.stats.ledger.peak_arena_bytes,
        run.stats.ledger.peak_store_bytes,
        run.stats.ledger.resident_pages,
        run.stats.ledger.peak_rss_bytes,
    );
    println!("BENCH {json}");
    // Benches run with the package as working directory; anchor the JSON at
    // the workspace root so CI can pick up BENCH_*.json uniformly (see
    // sharded_e2e for the fallback rationale).
    let dir = std::env::var("BENCH_DIR").unwrap_or_else(|_| {
        let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
        if std::path::Path::new(&root).is_dir() {
            root
        } else {
            ".".to_string()
        }
    });
    let path = format!("{dir}/BENCH_stream_e2e.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("[stream_e2e] could not write {path}: {e}");
    }
    println!(
        "stream_e2e/metro_{users}: batch {batch_s:.2}s, streamed {stream_s:.2}s \
         (cascade {cascade_speedup:.1}x over hull-only {precascade_s:.2}s; \
         {} daily epochs, {events_per_s:.0} events/s, peak {} fps / {} samples resident \
         vs {} total)",
        run.stats.epochs,
        run.stats.peak_resident_fingerprints,
        run.stats.peak_resident_samples,
        samples
    );
}
