//! End-to-end benchmarks of the paper's workloads:
//!
//! * `kgap_all` — the §5 anonymizability audit (Figs. 3–5 driver);
//! * `glove_anonymize` — Alg. 1 end to end, k ∈ {2, 5} (Figs. 7–8 driver);
//! * `merge` — a single fingerprint merge (§6.2);
//! * `reshape` — temporal-overlap resolution (§6.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glove_bench::bench_dataset;
use glove_core::glove::anonymize;
use glove_core::kgap::kgap_all;
use glove_core::merge::merge_fingerprints;
use glove_core::reshape::reshape_samples;
use glove_core::{GloveConfig, StretchConfig, SuppressionThresholds};
use std::hint::black_box;

fn bench_kgap(c: &mut Criterion) {
    let cfg = StretchConfig::default();
    let mut group = c.benchmark_group("kgap_all");
    group.sample_size(10);
    for users in [16usize, 32, 64] {
        let ds = bench_dataset(users);
        group.bench_with_input(BenchmarkId::from_parameter(users), &ds, |bencher, ds| {
            bencher.iter(|| black_box(kgap_all(ds, 2, 1, &cfg)))
        });
    }
    group.finish();
}

fn bench_glove(c: &mut Criterion) {
    let mut group = c.benchmark_group("glove_anonymize");
    group.sample_size(10);
    for (users, k) in [(32usize, 2usize), (32, 5), (64, 2)] {
        let ds = bench_dataset(users);
        let config = GloveConfig {
            k,
            threads: 1,
            ..GloveConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new(format!("k{k}"), users),
            &ds,
            |bencher, ds| bencher.iter(|| black_box(anonymize(ds, &config).expect("succeeds"))),
        );
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let cfg = StretchConfig::default();
    let ds = bench_dataset(24);
    let a = &ds.fingerprints[0];
    let b = &ds.fingerprints[1];
    c.bench_function("merge/pair", |bencher| {
        bencher.iter(|| {
            black_box(
                merge_fingerprints(
                    black_box(a),
                    black_box(b),
                    &cfg,
                    &SuppressionThresholds::default(),
                )
                .expect("merge succeeds"),
            )
        })
    });
    c.bench_function("merge/pair_with_suppression", |bencher| {
        let thresholds = SuppressionThresholds::table2();
        bencher.iter(|| {
            black_box(
                merge_fingerprints(black_box(a), black_box(b), &cfg, &thresholds)
                    .expect("merge succeeds"),
            )
        })
    });
}

fn bench_reshape(c: &mut Criterion) {
    // A merged-looking fingerprint with plenty of overlaps.
    let ds = bench_dataset(8);
    let cfg = StretchConfig::default();
    let mut acc = ds.fingerprints[0].clone();
    for other in &ds.fingerprints[1..] {
        acc = merge_fingerprints(&acc, other, &cfg, &SuppressionThresholds::default())
            .expect("merge succeeds")
            .fingerprint;
    }
    let samples = acc.samples().to_vec();
    c.bench_function("reshape/merged_fingerprint", |bencher| {
        bencher.iter(|| black_box(reshape_samples(black_box(&samples))))
    });
}

criterion_group!(benches, bench_kgap, bench_glove, bench_merge, bench_reshape);
criterion_main!(benches);
