//! `sharded_e2e` — end-to-end sharded vs monolithic GLOVE on the
//! `metro_like` scenario, emitting a BENCH JSON point.
//!
//! Unlike the Criterion-shimmed benches, this target measures full runs
//! directly (monolithic, `--shards 8`, and the sharded run again with the
//! distance cascade off for the before/after delta), prints a `BENCH {...}`
//! line and writes the same JSON point to `BENCH_sharded_e2e.json` in the
//! working directory, so CI can archive the speedup trajectory across
//! commits.
//!
//! Modes mirror the criterion shim: `cargo bench --bench sharded_e2e` (the
//! plain `--bench` flag) measures at full size; `--test` (as in CI's
//! `cargo bench -- --test`) shrinks the population so the smoke run stays
//! fast. `--users N` overrides the population either way.

use glove_bench::metro_bench_dataset;
use glove_core::api::RunBuilder;
use glove_core::glove::anonymize;
use glove_core::{GloveConfig, ShardPolicy};
use std::time::Instant;

const SHARDS: usize = 8;

/// Wall-clock slack absorbing single-run timer noise when asserting the
/// run-API overhead bound (the recorded JSON carries the raw ratio).
const OVERHEAD_SLACK_S: f64 = 0.25;

fn run(
    ds: &glove_core::Dataset,
    shard: Option<ShardPolicy>,
    cascade: bool,
) -> (f64, glove_core::glove::GloveOutput) {
    let config = GloveConfig {
        k: 2,
        threads: 0,
        shard,
        cascade,
        ..GloveConfig::default()
    };
    let started = Instant::now();
    let out = anonymize(ds, &config).expect("anonymization succeeds");
    (started.elapsed().as_secs_f64(), out)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
    let mut users = if test_mode { 96 } else { 600 };
    if let Some(pos) = args.iter().position(|a| a == "--users") {
        users = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--users N");
    }

    eprintln!("[sharded_e2e] generating metro_like ({users} users)…");
    let ds = metro_bench_dataset(users);
    let samples = ds.num_samples();

    eprintln!("[sharded_e2e] monolithic run…");
    let (mono_s, mono) = run(&ds, None, true);
    eprintln!("[sharded_e2e] sharded run ({SHARDS} activity shards)…");
    let (shard_s, sharded) = run(&ds, Some(ShardPolicy::activity(SHARDS)), true);

    // The same sharded run with the distance cascade off (tier-1 hull
    // pruning only): the before/after delta of the hot-loop cascade, on
    // record in the JSON. The cascade is a pure filter, so the published
    // output must not move.
    eprintln!("[sharded_e2e] sharded run, cascade off (before/after delta)…");
    let (precascade_s, precascade) = run(&ds, Some(ShardPolicy::activity(SHARDS)), false);
    let cascade_speedup = precascade_s / shard_s.max(1e-9);
    assert_eq!(
        precascade.dataset.fingerprints, sharded.dataset.fingerprints,
        "cascade changed the sharded output"
    );

    // The same sharded run through the unified run API: output must be
    // byte-identical and the orchestration overhead negligible (< 1% with
    // timer-noise slack; the raw ratio is recorded in the JSON).
    eprintln!("[sharded_e2e] sharded run through RunBuilder…");
    let started = Instant::now();
    let outcome = RunBuilder::new(GloveConfig {
        k: 2,
        threads: 0,
        ..GloveConfig::default()
    })
    .sharded(ShardPolicy::activity(SHARDS))
    .run(&ds)
    .expect("builder run succeeds");
    let api_s = started.elapsed().as_secs_f64();
    let api_overhead_pct = (api_s / shard_s.max(1e-9) - 1.0) * 100.0;
    assert_eq!(
        outcome
            .output
            .dataset()
            .expect("single release")
            .fingerprints,
        sharded.dataset.fingerprints,
        "run API diverged from the direct sharded call"
    );
    assert_eq!(outcome.report.pairs_computed, sharded.stats.pairs_computed);
    assert!(
        api_s <= shard_s * 1.01 + OVERHEAD_SLACK_S,
        "run-API overhead too high: direct {shard_s:.3} s vs builder {api_s:.3} s \
         ({api_overhead_pct:.2}%)"
    );

    // The benchmark doubles as an invariant check: both outputs must be
    // 2-anonymous and conserve the population.
    assert!(mono.dataset.is_k_anonymous(2));
    assert!(sharded.dataset.is_k_anonymous(2));
    assert_eq!(mono.dataset.num_users(), users);
    assert_eq!(sharded.dataset.num_users(), users);

    let speedup = mono_s / shard_s.max(1e-9);
    let json = format!(
        "{{\"name\":\"sharded_e2e\",\"scenario\":\"metro_like\",\"users\":{users},\
         \"samples\":{samples},\"shards\":{SHARDS},\"mode\":\"{}\",\
         \"monolithic_s\":{mono_s:.3},\"sharded_s\":{shard_s:.3},\"speedup\":{speedup:.2},\
         \"sharded_precascade_s\":{precascade_s:.3},\"cascade_speedup\":{cascade_speedup:.2},\
         \"sharded_api_s\":{api_s:.3},\"api_overhead_pct\":{api_overhead_pct:.2},\
         \"monolithic_pairs\":{},\"sharded_pairs\":{},\
         \"monolithic_pruned\":{},\"sharded_pruned\":{},\
         \"sharded_tier0\":{},\"sharded_tier1\":{},\"sharded_abandoned\":{},\
         \"peak_arena_bytes\":{},\"peak_store_bytes\":{},\
         \"resident_pages\":{},\"peak_rss_bytes\":{}}}",
        if test_mode { "test" } else { "bench" },
        mono.stats.pairs_computed,
        sharded.stats.pairs_computed,
        mono.stats.pairs_pruned,
        sharded.stats.pairs_pruned,
        sharded.stats.pairs_skipped_tier0,
        sharded.stats.pairs_skipped_tier1,
        sharded.stats.pairs_abandoned,
        sharded.stats.ledger.peak_arena_bytes,
        sharded.stats.ledger.peak_store_bytes,
        sharded.stats.ledger.resident_pages,
        sharded.stats.ledger.peak_rss_bytes,
    );
    println!("BENCH {json}");
    // Benches run with the package as working directory; anchor the JSON at
    // the workspace root so CI can pick up BENCH_*.json uniformly. An
    // explicit BENCH_DIR env var wins; if the compile-time workspace path
    // does not exist at run time (prebuilt binary, moved checkout), fall
    // back to the current directory rather than dropping the artifact.
    let dir = std::env::var("BENCH_DIR").unwrap_or_else(|_| {
        let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
        if std::path::Path::new(&root).is_dir() {
            root
        } else {
            ".".to_string()
        }
    });
    let path = format!("{dir}/BENCH_sharded_e2e.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("[sharded_e2e] could not write {path}: {e}");
    }
    println!(
        "sharded_e2e/metro_{users}: monolithic {mono_s:.2}s, {SHARDS} shards {shard_s:.2}s \
         -> {speedup:.1}x (cascade {cascade_speedup:.1}x over hull-only {precascade_s:.2}s)"
    );
}
