//! Benchmarks of the evaluation baselines:
//!
//! * `uniform_generalization` — the §5.2 legacy coarsening (Fig. 4 driver);
//! * `w4m_lc` — the §7.2 comparator (Table 2 driver).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glove_baselines::{generalize_uniform, w4m_lc, GeneralizationLevel, W4mConfig};
use glove_bench::bench_dataset;
use std::hint::black_box;

fn bench_uniform(c: &mut Criterion) {
    let ds = bench_dataset(64);
    let mut group = c.benchmark_group("uniform_generalization");
    for level in GeneralizationLevel::figure4_sweep() {
        group.bench_with_input(
            BenchmarkId::from_parameter(level.label()),
            &level,
            |bencher, level| bencher.iter(|| black_box(generalize_uniform(&ds, level))),
        );
    }
    group.finish();
}

fn bench_w4m(c: &mut Criterion) {
    let mut group = c.benchmark_group("w4m_lc");
    group.sample_size(10);
    for users in [16usize, 32, 64] {
        let ds = bench_dataset(users);
        group.bench_with_input(BenchmarkId::from_parameter(users), &ds, |bencher, ds| {
            bencher.iter(|| {
                black_box(w4m_lc(
                    ds,
                    &W4mConfig {
                        k: 2,
                        ..W4mConfig::default()
                    },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_uniform, bench_w4m);
criterion_main!(benches);
