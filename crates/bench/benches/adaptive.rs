//! `adaptive` — the attack-guided policy loop end to end on the
//! `metro_like` scenario, emitting a BENCH JSON point.
//!
//! The closed loop under test (DESIGN.md "The policy plane and the
//! adaptive loop"): run the most exposed configuration (Sticky carry at
//! the base k), score it with the cross-epoch linkage adversary, feed the
//! attack report to [`glove_attack::adapt_policy`] against the default
//! [`glove_attack::AttackBudget`], and re-run the same feed under the
//! adapted plane. The bench *asserts* the loop's contract rather than
//! just recording it:
//!
//! * **linkage** — the adapted run's cross-epoch linkage must drop to the
//!   Fresh baseline's or below (the tuner demotes the sticky carry, and
//!   may deepen k on top);
//! * **bounded utility loss** — the adapted run's k-retention must stay
//!   within 10 points of the Sticky baseline's (the budget caps how deep
//!   the tuner may push k).

use glove_attack::{cross_epoch_attack, AttackBudget, CrossEpochAttack, CrossEpochOutcome};
use glove_bench::metro_bench_dataset;
use glove_core::api::{NullObserver, RunBuilder, RunOutput};
use glove_core::policy::PolicyPlane;
use glove_core::stream::{events_of, StreamEvent};
use glove_core::{CarryPolicy, Dataset, StreamConfig};
use std::time::Instant;

const WINDOW_MIN: u32 = 2_880; // two-day epochs over the metro span

struct Scored {
    linkage: f64,
    persistence: f64,
    retention: f64,
    epochs: u64,
    outcome: CrossEpochOutcome,
    published: Vec<Dataset>,
}

fn run_scored(
    name: &str,
    events: &[StreamEvent],
    base: &StreamConfig,
    plane: Option<&PolicyPlane>,
) -> Scored {
    let mut builder = RunBuilder::new(base.glove).stream(*base);
    if let Some(plane) = plane {
        builder = builder.policy(plane.clone());
    }
    let run = builder
        .run_events(name, &mut events.iter().copied().map(Ok), &mut NullObserver)
        .expect("stream succeeds");
    let stats = run
        .report
        .detail
        .as_stream()
        .expect("stream detail")
        .clone();
    let published: Vec<Dataset> = match run.output {
        RunOutput::Epochs(epochs) => epochs.into_iter().map(|e| e.output.dataset).collect(),
        RunOutput::Dataset(_) => unreachable!("stream mode emits epochs"),
    };
    let outcome = cross_epoch_attack(&published, &CrossEpochAttack::default());
    let entered = stats.entered_user_slices() + stats.suppressed_users;
    let kept: u64 = published.iter().map(|d| d.num_users() as u64).sum();
    Scored {
        linkage: outcome.linkage_rate(),
        persistence: outcome.persistence_rate(),
        retention: if entered > 0 {
            kept as f64 / entered as f64
        } else {
            0.0
        },
        epochs: stats.epochs,
        outcome,
        published,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
    let mut users = if test_mode { 96 } else { 600 };
    if let Some(pos) = args.iter().position(|a| a == "--users") {
        users = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--users N");
    }

    eprintln!("[adaptive] generating metro_like ({users} users)…");
    let ds = metro_bench_dataset(users);
    let events = events_of(&ds);
    let base_of = |carry: CarryPolicy| StreamConfig {
        window_min: WINDOW_MIN,
        carry,
        ..StreamConfig::default()
    };

    eprintln!("[adaptive] fresh baseline…");
    let fresh = run_scored(&ds.name, &events, &base_of(CarryPolicy::Fresh), None);
    eprintln!("[adaptive] sticky baseline…");
    let sticky_base = base_of(CarryPolicy::Sticky);
    let sticky = run_scored(&ds.name, &events, &sticky_base, None);

    // One tuner round on the sticky run's attack report.
    let attack_report = glove_attack::Attack::run(
        &CrossEpochAttack::default(),
        &ds,
        &glove_attack::PublishedView::Epochs(&sticky.published),
    )
    .expect("cross-epoch attack runs");
    assert_eq!(attack_report.success_rate, sticky.outcome.linkage_rate());
    let budget = AttackBudget::default();
    let started = Instant::now();
    let adapted_plane = glove_attack::adapt_policy(
        &PolicyPlane::uniform(),
        &sticky_base,
        std::slice::from_ref(&attack_report),
        &budget,
        0,
    )
    .expect("adaptation succeeds");
    let adapt_s = started.elapsed().as_secs_f64();

    eprintln!(
        "[adaptive] adapted re-run ({} action(s))…",
        adapted_plane.actions.len()
    );
    let started = Instant::now();
    let adapted = run_scored(&ds.name, &events, &sticky_base, Some(&adapted_plane.plane));
    let rerun_s = started.elapsed().as_secs_f64();

    // The loop's contract. The sticky baseline must actually be exposed
    // (otherwise the bench measures nothing), the adapted run must reach
    // the fresh baseline's linkage, and the retention cost must be small.
    assert!(
        sticky.linkage > fresh.linkage,
        "sticky must leak more than fresh: {:.3} vs {:.3}",
        sticky.linkage,
        fresh.linkage
    );
    assert!(
        !adapted_plane.actions.is_empty(),
        "an over-budget sticky run must trigger at least one action"
    );
    assert!(
        adapted.linkage <= fresh.linkage + 1e-9,
        "adapted linkage {:.4} above the fresh baseline {:.4}",
        adapted.linkage,
        fresh.linkage
    );
    assert!(
        adapted.retention >= sticky.retention - 0.10,
        "adapted run gave up too much k-retention: {:.3} vs sticky {:.3}",
        adapted.retention,
        sticky.retention
    );

    let json = format!(
        "{{\"name\":\"adaptive\",\"scenario\":\"metro_like\",\"users\":{users},\
         \"mode\":\"{}\",\"window_min\":{WINDOW_MIN},\"epochs\":{},\
         \"fresh_linkage\":{:.4},\"sticky_linkage\":{:.4},\"adapted_linkage\":{:.4},\
         \"fresh_persistence\":{:.4},\"sticky_persistence\":{:.4},\
         \"adapted_persistence\":{:.4},\
         \"sticky_retention\":{:.4},\"adapted_retention\":{:.4},\
         \"retention_delta\":{:.4},\"actions\":{},\
         \"budget_max_linkage\":{:.4},\"budget_max_k\":{},\
         \"adapt_s\":{adapt_s:.4},\"rerun_s\":{rerun_s:.3}}}",
        if test_mode { "test" } else { "bench" },
        adapted.epochs,
        fresh.linkage,
        sticky.linkage,
        adapted.linkage,
        fresh.persistence,
        sticky.persistence,
        adapted.persistence,
        sticky.retention,
        adapted.retention,
        adapted.retention - sticky.retention,
        adapted_plane.actions.len(),
        budget.max_linkage,
        budget.max_k,
    );
    println!("BENCH {json}");
    let dir = std::env::var("BENCH_DIR").unwrap_or_else(|_| {
        let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
        if std::path::Path::new(&root).is_dir() {
            root
        } else {
            ".".to_string()
        }
    });
    let path = format!("{dir}/BENCH_adaptive.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("[adaptive] could not write {path}: {e}");
    }
    println!(
        "adaptive/metro_{users}: sticky linkage {:.0}% -> adapted {:.0}% \
         (fresh baseline {:.0}%), retention {:+.1} points, {} action(s)",
        sticky.linkage * 100.0,
        adapted.linkage * 100.0,
        fresh.linkage * 100.0,
        (adapted.retention - sticky.retention) * 100.0,
        adapted_plane.actions.len(),
    );
}
