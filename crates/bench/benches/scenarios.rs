//! `scenarios` — every workload scenario preset, end to end, emitting one
//! BENCH JSON point.
//!
//! For each preset in `glove_synth::PRESETS` the target generates the
//! batch dataset, drains the `ScenarioEvents` view, and anonymizes the
//! release — timing all three — while holding the exactness anchors:
//!
//! * **batch/stream parity** — the event stream grouped by user id must
//!   reproduce the batch fingerprints byte for byte (churn id routing,
//!   corridor overlays and long-tail cohorts included);
//! * **k-anonymity** — the anonymized release must be k-anonymous (k = 2)
//!   for every preset, however adversarial the workload.
//!
//! So the benchmark doubles as the proof that every advertised scenario
//! completes and stays consistent at bench scale, and CI archives the
//! per-preset cost trajectory in `BENCH_scenarios.json`.
//!
//! Modes mirror the other e2e targets: `--bench` measures at full size,
//! `--test` (CI smoke) shrinks the population. `--users N` overrides.

use glove_core::glove::anonymize;
use glove_core::{GloveConfig, Sample, UserId};
use glove_synth::{generate, ScenarioConfig, ScenarioEvents, PRESETS};
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
    let mut users = if test_mode { 48 } else { 240 };
    if let Some(pos) = args.iter().position(|a| a == "--users") {
        users = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--users N");
    }

    let mut entries = Vec::new();
    for &preset in PRESETS {
        let cfg = ScenarioConfig::preset(preset, users).expect("advertised preset");
        eprintln!("[scenarios] {preset}: generating ({users} users)…");
        let started = Instant::now();
        let batch = generate(&cfg);
        let gen_s = started.elapsed().as_secs_f64();
        let samples = batch.dataset.num_samples();
        let ids = batch.dataset.num_users();
        let long_tail = batch.long_tail_users().len();

        // Drain the event view and hold the parity anchor: grouped stream
        // == batch fingerprints, byte for byte.
        let started = Instant::now();
        let stream = ScenarioEvents::new(&cfg);
        let mut per_user: BTreeMap<UserId, Vec<Sample>> = BTreeMap::new();
        for e in stream {
            per_user.entry(e.user).or_default().push(e.sample);
        }
        let stream_s = started.elapsed().as_secs_f64();
        assert_eq!(
            per_user.len(),
            batch.dataset.fingerprints.len(),
            "{preset}: stream id population diverged"
        );
        for (user, samples) in &per_user {
            let fp = &batch.dataset.fingerprints[*user as usize];
            assert_eq!(
                fp.samples(),
                &samples[..],
                "{preset}: event stream diverged from batch for user {user}"
            );
        }

        // Anonymize the release: every preset must come out k-anonymous.
        eprintln!("[scenarios] {preset}: anonymizing ({ids} ids, {samples} samples)…");
        let started = Instant::now();
        let out = anonymize(&batch.dataset, &GloveConfig::default()).expect("anonymize succeeds");
        let glove_s = started.elapsed().as_secs_f64();
        assert!(
            out.dataset.is_k_anonymous(2),
            "{preset}: anonymized release below k"
        );

        let events_per_s = samples as f64 / stream_s.max(1e-9);
        entries.push(format!(
            "{{\"scenario\":\"{preset}\",\"user_ids\":{ids},\"long_tail_ids\":{long_tail},\
             \"samples\":{samples},\"gen_s\":{gen_s:.3},\"stream_s\":{stream_s:.3},\
             \"stream_events_per_s\":{events_per_s:.0},\"glove_s\":{glove_s:.3},\
             \"users_out\":{}}}",
            out.dataset.num_users(),
        ));
        println!(
            "scenarios/{preset}_{users}: gen {gen_s:.2}s, stream {stream_s:.2}s \
             ({events_per_s:.0} events/s), glove {glove_s:.2}s, {ids} ids \
             ({long_tail} long-tail), {samples} samples"
        );
    }

    let json = format!(
        "{{\"name\":\"scenarios\",\"users\":{users},\"mode\":\"{}\",\"presets\":{},\
         \"scenarios\":[{}]}}",
        if test_mode { "test" } else { "bench" },
        PRESETS.len(),
        entries.join(",")
    );
    println!("BENCH {json}");
    // Benches run with the package as working directory; anchor the JSON at
    // the workspace root so CI can pick up BENCH_*.json uniformly (see
    // sharded_e2e for the fallback rationale).
    let dir = std::env::var("BENCH_DIR").unwrap_or_else(|_| {
        let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
        if std::path::Path::new(&root).is_dir() {
            root
        } else {
            ".".to_string()
        }
    });
    let path = format!("{dir}/BENCH_scenarios.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("[scenarios] could not write {path}: {e}");
    }
}
