//! `metro_1m` — the million-user metro: the ROADMAP north-star workload,
//! end to end, emitting a BENCH JSON point with first-class memory figures.
//!
//! One run of the full pipeline at metropolitan scale: the `metro_like`
//! generator at one million subscribers, two-level sharding (outer spatial
//! Z-order cut, inner activity cut) and the columnar `SampleStore` engine.
//! The JSON records, next to the usual counters, the memory ledger the
//! whole PR exists for: peak arena bytes, peak columnar-store bytes,
//! resident pages and the kernel's own peak-RSS (`VmHWM`) — the scheduled
//! CI job fails when peak-RSS regresses more than 10% against the
//! committed `BENCH_metro_1m.json` baseline.
//!
//! The run is anchored: before the big run, the columnar engine must
//! publish **byte-identical** datasets to the `Vec<Sample>` reference on a
//! 600-user monolithic anchor and a downsampled two-level-sharded metro
//! anchor (50k users in `--bench` mode, 2k in `--test` mode). A columnar
//! engine that is fast but not exact is a bug, not a result.
//!
//! Modes mirror the other e2e benches: `--bench` runs the full million
//! (about an hour single-core — sized for the scheduled CI job, not the
//! push gate), `--test` shrinks everything for CI smoke runs, and
//! `--users N` overrides either way.

use glove_bench::metro_bench_dataset;
use glove_core::glove::{anonymize, GloveOutput};
use glove_core::{Dataset, GloveConfig, ShardPolicy};
use std::time::Instant;

/// Target subscribers per two-level shard: small enough that one shard's
/// pair matrix stays cache-friendly, large enough that the under-`k`
/// coalescer never fires on real populations.
const USERS_PER_SHARD: usize = 1_000;

fn config(users: usize, columnar: bool) -> GloveConfig {
    let shards = (users / USERS_PER_SHARD).max(1);
    GloveConfig {
        k: 2,
        threads: 0,
        shard: (shards > 1).then(|| ShardPolicy::two_level(shards)),
        columnar,
        ..GloveConfig::default()
    }
}

fn run(ds: &Dataset, columnar: bool) -> (f64, GloveOutput) {
    let started = Instant::now();
    let out = anonymize(ds, &config(ds.fingerprints.len(), columnar)).expect("run succeeds");
    (started.elapsed().as_secs_f64(), out)
}

/// Byte-identity anchor: the columnar engine and the `Vec<Sample>`
/// reference must publish the same datasets, bit for bit.
fn assert_anchor(users: usize) {
    eprintln!("[metro_1m] anchor: columnar vs reference at {users} users…");
    let ds = metro_bench_dataset(users);
    let (_, columnar) = run(&ds, true);
    let (_, reference) = run(&ds, false);
    assert_eq!(
        columnar.dataset.fingerprints, reference.dataset.fingerprints,
        "columnar engine diverged from the Vec<Sample> reference at {users} users"
    );
    assert_eq!(columnar.stats.merges, reference.stats.merges);
    assert_eq!(
        columnar.stats.pairs_computed,
        reference.stats.pairs_computed
    );
    assert!(
        columnar.stats.ledger.peak_store_bytes > 0,
        "columnar run recorded no store footprint"
    );
    assert_eq!(
        reference.stats.ledger.peak_store_bytes, 0,
        "reference run must not touch the columnar store"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
    let mut users = if test_mode { 2_000 } else { 1_000_000 };
    if let Some(pos) = args.iter().position(|a| a == "--users") {
        users = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--users N");
    }

    // Exactness before scale: the small monolithic anchor always runs; the
    // downsampled sharded anchor scales with the mode.
    assert_anchor(600);
    assert_anchor(if test_mode { 2_000 } else { 50_000 });

    eprintln!("[metro_1m] generating metro_like ({users} users)…");
    let started = Instant::now();
    let ds = metro_bench_dataset(users);
    let generate_s = started.elapsed().as_secs_f64();
    let samples = ds.num_samples();
    let shards = (users / USERS_PER_SHARD).max(1);

    eprintln!(
        "[metro_1m] two-level sharded columnar run ({shards} shards, \
         {samples} samples)…"
    );
    let (elapsed_s, out) = run(&ds, true);
    assert!(out.dataset.is_k_anonymous(2));
    assert_eq!(out.dataset.num_users(), users);

    let ledger = out.stats.ledger;
    assert!(
        ledger.peak_rss_bytes > 0 || !cfg!(target_os = "linux"),
        "peak-RSS must be readable on Linux"
    );
    let pairs_per_s = out.stats.pairs_per_second();
    let json = format!(
        "{{\"name\":\"metro_1m\",\"scenario\":\"metro_like\",\"users\":{users},\
         \"samples\":{samples},\"shards\":{shards},\"mode\":\"{}\",\
         \"generate_s\":{generate_s:.3},\"elapsed_s\":{elapsed_s:.3},\
         \"pairs_per_s\":{pairs_per_s:.0},\
         \"fingerprints_out\":{},\"merges\":{},\"pairs_computed\":{},\
         \"pairs_pruned\":{},\"pairs_skipped_tier0\":{},\"pairs_skipped_tier1\":{},\
         \"pairs_abandoned\":{},\
         \"peak_arena_bytes\":{},\"peak_store_bytes\":{},\
         \"resident_pages\":{},\"peak_rss_bytes\":{}}}",
        if test_mode { "test" } else { "bench" },
        out.dataset.fingerprints.len(),
        out.stats.merges,
        out.stats.pairs_computed,
        out.stats.pairs_pruned,
        out.stats.pairs_skipped_tier0,
        out.stats.pairs_skipped_tier1,
        out.stats.pairs_abandoned,
        ledger.peak_arena_bytes,
        ledger.peak_store_bytes,
        ledger.resident_pages,
        ledger.peak_rss_bytes,
    );
    println!("BENCH {json}");
    let dir = std::env::var("BENCH_DIR").unwrap_or_else(|_| {
        let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
        if std::path::Path::new(&root).is_dir() {
            root
        } else {
            ".".to_string()
        }
    });
    let path = format!("{dir}/BENCH_metro_1m.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("[metro_1m] could not write {path}: {e}");
    }
    println!(
        "metro_1m/metro_{users}: {shards} two-level shards in {elapsed_s:.1}s \
         ({pairs_per_s:.0} pairs/s); peak arena {:.1} MiB, store {:.1} MiB \
         ({} pages), process peak-RSS {:.1} MiB",
        ledger.peak_arena_bytes as f64 / (1 << 20) as f64,
        ledger.peak_store_bytes as f64 / (1 << 20) as f64,
        ledger.resident_pages,
        ledger.peak_rss_bytes as f64 / (1 << 20) as f64,
    );
}
