//! Benchmarks of the pairwise stretch kernel — the computation the paper
//! runs on a GPU at 20–50 k fingerprint pairs per second (§6.3).
//!
//! * `sample_stretch` — one δ evaluation (Eqs. 1–9), the innermost loop;
//! * `fingerprint_stretch/{pruned,naive}` — one Δ evaluation (Eq. 10),
//!   with and without the temporal-gap pruning;
//! * `stretch_matrix` — the full initialization matrix of Alg. 1 on a small
//!   population (reports pairs, so pairs/s is throughput × pairs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use glove_bench::bench_dataset;
use glove_core::stretch::{
    fingerprint_stretch, fingerprint_stretch_naive, sample_stretch, sample_stretch_unweighted,
};
use glove_core::{Sample, StretchConfig};
use std::hint::black_box;

fn bench_sample_stretch(c: &mut Criterion) {
    let cfg = StretchConfig::default();
    let a = Sample::point(1_000, 2_000, 480);
    let b = Sample::new(5_000, -2_000, 700, 300, 520, 45).unwrap();
    c.bench_function("sample_stretch/point_vs_box", |bencher| {
        bencher.iter(|| sample_stretch_unweighted(black_box(&a), black_box(&b), &cfg))
    });
    c.bench_function("sample_stretch/weighted", |bencher| {
        bencher.iter(|| sample_stretch(black_box(&a), 7.0, black_box(&b), 3.0, &cfg))
    });
}

fn bench_fingerprint_stretch(c: &mut Criterion) {
    let cfg = StretchConfig::default();
    let ds = bench_dataset(24);
    let a = &ds.fingerprints[0];
    let b = &ds.fingerprints[1];
    let mut group = c.benchmark_group("fingerprint_stretch");
    group.bench_function("pruned", |bencher| {
        bencher.iter(|| fingerprint_stretch(black_box(a), black_box(b), &cfg))
    });
    group.bench_function("naive", |bencher| {
        bencher.iter(|| fingerprint_stretch_naive(black_box(a), black_box(b), &cfg))
    });
    group.finish();
}

fn bench_stretch_matrix(c: &mut Criterion) {
    let cfg = StretchConfig::default();
    let mut group = c.benchmark_group("stretch_matrix");
    group.sample_size(10);
    for users in [16usize, 32, 64] {
        let ds = bench_dataset(users);
        let pairs = (users * (users - 1) / 2) as u64;
        group.throughput(Throughput::Elements(pairs));
        group.bench_with_input(BenchmarkId::from_parameter(users), &ds, |bencher, ds| {
            bencher.iter(|| {
                let mut acc = 0.0;
                for i in 0..ds.fingerprints.len() {
                    for j in 0..i {
                        acc += fingerprint_stretch(&ds.fingerprints[i], &ds.fingerprints[j], &cfg);
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sample_stretch,
    bench_fingerprint_stretch,
    bench_stretch_matrix
);
criterion_main!(benches);
