//! `attack_e2e` — the adversary subsystem end to end on the `metro_like`
//! scenario, emitting a BENCH JSON point.
//!
//! Like `sharded_e2e`/`stream_e2e`, this target measures full runs
//! directly rather than through the Criterion shim: the multi-point
//! linkage adversary against the raw and the GLOVE-anonymized release
//! (single-threaded and all-cores, so the `core::parallel` fan-out
//! speedup is on record) and the cross-epoch linkage adversary over a
//! streamed release under both carry policies. A `BENCH {...}` line goes
//! to stdout and the JSON point to `BENCH_attack_e2e.json` so CI archives
//! the trajectory.
//!
//! The fingerprints CI watches:
//!
//! * **trials/s** — multi-point attack throughput on the anonymized
//!   release, end to end, plus the parallel speedup;
//! * **pinpoint rates** — high on raw data, exactly 0 after GLOVE (the
//!   bench doubles as the k-anonymity invariant check);
//! * **sticky-vs-fresh linkage gap** — the cross-epoch leak DESIGN.md
//!   documents, measured.

use glove_attack::{
    cross_epoch_attack, multi_point_attack, AdversaryNoise, CrossEpochAttack, MultiPointAttack,
    PublishedView,
};
use glove_bench::metro_bench_dataset;
use glove_core::glove::anonymize;
use glove_core::stream::{events_of, run_stream};
use glove_core::{CarryPolicy, Dataset, GloveConfig, StreamConfig};
use std::time::Instant;

const POINTS: usize = 4;
const WINDOW_MIN: u32 = 2_880; // two-day epochs over the metro span

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
    let mut users = if test_mode { 96 } else { 600 };
    if let Some(pos) = args.iter().position(|a| a == "--users") {
        users = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--users N");
    }
    let trials = if test_mode { 64 } else { 400 };

    eprintln!("[attack_e2e] generating metro_like ({users} users)…");
    let ds = metro_bench_dataset(users);

    eprintln!("[attack_e2e] anonymizing (k = 2)…");
    let published = anonymize(&ds, &GloveConfig::default())
        .expect("anonymization succeeds")
        .dataset;

    let cfg = MultiPointAttack {
        points: POINTS,
        trials,
        seed: 0x00A7_7AC4,
        noise: AdversaryNoise::exact(),
        threads: 0,
    };

    eprintln!("[attack_e2e] multi-point adversary on the raw release…");
    let raw = multi_point_attack(&ds, &PublishedView::Dataset(&ds), &cfg);

    eprintln!("[attack_e2e] multi-point adversary on the anonymized release…");
    let started = Instant::now();
    let anon = multi_point_attack(&ds, &PublishedView::Dataset(&published), &cfg);
    let parallel_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let anon_single = multi_point_attack(
        &ds,
        &PublishedView::Dataset(&published),
        &MultiPointAttack { threads: 1, ..cfg },
    );
    let single_s = started.elapsed().as_secs_f64();
    assert_eq!(
        anon, anon_single,
        "thread count must never change the attack outcome"
    );
    let speedup = single_s / parallel_s.max(1e-9);
    // With per-thread trial batches, the fan-out must actually pay off
    // whenever more than one worker is available (on a single-core host
    // both runs collapse to the same sequential loop, so there is nothing
    // to assert).
    if glove_core::parallel::effective_threads(0) > 1 && !test_mode {
        assert!(
            speedup > 1.0,
            "parallel attack loop slower than single-threaded: {speedup:.2}x"
        );
    }

    // The defense invariant, enforced at bench scale: no pinpoint after
    // GLOVE, every nonempty anonymity set >= k.
    assert_eq!(anon.pinpoint_rate(), 0.0, "GLOVE output was pinpointed");
    assert!(anon.min_anonymity() >= 2, "anonymity set below k");
    assert!(
        raw.pinpoint_rate() > 0.5,
        "raw metro data should be highly identifiable, got {}",
        raw.pinpoint_rate()
    );

    eprintln!("[attack_e2e] cross-epoch adversary over streamed releases…");
    let events = events_of(&ds);
    let linkage = |carry: CarryPolicy| {
        let config = StreamConfig {
            window_min: WINDOW_MIN,
            carry,
            ..StreamConfig::default()
        };
        let run = run_stream(ds.name.clone(), events.iter().copied(), config)
            .expect("streamed run succeeds");
        let epochs: Vec<Dataset> = run.epochs.into_iter().map(|e| e.output.dataset).collect();
        cross_epoch_attack(&epochs, &CrossEpochAttack::default())
    };
    let fresh = linkage(CarryPolicy::Fresh);
    let sticky = linkage(CarryPolicy::Sticky);
    let linkage_gap = sticky.linkage_rate() - fresh.linkage_rate();
    let persistence_gap = sticky.persistence_rate() - fresh.persistence_rate();

    let trials_per_s = trials as f64 / parallel_s.max(1e-9);
    let json = format!(
        "{{\"name\":\"attack_e2e\",\"scenario\":\"metro_like\",\"users\":{users},\
         \"points\":{POINTS},\"trials\":{trials},\"mode\":\"{}\",\
         \"attack_s\":{parallel_s:.3},\"attack_single_s\":{single_s:.3},\
         \"trials_per_s\":{trials_per_s:.1},\"parallel_speedup\":{speedup:.2},\
         \"threads_effective\":{},\
         \"raw_pinpoint\":{:.4},\"anon_pinpoint\":{:.4},\"anon_min_set\":{},\
         \"window_min\":{WINDOW_MIN},\"fresh_linkage\":{:.4},\"sticky_linkage\":{:.4},\
         \"linkage_gap\":{linkage_gap:.4},\"fresh_persistence\":{:.4},\
         \"sticky_persistence\":{:.4},\"persistence_gap\":{persistence_gap:.4}}}",
        if test_mode { "test" } else { "bench" },
        glove_core::parallel::effective_threads(0),
        raw.pinpoint_rate(),
        anon.pinpoint_rate(),
        anon.min_anonymity(),
        fresh.linkage_rate(),
        sticky.linkage_rate(),
        fresh.persistence_rate(),
        sticky.persistence_rate(),
    );
    println!("BENCH {json}");
    let dir = std::env::var("BENCH_DIR").unwrap_or_else(|_| {
        let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
        if std::path::Path::new(&root).is_dir() {
            root
        } else {
            ".".to_string()
        }
    });
    let path = format!("{dir}/BENCH_attack_e2e.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("[attack_e2e] could not write {path}: {e}");
    }
    println!(
        "attack_e2e/metro_{users}: {trials} trials in {parallel_s:.2}s ({trials_per_s:.0}/s, \
         {speedup:.1}x parallel), raw pinpoint {:.0}%, anonymized 0% (min set {}), \
         sticky-vs-fresh linkage gap {linkage_gap:+.2}",
        raw.pinpoint_rate() * 100.0,
        anon.min_anonymity(),
    );
}
