//! `serve_e2e` — the `glove serve` daemon end to end over real TCP on the
//! `metro_like` scenario, emitting a BENCH JSON point.
//!
//! Three phases, each doubling as an invariant check (ISSUE 8):
//!
//! 1. **Throughput** — two concurrent tenant clients replay the metro
//!    event stream through the daemon; per-tenant events/s is the
//!    fingerprint CI watches, and each tenant's stream stats must be
//!    identical to a direct `run_stream` library call (the byte-identity
//!    anchor: socket framing, the bounded queue, and worker scheduling
//!    change timing, never output).
//! 2. **Slow consumer** — a tenant with a deliberately stalled epoch sink
//!    and a tiny queue is fed in `--shed` mode: the queue's high-water
//!    mark must respect its capacity (bounded memory) and the shed ledger
//!    in the final `RunReport` must be non-empty while accepted events are
//!    never lost (`events + shed_events == offered`).
//! 3. **Graceful shutdown** — a tenant sends its stream but never FLUSHes;
//!    a second connection issues SHUTDOWN. The daemon summary must carry
//!    the finalized session with *zero* accepted-event loss.
//!
//! Modes mirror the criterion shim: `--bench` measures at full size (600
//! users), `--test` (CI smoke) shrinks the population. `--users N`
//! overrides.

use glove_bench::metro_bench_dataset;
use glove_core::stream::{events_of, run_stream};
use glove_core::{CarryPolicy, Dataset, StreamConfig, UnderKPolicy};
use glove_serve::{Client, ServeOptions, Server, ServerHandle};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const WINDOW_MIN: u32 = 1_440; // daily epochs over the 14-day metro span

fn tenant_config(threads: usize) -> StreamConfig {
    let mut config = StreamConfig {
        window_min: WINDOW_MIN,
        carry: CarryPolicy::Fresh,
        under_k: UnderKPolicy::Defer,
        ..StreamConfig::default()
    };
    config.glove.threads = threads;
    config
}

fn discarding_writer() -> Arc<glove_serve::EpochWriteFn> {
    Arc::new(|_ds: &Dataset, _path: &Path| Ok(()))
}

fn stalled_writer(delay_ms: u64) -> Arc<glove_serve::EpochWriteFn> {
    Arc::new(move |_ds: &Dataset, _path: &Path| {
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        Ok(())
    })
}

fn spawn(opts: ServeOptions) -> ServerHandle {
    Server::bind("127.0.0.1:0", opts)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
    let mut users = if test_mode { 96 } else { 600 };
    if let Some(pos) = args.iter().position(|a| a == "--users") {
        users = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--users N");
    }
    let out_dir = std::env::temp_dir().join(format!("glove-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_dir);

    eprintln!("[serve_e2e] generating metro_like ({users} users)…");
    let ds = metro_bench_dataset(users);
    let events = events_of(&ds);
    let samples = ds.num_samples();

    // ---- Phase 1: two concurrent tenants, throughput + exactness. ----
    eprintln!("[serve_e2e] phase 1: two concurrent tenants over TCP…");
    let server = spawn(ServeOptions {
        out_dir: Some(out_dir.clone()),
        queue_events: 8192,
        retry_ms: 1,
        epoch_writer: Some(discarding_writer()),
        policy: glove_core::policy::PolicyPlane::uniform(),
    });
    let tenants = ["metro-a", "metro-b"];
    let started = Instant::now();
    let mut joins = Vec::new();
    for tenant in tenants {
        let addr = server.addr();
        let events = events.clone();
        joins.push(std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut client = Client::connect(addr).expect("connect");
            client
                .hello(tenant, tenant_config(1), false)
                .expect("hello");
            let outcome = client.send_events(&events, 4096).expect("send");
            assert_eq!(outcome.accepted, events.len() as u64);
            let report = client.flush().expect("flush");
            client.close().expect("close");
            (report, t0.elapsed().as_secs_f64(), outcome.busy_retries)
        }));
    }
    let results: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    let wall_s = started.elapsed().as_secs_f64();

    // Exactness anchor: each tenant's run equals the solo library run.
    let reference = run_stream(ds.name.clone(), events.iter().copied(), tenant_config(1))
        .expect("library run succeeds");
    let mut busy_retries_total = 0u64;
    for (tenant, (report, _, busy)) in tenants.iter().zip(&results) {
        let stats = report.detail.as_stream().expect("stream stats");
        assert_eq!(stats.events, reference.stats.events, "tenant {tenant}");
        assert_eq!(stats.epochs, reference.stats.epochs, "tenant {tenant}");
        assert_eq!(stats.merges, reference.stats.merges, "tenant {tenant}");
        assert_eq!(
            stats.pairs_computed, reference.stats.pairs_computed,
            "tenant {tenant}"
        );
        assert_eq!(stats.shed_events, 0, "tenant {tenant}");
        busy_retries_total += busy;
    }
    let per_tenant_events_per_s = results
        .iter()
        .map(|(_, s, _)| events.len() as f64 / s.max(1e-9))
        .fold(f64::INFINITY, f64::min);
    let total_events_per_s = (events.len() * tenants.len()) as f64 / wall_s.max(1e-9);

    glove_serve::client::shutdown(server.addr()).expect("shutdown");
    let summary = server.join();
    assert_eq!(summary.reports.len(), tenants.len());
    assert!(summary.failures.is_empty(), "{:?}", summary.failures);

    // ---- Phase 2: slow consumer, bounded queue + shed ledger. ----
    eprintln!("[serve_e2e] phase 2: slow consumer with a tiny queue (shed mode)…");
    const SHED_QUEUE: usize = 64;
    let server = spawn(ServeOptions {
        out_dir: Some(out_dir.clone()),
        queue_events: SHED_QUEUE,
        retry_ms: 1,
        epoch_writer: Some(stalled_writer(25)),
        policy: glove_core::policy::PolicyPlane::uniform(),
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .hello("slow-consumer", tenant_config(1), true)
        .expect("hello");
    let outcome = client.send_events(&events, 512).expect("send");
    assert_eq!(
        outcome.accepted + outcome.shed,
        events.len() as u64,
        "every offered event is accounted for"
    );
    let shed_report = client.flush().expect("flush");
    client.close().expect("close");
    glove_serve::client::shutdown(server.addr()).expect("shutdown");
    server.join();

    let shed_stats = shed_report.detail.as_stream().expect("stream stats");
    assert!(
        shed_stats.shed_events > 0,
        "a stalled sink behind a {SHED_QUEUE}-event queue must shed"
    );
    assert_eq!(shed_stats.shed_events, outcome.shed);
    assert_eq!(
        shed_stats.events + shed_stats.shed_events,
        events.len() as u64,
        "accepted events are never shed"
    );

    // ---- Phase 3: graceful shutdown flushes an open session. ----
    eprintln!("[serve_e2e] phase 3: graceful shutdown with an open session…");
    let server = spawn(ServeOptions {
        out_dir: Some(out_dir.clone()),
        queue_events: 8192,
        retry_ms: 1,
        epoch_writer: Some(discarding_writer()),
        policy: glove_core::policy::PolicyPlane::uniform(),
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .hello("abandoned", tenant_config(1), false)
        .expect("hello");
    let sent = client.send_events(&events, 4096).expect("send");
    assert_eq!(sent.accepted, events.len() as u64);
    // No FLUSH, no CLOSE: the daemon is shut down out from under the
    // client, and must finalize the session on its own.
    glove_serve::client::shutdown(server.addr()).expect("shutdown");
    let summary = server.join();
    assert_eq!(summary.reports.len(), 1, "{:?}", summary.failures);
    let final_stats = summary.reports[0].detail.as_stream().expect("stream stats");
    assert_eq!(
        final_stats.events,
        events.len() as u64,
        "graceful shutdown lost accepted events"
    );
    assert_eq!(final_stats.epochs, reference.stats.epochs);

    let _ = std::fs::remove_dir_all(&out_dir);

    let json = format!(
        "{{\"name\":\"serve_e2e\",\"scenario\":\"metro_like\",\"users\":{users},\
         \"samples\":{samples},\"events\":{},\"window_min\":{WINDOW_MIN},\"mode\":\"{}\",\
         \"tenants\":{},\"wall_s\":{wall_s:.3},\
         \"per_tenant_events_per_s\":{per_tenant_events_per_s:.0},\
         \"total_events_per_s\":{total_events_per_s:.0},\
         \"busy_retries\":{busy_retries_total},\
         \"shed_queue_events\":{SHED_QUEUE},\"shed_events\":{},\
         \"shed_accepted\":{},\"shutdown_events\":{},\"epochs\":{}}}",
        events.len(),
        if test_mode { "test" } else { "bench" },
        tenants.len(),
        shed_stats.shed_events,
        shed_stats.events,
        final_stats.events,
        reference.stats.epochs,
    );
    println!("BENCH {json}");
    // Benches run with the package as working directory; anchor the JSON at
    // the workspace root so CI can pick up BENCH_*.json uniformly.
    let dir = std::env::var("BENCH_DIR").unwrap_or_else(|_| {
        let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
        if std::path::Path::new(&root).is_dir() {
            root
        } else {
            ".".to_string()
        }
    });
    let path = format!("{dir}/BENCH_serve_e2e.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("[serve_e2e] could not write {path}: {e}");
    }
    println!(
        "serve_e2e/metro_{users}: {} tenants x {} events in {wall_s:.2}s \
         ({per_tenant_events_per_s:.0} events/s per tenant, {busy_retries_total} BUSY retries; \
         shed phase dropped {} of {} offered; shutdown kept all {} accepted)",
        tenants.len(),
        events.len(),
        shed_stats.shed_events,
        events.len(),
        final_stats.events,
    );
}
