//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the Criterion API the `glove-bench` benches use:
//! [`Criterion::benchmark_group`]/[`Criterion::bench_function`], benchmark
//! groups with `sample_size`/`throughput`, [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Mode selection mirrors real Criterion: `cargo bench` passes `--bench`,
//! which enables measurement mode (warm-up plus a timed run, reporting
//! ns/iter and, when a throughput was set, elements/s). Without `--bench`,
//! or with an explicit `--test` (as in `cargo bench -- --test`), every
//! benchmark body runs exactly once so CI can keep the benches compiling
//! and executable without paying for stable measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark in measurement mode.
const MEASURE_TARGET: Duration = Duration::from_millis(200);
/// Iteration cap so quadratic workloads cannot stall a bench run.
const MAX_ITERS: u64 = 10_000;

/// The benchmark driver handed to every registered bench function.
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let bench = args.iter().any(|a| a == "--bench");
        let test = args.iter().any(|a| a == "--test");
        Self {
            test_mode: test || !bench,
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.test_mode, &name.into(), None, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares how much work one iteration performs, enabling rate output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion.test_mode, &label, self.throughput, |b| f(b));
        self
    }

    /// Runs a benchmark that borrows a per-case input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion.test_mode, &label, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: a function name plus a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id naming only the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Anything accepted where a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// Converts to the display label of the benchmark.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// The per-iteration work one benchmark performs.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        // Warm-up: one call, which also sizes the timed run.
        let warm_start = Instant::now();
        black_box(routine());
        let warm = warm_start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (MEASURE_TARGET.as_nanos() / warm.as_nanos()).clamp(1, u128::from(MAX_ITERS)) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    test_mode: bool,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        test_mode,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if test_mode {
        println!("test {label} ... ok (ran once)");
        return;
    }
    let per_iter_ns = if bencher.iters == 0 {
        0.0
    } else {
        bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
    };
    match throughput {
        Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            println!("{label:50} {per_iter_ns:>14.1} ns/iter {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
            let rate = n as f64 / (per_iter_ns / 1e9) / (1024.0 * 1024.0);
            println!("{label:50} {per_iter_ns:>14.1} ns/iter {rate:>14.1} MiB/s");
        }
        _ => println!("{label:50} {per_iter_ns:>14.1} ns/iter"),
    }
}

/// Registers benchmark functions under a group name, mirroring Criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::__from_args_for_macro();
            $($group(&mut criterion);)+
        }
    };
}

impl Criterion {
    /// Implementation detail of [`criterion_main!`].
    #[doc(hidden)]
    pub fn __from_args_for_macro() -> Self {
        Self::from_args()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_bodies_run_in_test_mode() {
        let mut criterion = Criterion { test_mode: true };
        let mut calls = 0u32;
        criterion.bench_function("unit/one", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1, "test mode runs the routine exactly once");

        let mut group = criterion.benchmark_group("unit");
        group.sample_size(10).throughput(Throughput::Elements(4));
        let mut with_input = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &v| {
            b.iter(|| with_input += v)
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
        assert_eq!(with_input, 7);
    }

    #[test]
    fn measurement_mode_times_the_routine() {
        let mut criterion = Criterion { test_mode: false };
        let mut calls = 0u64;
        criterion.bench_function("unit/timed", |b| b.iter(|| calls += 1));
        assert!(calls > 1, "measurement mode iterates ({calls} calls)");
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("k2", 32).to_string(), "k2/32");
        assert_eq!(
            BenchmarkId::from_parameter("100m x 1min").to_string(),
            "100m x 1min"
        );
    }
}
