//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the proptest API the GLOVE workspace uses: the
//! [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`], the
//! [`strategy::Strategy`] trait with `prop_map`, numeric-range and tuple
//! strategies, [`collection::vec`], and string strategies from a small
//! regex subset (`\PC`, character classes, `{m,n}`/`?` quantifiers).
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case panics with the drawn inputs instead
//!   of minimizing them;
//! * **deterministic seeding** — the RNG is seeded from the test's module
//!   path and name, so failures reproduce exactly on re-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: Copy,
        Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rand::SampleRange::sample_from(self.clone(), rng)
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Copy,
        RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rand::SampleRange::sample_from(self.clone(), rng)
        }
    }

    /// String strategy from a regex subset; see [`crate::string`].
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size interval for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! Generation of strings matching a small regex subset.
    //!
    //! Supported syntax: literal characters, `\PC` (any printable,
    //! non-control character), character classes `[...]` with ranges and a
    //! literal leading `-`, and the quantifiers `{m,n}`, `{n}`, `?`, `*`
    //! and `+` (the starred forms capped at 8 repetitions).

    use rand::rngs::StdRng;
    use rand::Rng;

    #[derive(Clone, Debug)]
    enum Atom {
        Literal(char),
        /// Any printable char (`\PC`): drawn from an ASCII + small unicode pool.
        AnyPrintable,
        /// A set of alternatives from a `[...]` class.
        Class(Vec<(char, char)>),
    }

    #[derive(Clone, Debug)]
    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Generates a string matching `pattern`.
    ///
    /// # Panics
    /// Panics on syntax outside the supported subset (which would silently
    /// generate non-matching strings otherwise).
    pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let count = rng.gen_range(piece.min..=piece.max);
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }

    fn sample_atom(atom: &Atom, rng: &mut StdRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::AnyPrintable => {
                // Mostly ASCII printable, occasionally multi-byte unicode so
                // parsers see non-trivial UTF-8.
                if rng.gen_bool(0.9) {
                    char::from_u32(rng.gen_range(0x20u32..0x7F)).expect("printable ascii")
                } else {
                    const POOL: &[char] = &['é', 'Ω', '中', '🜂', 'ß', 'ñ', '→', '\u{00A0}'];
                    POOL[rng.gen_range(0..POOL.len())]
                }
            }
            Atom::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                    .sum();
                let mut pick = rng.gen_range(0..total);
                for (lo, hi) in ranges {
                    let span = *hi as u32 - *lo as u32 + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick).expect("class range char");
                    }
                    pick -= span;
                }
                unreachable!("pick is bounded by the total class size")
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' => {
                    // Only `\PC` and escaped literals are supported.
                    if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                        i += 3;
                        Atom::AnyPrintable
                    } else {
                        let c = *chars
                            .get(i + 1)
                            .unwrap_or_else(|| panic!("dangling escape in regex '{pattern}'"));
                        i += 2;
                        Atom::Literal(c)
                    }
                }
                '[' => {
                    // Find the closing `]`, honouring escapes so `[a\]b]`
                    // keeps its escaped bracket inside the class body.
                    let mut close = i + 1;
                    while close < chars.len() && chars[close] != ']' {
                        close += if chars[close] == '\\' { 2 } else { 1 };
                    }
                    assert!(
                        close < chars.len(),
                        "unterminated class in regex '{pattern}'"
                    );
                    let body = &chars[i + 1..close];
                    i = close + 1;
                    Atom::Class(parse_class(body, pattern))
                }
                '.' => {
                    i += 1;
                    Atom::AnyPrintable
                }
                c => {
                    assert!(
                        !"(){}|^$*+?".contains(c),
                        "unsupported regex syntax '{c}' in '{pattern}'"
                    );
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unterminated quantifier in '{pattern}'"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("quantifier lower bound"),
                            hi.trim().parse().expect("quantifier upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn parse_class(body: &[char], pattern: &str) -> Vec<(char, char)> {
        // Resolve escapes first so `a-z` range detection below cannot
        // mistake an escaped `\-` for a range separator.
        let mut tokens: Vec<(char, bool)> = Vec::new();
        let mut j = 0;
        while j < body.len() {
            if body[j] == '\\' {
                j += 1;
                assert!(j < body.len(), "dangling escape in class in '{pattern}'");
                tokens.push((body[j], true));
            } else {
                tokens.push((body[j], false));
            }
            j += 1;
        }
        assert!(!tokens.is_empty(), "empty class in regex '{pattern}'");

        // `a-z` is a range unless `-` is first, last, or escaped.
        let mut ranges = Vec::new();
        let mut k = 0;
        while k < tokens.len() {
            if k + 2 < tokens.len() && tokens[k + 1] == ('-', false) {
                let (lo, hi) = (tokens[k].0, tokens[k + 2].0);
                assert!(lo <= hi, "inverted class range in '{pattern}'");
                ranges.push((lo, hi));
                k += 3;
            } else {
                ranges.push((tokens[k].0, tokens[k].0));
                k += 1;
            }
        }
        ranges
    }
}

pub mod test_runner {
    //! Test configuration and the deterministic RNG behind each test.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration of a `proptest!` block.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A deterministic RNG derived from the test's fully qualified name, so
    /// each property sees a distinct but reproducible stream.
    pub fn rng_for(test_name: &str) -> StdRng {
        // FNV-1a over the name: stable across platforms and compiler versions.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(hash)
    }
}

/// The conventional catch-all import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` against `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let ($($arg,)+) =
                        ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{} of {} failed",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;
    use crate::test_runner::rng_for;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -50i64..50, y in 1u32..=9, f in 0.0f64..1.0) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..=9).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(v in vec((0u32..10, 0u32..10).prop_map(|(a, b)| a + b), 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&s| s < 19));
        }

        #[test]
        fn regex_class_strings_match(s in "[FS#] ?[-0-9a-z, ]{0,40}") {
            let mut chars = s.chars();
            let first = chars.next().expect("leading class is mandatory");
            prop_assert!("FS#".contains(first));
            prop_assert!(s.len() <= 2 + 40);
        }

        #[test]
        fn printable_strings_have_no_controls(s in "\\PC{0,50}") {
            prop_assert!(!s.chars().any(|c| c.is_control()), "control char in {s:?}");
        }

        #[test]
        fn escaped_bracket_in_class_stays_literal(s in "[a\\]b]{1,30}") {
            prop_assert!(
                s.chars().all(|c| matches!(c, 'a' | ']' | 'b')),
                "escaped bracket must stay inside the class: {s:?}"
            );
        }

        #[test]
        fn escaped_dash_in_class_stays_literal(s in "[a\\-z]{1,30}") {
            prop_assert!(
                s.chars().all(|c| matches!(c, 'a' | '-' | 'z')),
                "escaped dash must not form a range: {s:?}"
            );
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = rng_for("some::test");
        let mut b = rng_for("some::test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = rng_for("other::test");
        assert_ne!(rng_for("some::test").next_u64(), c.next_u64());
    }
}
