//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, API-compatible subset of `rand 0.8`: a deterministic
//! xoshiro256++ generator behind [`rngs::StdRng`], the [`Rng`] extension
//! trait (`gen_range`, `gen_bool`, `gen`), [`SeedableRng::seed_from_u64`]
//! seeding via SplitMix64, and [`seq::SliceRandom::shuffle`]. Everything the
//! GLOVE workspace calls is here; nothing else is.
//!
//! Determinism is part of the contract: the same seed always yields the same
//! stream, on every platform, forever — synthetic datasets and attack runs
//! are reproducible across machines and CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of uniform `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be seeded deterministically from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        standard_f64(self) < p
    }

    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution (`[0, 1)` for floats,
/// the full domain for integers).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        standard_f64(rng)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform `f64` in `[0, 1)` using the top 53 bits of one 64-bit word.
fn standard_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, n)` via Lemire-style widening rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection zone keeps the result exactly uniform.
    let zone = n.wrapping_neg() % n;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = widening_mul(v, n);
        if lo >= zone || zone == 0 {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

/// Types with a uniform sampler over intervals — the bound behind
/// [`Rng::gen_range`]. The single blanket [`SampleRange`] impl per range
/// shape ties the range's element type to the sampled type, which is what
/// lets integer-literal ranges infer (mirroring `rand::distributions`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                let off = uniform_u64_below(rng, span);
                ((start as $wide).wrapping_add(off as $wide)) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span + 1);
                ((start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

int_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! float_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(
                    start < end && start.is_finite() && end.is_finite(),
                    "gen_range: invalid float range"
                );
                let u = standard_f64(rng) as $t;
                let v = start + (end - start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v < end {
                    v
                } else {
                    // `next_down`, not a bit decrement: bits-1 moves the
                    // wrong way for end <= 0.
                    <$t>::max(start, end.next_down())
                }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(
                    start <= end && start.is_finite() && end.is_finite(),
                    "gen_range: invalid float range"
                );
                start + (end - start) * (standard_f64(rng) as $t)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded with SplitMix64 (same construction the reference xoshiro
    /// implementation recommends).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 key expansion: decorrelates near-identical seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling: shuffling and choosing from slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The conventional catch-all import, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&u));
        }
    }

    #[test]
    fn gen_range_handles_non_positive_float_endpoints() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.0f64..-1.0);
            assert!((-2.0..-1.0).contains(&v), "{v} outside [-2, -1)");
            let w = rng.gen_range(-1.0f64..0.0);
            assert!((-1.0..0.0).contains(&w), "{w} outside [-1, 0)");
        }
        // The endpoint clamp itself must stay inside the range even when
        // `end <= 0` (a bit-decrement would move the wrong way here).
        assert!(f64::max(-2.0, (-1.0f64).next_down()) < -1.0);
        assert!(f64::max(-1.0, 0.0f64.next_down()) < 0.0);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "{hits} hits for p = 0.3");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(19);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*items.as_slice().choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
