//! Property tests of the dataset and event text formats: serialize → parse
//! must be the identity on arbitrary valid inputs, malformed records must
//! be rejected with the *exact* 1-based line number of the offending
//! record, and the parsers must never panic.

use glove_cli::io;
use glove_core::stream::events_of;
use glove_core::{Dataset, Fingerprint, Sample, UserId};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_sample() -> impl Strategy<Value = Sample> {
    (
        -1_000_000i64..1_000_000,
        -1_000_000i64..1_000_000,
        1u32..100_000,
        1u32..100_000,
        0u32..40_000,
        1u32..5_000,
    )
        .prop_map(|(x, y, dx, dy, t, dt)| Sample::new(x, y, dx, dy, t, dt).expect("valid"))
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    vec(vec(arb_sample(), 1..=8), 1..=12).prop_map(|per_user| {
        let fps = per_user
            .into_iter()
            .enumerate()
            .map(|(u, samples)| {
                Fingerprint::with_users(vec![u as UserId], samples).expect("non-empty")
            })
            .collect();
        Dataset::new("prop-io", fps).expect("unique users")
    })
}

/// Datasets with multi-subscriber (merged) fingerprints — the shape GLOVE
/// output files have.
fn arb_grouped_dataset() -> impl Strategy<Value = Dataset> {
    (vec(vec(arb_sample(), 1..=6), 1..=6), 1u32..4).prop_map(|(per_group, width)| {
        let fps = per_group
            .into_iter()
            .enumerate()
            .map(|(g, samples)| {
                let base = g as UserId * 10;
                let users: Vec<UserId> = (0..width).map(|i| base + i).collect();
                Fingerprint::with_users(users, samples).expect("non-empty")
            })
            .collect();
        Dataset::new("prop-io-grouped", fps).expect("unique users")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_is_identity(ds in arb_dataset()) {
        let text = io::to_string(&ds);
        let back = io::from_str(&text).expect("serializer output must parse");
        prop_assert_eq!(back.name, ds.name);
        prop_assert_eq!(back.fingerprints.len(), ds.fingerprints.len());
        for (a, b) in back.fingerprints.iter().zip(&ds.fingerprints) {
            prop_assert_eq!(a.users(), b.users());
            prop_assert_eq!(a.samples(), b.samples());
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,400}") {
        // Any outcome is fine except a panic.
        let _ = io::from_str(&text);
    }

    #[test]
    fn parser_never_panics_on_liney_garbage(lines in vec("[FS#] ?[-0-9a-z, ]{0,40}", 0..20)) {
        let _ = io::from_str(&lines.join("\n"));
    }

    #[test]
    fn grouped_round_trip_is_identity(ds in arb_grouped_dataset()) {
        let text = io::to_string(&ds);
        let back = io::from_str(&text).expect("serializer output must parse");
        prop_assert_eq!(back.fingerprints.len(), ds.fingerprints.len());
        for (a, b) in back.fingerprints.iter().zip(&ds.fingerprints) {
            prop_assert_eq!(a.users(), b.users());
            prop_assert_eq!(a.samples(), b.samples());
        }
    }

    /// Corrupting one `S` record must be reported at exactly that record's
    /// 1-based line number.
    #[test]
    fn malformed_sample_record_reports_its_line(
        ds in arb_dataset(),
        corrupt_kind in 0usize..3,
        pick in 0usize..1_000,
    ) {
        let text = io::to_string(&ds);
        let lines: Vec<&str> = text.lines().collect();
        let sample_lines: Vec<usize> =
            (0..lines.len()).filter(|&i| lines[i].starts_with("S ")).collect();
        let victim = sample_lines[pick % sample_lines.len()];

        let corrupted = match corrupt_kind {
            // Too few fields.
            0 => lines[victim].rsplit_once(' ').expect("has fields").0.to_string(),
            // Non-numeric field.
            1 => lines[victim].replacen("S ", "S x", 1),
            // Unknown record tag.
            _ => lines[victim].replacen("S ", "Q ", 1),
        };
        let mut mutated: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        mutated[victim] = corrupted;
        let err = io::from_str(&mutated.join("\n")).expect_err("corruption must be caught");
        match err {
            io::ParseError::Syntax { line, .. } => prop_assert_eq!(
                line, victim + 1, "error reported at the wrong line"
            ),
            other => prop_assert!(false, "expected a Syntax error, got {other:?}"),
        }
    }

    /// Corrupting an `F` header must be reported at that header's line.
    #[test]
    fn malformed_fingerprint_header_reports_its_line(
        ds in arb_dataset(),
        pick in 0usize..1_000,
    ) {
        let text = io::to_string(&ds);
        let lines: Vec<&str> = text.lines().collect();
        let header_lines: Vec<usize> =
            (0..lines.len()).filter(|&i| lines[i].starts_with("F ")).collect();
        let victim = header_lines[pick % header_lines.len()];

        let mut mutated: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        mutated[victim] = "F 1,borked".to_string();
        let err = io::from_str(&mutated.join("\n")).expect_err("corruption must be caught");
        match err {
            io::ParseError::Syntax { line, ref message } => {
                prop_assert_eq!(line, victim + 1);
                prop_assert!(message.contains("user id"), "message: {message}");
            }
            other => prop_assert!(false, "expected a Syntax error, got {other:?}"),
        }
    }

    /// Event streams: serialize → parse is the identity on the canonical
    /// event view of any dataset.
    #[test]
    fn event_round_trip_is_identity(ds in arb_grouped_dataset()) {
        let events = events_of(&ds);
        let text = io::events_to_string(&ds.name, events.iter().copied());
        let (name, back) = io::events_from_str(&text).expect("serializer output must parse");
        prop_assert_eq!(name, ds.name.clone());
        prop_assert_eq!(back, events);
    }

    /// The event parser never panics on arbitrary text.
    #[test]
    fn event_parser_never_panics(text in "\\PC{0,400}") {
        let _ = io::events_from_str(&text);
    }

    /// Corrupting one `E` record reports that record's line number.
    #[test]
    fn malformed_event_record_reports_its_line(
        ds in arb_dataset(),
        pick in 0usize..1_000,
    ) {
        let events = events_of(&ds);
        let text = io::events_to_string(&ds.name, events.iter().copied());
        let lines: Vec<&str> = text.lines().collect();
        let event_lines: Vec<usize> =
            (0..lines.len()).filter(|&i| lines[i].starts_with("E ")).collect();
        let victim = event_lines[pick % event_lines.len()];

        let mut mutated: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        mutated[victim] = "E not-a-user 0 0 100 100 0 1".to_string();
        let err = io::events_from_str(&mutated.join("\n")).expect_err("must be caught");
        match err {
            io::ParseError::Syntax { line, .. } => prop_assert_eq!(line, victim + 1),
            other => prop_assert!(false, "expected a Syntax error, got {other:?}"),
        }
    }
}
