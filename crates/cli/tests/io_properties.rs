//! Property tests of the dataset text format: serialize → parse must be the
//! identity on arbitrary valid datasets, and the parser must reject
//! structurally broken inputs instead of panicking.

use glove_cli::io;
use glove_core::{Dataset, Fingerprint, Sample, UserId};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_sample() -> impl Strategy<Value = Sample> {
    (
        -1_000_000i64..1_000_000,
        -1_000_000i64..1_000_000,
        1u32..100_000,
        1u32..100_000,
        0u32..40_000,
        1u32..5_000,
    )
        .prop_map(|(x, y, dx, dy, t, dt)| Sample::new(x, y, dx, dy, t, dt).expect("valid"))
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    vec(vec(arb_sample(), 1..=8), 1..=12).prop_map(|per_user| {
        let fps = per_user
            .into_iter()
            .enumerate()
            .map(|(u, samples)| {
                Fingerprint::with_users(vec![u as UserId], samples).expect("non-empty")
            })
            .collect();
        Dataset::new("prop-io", fps).expect("unique users")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_is_identity(ds in arb_dataset()) {
        let text = io::to_string(&ds);
        let back = io::from_str(&text).expect("serializer output must parse");
        prop_assert_eq!(back.name, ds.name);
        prop_assert_eq!(back.fingerprints.len(), ds.fingerprints.len());
        for (a, b) in back.fingerprints.iter().zip(&ds.fingerprints) {
            prop_assert_eq!(a.users(), b.users());
            prop_assert_eq!(a.samples(), b.samples());
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,400}") {
        // Any outcome is fine except a panic.
        let _ = io::from_str(&text);
    }

    #[test]
    fn parser_never_panics_on_liney_garbage(lines in vec("[FS#] ?[-0-9a-z, ]{0,40}", 0..20)) {
        let _ = io::from_str(&lines.join("\n"));
    }
}
