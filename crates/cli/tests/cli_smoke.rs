//! End-to-end smoke test of the compiled `glove` binary: drives the
//! documented `synth → info → anonymize` workflow through real process
//! invocations and asserts on exit codes and on the k-anonymity of the
//! produced dataset file.

use glove_cli::io;
use std::path::PathBuf;
use std::process::{Command, Output};

/// Path of the binary under test, provided by Cargo for integration tests.
fn glove_bin() -> &'static str {
    env!("CARGO_BIN_EXE_glove")
}

fn run(args: &[&str]) -> Output {
    Command::new(glove_bin())
        .args(args)
        .output()
        .expect("spawning the glove binary succeeds")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("glove-cli-smoke-{}-{name}", std::process::id()))
}

#[test]
fn synth_info_anonymize_round_trip() {
    let data = temp_path("data.txt");
    let anon = temp_path("anon.txt");

    // synth: exit 0, file exists, reports the requested population.
    let out = run(&[
        "synth",
        "--preset",
        "civ",
        "--users",
        "10",
        "--seed",
        "7",
        "--out",
        data.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "synth failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("10 users"),
        "unexpected synth output: {stdout}"
    );

    // info: exit 0 and a sane summary of the same file.
    let out = run(&["info", "--in", data.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "info failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("subscribers:   10"),
        "info output: {stdout}"
    );
    assert!(stdout.contains("k-anonymity:   1"), "info output: {stdout}");

    // anonymize: exit 0 and the output file is verifiably 2-anonymous.
    let out = run(&[
        "anonymize",
        "--in",
        data.to_str().unwrap(),
        "--out",
        anon.to_str().unwrap(),
        "--k",
        "2",
    ]);
    assert!(
        out.status.success(),
        "anonymize failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let published = io::read_file(&anon).expect("anonymize must write a parseable dataset");
    assert!(
        published.is_k_anonymous(2),
        "published dataset is not 2-anonymous"
    );
    let original = io::read_file(&data).expect("synth output stays parseable");
    assert_eq!(
        published.num_users(),
        original.num_users(),
        "default residual policy must keep every subscriber"
    );

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&anon);
}

#[test]
fn sharded_anonymize_round_trips_through_audit() {
    let data = temp_path("shard-data.txt");
    let anon = temp_path("shard-anon.txt");

    let out = run(&[
        "synth",
        "--preset",
        "civ",
        "--users",
        "24",
        "--seed",
        "3",
        "--out",
        data.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "synth failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // anonymize with 4 activity shards: exit 0 and per-shard stats printed.
    let out = run(&[
        "anonymize",
        "--in",
        data.to_str().unwrap(),
        "--out",
        anon.to_str().unwrap(),
        "--k",
        "2",
        "--shards",
        "4",
        "--shard-by",
        "activity",
    ]);
    assert!(
        out.status.success(),
        "sharded anonymize failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("shards: 4 (activity)"),
        "missing shard summary: {stdout}"
    );
    assert!(
        stdout.contains("shard 0:") && stdout.contains("shard 3:"),
        "missing per-shard stats: {stdout}"
    );

    // The sharded output round-trips through `audit`, which confirms every
    // published fingerprint already hides >= 2 subscribers.
    let out = run(&["audit", "--in", anon.to_str().unwrap(), "--k", "2"]);
    assert!(
        out.status.success(),
        "audit of sharded output failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("already k-anonymous: 100.0%"),
        "sharded output not fully k-anonymous per audit: {stdout}"
    );

    // File-level invariants: parseable, 2-anonymous, user-conserving.
    let published = io::read_file(&anon).expect("sharded output parseable");
    assert!(published.is_k_anonymous(2));
    assert_eq!(published.num_users(), 24);

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&anon);
}

#[test]
fn bad_shard_flags_exit_nonzero_with_clear_errors() {
    let data = temp_path("bad-shard-data.txt");
    let out = run(&[
        "synth",
        "--preset",
        "civ",
        "--users",
        "10",
        "--seed",
        "1",
        "--out",
        data.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Unknown shard key.
    let out = run(&[
        "anonymize",
        "--in",
        data.to_str().unwrap(),
        "--out",
        "/tmp/never-written.txt",
        "--k",
        "2",
        "--shards",
        "2",
        "--shard-by",
        "geohash",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("activity|spatial"),
        "unhelpful --shard-by error: {stderr}"
    );

    // --shard-by without --shards.
    let out = run(&[
        "anonymize",
        "--in",
        data.to_str().unwrap(),
        "--out",
        "/tmp/never-written.txt",
        "--k",
        "2",
        "--shard-by",
        "activity",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shard-by requires --shards"));

    // Zero shards.
    let out = run(&[
        "anonymize",
        "--in",
        data.to_str().unwrap(),
        "--out",
        "/tmp/never-written.txt",
        "--k",
        "2",
        "--shards",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shards must be at least 1"));

    let _ = std::fs::remove_file(&data);
}

#[test]
fn synth_events_stream_round_trip() {
    // The streaming pipeline end to end through the binary: synthesize an
    // event file (no dataset ever materialized), stream it into daily
    // epochs, verify each epoch file is k-anonymous.
    let events = temp_path("events.txt");
    let out_dir = temp_path("stream-epochs");

    let out = run(&[
        "synth",
        "--preset",
        "civ",
        "--users",
        "12",
        "--seed",
        "5",
        "--events-out",
        events.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "synth --events-out failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("events from 12 users"),
        "unexpected synth output: {stdout}"
    );

    let out = run(&[
        "stream",
        "--in",
        events.to_str().unwrap(),
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--k",
        "2",
        "--window",
        "2880",
        "--carry",
        "sticky",
        "--under-k",
        "defer",
    ]);
    assert!(
        out.status.success(),
        "stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("peak resident:"),
        "missing residency stats: {stdout}"
    );

    let mut epoch_files: Vec<_> = std::fs::read_dir(&out_dir)
        .expect("stream created the output directory")
        .map(|e| e.unwrap().path())
        .collect();
    epoch_files.sort();
    assert!(
        epoch_files.len() >= 3,
        "expected several 2-day epochs, got {}",
        epoch_files.len()
    );
    for f in &epoch_files {
        let epoch = io::read_file(f).expect("epoch file parseable");
        assert!(epoch.is_k_anonymous(2), "{} not 2-anonymous", f.display());
    }

    let _ = std::fs::remove_file(&events);
    let _ = std::fs::remove_dir_all(&out_dir);
}

#[test]
fn bad_stream_flags_exit_nonzero_with_clear_errors() {
    let out = run(&[
        "stream",
        "--in",
        "/tmp/whatever.txt",
        "--out-dir",
        "/tmp/whatever-dir",
        "--k",
        "2",
        "--carry",
        "warm",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("fresh|sticky"));

    let out = run(&[
        "stream",
        "--in",
        "/tmp/whatever.txt",
        "--out-dir",
        "/tmp/whatever-dir",
        "--k",
        "2",
        "--under-k",
        "drop",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("suppress|defer"));

    // synth with neither output flag is rejected.
    let out = run(&["synth", "--preset", "civ", "--users", "5"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--events-out"));
}

#[test]
fn bad_invocations_exit_nonzero_with_usage() {
    // No command.
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // Unknown command.
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));

    // Missing required option.
    let out = run(&["synth", "--preset", "civ"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--users"));

    // Unreadable input file.
    let out = run(&["info", "--in", "/nonexistent/definitely-missing.txt"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn every_advertised_preset_synths_at_tiny_scale() {
    // Each name in `glove_synth::PRESETS` must work end to end through the
    // binary — both the batch dataset path and the streaming events path —
    // so the USAGE text never advertises a preset that doesn't run.
    for preset in glove_synth::PRESETS {
        let data = temp_path(&format!("preset-{preset}.txt"));
        let out = run(&[
            "synth",
            "--preset",
            preset,
            "--users",
            "10",
            "--seed",
            "7",
            "--out",
            data.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "synth --preset {preset} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("users"),
            "synth --preset {preset} output: {stdout}"
        );
        let ds = io::read_file(&data).expect("preset output parseable");
        // Churn presets split people across extra SIM ids; everything else
        // keeps exactly the requested population.
        assert!(
            ds.num_users() >= 10,
            "preset {preset} produced only {} user ids",
            ds.num_users()
        );
        assert!(ds.num_samples() > 0, "preset {preset} produced no samples");

        let events = temp_path(&format!("preset-{preset}-events.txt"));
        let out = run(&[
            "synth",
            "--preset",
            preset,
            "--users",
            "10",
            "--seed",
            "7",
            "--events-out",
            events.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "synth --preset {preset} --events-out failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(io::is_events_file(&events).unwrap());

        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&events);
    }
}

#[test]
fn unknown_preset_error_lists_the_presets() {
    let out = run(&[
        "synth",
        "--preset",
        "mars",
        "--users",
        "10",
        "--out",
        "/tmp/never-written.txt",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown preset 'mars'"),
        "unhelpful preset error: {stderr}"
    );
    for preset in glove_synth::PRESETS {
        assert!(
            stderr.contains(preset),
            "preset error does not mention '{preset}': {stderr}"
        );
    }
}

#[test]
fn help_prints_usage_on_stdout() {
    let out = run(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("anonymize"));
}
