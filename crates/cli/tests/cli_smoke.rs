//! End-to-end smoke test of the compiled `glove` binary: drives the
//! documented `synth → info → anonymize` workflow through real process
//! invocations and asserts on exit codes and on the k-anonymity of the
//! produced dataset file.

use glove_cli::io;
use std::path::PathBuf;
use std::process::{Command, Output};

/// Path of the binary under test, provided by Cargo for integration tests.
fn glove_bin() -> &'static str {
    env!("CARGO_BIN_EXE_glove")
}

fn run(args: &[&str]) -> Output {
    Command::new(glove_bin())
        .args(args)
        .output()
        .expect("spawning the glove binary succeeds")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("glove-cli-smoke-{}-{name}", std::process::id()))
}

#[test]
fn synth_info_anonymize_round_trip() {
    let data = temp_path("data.txt");
    let anon = temp_path("anon.txt");

    // synth: exit 0, file exists, reports the requested population.
    let out = run(&[
        "synth",
        "--preset",
        "civ",
        "--users",
        "10",
        "--seed",
        "7",
        "--out",
        data.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "synth failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("10 users"),
        "unexpected synth output: {stdout}"
    );

    // info: exit 0 and a sane summary of the same file.
    let out = run(&["info", "--in", data.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "info failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("subscribers:   10"),
        "info output: {stdout}"
    );
    assert!(stdout.contains("k-anonymity:   1"), "info output: {stdout}");

    // anonymize: exit 0 and the output file is verifiably 2-anonymous.
    let out = run(&[
        "anonymize",
        "--in",
        data.to_str().unwrap(),
        "--out",
        anon.to_str().unwrap(),
        "--k",
        "2",
    ]);
    assert!(
        out.status.success(),
        "anonymize failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let published = io::read_file(&anon).expect("anonymize must write a parseable dataset");
    assert!(
        published.is_k_anonymous(2),
        "published dataset is not 2-anonymous"
    );
    let original = io::read_file(&data).expect("synth output stays parseable");
    assert_eq!(
        published.num_users(),
        original.num_users(),
        "default residual policy must keep every subscriber"
    );

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&anon);
}

#[test]
fn bad_invocations_exit_nonzero_with_usage() {
    // No command.
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // Unknown command.
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));

    // Missing required option.
    let out = run(&["synth", "--preset", "civ"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--users"));

    // Unreadable input file.
    let out = run(&["info", "--in", "/nonexistent/definitely-missing.txt"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_prints_usage_on_stdout() {
    let out = run(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("anonymize"));
}
