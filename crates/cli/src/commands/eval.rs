//! Inspection and adversarial evaluation verbs: `glove info`,
//! `glove audit` (the §5 anonymizability audit) and `glove attack`
//! (record-linkage adversaries).

use crate::io;
use glove_core::kgap::kgap_all;
use glove_core::StretchConfig;
use glove_stats::{Ecdf, Summary};
use glove_synth::QualityReport;
use std::error::Error;
use std::path::Path;

/// `glove info`: dataset summary.
pub fn info(input: &Path) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    let lens: Vec<f64> = ds.fingerprints.iter().map(|f| f.len() as f64).collect();
    let len_summary = Summary::of(&lens).ok_or("empty dataset")?;
    let mut out = String::new();
    out.push_str(&format!("name:          {}\n", ds.name));
    out.push_str(&format!("fingerprints:  {}\n", ds.fingerprints.len()));
    out.push_str(&format!("subscribers:   {}\n", ds.num_users()));
    out.push_str(&format!("samples:       {}\n", ds.num_samples()));
    out.push_str(&format!(
        "span:          {} min ({:.1} days)\n",
        ds.span_min(),
        ds.span_min() as f64 / 1_440.0
    ));
    out.push_str(&format!(
        "samples/fp:    median {:.0}, mean {:.1}, max {:.0}\n",
        len_summary.median, len_summary.mean, len_summary.max
    ));
    let k = (2..=16)
        .take_while(|&k| ds.is_k_anonymous(k))
        .last()
        .unwrap_or(1);
    out.push_str(&format!("k-anonymity:   {k}\n"));
    if let Some(quality) = QualityReport::of(&ds) {
        out.push_str("--- data quality ---\n");
        out.push_str(&quality.render());
        out.push('\n');
    }
    Ok(out)
}

/// `glove audit`: the anonymizability audit of §5 — k-gap distribution.
///
/// On anonymized output the audit is multiplicity-aware (PR 2 semantics,
/// see DESIGN.md "k-gap on anonymized output"): a published record hiding
/// ≥ k subscribers reports a gap of 0, so a GLOVE run audits as
/// "already k-anonymous: 100%".
pub fn audit(input: &Path, k: usize, threads: usize) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    if k < 2 || ds.num_users() < k {
        return Err(format!("k must be in [2, {}] for this dataset", ds.num_users()).into());
    }
    let cfg = StretchConfig::default();
    let gaps = kgap_all(&ds, k, threads, &cfg);
    let ecdf = Ecdf::new(gaps).ok_or("k-gap computation produced no values")?;
    let mut out = String::new();
    out.push_str(&format!("k-gap audit of {} (k = {k})\n", ds.name));
    out.push_str(&format!(
        "already k-anonymous: {:.1}%\n",
        ecdf.fraction_at_or_below(0.0) * 100.0
    ));
    for p in [0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
        out.push_str(&format!(
            "p{:<4} {:.4}\n",
            (p * 100.0) as u32,
            ecdf.quantile(p)
        ));
    }
    out.push_str(&format!(
        "mean  {:.4}\nmax   {:.4}\n",
        ecdf.mean(),
        ecdf.max()
    ));
    out.push_str(
        "\nInterpretation: 0 = already hidden in a crowd of k; 1 = hiding this user\n\
         saturates both the 20 km spatial and 8 h temporal caps (uninformative).\n",
    );
    Ok(out)
}

/// Options of `glove attack`.
#[derive(Debug, Clone)]
pub struct AttackOpts {
    /// Points of knowledge per target (multi-point adversary).
    pub points: usize,
    /// Targets drawn per attack.
    pub trials: usize,
    /// RNG seed (the whole command is deterministic given the seed).
    pub seed: u64,
    /// Spatial observation-noise envelope, meters per axis.
    pub noise_space_m: u32,
    /// Temporal observation-noise envelope, minutes.
    pub noise_time_min: u32,
    /// Top-L feature cells of the classifier / cross-epoch profiles.
    pub top_l: usize,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Declared cohorts (from `--policy`): the cross-epoch adversary is
    /// re-scored per cohort and the breakdown lands in the summary and the
    /// JSONL report (feeding [`glove_attack::adapt_policy`]).
    pub cohorts: Vec<glove_core::policy::CohortSpec>,
}

impl Default for AttackOpts {
    fn default() -> Self {
        Self {
            points: 4,
            trials: 200,
            seed: 0xC11,
            noise_space_m: 0,
            noise_time_min: 0,
            top_l: 5,
            threads: 0,
            cohorts: Vec::new(),
        }
    }
}

/// Reads the `epoch-*.txt` files of a `glove stream` output directory, in
/// epoch order.
fn read_epochs(dir: &Path) -> Result<Vec<glove_core::Dataset>, Box<dyn Error>> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("epoch-") && n.ends_with(".txt"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no epoch-*.txt files in {}", dir.display()).into());
    }
    paths
        .iter()
        .map(|p| io::read_file(p).map_err(Into::into))
        .collect()
}

/// `glove attack`: the adversary subsystem against a published release.
///
/// `original` holds the ground truth the adversary observed (raw
/// fingerprints). Exactly one of `published` (a single released dataset)
/// or `epochs_dir` (a `glove stream` output directory) selects what the
/// adversary links against; passing the original as `published` measures
/// raw-data uniqueness. Against a dataset, the multi-point and
/// top-location-classifier adversaries run; against an epoch directory the
/// cross-epoch linkage adversary runs too. `report_out` serializes every
/// attack's [`glove_core::api::RunReport`] as JSONL.
pub fn attack_cmd(
    original: &Path,
    published: Option<&Path>,
    epochs_dir: Option<&Path>,
    report_out: Option<&Path>,
    opts: &AttackOpts,
) -> Result<String, Box<dyn Error>> {
    use glove_attack::{Attack, PublishedView};

    if opts.points == 0 {
        return Err("--points must be at least 1".into());
    }
    if opts.top_l == 0 {
        return Err("--top must be at least 1".into());
    }
    let orig = io::read_file(original)?;
    let mut out = String::new();
    let mut reports = Vec::new();

    let epochs;
    let publ;
    let view = match (published, epochs_dir) {
        (Some(path), None) => {
            publ = io::read_file(path)?;
            out.push_str(&format!(
                "record-linkage attacks: knowledge from {}, linking against {}\n\n",
                orig.name, publ.name
            ));
            PublishedView::Dataset(&publ)
        }
        (None, Some(dir)) => {
            epochs = read_epochs(dir)?;
            out.push_str(&format!(
                "record-linkage attacks: knowledge from {}, linking against {} epochs \
                 from {}\n\n",
                orig.name,
                epochs.len(),
                dir.display()
            ));
            PublishedView::Epochs(&epochs)
        }
        _ => return Err("pass exactly one of --published FILE or --epochs-dir DIR".into()),
    };

    if let PublishedView::Dataset(ds) = view {
        out.push_str("top-location adversary (unique signatures in the published data):\n");
        for l in [1usize, 2, 3] {
            out.push_str(&format!(
                "  top-{l}: {:.1}%\n",
                glove_attack::top_location_uniqueness(ds, l) * 100.0
            ));
        }
    }

    // The multi-point adversary (p known points, optional noise).
    let multi = glove_attack::MultiPointAttack {
        points: opts.points,
        trials: opts.trials,
        seed: opts.seed,
        noise: glove_attack::AdversaryNoise {
            space_m: opts.noise_space_m,
            time_min: opts.noise_time_min,
        },
        threads: opts.threads,
    };
    let report = multi.run(&orig, &view)?;
    if report.trials == 0 {
        out.push_str("\nmulti-point adversary: no target has enough samples\n");
    } else {
        out.push_str(&format!(
            "\nmulti-point adversary ({} points, {} trials, noise {} m / {} min):\n  \
             pinpoint rate: {:.1}%\n  linked rate: {:.1}%\n  min anonymity set: {}\n  \
             mean anonymity set: {:.1}\n",
            opts.points,
            report.trials,
            opts.noise_space_m,
            opts.noise_time_min,
            report.success_rate * 100.0,
            report.metric("linked_rate").unwrap_or(0.0) * 100.0,
            report.min_anonymity,
            report.mean_anonymity,
        ));
    }
    reports.push(report);

    // The top-location classifier (trains on the first period of the
    // published data, links the second back).
    let classifier = glove_attack::TopLocationClassifier {
        l: opts.top_l,
        split_min: None,
        threads: opts.threads,
    };
    let report = classifier.run(&orig, &view)?;
    out.push_str(&format!(
        "\ntop-{} location classifier (first period trains, second links):\n  \
         linkage rate: {:.1}%\n  mean candidate set: {:.1} subscribers ({} targets)\n",
        opts.top_l,
        report.success_rate * 100.0,
        report.mean_anonymity,
        report.trials,
    ));
    reports.push(report);

    // Cross-epoch linkage, when the adversary sees a streamed release.
    if let PublishedView::Epochs(epoch_list) = view {
        let cross = glove_attack::CrossEpochAttack {
            l: opts.top_l,
            threads: opts.threads,
        };
        let mut report = cross.run(&orig, &view)?;
        out.push_str(&format!(
            "\ncross-epoch adversary ({} epochs):\n  signature linkage: {:.1}% \
             of {} attempts\n  cohort persistence: {:.1}%\n",
            report.metric("epochs").unwrap_or(0.0),
            report.success_rate * 100.0,
            report.trials,
            report.metric("cohort_persistence").unwrap_or(0.0) * 100.0,
        ));
        // Re-score the same adversary restricted to each declared cohort:
        // the per-cohort breakdown is what the adaptive tuner keys on.
        if !opts.cohorts.is_empty() {
            let breakdowns: Vec<glove_attack::CohortBreakdown> = opts
                .cohorts
                .iter()
                .map(|spec| {
                    let outcome = glove_attack::cross_epoch_attack_cohort(
                        epoch_list,
                        &cross,
                        spec.users.iter().copied().collect(),
                    );
                    glove_attack::CohortBreakdown {
                        cohort: spec.name.clone(),
                        trials: outcome.cohort_attempts(),
                        success_rate: outcome.cohort_linkage_rate(),
                    }
                })
                .collect();
            for b in &breakdowns {
                out.push_str(&format!(
                    "  cohort {}: {:.1}% of {} attempts\n",
                    b.cohort,
                    b.success_rate * 100.0,
                    b.trials,
                ));
            }
            report = report.with_cohorts(breakdowns);
        }
        reports.push(report);
    }

    if let Some(path) = report_out {
        let mut lines = String::new();
        for report in &reports {
            lines.push_str(&report.to_run_report().to_json());
            lines.push('\n');
        }
        std::fs::write(path, lines)?;
        out.push_str(&format!(
            "\nattack reports written to {} ({} JSONL lines)\n",
            path.display(),
            reports.len()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::test_util::temp;
    use super::super::{anonymize_cmd, synth, AnonymizeOpts};
    use super::*;
    use glove_core::{ResidualPolicy, ShardBy};

    fn attack_opts(points: usize, trials: usize) -> AttackOpts {
        AttackOpts {
            points,
            trials,
            threads: 1,
            ..AttackOpts::default()
        }
    }

    #[test]
    fn attack_command_raw_vs_anonymized() {
        let data = temp("attack-data");
        let anon = temp("attack-anon");
        synth("civ", 24, Some(5), Some(&data), None).unwrap();
        let opts = AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: None,
            shard_by: ShardBy::Activity,
        };
        anonymize_cmd(&data, &anon, &opts).unwrap();

        let raw = attack_cmd(&data, Some(&data), None, None, &attack_opts(3, 50)).unwrap();
        assert!(raw.contains("pinpoint rate"));
        assert!(raw.contains("location classifier"));
        let protected = attack_cmd(&data, Some(&anon), None, None, &attack_opts(3, 50)).unwrap();
        assert!(
            protected.contains("pinpoint rate: 0.0%"),
            "anonymized data must not be pinpointable:\n{protected}"
        );

        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }

    #[test]
    fn attack_command_requires_exactly_one_published_source() {
        let data = temp("attack-one-src");
        synth("civ", 12, Some(5), Some(&data), None).unwrap();
        assert!(attack_cmd(&data, None, None, None, &attack_opts(2, 5)).is_err());
        // Zero-valued knobs are CLI errors, not library panics.
        assert!(attack_cmd(&data, Some(&data), None, None, &attack_opts(0, 5)).is_err());
        let zero_top = AttackOpts {
            top_l: 0,
            ..attack_opts(2, 5)
        };
        assert!(attack_cmd(&data, Some(&data), None, None, &zero_top).is_err());
        assert!(attack_cmd(
            &data,
            Some(&data),
            Some(Path::new("/nonexistent")),
            None,
            &attack_opts(2, 5)
        )
        .is_err());
        let _ = std::fs::remove_file(&data);
    }

    #[test]
    fn attack_command_over_stream_epochs_writes_reports() {
        use super::super::{stream_cmd, StreamOpts};
        use glove_core::api::RunReport;

        let data = temp("attack-stream-data");
        let dir = super::super::test_util::temp_dir("attack-stream-epochs");
        let report_path = temp("attack-stream-report");
        synth("civ", 24, Some(7), Some(&data), None).unwrap();
        let stream_opts = StreamOpts {
            window_min: 2_880,
            threads: 1,
            ..StreamOpts::default()
        };
        stream_cmd(&data, &dir, &stream_opts).unwrap();

        let out = attack_cmd(
            &data,
            None,
            Some(&dir),
            Some(&report_path),
            &attack_opts(2, 40),
        )
        .unwrap();
        assert!(out.contains("cross-epoch adversary"), "output:\n{out}");
        assert!(out.contains("attack reports written"));

        // The JSONL artifact round-trips through RunReport exactly.
        let lines = std::fs::read_to_string(&report_path).unwrap();
        let mut seen = 0;
        for line in lines.lines() {
            let report = RunReport::from_json(line).unwrap();
            assert_eq!(report.engine, "glove-attack");
            assert_eq!(report.to_json(), line, "byte-identical round trip");
            seen += 1;
        }
        assert_eq!(seen, 3, "multi-point, classifier and cross-epoch reports");

        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&report_path);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn audit_rejects_bad_k() {
        let data = temp("audit-k");
        synth("civ", 10, Some(1), Some(&data), None).unwrap();
        assert!(audit(&data, 1, 1).is_err());
        assert!(audit(&data, 999, 1).is_err());
        let _ = std::fs::remove_file(&data);
    }

    #[test]
    fn audit_of_anonymized_output_is_all_zero() {
        // The multiplicity-aware audit round-trip: GLOVE output must report
        // 100% already-k-anonymous (the PR 2 semantics documented in
        // DESIGN.md).
        let data = temp("audit-rt-data");
        let anon = temp("audit-rt-anon");
        synth("civ", 12, Some(23), Some(&data), None).unwrap();
        let opts = AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: None,
            shard_by: ShardBy::Activity,
        };
        anonymize_cmd(&data, &anon, &opts).unwrap();
        let msg = audit(&anon, 2, 1).unwrap();
        assert!(
            msg.contains("already k-anonymous: 100.0%"),
            "audit message: {msg}"
        );
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }
}
