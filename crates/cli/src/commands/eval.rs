//! Inspection and adversarial evaluation verbs: `glove info`,
//! `glove audit` (the §5 anonymizability audit) and `glove attack`
//! (record-linkage adversaries).

use crate::io;
use glove_core::kgap::kgap_all;
use glove_core::StretchConfig;
use glove_stats::{Ecdf, Summary};
use glove_synth::QualityReport;
use std::error::Error;
use std::path::Path;

/// `glove info`: dataset summary.
pub fn info(input: &Path) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    let lens: Vec<f64> = ds.fingerprints.iter().map(|f| f.len() as f64).collect();
    let len_summary = Summary::of(&lens).ok_or("empty dataset")?;
    let mut out = String::new();
    out.push_str(&format!("name:          {}\n", ds.name));
    out.push_str(&format!("fingerprints:  {}\n", ds.fingerprints.len()));
    out.push_str(&format!("subscribers:   {}\n", ds.num_users()));
    out.push_str(&format!("samples:       {}\n", ds.num_samples()));
    out.push_str(&format!(
        "span:          {} min ({:.1} days)\n",
        ds.span_min(),
        ds.span_min() as f64 / 1_440.0
    ));
    out.push_str(&format!(
        "samples/fp:    median {:.0}, mean {:.1}, max {:.0}\n",
        len_summary.median, len_summary.mean, len_summary.max
    ));
    let k = (2..=16)
        .take_while(|&k| ds.is_k_anonymous(k))
        .last()
        .unwrap_or(1);
    out.push_str(&format!("k-anonymity:   {k}\n"));
    if let Some(quality) = QualityReport::of(&ds) {
        out.push_str("--- data quality ---\n");
        out.push_str(&quality.render());
        out.push('\n');
    }
    Ok(out)
}

/// `glove audit`: the anonymizability audit of §5 — k-gap distribution.
///
/// On anonymized output the audit is multiplicity-aware (PR 2 semantics,
/// see DESIGN.md "k-gap on anonymized output"): a published record hiding
/// ≥ k subscribers reports a gap of 0, so a GLOVE run audits as
/// "already k-anonymous: 100%".
pub fn audit(input: &Path, k: usize, threads: usize) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    if k < 2 || ds.num_users() < k {
        return Err(format!("k must be in [2, {}] for this dataset", ds.num_users()).into());
    }
    let cfg = StretchConfig::default();
    let gaps = kgap_all(&ds, k, threads, &cfg);
    let ecdf = Ecdf::new(gaps).ok_or("k-gap computation produced no values")?;
    let mut out = String::new();
    out.push_str(&format!("k-gap audit of {} (k = {k})\n", ds.name));
    out.push_str(&format!(
        "already k-anonymous: {:.1}%\n",
        ecdf.fraction_at_or_below(0.0) * 100.0
    ));
    for p in [0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
        out.push_str(&format!(
            "p{:<4} {:.4}\n",
            (p * 100.0) as u32,
            ecdf.quantile(p)
        ));
    }
    out.push_str(&format!(
        "mean  {:.4}\nmax   {:.4}\n",
        ecdf.mean(),
        ecdf.max()
    ));
    out.push_str(
        "\nInterpretation: 0 = already hidden in a crowd of k; 1 = hiding this user\n\
         saturates both the 20 km spatial and 8 h temporal caps (uninformative).\n",
    );
    Ok(out)
}

/// `glove attack`: record-linkage adversaries against a published dataset.
///
/// `original` holds the ground truth the adversary observed (raw
/// fingerprints); `published` is what was released (possibly anonymized).
/// Pass the same file twice to measure raw-data uniqueness.
pub fn attack_cmd(
    original: &Path,
    published: &Path,
    points: usize,
    trials: usize,
) -> Result<String, Box<dyn Error>> {
    let orig = io::read_file(original)?;
    let publ = io::read_file(published)?;
    let mut out = String::new();
    out.push_str(&format!(
        "record-linkage attacks: knowledge from {}, linking against {}\n\n",
        orig.name, publ.name
    ));
    out.push_str("top-location adversary (unique signatures in the published data):\n");
    for l in [1usize, 2, 3] {
        out.push_str(&format!(
            "  top-{l}: {:.1}%\n",
            glove_attack::top_location_uniqueness(&publ, l) * 100.0
        ));
    }
    let cfg = glove_attack::RandomPointAttack {
        points,
        trials,
        seed: 0xC11,
    };
    let outcome = glove_attack::random_point_attack(&orig, &publ, &cfg);
    if outcome.anonymity_sets.is_empty() {
        out.push_str("\nrandom-point adversary: no target has enough samples\n");
    } else {
        out.push_str(&format!(
            "\nrandom-point adversary ({points} points, {trials} trials):\n  \
             pinpoint rate: {:.1}%\n  min anonymity set: {}\n  mean anonymity set: {:.1}\n",
            outcome.pinpoint_rate() * 100.0,
            outcome.min_anonymity(),
            outcome.mean_anonymity(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::test_util::temp;
    use super::super::{anonymize_cmd, synth, AnonymizeOpts};
    use super::*;
    use glove_core::{ResidualPolicy, ShardBy};

    #[test]
    fn attack_command_raw_vs_anonymized() {
        let data = temp("attack-data");
        let anon = temp("attack-anon");
        synth("civ", 24, Some(5), Some(&data), None).unwrap();
        let opts = AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: None,
            shard_by: ShardBy::Activity,
        };
        anonymize_cmd(&data, &anon, &opts).unwrap();

        let raw = attack_cmd(&data, &data, 3, 50).unwrap();
        assert!(raw.contains("pinpoint rate"));
        let protected = attack_cmd(&data, &anon, 3, 50).unwrap();
        assert!(
            protected.contains("pinpoint rate: 0.0%"),
            "anonymized data must not be pinpointable:\n{protected}"
        );

        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }

    #[test]
    fn audit_rejects_bad_k() {
        let data = temp("audit-k");
        synth("civ", 10, Some(1), Some(&data), None).unwrap();
        assert!(audit(&data, 1, 1).is_err());
        assert!(audit(&data, 999, 1).is_err());
        let _ = std::fs::remove_file(&data);
    }

    #[test]
    fn audit_of_anonymized_output_is_all_zero() {
        // The multiplicity-aware audit round-trip: GLOVE output must report
        // 100% already-k-anonymous (the PR 2 semantics documented in
        // DESIGN.md).
        let data = temp("audit-rt-data");
        let anon = temp("audit-rt-anon");
        synth("civ", 12, Some(23), Some(&data), None).unwrap();
        let opts = AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: None,
            shard_by: ShardBy::Activity,
        };
        anonymize_cmd(&data, &anon, &opts).unwrap();
        let msg = audit(&anon, 2, 1).unwrap();
        assert!(
            msg.contains("already k-anonymous: 100.0%"),
            "audit message: {msg}"
        );
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }
}
