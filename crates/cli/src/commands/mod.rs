//! The CLI subcommand implementations, separated from argument parsing so
//! they can be unit-tested directly. One module per verb family:
//!
//! * [`mod@synth`] — dataset / event-stream synthesis;
//! * [`anonymize`] — the single-release engines (`anonymize`, `generalize`,
//!   `w4m`), all driven through [`glove_core::api::RunBuilder`];
//! * [`stream`] — the windowed online engine, driven through the same
//!   builder with an epoch-writing [`glove_core::api::Observer`];
//! * [`eval`] — inspection and adversarial evaluation (`info`, `audit`,
//!   `attack`).

pub mod anonymize;
pub mod eval;
pub mod serve;
pub mod stream;
pub mod synth;

pub use anonymize::{anonymize_cmd, generalize_cmd, w4m_cmd, AnonymizeOpts};
pub use eval::{attack_cmd, audit, info, AttackOpts};
pub use serve::{send_cmd, serve_cmd, shutdown_cmd, SendOpts, ServeOpts};
pub use stream::{stream_cmd, StreamOpts};
pub use synth::synth;

use crate::io;
use glove_core::Dataset;
use glove_synth::ScenarioConfig;

/// Resolves a preset name to its scenario configuration. Accepts every
/// name in [`glove_synth::PRESETS`], with or without the `-like` suffix.
pub(crate) fn preset_config(
    preset: &str,
    users: usize,
    seed: Option<u64>,
) -> Result<ScenarioConfig, String> {
    let mut cfg = ScenarioConfig::preset(preset, users).ok_or_else(|| {
        format!(
            "unknown preset '{preset}' (use {})",
            glove_synth::PRESETS.join(" | ")
        )
    })?;
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    Ok(cfg)
}

/// Convenience used by tests: writes `dataset` to a temp file and returns
/// its path.
pub fn write_temp(dataset: &Dataset, stem: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("glove-cli-{stem}-{}.txt", std::process::id()));
    io::write_file(dataset, &path).expect("temp file writable");
    path
}

#[cfg(test)]
pub(crate) mod test_util {
    /// A per-process temp file path for command tests.
    pub fn temp(stem: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("glove-cmd-{stem}-{}.txt", std::process::id()))
    }

    /// A per-process temp directory path for command tests.
    pub fn temp_dir(stem: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("glove-cmd-{stem}-{}", std::process::id()))
    }
}
