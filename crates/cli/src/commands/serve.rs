//! `glove serve` — the long-running multi-tenant ingest daemon, and
//! `glove send` — its file-feeding client.
//!
//! The daemon is [`glove_serve::Server`] with the CLI's dataset writer
//! injected as the epoch persistence hook, so every tenant's
//! `epoch-NNNN.txt` files under `--out-dir` use exactly the `glove
//! stream` file format — `glove attack --epochs-dir` and `glove info`
//! consume them unchanged.

use crate::commands::StreamOpts;
use crate::{io, net};
use glove_serve::{ServeOptions, Server};
use std::error::Error;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Options of `glove serve`.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Listen address, e.g. `127.0.0.1:7400` (port 0 picks one).
    pub listen: String,
    /// Root output directory (`<out-dir>/<tenant>/epoch-NNNN.txt`);
    /// `None` disables persistence.
    pub out_dir: Option<PathBuf>,
    /// Bounded per-tenant queue capacity, events.
    pub queue: usize,
    /// Backoff suggested to clients in `BUSY` replies, milliseconds.
    pub retry_ms: u32,
    /// File to write the bound address to once listening (for scripts
    /// using an ephemeral port).
    pub port_file: Option<PathBuf>,
    /// Initial policy plane handed to every tenant session (from
    /// `--policy FILE`); tenants retune via `RECONFIG`. `None` = uniform.
    pub policy: Option<glove_core::policy::PolicyPlane>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            out_dir: None,
            queue: 4096,
            retry_ms: 25,
            port_file: None,
            policy: None,
        }
    }
}

/// `glove serve`: binds, announces the address, and blocks until a client
/// sends `SHUTDOWN`. Returns a lifetime summary.
pub fn serve_cmd(opts: &ServeOpts) -> Result<String, Box<dyn Error>> {
    let server = Server::bind(
        opts.listen.as_str(),
        ServeOptions {
            out_dir: opts.out_dir.clone(),
            queue_events: opts.queue.max(1),
            retry_ms: opts.retry_ms.max(1),
            epoch_writer: Some(Arc::new(|ds: &glove_core::Dataset, path: &Path| {
                io::write_file(ds, path)
            })),
            policy: opts
                .policy
                .clone()
                .unwrap_or_else(glove_core::policy::PolicyPlane::uniform),
        },
    )?;
    let addr = server.local_addr();
    // Announce on stderr (stdout carries the final summary) and via the
    // port file, which scripts poll to learn an ephemeral port.
    eprintln!("glove serve: listening on {addr}");
    if let Some(port_file) = &opts.port_file {
        let mut f = std::fs::File::create(port_file)?;
        writeln!(f, "{addr}")?;
        f.sync_all()?;
    }

    let summary = server.run();
    let mut msg = format!(
        "served {} tenant session(s), {} failure(s)",
        summary.reports.len(),
        summary.failures.len(),
    );
    for report in &summary.reports {
        if let Some(stats) = report.detail.as_stream() {
            msg.push_str(&format!(
                "\n  {}: {} events in {} epochs, {} shed, {} merges",
                report.dataset, stats.events, stats.epochs, stats.shed_events, stats.merges,
            ));
        }
    }
    for (tenant, cause) in &summary.failures {
        msg.push_str(&format!("\n  {tenant}: FAILED — {cause}"));
    }
    Ok(msg)
}

/// Options of `glove send`.
#[derive(Debug, Clone)]
pub struct SendOpts {
    /// Daemon address, e.g. `127.0.0.1:7400`.
    pub addr: String,
    /// Tenant name (`[A-Za-z0-9_-]+`, unique per daemon lifetime).
    pub tenant: String,
    /// Per-tenant engine configuration, inlined in `HELLO`.
    pub stream: StreamOpts,
    /// Events per `EVENTS` frame.
    pub batch: usize,
    /// Load-shedding mode: on a full queue the daemon drops the overflow
    /// (booked in the shed ledger) instead of replying `BUSY`.
    pub shed: bool,
}

/// `glove send`: streams an event or dataset file into a running daemon
/// and prints the tenant's final report.
pub fn send_cmd(input: &Path, opts: &SendOpts) -> Result<String, Box<dyn Error>> {
    let summary = net::send_file(
        opts.addr.as_str(),
        &opts.tenant,
        input,
        opts.stream.to_stream_config(),
        opts.shed,
        opts.batch,
    )?;
    let stats = summary
        .report
        .detail
        .as_stream()
        .ok_or("daemon returned a non-stream report")?;
    let mut msg = format!(
        "tenant {}: {} events accepted, {} shed, {} epochs, {} merges \
         ({} BUSY retries, {} epoch notices)",
        opts.tenant,
        summary.accepted,
        summary.shed,
        stats.epochs,
        stats.merges,
        summary.busy_retries,
        summary.epochs.len(),
    );
    if stats.suppressed_users > 0 || stats.deferred_users > 0 {
        msg.push_str(&format!(
            "\nunder-k ledger: {} user-slices suppressed ({} samples), {} deferred ({} samples)",
            stats.suppressed_users,
            stats.suppressed_samples,
            stats.deferred_users,
            stats.deferred_samples,
        ));
    }
    Ok(msg)
}

/// `glove send --shutdown`: asks the daemon to shut down gracefully.
pub fn shutdown_cmd(addr: &str) -> Result<String, Box<dyn Error>> {
    net::shutdown(addr)?;
    Ok(format!("daemon at {addr} is shutting down"))
}

#[cfg(test)]
mod tests {
    use super::super::test_util::temp_dir;
    use super::super::{attack_cmd, synth, AttackOpts};
    use super::*;
    use crate::commands::write_temp;

    fn spawn_daemon(out_dir: &Path) -> (std::net::SocketAddr, std::thread::JoinHandle<String>) {
        let opts = ServeOpts {
            listen: "127.0.0.1:0".to_string(),
            out_dir: Some(out_dir.to_path_buf()),
            queue: 512,
            retry_ms: 1,
            port_file: None,
            policy: None,
        };
        // serve_cmd blocks; bind here to learn the port, then run inline.
        let server = Server::bind(
            opts.listen.as_str(),
            ServeOptions {
                out_dir: opts.out_dir.clone(),
                queue_events: opts.queue,
                retry_ms: opts.retry_ms,
                epoch_writer: Some(Arc::new(|ds: &glove_core::Dataset, path: &Path| {
                    io::write_file(ds, path)
                })),
                policy: glove_core::policy::PolicyPlane::uniform(),
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let join = std::thread::spawn(move || {
            let summary = server.run();
            format!("{} sessions", summary.reports.len())
        });
        (addr, join)
    }

    #[test]
    fn served_epochs_feed_the_cross_epoch_attack() {
        // The interop round trip pinned by ISSUE 8: serve → epochs-dir →
        // `glove attack --epochs-dir`, exercising the directory layout and
        // the epoch file format end to end.
        let out_dir = temp_dir("serve-attack-epochs");
        let _ = std::fs::remove_dir_all(&out_dir);
        let (addr, join) = spawn_daemon(&out_dir);

        let ds = crate::commands::preset_config("civ", 14, Some(23))
            .map(|cfg| glove_synth::generate(&cfg).dataset)
            .unwrap();
        let original = write_temp(&ds, "serve-attack-orig");

        let send = SendOpts {
            addr: addr.to_string(),
            tenant: "epochs".to_string(),
            stream: StreamOpts {
                k: 2,
                window_min: 2_880,
                threads: 1,
                ..StreamOpts::default()
            },
            batch: 64,
            shed: false,
        };
        let msg = send_cmd(&original, &send).unwrap();
        assert!(msg.contains("events accepted"), "message: {msg}");

        // The daemon's per-tenant directory is a valid --epochs-dir input.
        let epochs_dir = out_dir.join("epochs");
        let attack_opts = AttackOpts {
            trials: 16,
            threads: 1,
            ..AttackOpts::default()
        };
        let report = attack_cmd(&original, None, Some(&epochs_dir), None, &attack_opts).unwrap();
        assert!(
            report.contains("cross-epoch"),
            "cross-epoch adversary must run on served epochs: {report}"
        );

        shutdown_cmd(&addr.to_string()).unwrap();
        join.join().unwrap();
        let _ = std::fs::remove_file(&original);
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn serve_and_send_round_trip_through_the_command_api() {
        let out_dir = temp_dir("serve-cmd-epochs");
        let _ = std::fs::remove_dir_all(&out_dir);
        let (addr, join) = spawn_daemon(&out_dir);

        let events =
            std::env::temp_dir().join(format!("glove-serve-cmd-events-{}.txt", std::process::id()));
        synth("civ", 10, Some(31), None, Some(&events)).unwrap();

        let send = SendOpts {
            addr: addr.to_string(),
            tenant: "cmd_round_trip".to_string(),
            stream: StreamOpts {
                k: 2,
                window_min: 4_320,
                threads: 1,
                ..StreamOpts::default()
            },
            batch: 32,
            shed: false,
        };
        let msg = send_cmd(&events, &send).unwrap();
        assert!(msg.contains("tenant cmd_round_trip"), "message: {msg}");

        // Epoch files parse with the CLI reader and honor k.
        let dir = out_dir.join("cmd_round_trip");
        let mut n = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            if name.starts_with("epoch-") && name.ends_with(".txt") {
                let epoch = io::read_file(&path).unwrap();
                assert!(epoch.is_k_anonymous(2), "{name} not 2-anonymous");
                n += 1;
            }
        }
        assert!(n > 0, "no epoch files written");
        // The flushed-per-record report survives next to the epochs.
        assert!(dir.join("report.jsonl").is_file());

        shutdown_cmd(&addr.to_string()).unwrap();
        join.join().unwrap();
        let _ = std::fs::remove_file(&events);
        let _ = std::fs::remove_dir_all(&out_dir);
    }
}
