//! `glove stream` — windowed online GLOVE over an event stream, driven
//! through the unified [`RunBuilder`] with an epoch-writing
//! [`Observer`]: each closed window's dataset is written (and dropped) the
//! moment the engine emits it, so the command's memory footprint follows
//! the window population exactly as a hand-driven
//! [`glove_core::stream::StreamEngine`] loop would.

use crate::io;
use glove_core::api::{Observer, RunBuilder};
use glove_core::policy::PolicyPlane;
use glove_core::stream::{events_of, EpochOutput, StreamEvent};
use glove_core::{
    CarryPolicy, GloveConfig, GloveError, ShardBy, ShardPolicy, StreamConfig,
    SuppressionThresholds, UnderKPolicy,
};
use std::cell::RefCell;
use std::error::Error;
use std::path::Path;
use std::rc::Rc;

/// Options of `glove stream`.
#[derive(Debug, Clone)]
pub struct StreamOpts {
    /// Anonymity level per epoch.
    pub k: usize,
    /// Window (epoch) length, minutes.
    pub window_min: u32,
    /// Cross-epoch continuity policy.
    pub carry: CarryPolicy,
    /// Policy for windows below `k` subscribers.
    pub under_k: UnderKPolicy,
    /// Optional spatial suppression threshold, meters.
    pub suppress_space_m: Option<u32>,
    /// Optional temporal suppression threshold, minutes.
    pub suppress_time_min: Option<u32>,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Optional per-epoch shard count.
    pub shards: Option<usize>,
    /// Shard assignment key (only meaningful with `shards`).
    pub shard_by: ShardBy,
    /// Optional policy plane (from `--policy FILE`): per-cohort/per-epoch
    /// overrides of the base configuration above. `None` = uniform.
    pub policy: Option<PolicyPlane>,
}

impl Default for StreamOpts {
    fn default() -> Self {
        Self {
            k: 2,
            window_min: 1_440,
            carry: CarryPolicy::Fresh,
            under_k: UnderKPolicy::Suppress,
            suppress_space_m: None,
            suppress_time_min: None,
            threads: 0,
            shards: None,
            shard_by: ShardBy::Activity,
            policy: None,
        }
    }
}

impl StreamOpts {
    /// The engine configuration these options describe (shared by
    /// `glove stream` and `glove send`, which inlines it in `HELLO`).
    pub fn to_stream_config(&self) -> StreamConfig {
        let glove = GloveConfig {
            k: self.k,
            suppression: SuppressionThresholds {
                max_space_m: self.suppress_space_m,
                max_time_min: self.suppress_time_min,
            },
            threads: self.threads,
            shard: self.shards.map(|shards| ShardPolicy {
                shards,
                by: self.shard_by,
            }),
            ..GloveConfig::default()
        };
        StreamConfig {
            window_min: self.window_min,
            carry: self.carry,
            under_k: self.under_k,
            glove,
        }
    }
}

/// Writes each emitted epoch to `out_dir/epoch-NNNN.txt` as it closes.
/// Observer callbacks are infallible, so the first I/O error is buffered
/// in the shared cell; the event feed watches that cell and aborts the run
/// at the next event, so a failed write (full disk, revoked permissions)
/// does not burn the rest of a long stream producing nothing.
struct EpochWriter<'a> {
    out_dir: &'a Path,
    error: Rc<RefCell<Option<std::io::Error>>>,
}

impl Observer for EpochWriter<'_> {
    fn on_epoch(&mut self, epoch: &EpochOutput) {
        if self.error.borrow().is_some() {
            return;
        }
        let path = self.out_dir.join(format!("epoch-{:04}.txt", epoch.epoch));
        if let Err(e) = io::write_file(&epoch.output.dataset, &path) {
            *self.error.borrow_mut() = Some(e);
        }
    }
}

/// `glove stream`: windowed online GLOVE over an event stream.
///
/// `input` may be an event file (`E` records, streamed through
/// [`io::EventReader`] with bounded memory) or a dataset file (replayed as
/// its time-ordered event view — a convenience that loads the dataset
/// first). Each closed window's anonymized epoch is written to
/// `out_dir/epoch-NNNN.txt` as soon as it is emitted and dropped from
/// memory. `out_dir` is treated as owned by this command: `epoch-*.txt`
/// files left by a previous run are removed (after the input has been
/// opened successfully), and the removal is reported in the output.
pub fn stream_cmd(
    input: &Path,
    out_dir: &Path,
    opts: &StreamOpts,
) -> Result<String, Box<dyn Error>> {
    let stream = opts.to_stream_config();
    let glove = stream.glove; // authoritative copy travels through the builder below
                              // Open (or load) the input before touching the output directory, so a
                              // typo'd path or unparseable file cannot destroy a previous run.
    enum Source {
        Events(io::EventReader<std::io::BufReader<std::fs::File>>),
        Dataset(glove_core::Dataset),
    }
    let source = if io::is_events_file(input)? {
        Source::Events(io::EventReader::open(input)?)
    } else {
        Source::Dataset(io::read_file(input)?)
    };

    std::fs::create_dir_all(out_dir)?;
    // A rerun into the same directory may emit fewer epochs (longer
    // windows); stale epoch files from a previous run would silently
    // interleave with the new output, so clear them first — and say so.
    let mut cleared = 0usize;
    for entry in std::fs::read_dir(out_dir)? {
        let path = entry?.path();
        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
            if name.starts_with("epoch-") && name.ends_with(".txt") {
                std::fs::remove_file(&path)?;
                cleared += 1;
            }
        }
    }

    let write_error = Rc::new(RefCell::new(None));
    let mut writer = EpochWriter {
        out_dir,
        error: Rc::clone(&write_error),
    };
    // Every event passes this gate: once an epoch write has failed, the
    // feed yields an error instead, which stops the engine immediately.
    let gate = |event: Result<StreamEvent, GloveError>| -> Result<StreamEvent, GloveError> {
        if write_error.borrow().is_some() {
            return Err(GloveError::InvalidDataset(
                "aborting stream: an epoch file could not be written".into(),
            ));
        }
        event
    };
    let mut builder = RunBuilder::new(glove).stream(stream).keep_epochs(false);
    if let Some(plane) = &opts.policy {
        builder = builder.policy(plane.clone());
    }
    let run = match source {
        Source::Events(reader) => {
            let name = reader.name().to_string();
            let mut events =
                reader.map(|r| gate(r.map_err(|e| GloveError::InvalidDataset(e.to_string()))));
            builder.run_events(&name, &mut events, &mut writer)
        }
        Source::Dataset(ds) => {
            let mut events = events_of(&ds).into_iter().map(|e| gate(Ok(e)));
            builder.run_events(&ds.name, &mut events, &mut writer)
        }
    };
    // The buffered I/O error outranks the abort sentinel it triggered (and
    // covers a failed write of the final, flush-emitted epoch too).
    if let Some(e) = write_error.borrow_mut().take() {
        return Err(e.into());
    }
    let outcome = run?;

    let stats = outcome.report.detail.as_stream().expect("stream detail");
    let mut msg = format!(
        "streamed {} events into {} epochs under {} (k = {}, window {} min, {} carry, \
         under-k {})\n\
         peak resident: {} fingerprints, {} samples\n\
         merges: {}, pairs: {} computed + {} pruned, anonymization {:.1} s",
        stats.events,
        stats.epochs,
        out_dir.display(),
        opts.k,
        opts.window_min,
        match opts.carry {
            CarryPolicy::Fresh => "fresh",
            CarryPolicy::Sticky => "sticky",
        },
        match opts.under_k {
            UnderKPolicy::Suppress => "suppress",
            UnderKPolicy::Defer => "defer",
        },
        stats.peak_resident_fingerprints,
        stats.peak_resident_samples,
        stats.merges,
        stats.pairs_computed,
        stats.pairs_pruned,
        stats.elapsed_s,
    );
    if cleared > 0 {
        msg.push_str(&format!(
            "\nreplaced {cleared} epoch file(s) left by a previous run"
        ));
    }
    if stats.suppressed_users > 0 || stats.deferred_users > 0 {
        msg.push_str(&format!(
            "\nunder-k ledger: {} user-slices suppressed ({} samples), \
             {} deferred ({} samples)",
            stats.suppressed_users,
            stats.suppressed_samples,
            stats.deferred_users,
            stats.deferred_samples,
        ));
    }
    if stats.seeded_groups > 0 {
        msg.push_str(&format!(
            "\ncarry-over: {} sticky groups seeded across epochs",
            stats.seeded_groups
        ));
    }
    for e in &stats.per_epoch {
        msg.push_str(&format!(
            "\n  epoch {:>3} @ {:>6} min: {} users in {} fps ({} seeded) -> {} groups, \
             {} merges, {} pairs, {:.2} s",
            e.epoch,
            e.window_start_min,
            e.users_in,
            e.fingerprints_in,
            e.seeded_groups,
            e.groups_out,
            e.merges,
            e.pairs_computed,
            e.elapsed_s,
        ));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{temp, temp_dir};
    use super::super::{anonymize_cmd, synth, AnonymizeOpts};
    use super::*;
    use glove_core::ResidualPolicy;

    #[test]
    fn stream_command_emits_k_anonymous_epochs() {
        let data = temp("stream-data");
        let out_dir = temp_dir("stream-epochs");
        synth("civ", 16, Some(9), Some(&data), None).unwrap();
        let opts = StreamOpts {
            k: 2,
            window_min: 2_880,
            threads: 1,
            ..StreamOpts::default()
        };
        let msg = stream_cmd(&data, &out_dir, &opts).unwrap();
        assert!(msg.contains("epochs under"), "message: {msg}");
        assert!(msg.contains("peak resident:"), "message: {msg}");
        assert!(msg.contains("epoch   0"), "message: {msg}");
        // Every emitted epoch file parses and is 2-anonymous.
        let mut epoch_files: Vec<_> = std::fs::read_dir(&out_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        epoch_files.sort();
        assert!(
            epoch_files.len() >= 4,
            "14-day civ span with 2-day windows must emit several epochs, got {}",
            epoch_files.len()
        );
        for f in &epoch_files {
            let epoch = io::read_file(f).unwrap();
            assert!(epoch.is_k_anonymous(2), "{} not 2-anonymous", f.display());
        }
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn stream_command_consumes_event_files_and_sticky_carries() {
        let events = temp("stream-ev-in");
        let out_dir = temp_dir("stream-ev-epochs");
        synth("civ", 12, Some(13), None, Some(&events)).unwrap();
        let opts = StreamOpts {
            k: 2,
            window_min: 4_320,
            carry: CarryPolicy::Sticky,
            under_k: UnderKPolicy::Defer,
            threads: 1,
            ..StreamOpts::default()
        };
        let msg = stream_cmd(&events, &out_dir, &opts).unwrap();
        assert!(msg.contains("sticky carry"), "message: {msg}");
        assert!(msg.contains("under-k defer"), "message: {msg}");
        assert!(
            msg.contains("sticky groups seeded"),
            "stable civ users must re-seed groups: {msg}"
        );
        let _ = std::fs::remove_file(&events);
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn stream_rerun_clears_stale_epoch_files() {
        // A rerun with longer windows emits fewer epochs; the previous
        // run's surplus epoch files must not survive in the directory.
        let data = temp("stream-rerun-data");
        let out_dir = temp_dir("stream-rerun-epochs");
        synth("civ", 12, Some(19), Some(&data), None).unwrap();

        let short = StreamOpts {
            k: 2,
            window_min: 2_880,
            threads: 1,
            ..StreamOpts::default()
        };
        stream_cmd(&data, &out_dir, &short).unwrap();
        let count_epochs = || {
            std::fs::read_dir(&out_dir)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .starts_with("epoch-")
                })
                .count()
        };
        let many = count_epochs();
        assert!(many >= 4, "short windows must emit several epochs");

        let long = StreamOpts {
            k: 2,
            window_min: 1_000_000,
            threads: 1,
            ..StreamOpts::default()
        };
        stream_cmd(&data, &out_dir, &long).unwrap();
        assert_eq!(
            count_epochs(),
            1,
            "stale epochs from the previous run must be cleared"
        );
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn stream_policy_plane_deepens_k_from_epoch_one() {
        // The CLI-level policy path: a JSON plane raising k to 3 from
        // epoch 1 on must leave epoch 0 at k = 2 and deepen the rest.
        let data = temp("stream-policy-data");
        let out_dir = temp_dir("stream-policy-epochs");
        synth("civ", 16, Some(9), Some(&data), None).unwrap();
        let plane =
            PolicyPlane::from_json(r#"{"cohorts": [], "rules": [{"from_epoch": 1, "k": 3}]}"#)
                .unwrap();
        let opts = StreamOpts {
            k: 2,
            window_min: 2_880,
            threads: 1,
            policy: Some(plane),
            ..StreamOpts::default()
        };
        stream_cmd(&data, &out_dir, &opts).unwrap();
        let mut epoch_files: Vec<_> = std::fs::read_dir(&out_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        epoch_files.sort();
        assert!(epoch_files.len() >= 2, "need at least two epochs");
        for (i, f) in epoch_files.iter().enumerate() {
            let epoch = io::read_file(f).unwrap();
            let want = if i == 0 { 2 } else { 3 };
            assert!(
                epoch.is_k_anonymous(want),
                "{} not {}-anonymous",
                f.display(),
                want
            );
        }
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn stream_single_window_is_byte_identical_to_anonymize() {
        // The equivalence anchor, end to end through the CLI: one window
        // covering the whole span + fresh carry == the batch command.
        let data = temp("stream-eq-data");
        let anon = temp("stream-eq-anon");
        let out_dir = temp_dir("stream-eq-epochs");
        synth("civ", 12, Some(17), Some(&data), None).unwrap();

        let aopts = AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: None,
            shard_by: ShardBy::Activity,
        };
        anonymize_cmd(&data, &anon, &aopts).unwrap();

        let sopts = StreamOpts {
            k: 2,
            window_min: 1_000_000, // one window over the whole horizon
            threads: 1,
            ..StreamOpts::default()
        };
        stream_cmd(&data, &out_dir, &sopts).unwrap();

        let batch_bytes = std::fs::read(&anon).unwrap();
        let epoch_bytes = std::fs::read(out_dir.join("epoch-0000.txt")).unwrap();
        assert_eq!(
            batch_bytes, epoch_bytes,
            "single-window fresh stream must be byte-identical to the batch run"
        );
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
        let _ = std::fs::remove_dir_all(&out_dir);
    }
}
