//! `glove synth` — synthetic dataset and event-stream generation.

use super::preset_config;
use crate::io;
use glove_core::stream::events_of;
use glove_synth::{generate, ScenarioEvents};
use std::error::Error;
use std::path::Path;

/// `glove synth`: generate a synthetic dataset file (`out`), an event
/// stream file (`events_out`), or both. The events-only path streams
/// straight from the scenario's event iterator and never materializes a
/// dataset.
pub fn synth(
    preset: &str,
    users: usize,
    seed: Option<u64>,
    out: Option<&Path>,
    events_out: Option<&Path>,
) -> Result<String, Box<dyn Error>> {
    let cfg = preset_config(preset, users, seed)?;
    match (out, events_out) {
        (None, None) => Err("synth needs --out and/or --events-out".into()),
        (None, Some(ev_path)) => {
            // Bounded-memory path: lazy event iterator straight to disk.
            let mut stream = ScenarioEvents::new(&cfg);
            let total = stream.remaining();
            io::write_events_file(&cfg.name, stream.by_ref(), ev_path)?;
            Ok(format!(
                "wrote {}: {} events from {} users, {} towers ({} candidates screened out)",
                ev_path.display(),
                total,
                users,
                stream.towers().len(),
                stream.screened_out(),
            ))
        }
        (Some(out), events_out) => {
            let synth = generate(&cfg);
            io::write_file(&synth.dataset, out)?;
            let mut msg = format!(
                "wrote {}: {} users, {} samples, span {} days, {} towers \
                 ({} candidates screened out)",
                out.display(),
                synth.dataset.num_users(),
                synth.dataset.num_samples(),
                synth.dataset.span_min().div_ceil(1_440),
                synth.towers.len(),
                synth.screened_out,
            );
            if let Some(ev_path) = events_out {
                let events = events_of(&synth.dataset);
                io::write_events_file(&synth.dataset.name, events.iter().copied(), ev_path)?;
                msg.push_str(&format!(
                    "\nwrote {}: {} events (time-ordered view of the same dataset)",
                    ev_path.display(),
                    events.len(),
                ));
            }
            Ok(msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::temp;
    use super::*;

    #[test]
    fn synth_rejects_unknown_preset() {
        let out = temp("bad-preset");
        assert!(synth("mars", 10, None, Some(&out), None).is_err());
    }

    #[test]
    fn synth_events_only_writes_a_streamable_file() {
        let events = temp("synth-events");
        let msg = synth("civ", 10, Some(4), None, Some(&events)).unwrap();
        assert!(msg.contains("events from 10 users"), "message: {msg}");
        assert!(io::is_events_file(&events).unwrap());
        let reader = io::EventReader::open(&events).unwrap();
        assert_eq!(reader.name(), "civ-like");
        let parsed: Result<Vec<_>, _> = reader.collect();
        let parsed = parsed.unwrap();
        assert!(!parsed.is_empty());
        assert!(parsed.windows(2).all(|w| w[0].sample.t <= w[1].sample.t));
        let _ = std::fs::remove_file(&events);
    }

    #[test]
    fn synth_events_view_matches_dataset_view() {
        // --out + --events-out must describe the same data.
        let data = temp("synth-both-ds");
        let events = temp("synth-both-ev");
        synth("civ", 8, Some(4), Some(&data), Some(&events)).unwrap();
        let ds = io::read_file(&data).unwrap();
        let (name, parsed) = {
            let reader = io::EventReader::open(&events).unwrap();
            let name = reader.name().to_string();
            let ev: Result<Vec<_>, _> = reader.collect();
            (name, ev.unwrap())
        };
        assert_eq!(name, ds.name);
        assert_eq!(parsed, events_of(&ds));
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&events);
    }
}
