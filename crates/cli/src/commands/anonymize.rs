//! The single-release anonymization verbs — `glove anonymize` (GLOVE,
//! monolithic or sharded), `glove generalize` (uniform baseline) and
//! `glove w4m` (W4M-LC baseline) — all collapsed onto one
//! [`RunBuilder`] path: the CLI assembles a configuration, the builder
//! selects the engine, and the printed summary is read off the unified
//! [`glove_core::api::RunReport`].

use crate::io;
use glove_baselines::{GeneralizationLevel, UniformAnonymizer, W4mAnonymizer, W4mConfig};
use glove_core::accuracy::{mean_position_accuracy_m, mean_time_accuracy_min};
use glove_core::api::json::JsonValue;
use glove_core::api::RunBuilder;
use glove_core::{GloveConfig, ResidualPolicy, ShardBy, ShardPolicy, SuppressionThresholds};
use std::error::Error;
use std::path::Path;

/// Options of `glove anonymize`.
#[derive(Debug, Clone)]
pub struct AnonymizeOpts {
    /// Anonymity level.
    pub k: usize,
    /// Optional spatial suppression threshold, meters.
    pub suppress_space_m: Option<u32>,
    /// Optional temporal suppression threshold, minutes.
    pub suppress_time_min: Option<u32>,
    /// Residual policy (`merge` or `suppress`).
    pub residual: ResidualPolicy,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Optional shard count; `None` runs monolithically.
    pub shards: Option<usize>,
    /// Shard assignment key (only meaningful with `shards`).
    pub shard_by: ShardBy,
}

impl AnonymizeOpts {
    /// The GLOVE configuration these options describe. The builder derives
    /// its mode from the embedded shard policy.
    pub fn to_config(&self) -> GloveConfig {
        GloveConfig {
            k: self.k,
            suppression: SuppressionThresholds {
                max_space_m: self.suppress_space_m,
                max_time_min: self.suppress_time_min,
            },
            residual: self.residual,
            threads: self.threads,
            shard: self.shards.map(|shards| ShardPolicy {
                shards,
                by: self.shard_by,
            }),
            ..GloveConfig::default()
        }
    }
}

/// `glove anonymize`: run GLOVE through the builder and write the
/// anonymized dataset.
pub fn anonymize_cmd(
    input: &Path,
    out: &Path,
    opts: &AnonymizeOpts,
) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    let outcome = RunBuilder::new(opts.to_config()).run(&ds)?;
    let published = outcome.output.dataset().expect("single-release engine");
    io::write_file(published, out)?;

    let r = &outcome.report;
    let stats = outcome.report.detail.as_glove().expect("glove detail");
    let candidates = r.pairs_computed + r.pairs_pruned;
    let pct = |n: u64| {
        if candidates > 0 {
            n as f64 / candidates as f64 * 100.0
        } else {
            0.0
        }
    };
    let mut msg = format!(
        "wrote {}: {} groups covering {} subscribers (k = {})\n\
         merges: {}, elapsed {:.1} s\n\
         pairs: {} computed + {} pruned of {} candidates ({:.1}% skipped by the \
         admissible bound), {:.0} pairs/s\n\
         cascade: {:.1}% tier-0 signature, {:.1}% tier-1 hull, {:.1}% abandoned, \
         {:.1}% exact\n\
         suppressed samples: {} ({} user-samples), reshaped: {}\n\
         discarded fingerprints: {} ({} subscribers)\n\
         memory: {:.1} MiB arena peak, {:.1} MiB store peak ({} pages), \
         {:.1} MiB process peak-RSS\n\
         mean accuracy: {:.0} m position, {:.0} min time",
        out.display(),
        r.fingerprints_out,
        r.users_out,
        r.k,
        r.merges,
        stats.elapsed_s,
        r.pairs_computed,
        r.pairs_pruned,
        candidates,
        r.pruned_fraction() * 100.0,
        stats.pairs_per_second(),
        pct(r.pairs_skipped_tier0),
        pct(r.pairs_skipped_tier1),
        pct(r.pairs_abandoned),
        pct(r.pairs_computed),
        r.suppressed_samples,
        r.suppressed_user_samples,
        stats.reshaped_samples,
        r.discarded_fingerprints,
        r.discarded_users,
        stats.ledger.peak_arena_bytes as f64 / (1 << 20) as f64,
        stats.ledger.peak_store_bytes as f64 / (1 << 20) as f64,
        stats.ledger.resident_pages,
        stats.ledger.peak_rss_bytes as f64 / (1 << 20) as f64,
        mean_position_accuracy_m(published),
        mean_time_accuracy_min(published),
    );
    if !stats.per_shard.is_empty() {
        msg.push_str(&format!(
            "\nshards: {} ({})",
            stats.per_shard.len(),
            match opts.shard_by {
                ShardBy::Activity => "activity",
                ShardBy::Spatial => "spatial",
                ShardBy::TwoLevel => "two-level",
            }
        ));
        for sh in &stats.per_shard {
            msg.push_str(&format!(
                "\n  shard {}: {} fps ({} users) -> {} groups, {} merges, {} pairs \
                 (t0 {} / t1 {} / ab {}), {:.2} s",
                sh.shard,
                sh.fingerprints_in,
                sh.users_in,
                sh.fingerprints_out,
                sh.merges,
                sh.pairs_computed,
                sh.pairs_skipped_tier0,
                sh.pairs_skipped_tier1,
                sh.pairs_abandoned,
                sh.elapsed_s,
            ));
        }
    }
    Ok(msg)
}

/// `glove generalize`: the uniform spatiotemporal generalization baseline,
/// through the same builder path (custom engine mode).
pub fn generalize_cmd(
    input: &Path,
    out: &Path,
    space_m: u32,
    time_min: u32,
) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    let level = GeneralizationLevel { space_m, time_min };
    let outcome = RunBuilder::new(GloveConfig::default())
        .custom(Box::new(UniformAnonymizer::new(level)))
        .run(&ds)?;
    let r = &outcome.report;
    let (samples_in, samples_out) = (r.samples_in, r.samples_out);
    io::write_file(outcome.output.dataset().expect("single-release"), out)?;
    Ok(format!(
        "wrote {}: uniform generalization at {} m / {} min ({} samples -> {})",
        out.display(),
        space_m,
        time_min,
        samples_in,
        samples_out,
    ))
}

/// `glove w4m`: the W4M-LC baseline, through the same builder path.
pub fn w4m_cmd(input: &Path, out: &Path, k: usize, delta_m: f64) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    let outcome = RunBuilder::new(GloveConfig::default())
        .custom(Box::new(W4mAnonymizer::new(W4mConfig {
            k,
            delta_m,
            ..W4mConfig::default()
        })))
        .run(&ds)?;
    let r = &outcome.report;
    let detail = r.detail.as_external().expect("w4m external detail");
    let read = |key: &str| detail.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
    let msg = format!(
        "wrote {}: W4M-LC k = {k}, delta = {delta_m} m\n\
         discarded fingerprints: {}, created samples: {}, deleted samples: {}\n\
         mean position error: {:.0} m, mean time error: {:.0} min",
        out.display(),
        r.discarded_fingerprints,
        r.created_samples,
        r.deleted_samples,
        read("mean_position_error_m"),
        read("mean_time_error_min"),
    );
    io::write_file(outcome.output.dataset().expect("single-release"), out)?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::super::test_util::temp;
    use super::super::{audit, info, synth};
    use super::*;

    fn default_opts() -> AnonymizeOpts {
        AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: None,
            shard_by: ShardBy::Activity,
        }
    }

    #[test]
    fn synth_info_audit_anonymize_pipeline() {
        let data = temp("pipeline-data");
        let anon = temp("pipeline-anon");

        let msg = synth("civ", 20, Some(7), Some(&data), None).unwrap();
        assert!(msg.contains("20 users"));

        let msg = info(&data).unwrap();
        assert!(msg.contains("subscribers:   20"));
        assert!(msg.contains("k-anonymity:   1"));

        let msg = audit(&data, 2, 1).unwrap();
        assert!(msg.contains("already k-anonymous: 0.0%"));

        let msg = anonymize_cmd(&data, &anon, &default_opts()).unwrap();
        assert!(msg.contains("20 subscribers"));

        let anonymized = io::read_file(&anon).unwrap();
        assert!(anonymized.is_k_anonymous(2));
        assert_eq!(anonymized.num_users(), 20);

        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }

    #[test]
    fn sharded_anonymize_reports_per_shard_stats() {
        let data = temp("shard-data");
        let anon = temp("shard-anon");
        synth("civ", 24, Some(11), Some(&data), None).unwrap();
        let opts = AnonymizeOpts {
            shards: Some(4),
            ..default_opts()
        };
        let msg = anonymize_cmd(&data, &anon, &opts).unwrap();
        assert!(msg.contains("shards: 4 (activity)"), "message: {msg}");
        assert!(msg.contains("shard 0:"), "message: {msg}");
        assert!(msg.contains("shard 3:"), "message: {msg}");
        let anonymized = io::read_file(&anon).unwrap();
        assert!(anonymized.is_k_anonymous(2));
        assert_eq!(anonymized.num_users(), 24);
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }

    #[test]
    fn two_level_sharded_anonymize_reports_memory() {
        let data = temp("twolevel-data");
        let anon = temp("twolevel-anon");
        synth("civ", 24, Some(13), Some(&data), None).unwrap();
        let opts = AnonymizeOpts {
            shards: Some(4),
            shard_by: ShardBy::TwoLevel,
            ..default_opts()
        };
        let msg = anonymize_cmd(&data, &anon, &opts).unwrap();
        assert!(msg.contains("(two-level)"), "message: {msg}");
        assert!(msg.contains("MiB arena peak"), "message: {msg}");
        assert!(msg.contains("MiB process peak-RSS"), "message: {msg}");
        let anonymized = io::read_file(&anon).unwrap();
        assert!(anonymized.is_k_anonymous(2));
        assert_eq!(anonymized.num_users(), 24);
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }

    #[test]
    fn generalize_and_w4m_baselines_run() {
        let data = temp("baseline-data");
        let gen = temp("baseline-gen");
        let w4m = temp("baseline-w4m");

        synth("sen", 12, Some(3), Some(&data), None).unwrap();
        let msg = generalize_cmd(&data, &gen, 5_000, 120).unwrap();
        assert!(msg.contains("5000 m / 120 min"));
        let generalized = io::read_file(&gen).unwrap();
        assert!(generalized
            .fingerprints
            .iter()
            .all(|f| f.samples().iter().all(|s| s.dx >= 5_000)));

        let msg = w4m_cmd(&data, &w4m, 2, 2_000.0).unwrap();
        assert!(msg.contains("W4M-LC k = 2"));
        assert!(io::read_file(&w4m).is_ok());

        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&gen);
        let _ = std::fs::remove_file(&w4m);
    }

    #[test]
    fn anonymize_surfaces_pruning_counters() {
        let data = temp("pruned-data");
        let anon = temp("pruned-anon");
        synth("civ", 16, Some(21), Some(&data), None).unwrap();
        let msg = anonymize_cmd(&data, &anon, &default_opts()).unwrap();
        assert!(msg.contains("computed +"), "message: {msg}");
        assert!(msg.contains("pruned of"), "message: {msg}");
        assert!(
            msg.contains("candidates") && msg.contains("% skipped"),
            "message: {msg}"
        );
        assert!(msg.contains("% tier-0 signature"), "message: {msg}");
        assert!(msg.contains("% tier-1 hull"), "message: {msg}");
        assert!(msg.contains("% abandoned"), "message: {msg}");
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }
}
