//! The CLI subcommand implementations, separated from argument parsing so
//! they can be unit-tested directly.

use crate::io;
use glove_baselines::{generalize_uniform, w4m_lc, GeneralizationLevel, W4mConfig};
use glove_core::accuracy::{mean_position_accuracy_m, mean_time_accuracy_min};
use glove_core::glove::anonymize;
use glove_core::kgap::kgap_all;
use glove_core::{
    Dataset, GloveConfig, ResidualPolicy, ShardBy, ShardPolicy, StretchConfig,
    SuppressionThresholds,
};
use glove_stats::{Ecdf, Summary};
use glove_synth::{generate, QualityReport, ScenarioConfig};
use std::error::Error;
use std::path::Path;

/// `glove synth`: generate a synthetic dataset and write it to a file.
pub fn synth(
    preset: &str,
    users: usize,
    seed: Option<u64>,
    out: &Path,
) -> Result<String, Box<dyn Error>> {
    let mut cfg = match preset {
        "civ" | "civ-like" => ScenarioConfig::civ_like(users),
        "sen" | "sen-like" => ScenarioConfig::sen_like(users),
        "metro" | "metro-like" => ScenarioConfig::metro_like(users),
        other => return Err(format!("unknown preset '{other}' (use civ | sen | metro)").into()),
    };
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    let synth = generate(&cfg);
    io::write_file(&synth.dataset, out)?;
    Ok(format!(
        "wrote {}: {} users, {} samples, span {} days, {} towers ({} candidates screened out)",
        out.display(),
        synth.dataset.num_users(),
        synth.dataset.num_samples(),
        synth.dataset.span_min().div_ceil(1_440),
        synth.towers.len(),
        synth.screened_out,
    ))
}

/// `glove info`: dataset summary.
pub fn info(input: &Path) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    let lens: Vec<f64> = ds.fingerprints.iter().map(|f| f.len() as f64).collect();
    let len_summary = Summary::of(&lens).ok_or("empty dataset")?;
    let mut out = String::new();
    out.push_str(&format!("name:          {}\n", ds.name));
    out.push_str(&format!("fingerprints:  {}\n", ds.fingerprints.len()));
    out.push_str(&format!("subscribers:   {}\n", ds.num_users()));
    out.push_str(&format!("samples:       {}\n", ds.num_samples()));
    out.push_str(&format!(
        "span:          {} min ({:.1} days)\n",
        ds.span_min(),
        ds.span_min() as f64 / 1_440.0
    ));
    out.push_str(&format!(
        "samples/fp:    median {:.0}, mean {:.1}, max {:.0}\n",
        len_summary.median, len_summary.mean, len_summary.max
    ));
    let k = (2..=16)
        .take_while(|&k| ds.is_k_anonymous(k))
        .last()
        .unwrap_or(1);
    out.push_str(&format!("k-anonymity:   {k}\n"));
    if let Some(quality) = QualityReport::of(&ds) {
        out.push_str("--- data quality ---\n");
        out.push_str(&quality.render());
        out.push('\n');
    }
    Ok(out)
}

/// `glove audit`: the anonymizability audit of §5 — k-gap distribution.
pub fn audit(input: &Path, k: usize, threads: usize) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    if k < 2 || ds.num_users() < k {
        return Err(format!("k must be in [2, {}] for this dataset", ds.num_users()).into());
    }
    let cfg = StretchConfig::default();
    let gaps = kgap_all(&ds, k, threads, &cfg);
    let ecdf = Ecdf::new(gaps).ok_or("k-gap computation produced no values")?;
    let mut out = String::new();
    out.push_str(&format!("k-gap audit of {} (k = {k})\n", ds.name));
    out.push_str(&format!(
        "already k-anonymous: {:.1}%\n",
        ecdf.fraction_at_or_below(0.0) * 100.0
    ));
    for p in [0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
        out.push_str(&format!(
            "p{:<4} {:.4}\n",
            (p * 100.0) as u32,
            ecdf.quantile(p)
        ));
    }
    out.push_str(&format!(
        "mean  {:.4}\nmax   {:.4}\n",
        ecdf.mean(),
        ecdf.max()
    ));
    out.push_str(
        "\nInterpretation: 0 = already hidden in a crowd of k; 1 = hiding this user\n\
         saturates both the 20 km spatial and 8 h temporal caps (uninformative).\n",
    );
    Ok(out)
}

/// Options of `glove anonymize`.
#[derive(Debug, Clone)]
pub struct AnonymizeOpts {
    /// Anonymity level.
    pub k: usize,
    /// Optional spatial suppression threshold, meters.
    pub suppress_space_m: Option<u32>,
    /// Optional temporal suppression threshold, minutes.
    pub suppress_time_min: Option<u32>,
    /// Residual policy (`merge` or `suppress`).
    pub residual: ResidualPolicy,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Optional shard count; `None` runs monolithically.
    pub shards: Option<usize>,
    /// Shard assignment key (only meaningful with `shards`).
    pub shard_by: ShardBy,
}

/// `glove anonymize`: run GLOVE and write the anonymized dataset.
pub fn anonymize_cmd(
    input: &Path,
    out: &Path,
    opts: &AnonymizeOpts,
) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    let config = GloveConfig {
        k: opts.k,
        suppression: SuppressionThresholds {
            max_space_m: opts.suppress_space_m,
            max_time_min: opts.suppress_time_min,
        },
        residual: opts.residual,
        threads: opts.threads,
        shard: opts.shards.map(|shards| ShardPolicy {
            shards,
            by: opts.shard_by,
        }),
        ..GloveConfig::default()
    };
    let output = anonymize(&ds, &config)?;
    io::write_file(&output.dataset, out)?;
    let s = &output.stats;
    let mut msg = format!(
        "wrote {}: {} groups covering {} subscribers (k = {})\n\
         merges: {}, pairs computed: {} ({:.0} pairs/s, {} pruned), elapsed {:.1} s\n\
         suppressed samples: {} ({} user-samples), reshaped: {}\n\
         discarded fingerprints: {} ({} subscribers)\n\
         mean accuracy: {:.0} m position, {:.0} min time",
        out.display(),
        output.dataset.fingerprints.len(),
        output.dataset.num_users(),
        opts.k,
        s.merges,
        s.pairs_computed,
        s.pairs_per_second(),
        s.pairs_pruned,
        s.elapsed_s,
        s.suppressed.samples,
        s.suppressed.user_samples,
        s.reshaped_samples,
        s.discarded_fingerprints,
        s.discarded_users,
        mean_position_accuracy_m(&output.dataset),
        mean_time_accuracy_min(&output.dataset),
    );
    if !s.per_shard.is_empty() {
        msg.push_str(&format!(
            "\nshards: {} ({})",
            s.per_shard.len(),
            match opts.shard_by {
                ShardBy::Activity => "activity",
                ShardBy::Spatial => "spatial",
            }
        ));
        for sh in &s.per_shard {
            msg.push_str(&format!(
                "\n  shard {}: {} fps ({} users) -> {} groups, {} merges, {} pairs, {:.2} s",
                sh.shard,
                sh.fingerprints_in,
                sh.users_in,
                sh.fingerprints_out,
                sh.merges,
                sh.pairs_computed,
                sh.elapsed_s,
            ));
        }
    }
    Ok(msg)
}

/// `glove generalize`: uniform spatiotemporal generalization baseline.
pub fn generalize_cmd(
    input: &Path,
    out: &Path,
    space_m: u32,
    time_min: u32,
) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    let level = GeneralizationLevel { space_m, time_min };
    let generalized = generalize_uniform(&ds, &level);
    io::write_file(&generalized, out)?;
    Ok(format!(
        "wrote {}: uniform generalization at {} m / {} min ({} samples -> {})",
        out.display(),
        space_m,
        time_min,
        ds.num_samples(),
        generalized.num_samples(),
    ))
}

/// `glove w4m`: the W4M-LC baseline.
pub fn w4m_cmd(input: &Path, out: &Path, k: usize, delta_m: f64) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    let output = w4m_lc(
        &ds,
        &W4mConfig {
            k,
            delta_m,
            ..W4mConfig::default()
        },
    );
    io::write_file(&output.dataset, out)?;
    let s = &output.stats;
    Ok(format!(
        "wrote {}: W4M-LC k = {k}, delta = {delta_m} m\n\
         discarded fingerprints: {}, created samples: {}, deleted samples: {}\n\
         mean position error: {:.0} m, mean time error: {:.0} min",
        out.display(),
        s.discarded_fingerprints,
        s.created_samples,
        s.deleted_samples,
        s.mean_position_error_m,
        s.mean_time_error_min,
    ))
}

/// `glove attack`: record-linkage adversaries against a published dataset.
///
/// `original` holds the ground truth the adversary observed (raw
/// fingerprints); `published` is what was released (possibly anonymized).
/// Pass the same file twice to measure raw-data uniqueness.
pub fn attack_cmd(
    original: &Path,
    published: &Path,
    points: usize,
    trials: usize,
) -> Result<String, Box<dyn Error>> {
    let orig = io::read_file(original)?;
    let publ = io::read_file(published)?;
    let mut out = String::new();
    out.push_str(&format!(
        "record-linkage attacks: knowledge from {}, linking against {}\n\n",
        orig.name, publ.name
    ));
    out.push_str("top-location adversary (unique signatures in the published data):\n");
    for l in [1usize, 2, 3] {
        out.push_str(&format!(
            "  top-{l}: {:.1}%\n",
            glove_attack::top_location_uniqueness(&publ, l) * 100.0
        ));
    }
    let cfg = glove_attack::RandomPointAttack {
        points,
        trials,
        seed: 0xC11,
    };
    let outcome = glove_attack::random_point_attack(&orig, &publ, &cfg);
    if outcome.anonymity_sets.is_empty() {
        out.push_str("\nrandom-point adversary: no target has enough samples\n");
    } else {
        out.push_str(&format!(
            "\nrandom-point adversary ({points} points, {trials} trials):\n  \
             pinpoint rate: {:.1}%\n  min anonymity set: {}\n  mean anonymity set: {:.1}\n",
            outcome.pinpoint_rate() * 100.0,
            outcome.min_anonymity(),
            outcome.mean_anonymity(),
        ));
    }
    Ok(out)
}

/// Convenience used by tests: writes `dataset` to a temp file and returns
/// its path.
pub fn write_temp(dataset: &Dataset, stem: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("glove-cli-{stem}-{}.txt", std::process::id()));
    io::write_file(dataset, &path).expect("temp file writable");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(stem: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("glove-cmd-{stem}-{}.txt", std::process::id()))
    }

    #[test]
    fn synth_info_audit_anonymize_pipeline() {
        let data = temp("pipeline-data");
        let anon = temp("pipeline-anon");

        let msg = synth("civ", 20, Some(7), &data).unwrap();
        assert!(msg.contains("20 users"));

        let msg = info(&data).unwrap();
        assert!(msg.contains("subscribers:   20"));
        assert!(msg.contains("k-anonymity:   1"));

        let msg = audit(&data, 2, 1).unwrap();
        assert!(msg.contains("already k-anonymous: 0.0%"));

        let opts = AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: None,
            shard_by: ShardBy::Activity,
        };
        let msg = anonymize_cmd(&data, &anon, &opts).unwrap();
        assert!(msg.contains("20 subscribers"));

        let anonymized = io::read_file(&anon).unwrap();
        assert!(anonymized.is_k_anonymous(2));
        assert_eq!(anonymized.num_users(), 20);

        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }

    #[test]
    fn sharded_anonymize_reports_per_shard_stats() {
        let data = temp("shard-data");
        let anon = temp("shard-anon");
        synth("civ", 24, Some(11), &data).unwrap();
        let opts = AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: Some(4),
            shard_by: ShardBy::Activity,
        };
        let msg = anonymize_cmd(&data, &anon, &opts).unwrap();
        assert!(msg.contains("shards: 4 (activity)"), "message: {msg}");
        assert!(msg.contains("shard 0:"), "message: {msg}");
        assert!(msg.contains("shard 3:"), "message: {msg}");
        let anonymized = io::read_file(&anon).unwrap();
        assert!(anonymized.is_k_anonymous(2));
        assert_eq!(anonymized.num_users(), 24);
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }

    #[test]
    fn generalize_and_w4m_baselines_run() {
        let data = temp("baseline-data");
        let gen = temp("baseline-gen");
        let w4m = temp("baseline-w4m");

        synth("sen", 12, Some(3), &data).unwrap();
        let msg = generalize_cmd(&data, &gen, 5_000, 120).unwrap();
        assert!(msg.contains("5000 m / 120 min"));
        let generalized = io::read_file(&gen).unwrap();
        assert!(generalized
            .fingerprints
            .iter()
            .all(|f| f.samples().iter().all(|s| s.dx >= 5_000)));

        let msg = w4m_cmd(&data, &w4m, 2, 2_000.0).unwrap();
        assert!(msg.contains("W4M-LC k = 2"));
        assert!(io::read_file(&w4m).is_ok());

        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&gen);
        let _ = std::fs::remove_file(&w4m);
    }

    #[test]
    fn attack_command_raw_vs_anonymized() {
        let data = temp("attack-data");
        let anon = temp("attack-anon");
        synth("civ", 24, Some(5), &data).unwrap();
        let opts = AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: None,
            shard_by: ShardBy::Activity,
        };
        anonymize_cmd(&data, &anon, &opts).unwrap();

        let raw = attack_cmd(&data, &data, 3, 50).unwrap();
        assert!(raw.contains("pinpoint rate"));
        let protected = attack_cmd(&data, &anon, 3, 50).unwrap();
        assert!(
            protected.contains("pinpoint rate: 0.0%"),
            "anonymized data must not be pinpointable:\n{protected}"
        );

        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }

    #[test]
    fn synth_rejects_unknown_preset() {
        let out = temp("bad-preset");
        assert!(synth("mars", 10, None, &out).is_err());
    }

    #[test]
    fn audit_rejects_bad_k() {
        let data = temp("audit-k");
        synth("civ", 10, Some(1), &data).unwrap();
        assert!(audit(&data, 1, 1).is_err());
        assert!(audit(&data, 999, 1).is_err());
        let _ = std::fs::remove_file(&data);
    }
}
