//! The CLI subcommand implementations, separated from argument parsing so
//! they can be unit-tested directly.

use crate::io;
use glove_baselines::{generalize_uniform, w4m_lc, GeneralizationLevel, W4mConfig};
use glove_core::accuracy::{mean_position_accuracy_m, mean_time_accuracy_min};
use glove_core::glove::anonymize;
use glove_core::kgap::kgap_all;
use glove_core::stream::{events_of, StreamEngine, StreamEvent};
use glove_core::{
    CarryPolicy, Dataset, GloveConfig, ResidualPolicy, ShardBy, ShardPolicy, StreamConfig,
    StretchConfig, SuppressionThresholds, UnderKPolicy,
};
use glove_stats::{Ecdf, Summary};
use glove_synth::{generate, QualityReport, ScenarioConfig, ScenarioEvents};
use std::error::Error;
use std::path::Path;

/// Resolves a preset name to its scenario configuration.
fn preset_config(preset: &str, users: usize, seed: Option<u64>) -> Result<ScenarioConfig, String> {
    let mut cfg = match preset {
        "civ" | "civ-like" => ScenarioConfig::civ_like(users),
        "sen" | "sen-like" => ScenarioConfig::sen_like(users),
        "metro" | "metro-like" => ScenarioConfig::metro_like(users),
        other => return Err(format!("unknown preset '{other}' (use civ | sen | metro)")),
    };
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    Ok(cfg)
}

/// `glove synth`: generate a synthetic dataset file (`out`), an event
/// stream file (`events_out`), or both. The events-only path streams
/// straight from the scenario's event iterator and never materializes a
/// dataset.
pub fn synth(
    preset: &str,
    users: usize,
    seed: Option<u64>,
    out: Option<&Path>,
    events_out: Option<&Path>,
) -> Result<String, Box<dyn Error>> {
    let cfg = preset_config(preset, users, seed)?;
    match (out, events_out) {
        (None, None) => Err("synth needs --out and/or --events-out".into()),
        (None, Some(ev_path)) => {
            // Bounded-memory path: lazy event iterator straight to disk.
            let mut stream = ScenarioEvents::new(&cfg);
            let total = stream.remaining();
            io::write_events_file(&cfg.name, stream.by_ref(), ev_path)?;
            Ok(format!(
                "wrote {}: {} events from {} users, {} towers ({} candidates screened out)",
                ev_path.display(),
                total,
                users,
                stream.towers().len(),
                stream.screened_out(),
            ))
        }
        (Some(out), events_out) => {
            let synth = generate(&cfg);
            io::write_file(&synth.dataset, out)?;
            let mut msg = format!(
                "wrote {}: {} users, {} samples, span {} days, {} towers \
                 ({} candidates screened out)",
                out.display(),
                synth.dataset.num_users(),
                synth.dataset.num_samples(),
                synth.dataset.span_min().div_ceil(1_440),
                synth.towers.len(),
                synth.screened_out,
            );
            if let Some(ev_path) = events_out {
                let events = events_of(&synth.dataset);
                io::write_events_file(&synth.dataset.name, events.iter().copied(), ev_path)?;
                msg.push_str(&format!(
                    "\nwrote {}: {} events (time-ordered view of the same dataset)",
                    ev_path.display(),
                    events.len(),
                ));
            }
            Ok(msg)
        }
    }
}

/// `glove info`: dataset summary.
pub fn info(input: &Path) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    let lens: Vec<f64> = ds.fingerprints.iter().map(|f| f.len() as f64).collect();
    let len_summary = Summary::of(&lens).ok_or("empty dataset")?;
    let mut out = String::new();
    out.push_str(&format!("name:          {}\n", ds.name));
    out.push_str(&format!("fingerprints:  {}\n", ds.fingerprints.len()));
    out.push_str(&format!("subscribers:   {}\n", ds.num_users()));
    out.push_str(&format!("samples:       {}\n", ds.num_samples()));
    out.push_str(&format!(
        "span:          {} min ({:.1} days)\n",
        ds.span_min(),
        ds.span_min() as f64 / 1_440.0
    ));
    out.push_str(&format!(
        "samples/fp:    median {:.0}, mean {:.1}, max {:.0}\n",
        len_summary.median, len_summary.mean, len_summary.max
    ));
    let k = (2..=16)
        .take_while(|&k| ds.is_k_anonymous(k))
        .last()
        .unwrap_or(1);
    out.push_str(&format!("k-anonymity:   {k}\n"));
    if let Some(quality) = QualityReport::of(&ds) {
        out.push_str("--- data quality ---\n");
        out.push_str(&quality.render());
        out.push('\n');
    }
    Ok(out)
}

/// `glove audit`: the anonymizability audit of §5 — k-gap distribution.
pub fn audit(input: &Path, k: usize, threads: usize) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    if k < 2 || ds.num_users() < k {
        return Err(format!("k must be in [2, {}] for this dataset", ds.num_users()).into());
    }
    let cfg = StretchConfig::default();
    let gaps = kgap_all(&ds, k, threads, &cfg);
    let ecdf = Ecdf::new(gaps).ok_or("k-gap computation produced no values")?;
    let mut out = String::new();
    out.push_str(&format!("k-gap audit of {} (k = {k})\n", ds.name));
    out.push_str(&format!(
        "already k-anonymous: {:.1}%\n",
        ecdf.fraction_at_or_below(0.0) * 100.0
    ));
    for p in [0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
        out.push_str(&format!(
            "p{:<4} {:.4}\n",
            (p * 100.0) as u32,
            ecdf.quantile(p)
        ));
    }
    out.push_str(&format!(
        "mean  {:.4}\nmax   {:.4}\n",
        ecdf.mean(),
        ecdf.max()
    ));
    out.push_str(
        "\nInterpretation: 0 = already hidden in a crowd of k; 1 = hiding this user\n\
         saturates both the 20 km spatial and 8 h temporal caps (uninformative).\n",
    );
    Ok(out)
}

/// Options of `glove anonymize`.
#[derive(Debug, Clone)]
pub struct AnonymizeOpts {
    /// Anonymity level.
    pub k: usize,
    /// Optional spatial suppression threshold, meters.
    pub suppress_space_m: Option<u32>,
    /// Optional temporal suppression threshold, minutes.
    pub suppress_time_min: Option<u32>,
    /// Residual policy (`merge` or `suppress`).
    pub residual: ResidualPolicy,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Optional shard count; `None` runs monolithically.
    pub shards: Option<usize>,
    /// Shard assignment key (only meaningful with `shards`).
    pub shard_by: ShardBy,
}

/// `glove anonymize`: run GLOVE and write the anonymized dataset.
pub fn anonymize_cmd(
    input: &Path,
    out: &Path,
    opts: &AnonymizeOpts,
) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    let config = GloveConfig {
        k: opts.k,
        suppression: SuppressionThresholds {
            max_space_m: opts.suppress_space_m,
            max_time_min: opts.suppress_time_min,
        },
        residual: opts.residual,
        threads: opts.threads,
        shard: opts.shards.map(|shards| ShardPolicy {
            shards,
            by: opts.shard_by,
        }),
        ..GloveConfig::default()
    };
    let output = anonymize(&ds, &config)?;
    io::write_file(&output.dataset, out)?;
    let s = &output.stats;
    let candidates = s.pairs_computed + s.pairs_pruned;
    let pruned_pct = if candidates > 0 {
        s.pairs_pruned as f64 / candidates as f64 * 100.0
    } else {
        0.0
    };
    let mut msg = format!(
        "wrote {}: {} groups covering {} subscribers (k = {})\n\
         merges: {}, elapsed {:.1} s\n\
         pairs: {} computed + {} pruned of {} candidates ({:.1}% skipped by the \
         admissible bound), {:.0} pairs/s\n\
         suppressed samples: {} ({} user-samples), reshaped: {}\n\
         discarded fingerprints: {} ({} subscribers)\n\
         mean accuracy: {:.0} m position, {:.0} min time",
        out.display(),
        output.dataset.fingerprints.len(),
        output.dataset.num_users(),
        opts.k,
        s.merges,
        s.elapsed_s,
        s.pairs_computed,
        s.pairs_pruned,
        candidates,
        pruned_pct,
        s.pairs_per_second(),
        s.suppressed.samples,
        s.suppressed.user_samples,
        s.reshaped_samples,
        s.discarded_fingerprints,
        s.discarded_users,
        mean_position_accuracy_m(&output.dataset),
        mean_time_accuracy_min(&output.dataset),
    );
    if !s.per_shard.is_empty() {
        msg.push_str(&format!(
            "\nshards: {} ({})",
            s.per_shard.len(),
            match opts.shard_by {
                ShardBy::Activity => "activity",
                ShardBy::Spatial => "spatial",
            }
        ));
        for sh in &s.per_shard {
            msg.push_str(&format!(
                "\n  shard {}: {} fps ({} users) -> {} groups, {} merges, {} pairs, {:.2} s",
                sh.shard,
                sh.fingerprints_in,
                sh.users_in,
                sh.fingerprints_out,
                sh.merges,
                sh.pairs_computed,
                sh.elapsed_s,
            ));
        }
    }
    Ok(msg)
}

/// Options of `glove stream`.
#[derive(Debug, Clone)]
pub struct StreamOpts {
    /// Anonymity level per epoch.
    pub k: usize,
    /// Window (epoch) length, minutes.
    pub window_min: u32,
    /// Cross-epoch continuity policy.
    pub carry: CarryPolicy,
    /// Policy for windows below `k` subscribers.
    pub under_k: UnderKPolicy,
    /// Optional spatial suppression threshold, meters.
    pub suppress_space_m: Option<u32>,
    /// Optional temporal suppression threshold, minutes.
    pub suppress_time_min: Option<u32>,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Optional per-epoch shard count.
    pub shards: Option<usize>,
    /// Shard assignment key (only meaningful with `shards`).
    pub shard_by: ShardBy,
}

impl Default for StreamOpts {
    fn default() -> Self {
        Self {
            k: 2,
            window_min: 1_440,
            carry: CarryPolicy::Fresh,
            under_k: UnderKPolicy::Suppress,
            suppress_space_m: None,
            suppress_time_min: None,
            threads: 0,
            shards: None,
            shard_by: ShardBy::Activity,
        }
    }
}

/// `glove stream`: windowed online GLOVE over an event stream.
///
/// `input` may be an event file (`E` records, streamed through
/// [`io::EventReader`] with bounded memory) or a dataset file (replayed as
/// its time-ordered event view — a convenience that loads the dataset
/// first). Each closed window's anonymized epoch is written to
/// `out_dir/epoch-NNNN.txt` as soon as it is emitted and dropped from
/// memory. `out_dir` is treated as owned by this command: `epoch-*.txt`
/// files left by a previous run are removed (after the input has been
/// opened successfully), and the removal is reported in the output.
pub fn stream_cmd(
    input: &Path,
    out_dir: &Path,
    opts: &StreamOpts,
) -> Result<String, Box<dyn Error>> {
    let config = StreamConfig {
        window_min: opts.window_min,
        carry: opts.carry,
        under_k: opts.under_k,
        glove: GloveConfig {
            k: opts.k,
            suppression: SuppressionThresholds {
                max_space_m: opts.suppress_space_m,
                max_time_min: opts.suppress_time_min,
            },
            threads: opts.threads,
            shard: opts.shards.map(|shards| ShardPolicy {
                shards,
                by: opts.shard_by,
            }),
            ..GloveConfig::default()
        },
    };
    // Open (or load) the input before touching the output directory, so a
    // typo'd path or unparseable file cannot destroy a previous run.
    enum Source {
        Events(io::EventReader<std::io::BufReader<std::fs::File>>),
        Dataset(Dataset),
    }
    let source = if io::is_events_file(input)? {
        Source::Events(io::EventReader::open(input)?)
    } else {
        Source::Dataset(io::read_file(input)?)
    };

    std::fs::create_dir_all(out_dir)?;
    // A rerun into the same directory may emit fewer epochs (longer
    // windows); stale epoch files from a previous run would silently
    // interleave with the new output, so clear them first — and say so.
    let mut cleared = 0usize;
    for entry in std::fs::read_dir(out_dir)? {
        let path = entry?.path();
        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
            if name.starts_with("epoch-") && name.ends_with(".txt") {
                std::fs::remove_file(&path)?;
                cleared += 1;
            }
        }
    }

    let write_epoch = |epoch: &glove_core::stream::EpochOutput| -> Result<(), Box<dyn Error>> {
        let path = out_dir.join(format!("epoch-{:04}.txt", epoch.epoch));
        io::write_file(&epoch.output.dataset, &path)?;
        Ok(())
    };
    let drive = |engine: &mut StreamEngine,
                 events: &mut dyn Iterator<Item = Result<StreamEvent, io::ParseError>>|
     -> Result<(), Box<dyn Error>> {
        for event in events {
            if let Some(epoch) = engine.push(event?)? {
                write_epoch(&epoch)?;
            }
        }
        Ok(())
    };

    let engine = match source {
        Source::Events(mut reader) => {
            let mut engine = StreamEngine::new(reader.name().to_string(), config)?;
            drive(&mut engine, &mut reader)?;
            engine
        }
        Source::Dataset(ds) => {
            let mut engine = StreamEngine::new(ds.name.clone(), config)?;
            drive(&mut engine, &mut events_of(&ds).into_iter().map(Ok))?;
            engine
        }
    };

    let (last, stats) = engine.finish()?;
    if let Some(epoch) = last {
        write_epoch(&epoch)?;
    }

    let mut msg = format!(
        "streamed {} events into {} epochs under {} (k = {}, window {} min, {} carry, \
         under-k {})\n\
         peak resident: {} fingerprints, {} samples\n\
         merges: {}, pairs: {} computed + {} pruned, anonymization {:.1} s",
        stats.events,
        stats.epochs,
        out_dir.display(),
        opts.k,
        opts.window_min,
        match opts.carry {
            CarryPolicy::Fresh => "fresh",
            CarryPolicy::Sticky => "sticky",
        },
        match opts.under_k {
            UnderKPolicy::Suppress => "suppress",
            UnderKPolicy::Defer => "defer",
        },
        stats.peak_resident_fingerprints,
        stats.peak_resident_samples,
        stats.merges,
        stats.pairs_computed,
        stats.pairs_pruned,
        stats.elapsed_s,
    );
    if cleared > 0 {
        msg.push_str(&format!(
            "\nreplaced {cleared} epoch file(s) left by a previous run"
        ));
    }
    if stats.suppressed_users > 0 || stats.deferred_users > 0 {
        msg.push_str(&format!(
            "\nunder-k ledger: {} user-slices suppressed ({} samples), \
             {} deferred ({} samples)",
            stats.suppressed_users,
            stats.suppressed_samples,
            stats.deferred_users,
            stats.deferred_samples,
        ));
    }
    if stats.seeded_groups > 0 {
        msg.push_str(&format!(
            "\ncarry-over: {} sticky groups seeded across epochs",
            stats.seeded_groups
        ));
    }
    for e in &stats.per_epoch {
        msg.push_str(&format!(
            "\n  epoch {:>3} @ {:>6} min: {} users in {} fps ({} seeded) -> {} groups, \
             {} merges, {} pairs, {:.2} s",
            e.epoch,
            e.window_start_min,
            e.users_in,
            e.fingerprints_in,
            e.seeded_groups,
            e.groups_out,
            e.merges,
            e.pairs_computed,
            e.elapsed_s,
        ));
    }
    Ok(msg)
}

/// `glove generalize`: uniform spatiotemporal generalization baseline.
pub fn generalize_cmd(
    input: &Path,
    out: &Path,
    space_m: u32,
    time_min: u32,
) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    let level = GeneralizationLevel { space_m, time_min };
    let generalized = generalize_uniform(&ds, &level);
    io::write_file(&generalized, out)?;
    Ok(format!(
        "wrote {}: uniform generalization at {} m / {} min ({} samples -> {})",
        out.display(),
        space_m,
        time_min,
        ds.num_samples(),
        generalized.num_samples(),
    ))
}

/// `glove w4m`: the W4M-LC baseline.
pub fn w4m_cmd(input: &Path, out: &Path, k: usize, delta_m: f64) -> Result<String, Box<dyn Error>> {
    let ds = io::read_file(input)?;
    let output = w4m_lc(
        &ds,
        &W4mConfig {
            k,
            delta_m,
            ..W4mConfig::default()
        },
    );
    io::write_file(&output.dataset, out)?;
    let s = &output.stats;
    Ok(format!(
        "wrote {}: W4M-LC k = {k}, delta = {delta_m} m\n\
         discarded fingerprints: {}, created samples: {}, deleted samples: {}\n\
         mean position error: {:.0} m, mean time error: {:.0} min",
        out.display(),
        s.discarded_fingerprints,
        s.created_samples,
        s.deleted_samples,
        s.mean_position_error_m,
        s.mean_time_error_min,
    ))
}

/// `glove attack`: record-linkage adversaries against a published dataset.
///
/// `original` holds the ground truth the adversary observed (raw
/// fingerprints); `published` is what was released (possibly anonymized).
/// Pass the same file twice to measure raw-data uniqueness.
pub fn attack_cmd(
    original: &Path,
    published: &Path,
    points: usize,
    trials: usize,
) -> Result<String, Box<dyn Error>> {
    let orig = io::read_file(original)?;
    let publ = io::read_file(published)?;
    let mut out = String::new();
    out.push_str(&format!(
        "record-linkage attacks: knowledge from {}, linking against {}\n\n",
        orig.name, publ.name
    ));
    out.push_str("top-location adversary (unique signatures in the published data):\n");
    for l in [1usize, 2, 3] {
        out.push_str(&format!(
            "  top-{l}: {:.1}%\n",
            glove_attack::top_location_uniqueness(&publ, l) * 100.0
        ));
    }
    let cfg = glove_attack::RandomPointAttack {
        points,
        trials,
        seed: 0xC11,
    };
    let outcome = glove_attack::random_point_attack(&orig, &publ, &cfg);
    if outcome.anonymity_sets.is_empty() {
        out.push_str("\nrandom-point adversary: no target has enough samples\n");
    } else {
        out.push_str(&format!(
            "\nrandom-point adversary ({points} points, {trials} trials):\n  \
             pinpoint rate: {:.1}%\n  min anonymity set: {}\n  mean anonymity set: {:.1}\n",
            outcome.pinpoint_rate() * 100.0,
            outcome.min_anonymity(),
            outcome.mean_anonymity(),
        ));
    }
    Ok(out)
}

/// Convenience used by tests: writes `dataset` to a temp file and returns
/// its path.
pub fn write_temp(dataset: &Dataset, stem: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("glove-cli-{stem}-{}.txt", std::process::id()));
    io::write_file(dataset, &path).expect("temp file writable");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(stem: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("glove-cmd-{stem}-{}.txt", std::process::id()))
    }

    #[test]
    fn synth_info_audit_anonymize_pipeline() {
        let data = temp("pipeline-data");
        let anon = temp("pipeline-anon");

        let msg = synth("civ", 20, Some(7), Some(&data), None).unwrap();
        assert!(msg.contains("20 users"));

        let msg = info(&data).unwrap();
        assert!(msg.contains("subscribers:   20"));
        assert!(msg.contains("k-anonymity:   1"));

        let msg = audit(&data, 2, 1).unwrap();
        assert!(msg.contains("already k-anonymous: 0.0%"));

        let opts = AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: None,
            shard_by: ShardBy::Activity,
        };
        let msg = anonymize_cmd(&data, &anon, &opts).unwrap();
        assert!(msg.contains("20 subscribers"));

        let anonymized = io::read_file(&anon).unwrap();
        assert!(anonymized.is_k_anonymous(2));
        assert_eq!(anonymized.num_users(), 20);

        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }

    #[test]
    fn sharded_anonymize_reports_per_shard_stats() {
        let data = temp("shard-data");
        let anon = temp("shard-anon");
        synth("civ", 24, Some(11), Some(&data), None).unwrap();
        let opts = AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: Some(4),
            shard_by: ShardBy::Activity,
        };
        let msg = anonymize_cmd(&data, &anon, &opts).unwrap();
        assert!(msg.contains("shards: 4 (activity)"), "message: {msg}");
        assert!(msg.contains("shard 0:"), "message: {msg}");
        assert!(msg.contains("shard 3:"), "message: {msg}");
        let anonymized = io::read_file(&anon).unwrap();
        assert!(anonymized.is_k_anonymous(2));
        assert_eq!(anonymized.num_users(), 24);
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }

    #[test]
    fn generalize_and_w4m_baselines_run() {
        let data = temp("baseline-data");
        let gen = temp("baseline-gen");
        let w4m = temp("baseline-w4m");

        synth("sen", 12, Some(3), Some(&data), None).unwrap();
        let msg = generalize_cmd(&data, &gen, 5_000, 120).unwrap();
        assert!(msg.contains("5000 m / 120 min"));
        let generalized = io::read_file(&gen).unwrap();
        assert!(generalized
            .fingerprints
            .iter()
            .all(|f| f.samples().iter().all(|s| s.dx >= 5_000)));

        let msg = w4m_cmd(&data, &w4m, 2, 2_000.0).unwrap();
        assert!(msg.contains("W4M-LC k = 2"));
        assert!(io::read_file(&w4m).is_ok());

        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&gen);
        let _ = std::fs::remove_file(&w4m);
    }

    #[test]
    fn attack_command_raw_vs_anonymized() {
        let data = temp("attack-data");
        let anon = temp("attack-anon");
        synth("civ", 24, Some(5), Some(&data), None).unwrap();
        let opts = AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: None,
            shard_by: ShardBy::Activity,
        };
        anonymize_cmd(&data, &anon, &opts).unwrap();

        let raw = attack_cmd(&data, &data, 3, 50).unwrap();
        assert!(raw.contains("pinpoint rate"));
        let protected = attack_cmd(&data, &anon, 3, 50).unwrap();
        assert!(
            protected.contains("pinpoint rate: 0.0%"),
            "anonymized data must not be pinpointable:\n{protected}"
        );

        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }

    #[test]
    fn synth_rejects_unknown_preset() {
        let out = temp("bad-preset");
        assert!(synth("mars", 10, None, Some(&out), None).is_err());
    }

    #[test]
    fn anonymize_surfaces_pruning_counters() {
        let data = temp("pruned-data");
        let anon = temp("pruned-anon");
        synth("civ", 16, Some(21), Some(&data), None).unwrap();
        let opts = AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: None,
            shard_by: ShardBy::Activity,
        };
        let msg = anonymize_cmd(&data, &anon, &opts).unwrap();
        assert!(msg.contains("computed +"), "message: {msg}");
        assert!(msg.contains("pruned of"), "message: {msg}");
        assert!(
            msg.contains("candidates") && msg.contains("% skipped"),
            "message: {msg}"
        );
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
    }

    #[test]
    fn synth_events_only_writes_a_streamable_file() {
        let events = temp("synth-events");
        let msg = synth("civ", 10, Some(4), None, Some(&events)).unwrap();
        assert!(msg.contains("events from 10 users"), "message: {msg}");
        assert!(io::is_events_file(&events).unwrap());
        let reader = io::EventReader::open(&events).unwrap();
        assert_eq!(reader.name(), "civ-like");
        let parsed: Result<Vec<_>, _> = reader.collect();
        let parsed = parsed.unwrap();
        assert!(!parsed.is_empty());
        assert!(parsed.windows(2).all(|w| w[0].sample.t <= w[1].sample.t));
        let _ = std::fs::remove_file(&events);
    }

    #[test]
    fn synth_events_view_matches_dataset_view() {
        // --out + --events-out must describe the same data.
        let data = temp("synth-both-ds");
        let events = temp("synth-both-ev");
        synth("civ", 8, Some(4), Some(&data), Some(&events)).unwrap();
        let ds = io::read_file(&data).unwrap();
        let (name, parsed) = {
            let reader = io::EventReader::open(&events).unwrap();
            let name = reader.name().to_string();
            let ev: Result<Vec<_>, _> = reader.collect();
            (name, ev.unwrap())
        };
        assert_eq!(name, ds.name);
        assert_eq!(parsed, events_of(&ds));
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&events);
    }

    fn temp_dir(stem: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("glove-cmd-{stem}-{}", std::process::id()))
    }

    #[test]
    fn stream_command_emits_k_anonymous_epochs() {
        let data = temp("stream-data");
        let out_dir = temp_dir("stream-epochs");
        synth("civ", 16, Some(9), Some(&data), None).unwrap();
        let opts = StreamOpts {
            k: 2,
            window_min: 2_880,
            threads: 1,
            ..StreamOpts::default()
        };
        let msg = stream_cmd(&data, &out_dir, &opts).unwrap();
        assert!(msg.contains("epochs under"), "message: {msg}");
        assert!(msg.contains("peak resident:"), "message: {msg}");
        assert!(msg.contains("epoch   0"), "message: {msg}");
        // Every emitted epoch file parses and is 2-anonymous.
        let mut epoch_files: Vec<_> = std::fs::read_dir(&out_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        epoch_files.sort();
        assert!(
            epoch_files.len() >= 4,
            "14-day civ span with 2-day windows must emit several epochs, got {}",
            epoch_files.len()
        );
        for f in &epoch_files {
            let epoch = io::read_file(f).unwrap();
            assert!(epoch.is_k_anonymous(2), "{} not 2-anonymous", f.display());
        }
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn stream_command_consumes_event_files_and_sticky_carries() {
        let events = temp("stream-ev-in");
        let out_dir = temp_dir("stream-ev-epochs");
        synth("civ", 12, Some(13), None, Some(&events)).unwrap();
        let opts = StreamOpts {
            k: 2,
            window_min: 4_320,
            carry: CarryPolicy::Sticky,
            under_k: UnderKPolicy::Defer,
            threads: 1,
            ..StreamOpts::default()
        };
        let msg = stream_cmd(&events, &out_dir, &opts).unwrap();
        assert!(msg.contains("sticky carry"), "message: {msg}");
        assert!(msg.contains("under-k defer"), "message: {msg}");
        assert!(
            msg.contains("sticky groups seeded"),
            "stable civ users must re-seed groups: {msg}"
        );
        let _ = std::fs::remove_file(&events);
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn stream_rerun_clears_stale_epoch_files() {
        // A rerun with longer windows emits fewer epochs; the previous
        // run's surplus epoch files must not survive in the directory.
        let data = temp("stream-rerun-data");
        let out_dir = temp_dir("stream-rerun-epochs");
        synth("civ", 12, Some(19), Some(&data), None).unwrap();

        let short = StreamOpts {
            k: 2,
            window_min: 2_880,
            threads: 1,
            ..StreamOpts::default()
        };
        stream_cmd(&data, &out_dir, &short).unwrap();
        let count_epochs = || {
            std::fs::read_dir(&out_dir)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .starts_with("epoch-")
                })
                .count()
        };
        let many = count_epochs();
        assert!(many >= 4, "short windows must emit several epochs");

        let long = StreamOpts {
            k: 2,
            window_min: 1_000_000,
            threads: 1,
            ..StreamOpts::default()
        };
        stream_cmd(&data, &out_dir, &long).unwrap();
        assert_eq!(
            count_epochs(),
            1,
            "stale epochs from the previous run must be cleared"
        );
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn stream_single_window_is_byte_identical_to_anonymize() {
        // The equivalence anchor, end to end through the CLI: one window
        // covering the whole span + fresh carry == the batch command.
        let data = temp("stream-eq-data");
        let anon = temp("stream-eq-anon");
        let out_dir = temp_dir("stream-eq-epochs");
        synth("civ", 12, Some(17), Some(&data), None).unwrap();

        let aopts = AnonymizeOpts {
            k: 2,
            suppress_space_m: None,
            suppress_time_min: None,
            residual: ResidualPolicy::MergeIntoNearest,
            threads: 1,
            shards: None,
            shard_by: ShardBy::Activity,
        };
        anonymize_cmd(&data, &anon, &aopts).unwrap();

        let sopts = StreamOpts {
            k: 2,
            window_min: 1_000_000, // one window over the whole horizon
            threads: 1,
            ..StreamOpts::default()
        };
        stream_cmd(&data, &out_dir, &sopts).unwrap();

        let batch_bytes = std::fs::read(&anon).unwrap();
        let epoch_bytes = std::fs::read(out_dir.join("epoch-0000.txt")).unwrap();
        assert_eq!(
            batch_bytes, epoch_bytes,
            "single-window fresh stream must be byte-identical to the batch run"
        );
        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&anon);
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn audit_rejects_bad_k() {
        let data = temp("audit-k");
        synth("civ", 10, Some(1), Some(&data), None).unwrap();
        assert!(audit(&data, 1, 1).is_err());
        assert!(audit(&data, 999, 1).is_err());
        let _ = std::fs::remove_file(&data);
    }
}
