//! `glove` — CLI entry point. Argument parsing only; the work happens in
//! [`glove_cli::commands`].

use glove_cli::commands::{self, AnonymizeOpts, StreamOpts};
use glove_core::{CarryPolicy, ResidualPolicy, ShardBy, UnderKPolicy};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
glove — k-anonymization of mobile traffic fingerprints (GLOVE, CoNEXT'15)

USAGE:
  glove synth      --preset NAME --users N [--seed S]
                   [--out FILE] [--events-out FILE]
                   presets: civ sen metro mixed flash corridor churn
                            longtail storm
  glove info       --in FILE
  glove audit      --in FILE --k K [--threads N]
  glove anonymize  --in FILE --out FILE --k K
                   [--suppress-space METERS] [--suppress-time MINUTES]
                   [--residual merge|suppress] [--threads N]
                   [--shards N] [--shard-by activity|spatial|two-level]
  glove stream     --in FILE --out-dir DIR --k K [--window MINUTES]
                   [--carry fresh|sticky] [--under-k suppress|defer]
                   [--suppress-space METERS] [--suppress-time MINUTES]
                   [--threads N] [--shards N] [--shard-by activity|spatial|two-level]
                   [--policy FILE]
  glove generalize --in FILE --out FILE --space METERS --time MINUTES
  glove w4m        --in FILE --out FILE --k K [--delta METERS]
  glove attack     --original FILE (--published FILE | --epochs-dir DIR)
                   [--points N] [--trials N] [--seed S]
                   [--noise-space METERS] [--noise-time MINUTES]
                   [--top L] [--threads N] [--report FILE] [--policy FILE]
  glove serve      --listen ADDR [--out-dir DIR] [--queue EVENTS]
                   [--retry-ms MS] [--port-file FILE] [--policy FILE]
  glove send       --addr ADDR --tenant NAME --in FILE [--batch N]
                   [--shed true]
                   [--k K] [--window MINUTES] [--carry fresh|sticky]
                   [--under-k suppress|defer] [--suppress-space METERS]
                   [--suppress-time MINUTES] [--threads N]
                   [--shards N] [--shard-by activity|spatial|two-level]
  glove send       --addr ADDR --shutdown true

Datasets and event streams are line-oriented text files (see `glove-cli`
docs). `glove stream` accepts either: event files replay with bounded
memory, dataset files are converted to their time-ordered event view.
The stream --out-dir is owned by the command: epoch-*.txt files from a
previous run are replaced.

`glove attack` runs the adversary subsystem: the multi-point linkage
attack (p known points with optional observation noise) and the top-L
location classifier against a published dataset, plus the cross-epoch
linkage adversary when --epochs-dir points at a `glove stream` output
directory. --report writes one RunReport JSON line per attack.

`--policy FILE` loads a JSON policy plane (cohort declarations plus
per-epoch/per-cohort overrides of k, window, carry, under-k and
suppression). `glove stream` resolves it per window; `glove serve` hands
it to every tenant session (tenants retune mid-run via RECONFIG); `glove
attack` uses its cohort declarations to break the cross-epoch adversary
down per cohort.

`glove serve` runs the multi-tenant ingest daemon: each tenant opened by a
`glove send` client is an isolated windowed engine with its own epoch
clock and `--out-dir/<tenant>/` epoch directory (same file format as
`glove stream`). Per-tenant queues are bounded: a full queue answers BUSY
(client retries) or, with `--shed`, drops the overflow into the shed
ledger reported in the tenant's final stats. The daemon runs until a
client sends `glove send --addr ADDR --shutdown true`; open sessions are
flushed, losing no accepted events.
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Splits `--key value` pairs into a map; returns an error message on
/// malformed input or duplicate keys.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected an option, got '{arg}'"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("option --{key} needs a value"))?;
        if map.insert(key.to_string(), value.clone()).is_some() {
            return Err(format!("duplicate option --{key}"));
        }
    }
    Ok(map)
}

fn required<'m>(flags: &'m HashMap<String, String>, key: &str) -> Result<&'m str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{key}"))
}

fn parse_num<T: std::str::FromStr>(value: &str, key: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("option --{key}: cannot parse '{value}'"))
}

/// `--threads N` (0 = all cores; default 0), shared by every heavy command.
fn parse_threads(flags: &HashMap<String, String>) -> Result<usize, String> {
    Ok(flags
        .get("threads")
        .map(|s| parse_num::<usize>(s, "threads"))
        .transpose()?
        .unwrap_or(0))
}

/// `--suppress-space METERS` / `--suppress-time MINUTES`, shared by
/// `anonymize` and `stream`.
fn parse_suppression(
    flags: &HashMap<String, String>,
) -> Result<(Option<u32>, Option<u32>), String> {
    let space = flags
        .get("suppress-space")
        .map(|s| parse_num::<u32>(s, "suppress-space"))
        .transpose()?;
    let time = flags
        .get("suppress-time")
        .map(|s| parse_num::<u32>(s, "suppress-time"))
        .transpose()?;
    Ok((space, time))
}

/// `--policy FILE`: a JSON policy plane, validated on load.
fn parse_policy(
    flags: &HashMap<String, String>,
) -> Result<Option<glove_core::policy::PolicyPlane>, String> {
    let Some(path) = flags.get("policy") else {
        return Ok(None);
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("option --policy: cannot read '{path}': {e}"))?;
    glove_core::policy::PolicyPlane::from_json(&text)
        .map(Some)
        .map_err(|e| format!("option --policy: {e}"))
}

/// `--shards N` / `--shard-by activity|spatial|two-level` with their coupling rules,
/// shared by `anonymize` and `stream`.
fn parse_sharding(flags: &HashMap<String, String>) -> Result<(Option<usize>, ShardBy), String> {
    let shards = flags
        .get("shards")
        .map(|s| parse_num::<usize>(s, "shards"))
        .transpose()?;
    if shards == Some(0) {
        return Err("--shards must be at least 1".into());
    }
    let shard_by = match flags.get("shard-by") {
        None => ShardBy::Activity,
        Some(value) => {
            if shards.is_none() {
                return Err("--shard-by requires --shards".into());
            }
            value
                .parse::<ShardBy>()
                .map_err(|e| format!("--shard-by: {e}"))?
        }
    };
    Ok((shards, shard_by))
}

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return Err("no command given".into());
    };
    let flags = parse_flags(rest)?;
    let err = |e: Box<dyn std::error::Error>| e.to_string();

    match command.as_str() {
        "synth" => {
            let preset = required(&flags, "preset")?;
            let users: usize = parse_num(required(&flags, "users")?, "users")?;
            let seed = flags
                .get("seed")
                .map(|s| parse_num::<u64>(s, "seed"))
                .transpose()?;
            let out = flags.get("out").map(PathBuf::from);
            let events_out = flags.get("events-out").map(PathBuf::from);
            // commands::synth rejects the no-output case with its own error.
            commands::synth(preset, users, seed, out.as_deref(), events_out.as_deref()).map_err(err)
        }
        "info" => {
            let input = PathBuf::from(required(&flags, "in")?);
            commands::info(&input).map_err(err)
        }
        "audit" => {
            let input = PathBuf::from(required(&flags, "in")?);
            let k: usize = parse_num(required(&flags, "k")?, "k")?;
            let threads = parse_threads(&flags)?;
            commands::audit(&input, k, threads).map_err(err)
        }
        "anonymize" => {
            let input = PathBuf::from(required(&flags, "in")?);
            let out = PathBuf::from(required(&flags, "out")?);
            let k: usize = parse_num(required(&flags, "k")?, "k")?;
            let (suppress_space_m, suppress_time_min) = parse_suppression(&flags)?;
            let residual = match flags.get("residual").map(String::as_str) {
                None | Some("merge") => ResidualPolicy::MergeIntoNearest,
                Some("suppress") => ResidualPolicy::Suppress,
                Some(other) => {
                    return Err(format!("--residual must be merge|suppress, got '{other}'"))
                }
            };
            let threads = parse_threads(&flags)?;
            let (shards, shard_by) = parse_sharding(&flags)?;
            let opts = AnonymizeOpts {
                k,
                suppress_space_m,
                suppress_time_min,
                residual,
                threads,
                shards,
                shard_by,
            };
            commands::anonymize_cmd(&input, &out, &opts).map_err(err)
        }
        "stream" => {
            let input = PathBuf::from(required(&flags, "in")?);
            let out_dir = PathBuf::from(required(&flags, "out-dir")?);
            let k: usize = parse_num(required(&flags, "k")?, "k")?;
            let window_min = flags
                .get("window")
                .map(|s| parse_num::<u32>(s, "window"))
                .transpose()?
                .unwrap_or(1_440);
            let carry = flags
                .get("carry")
                .map(|s| s.parse::<CarryPolicy>())
                .transpose()
                .map_err(|e| format!("--carry: {e}"))?
                .unwrap_or_default();
            let under_k = flags
                .get("under-k")
                .map(|s| s.parse::<UnderKPolicy>())
                .transpose()
                .map_err(|e| format!("--under-k: {e}"))?
                .unwrap_or_default();
            let (suppress_space_m, suppress_time_min) = parse_suppression(&flags)?;
            let threads = parse_threads(&flags)?;
            let (shards, shard_by) = parse_sharding(&flags)?;
            let opts = StreamOpts {
                k,
                window_min,
                carry,
                under_k,
                suppress_space_m,
                suppress_time_min,
                threads,
                shards,
                shard_by,
                policy: parse_policy(&flags)?,
            };
            commands::stream_cmd(&input, &out_dir, &opts).map_err(err)
        }
        "generalize" => {
            let input = PathBuf::from(required(&flags, "in")?);
            let out = PathBuf::from(required(&flags, "out")?);
            let space: u32 = parse_num(required(&flags, "space")?, "space")?;
            let time: u32 = parse_num(required(&flags, "time")?, "time")?;
            commands::generalize_cmd(&input, &out, space, time).map_err(err)
        }
        "w4m" => {
            let input = PathBuf::from(required(&flags, "in")?);
            let out = PathBuf::from(required(&flags, "out")?);
            let k: usize = parse_num(required(&flags, "k")?, "k")?;
            let delta = flags
                .get("delta")
                .map(|s| parse_num::<f64>(s, "delta"))
                .transpose()?
                .unwrap_or(2_000.0);
            commands::w4m_cmd(&input, &out, k, delta).map_err(err)
        }
        "attack" => {
            let original = PathBuf::from(required(&flags, "original")?);
            let published = flags.get("published").map(PathBuf::from);
            let epochs_dir = flags.get("epochs-dir").map(PathBuf::from);
            let report = flags.get("report").map(PathBuf::from);
            let defaults = commands::AttackOpts::default();
            let parse_or = |key: &str, fallback: usize| -> Result<usize, String> {
                flags
                    .get(key)
                    .map(|s| parse_num::<usize>(s, key))
                    .transpose()
                    .map(|v| v.unwrap_or(fallback))
            };
            let opts = commands::AttackOpts {
                points: parse_or("points", defaults.points)?,
                trials: parse_or("trials", defaults.trials)?,
                seed: flags
                    .get("seed")
                    .map(|s| parse_num::<u64>(s, "seed"))
                    .transpose()?
                    .unwrap_or(defaults.seed),
                noise_space_m: flags
                    .get("noise-space")
                    .map(|s| parse_num::<u32>(s, "noise-space"))
                    .transpose()?
                    .unwrap_or(defaults.noise_space_m),
                noise_time_min: flags
                    .get("noise-time")
                    .map(|s| parse_num::<u32>(s, "noise-time"))
                    .transpose()?
                    .unwrap_or(defaults.noise_time_min),
                top_l: parse_or("top", defaults.top_l)?,
                threads: parse_threads(&flags)?,
                cohorts: parse_policy(&flags)?
                    .map(|plane| plane.cohorts)
                    .unwrap_or_default(),
            };
            commands::attack_cmd(
                &original,
                published.as_deref(),
                epochs_dir.as_deref(),
                report.as_deref(),
                &opts,
            )
            .map_err(err)
        }
        "serve" => {
            let opts = commands::ServeOpts {
                listen: required(&flags, "listen")?.to_string(),
                out_dir: flags.get("out-dir").map(PathBuf::from),
                queue: flags
                    .get("queue")
                    .map(|s| parse_num::<usize>(s, "queue"))
                    .transpose()?
                    .unwrap_or(4096),
                retry_ms: flags
                    .get("retry-ms")
                    .map(|s| parse_num::<u32>(s, "retry-ms"))
                    .transpose()?
                    .unwrap_or(25),
                port_file: flags.get("port-file").map(PathBuf::from),
                policy: parse_policy(&flags)?,
            };
            if opts.queue == 0 {
                return Err("--queue must be at least 1".into());
            }
            commands::serve_cmd(&opts).map_err(err)
        }
        "send" => {
            let addr = required(&flags, "addr")?.to_string();
            if flags.contains_key("shutdown") {
                return commands::shutdown_cmd(&addr).map_err(err);
            }
            let input = PathBuf::from(required(&flags, "in")?);
            let k: usize = flags
                .get("k")
                .map(|s| parse_num::<usize>(s, "k"))
                .transpose()?
                .unwrap_or(2);
            let window_min = flags
                .get("window")
                .map(|s| parse_num::<u32>(s, "window"))
                .transpose()?
                .unwrap_or(1_440);
            let carry = flags
                .get("carry")
                .map(|s| s.parse::<CarryPolicy>())
                .transpose()
                .map_err(|e| format!("--carry: {e}"))?
                .unwrap_or_default();
            let under_k = flags
                .get("under-k")
                .map(|s| s.parse::<UnderKPolicy>())
                .transpose()
                .map_err(|e| format!("--under-k: {e}"))?
                .unwrap_or_default();
            let (suppress_space_m, suppress_time_min) = parse_suppression(&flags)?;
            let threads = parse_threads(&flags)?;
            let (shards, shard_by) = parse_sharding(&flags)?;
            let opts = commands::SendOpts {
                addr,
                tenant: required(&flags, "tenant")?.to_string(),
                stream: StreamOpts {
                    k,
                    window_min,
                    carry,
                    under_k,
                    suppress_space_m,
                    suppress_time_min,
                    threads,
                    shards,
                    shard_by,
                    policy: None,
                },
                batch: flags
                    .get("batch")
                    .map(|s| parse_num::<usize>(s, "batch"))
                    .transpose()?
                    .unwrap_or(512),
                shed: match flags.get("shed").map(String::as_str) {
                    None | Some("false") => false,
                    Some("true") => true,
                    Some(other) => return Err(format!("--shed must be true|false, got '{other}'")),
                },
            };
            if opts.batch == 0 {
                return Err("--batch must be at least 1".into());
            }
            commands::send_cmd(&input, &opts).map_err(err)
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command '{other}'")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => fail(&msg),
    }
}
