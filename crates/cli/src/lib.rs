//! # glove-cli — command-line workflows for GLOVE
//!
//! The `glove` binary wires the workspace into PPDP practitioner workflows:
//!
//! ```text
//! glove synth      generate a synthetic CDR dataset and/or event stream
//! glove info       inspect a dataset file
//! glove audit      anonymizability audit: k-gap distribution (paper §5)
//! glove anonymize  k-anonymize with GLOVE (§6), optional suppression (§7.1)
//! glove stream     windowed online GLOVE over a time-ordered event stream
//! glove generalize uniform spatiotemporal generalization baseline (§5.2)
//! glove w4m        W4M-LC baseline (§7.2)
//! ```
//!
//! Datasets travel as a line-oriented text format (see [`io`]) so that they
//! can be produced and consumed by external tooling without bespoke
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod io;
pub mod net;
