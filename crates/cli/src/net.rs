//! File-oriented client library over the [`glove_serve`] wire client.
//!
//! The `glove send` verb is a thin shell around this module, and external
//! tooling can use it directly: feed an event or dataset file to a running
//! `glove serve` daemon under a tenant name, honoring backpressure, with
//! bounded memory (event files are streamed batch by batch, never fully
//! loaded).

use crate::io;
use glove_core::api::RunReport;
use glove_core::config::StreamConfig;
use glove_core::stream::{events_of, StreamEvent};
use glove_serve::client::EpochNote;
use glove_serve::Client;
use std::error::Error;
use std::net::ToSocketAddrs;
use std::path::Path;

/// What one [`send_file`] call achieved, end to end.
#[derive(Debug)]
pub struct SendSummary {
    /// Events accepted into the tenant's queue.
    pub accepted: u64,
    /// Events shed by the daemon (only in `--shed` mode).
    pub shed: u64,
    /// `BUSY` round-trips absorbed while sending.
    pub busy_retries: u64,
    /// `EPOCH` pushes observed, in arrival order.
    pub epochs: Vec<EpochNote>,
    /// The tenant's final report, as returned by `FLUSH`.
    pub report: RunReport,
}

/// Streams `input` (an event file or a dataset file) to the daemon at
/// `addr` as tenant `tenant`, then flushes and returns the final report.
///
/// Event files are read incrementally: at most `batch` events are resident
/// on the client at any moment, so arbitrarily long recordings can be
/// replayed into a daemon from a small machine.
pub fn send_file(
    addr: impl ToSocketAddrs,
    tenant: &str,
    input: &Path,
    config: StreamConfig,
    shed: bool,
    batch: usize,
) -> Result<SendSummary, Box<dyn Error>> {
    let batch = batch.max(1);
    let mut client = Client::connect(addr)?;
    client.hello(tenant, config, shed)?;

    let mut accepted = 0u64;
    let mut shed_total = 0u64;
    let mut send = |client: &mut Client, buf: &[StreamEvent]| -> Result<(), Box<dyn Error>> {
        let outcome = client.send_events(buf, batch)?;
        accepted += outcome.accepted;
        shed_total += outcome.shed;
        Ok(())
    };

    if io::is_events_file(input)? {
        let reader = io::EventReader::open(input)?;
        let mut buf: Vec<StreamEvent> = Vec::with_capacity(batch);
        for event in reader {
            buf.push(event?);
            if buf.len() == batch {
                send(&mut client, &buf)?;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            send(&mut client, &buf)?;
        }
    } else {
        let dataset = io::read_file(input)?;
        send(&mut client, &events_of(&dataset))?;
    }

    let report = client.flush()?;
    let busy_retries = client.busy_retries();
    let epochs = client.epochs().to_vec();
    client.close()?;
    Ok(SendSummary {
        accepted,
        shed: shed_total,
        busy_retries,
        epochs,
        report,
    })
}

/// Asks the daemon at `addr` to shut down gracefully (open sessions are
/// finalized and their partial windows flushed).
pub fn shutdown(addr: impl ToSocketAddrs) -> Result<(), Box<dyn Error>> {
    glove_serve::client::shutdown(addr)?;
    Ok(())
}
