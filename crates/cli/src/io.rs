//! Dataset file format: a line-oriented, diff-friendly text encoding.
//!
//! ```text
//! # glove dataset v1
//! # name: civ-like
//! F 17            <- fingerprint header: user ids (comma-separated)
//! S 1200 300 100 100 481 1
//! S 5400 800 100 100 912 1
//! F 18,19         <- merged fingerprint shared by users 18 and 19
//! S 0 0 2000 1500 100 60
//! ```
//!
//! `S x y dx dy t dt` — the box encoding of [`Sample`]: west/south corner in
//! meters, extents in meters, window start/length in minutes. Comments (`#`)
//! and blank lines are ignored except for the `# name:` header.
//!
//! ### Event streams
//!
//! The streaming pipeline (`glove stream`) speaks a sibling format, one
//! record per logged network event, strictly time-ordered:
//!
//! ```text
//! # glove events v1
//! # name: civ-like
//! E 17 1200 300 100 100 481 1   <- user id then the S fields
//! E 4 5400 800 100 100 482 1
//! ```
//!
//! [`EventReader`] iterates such a file through a [`io::BufRead`] without
//! ever holding more than one line resident — the ingest half of the
//! bounded-memory pipeline.

use glove_core::stream::StreamEvent;
use glove_core::{Dataset, Fingerprint, GloveError, Sample, UserId};
use std::fs;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Writes a dataset's text representation to any sink, one fingerprint at a
/// time — no whole-dataset string is ever materialized.
pub fn write_to(dataset: &Dataset, out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "# glove dataset v1")?;
    writeln!(out, "# name: {}", dataset.name)?;
    for fp in &dataset.fingerprints {
        let users: Vec<String> = fp.users().iter().map(|u| u.to_string()).collect();
        writeln!(out, "F {}", users.join(","))?;
        for s in fp.samples() {
            writeln!(out, "S {} {} {} {} {} {}", s.x, s.y, s.dx, s.dy, s.t, s.dt)?;
        }
    }
    Ok(())
}

/// Serializes a dataset to its text representation (small datasets and
/// tests; large datasets should stream through [`write_file`]).
pub fn to_string(dataset: &Dataset) -> String {
    let mut buf = Vec::new();
    write_to(dataset, &mut buf).expect("writing to memory cannot fail");
    String::from_utf8(buf).expect("dataset text is UTF-8")
}

/// Writes a dataset to a file through a [`BufWriter`], fingerprint by
/// fingerprint: peak extra memory is one sample line, not O(dataset).
pub fn write_file(dataset: &Dataset, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(fs::File::create(path)?);
    write_to(dataset, &mut w)?;
    w.flush()
}

/// Parse error with line context.
#[derive(Debug)]
pub enum ParseError {
    /// I/O failure while reading.
    Io(io::Error),
    /// Syntax or semantic error at a line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// The parsed data violates model invariants.
    Model(GloveError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Model(e) => write!(f, "invalid data: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

impl From<GloveError> for ParseError {
    fn from(e: GloveError) -> Self {
        ParseError::Model(e)
    }
}

/// Parses a dataset from its text representation.
pub fn from_str(content: &str) -> Result<Dataset, ParseError> {
    let mut name = String::from("unnamed");
    let mut fingerprints: Vec<Fingerprint> = Vec::new();
    let mut current_users: Option<Vec<UserId>> = None;
    let mut current_samples: Vec<Sample> = Vec::new();

    let mut flush = |users: Option<Vec<UserId>>,
                     samples: &mut Vec<Sample>,
                     line: usize|
     -> Result<(), ParseError> {
        if let Some(users) = users {
            if samples.is_empty() {
                return Err(ParseError::Syntax {
                    line,
                    message: "fingerprint with no samples".into(),
                });
            }
            fingerprints.push(Fingerprint::with_users(users, std::mem::take(samples))?);
        }
        Ok(())
    };

    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("name:") {
                name = n.trim().to_string();
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("F ") {
            flush(current_users.take(), &mut current_samples, line_no)?;
            let users: Result<Vec<UserId>, _> = rest
                .split(',')
                .map(|t| t.trim().parse::<UserId>())
                .collect();
            let users = users.map_err(|e| ParseError::Syntax {
                line: line_no,
                message: format!("bad user id list: {e}"),
            })?;
            if users.is_empty() {
                return Err(ParseError::Syntax {
                    line: line_no,
                    message: "empty user id list".into(),
                });
            }
            current_users = Some(users);
        } else if let Some(rest) = line.strip_prefix("S ") {
            if current_users.is_none() {
                return Err(ParseError::Syntax {
                    line: line_no,
                    message: "sample before any fingerprint header".into(),
                });
            }
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 6 {
                return Err(ParseError::Syntax {
                    line: line_no,
                    message: format!("expected 6 sample fields, got {}", fields.len()),
                });
            }
            let parse_i64 = |s: &str| -> Result<i64, ParseError> {
                s.parse().map_err(|e| ParseError::Syntax {
                    line: line_no,
                    message: format!("bad integer '{s}': {e}"),
                })
            };
            let parse_u32 = |s: &str| -> Result<u32, ParseError> {
                s.parse().map_err(|e| ParseError::Syntax {
                    line: line_no,
                    message: format!("bad integer '{s}': {e}"),
                })
            };
            let sample = Sample::new(
                parse_i64(fields[0])?,
                parse_i64(fields[1])?,
                parse_u32(fields[2])?,
                parse_u32(fields[3])?,
                parse_u32(fields[4])?,
                parse_u32(fields[5])?,
            )?;
            current_samples.push(sample);
        } else {
            return Err(ParseError::Syntax {
                line: line_no,
                message: format!("unrecognized line: {line}"),
            });
        }
    }
    flush(
        current_users.take(),
        &mut current_samples,
        content.lines().count(),
    )?;
    Ok(Dataset::new(name, fingerprints)?)
}

/// Reads a dataset from a file.
pub fn read_file(path: &Path) -> Result<Dataset, ParseError> {
    let content = fs::read_to_string(path)?;
    from_str(&content)
}

// ---------------------------------------------------------------------------
// Event streams

/// Writes an event stream to any sink, one record per event.
pub fn write_events_to(
    name: &str,
    events: impl IntoIterator<Item = StreamEvent>,
    out: &mut impl Write,
) -> io::Result<()> {
    writeln!(out, "# glove events v1")?;
    writeln!(out, "# name: {name}")?;
    for e in events {
        let s = e.sample;
        writeln!(
            out,
            "E {} {} {} {} {} {} {}",
            e.user, s.x, s.y, s.dx, s.dy, s.t, s.dt
        )?;
    }
    Ok(())
}

/// Writes an event stream to a file through a [`BufWriter`]. The iterator
/// is drained incrementally, so a lazy source (e.g.
/// `glove_synth::ScenarioEvents`) never materializes the whole stream.
pub fn write_events_file(
    name: &str,
    events: impl IntoIterator<Item = StreamEvent>,
    path: &Path,
) -> io::Result<()> {
    let mut w = BufWriter::new(fs::File::create(path)?);
    write_events_to(name, events, &mut w)?;
    w.flush()
}

/// Serializes an event stream to a string (tests and small streams).
pub fn events_to_string(name: &str, events: impl IntoIterator<Item = StreamEvent>) -> String {
    let mut buf = Vec::new();
    write_events_to(name, events, &mut buf).expect("writing to memory cannot fail");
    String::from_utf8(buf).expect("event text is UTF-8")
}

/// Parses one `E user x y dx dy t dt` record.
fn parse_event_line(line: &str, line_no: usize) -> Result<StreamEvent, ParseError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.first() != Some(&"E") {
        return Err(ParseError::Syntax {
            line: line_no,
            message: format!(
                "expected an 'E' event record, got '{}'",
                fields.first().unwrap_or(&"")
            ),
        });
    }
    if fields.len() != 8 {
        return Err(ParseError::Syntax {
            line: line_no,
            message: format!(
                "expected 'E user x y dx dy t dt' (8 fields), got {} fields",
                fields.len()
            ),
        });
    }
    let bad = |s: &str, e: &dyn std::fmt::Display| ParseError::Syntax {
        line: line_no,
        message: format!("bad integer '{s}': {e}"),
    };
    let user: UserId = fields[1].parse().map_err(|e| bad(fields[1], &e))?;
    let x: i64 = fields[2].parse().map_err(|e| bad(fields[2], &e))?;
    let y: i64 = fields[3].parse().map_err(|e| bad(fields[3], &e))?;
    let dx: u32 = fields[4].parse().map_err(|e| bad(fields[4], &e))?;
    let dy: u32 = fields[5].parse().map_err(|e| bad(fields[5], &e))?;
    let t: u32 = fields[6].parse().map_err(|e| bad(fields[6], &e))?;
    let dt: u32 = fields[7].parse().map_err(|e| bad(fields[7], &e))?;
    let sample = Sample::new(x, y, dx, dy, t, dt)?;
    Ok(StreamEvent { user, sample })
}

/// Streaming reader of the event format: yields one event per `E` record,
/// holding a single line resident. Comments and blank lines are skipped;
/// the `# name:` header (if present before the first record) is captured.
pub struct EventReader<R: BufRead> {
    lines: io::Lines<R>,
    line_no: usize,
    name: String,
    /// First record line, pre-read while scanning the header.
    pending: Option<(usize, String)>,
}

impl EventReader<io::BufReader<fs::File>> {
    /// Opens an event file for streaming.
    pub fn open(path: &Path) -> Result<Self, ParseError> {
        Self::new(io::BufReader::new(fs::File::open(path)?))
    }
}

impl<R: BufRead> EventReader<R> {
    /// Wraps any buffered reader, consuming header comments eagerly so
    /// [`EventReader::name`] is available before the first event.
    pub fn new(reader: R) -> Result<Self, ParseError> {
        let mut lines = reader.lines();
        let mut line_no = 0usize;
        let mut name = String::from("unnamed");
        let mut pending = None;
        for raw in lines.by_ref() {
            let raw = raw?;
            line_no += 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if let Some(n) = rest.trim().strip_prefix("name:") {
                    name = n.trim().to_string();
                }
                continue;
            }
            pending = Some((line_no, line.to_string()));
            break;
        }
        Ok(Self {
            lines,
            line_no,
            name,
            pending,
        })
    }

    /// The stream name from the `# name:` header (`"unnamed"` if absent).
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<R: BufRead> Iterator for EventReader<R> {
    type Item = Result<StreamEvent, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some((line_no, line)) = self.pending.take() {
            return Some(parse_event_line(&line, line_no));
        }
        loop {
            let raw = match self.lines.next()? {
                Ok(raw) => raw,
                Err(e) => return Some(Err(ParseError::Io(e))),
            };
            self.line_no += 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            return Some(parse_event_line(line, self.line_no));
        }
    }
}

/// Parses an in-memory event stream (tests and small inputs).
pub fn events_from_str(content: &str) -> Result<(String, Vec<StreamEvent>), ParseError> {
    let reader = EventReader::new(io::Cursor::new(content))?;
    let name = reader.name().to_string();
    let events: Result<Vec<StreamEvent>, ParseError> = reader.collect();
    Ok((name, events?))
}

/// Sniffs whether a file is an event stream (vs a dataset): true when the
/// events header comment appears or the first record is an `E` line. Reads
/// only up to the first record line, mirroring [`EventReader::new`]'s
/// tolerance for arbitrarily long header comment blocks.
pub fn is_events_file(path: &Path) -> io::Result<bool> {
    let reader = io::BufReader::new(fs::File::open(path)?);
    for raw in reader.lines() {
        let raw = raw?;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("# glove events") {
            return Ok(true);
        }
        if line.starts_with('#') {
            continue;
        }
        return Ok(line.starts_with("E "));
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let fps = vec![
            Fingerprint::from_points(0, &[(100, 200, 5), (5_000, -300, 700)]).unwrap(),
            Fingerprint::with_users(
                vec![1, 2],
                vec![Sample::new(0, 0, 2_000, 1_500, 100, 60).unwrap()],
            )
            .unwrap(),
        ];
        Dataset::new("round-trip", fps).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ds = sample_dataset();
        let text = to_string(&ds);
        let back = from_str(&text).unwrap();
        assert_eq!(back.name, ds.name);
        assert_eq!(back.fingerprints.len(), ds.fingerprints.len());
        for (a, b) in back.fingerprints.iter().zip(&ds.fingerprints) {
            assert_eq!(a.users(), b.users());
            assert_eq!(a.samples(), b.samples());
        }
    }

    #[test]
    fn file_round_trip() {
        let ds = sample_dataset();
        let path = std::env::temp_dir().join("glove-io-test.txt");
        write_file(&ds, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.num_users(), ds.num_users());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_sample_before_header() {
        let err = from_str("S 0 0 100 100 0 1\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }));
    }

    #[test]
    fn rejects_malformed_sample() {
        let err = from_str("F 0\nS 0 0 100 100 0\n").unwrap_err();
        assert!(err.to_string().contains("expected 6 sample fields"));
    }

    #[test]
    fn rejects_bad_numbers() {
        let err = from_str("F 0\nS a 0 100 100 0 1\n").unwrap_err();
        assert!(err.to_string().contains("bad integer"));
    }

    #[test]
    fn rejects_empty_fingerprint() {
        let err = from_str("F 0\nF 1\nS 0 0 100 100 0 1\n").unwrap_err();
        assert!(err.to_string().contains("no samples"));
    }

    #[test]
    fn rejects_duplicate_users_across_fingerprints() {
        let text = "F 0\nS 0 0 100 100 0 1\nF 0\nS 0 0 100 100 5 1\n";
        let err = from_str(text).unwrap_err();
        assert!(matches!(err, ParseError::Model(_)));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# comment\n\n# name: hello\nF 3\n# inner comment\nS 0 0 100 100 0 1\n\n";
        let ds = from_str(text).unwrap();
        assert_eq!(ds.name, "hello");
        assert_eq!(ds.num_users(), 1);
    }

    #[test]
    fn rejects_zero_extent_sample() {
        let err = from_str("F 0\nS 0 0 0 100 0 1\n").unwrap_err();
        assert!(matches!(err, ParseError::Model(_)));
    }

    #[test]
    fn events_round_trip() {
        let ds = sample_dataset();
        let events = glove_core::stream::events_of(&ds);
        let text = events_to_string(&ds.name, events.iter().copied());
        let (name, back) = events_from_str(&text).unwrap();
        assert_eq!(name, ds.name);
        assert_eq!(back, events);
    }

    #[test]
    fn event_reader_streams_a_file() {
        let ds = sample_dataset();
        let events = glove_core::stream::events_of(&ds);
        let path = std::env::temp_dir().join(format!("glove-events-{}.txt", std::process::id()));
        write_events_file(&ds.name, events.iter().copied(), &path).unwrap();
        let reader = EventReader::open(&path).unwrap();
        assert_eq!(reader.name(), ds.name);
        let back: Result<Vec<_>, _> = reader.collect();
        assert_eq!(back.unwrap(), events);
        assert!(is_events_file(&path).unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dataset_files_are_not_sniffed_as_events() {
        let ds = sample_dataset();
        let path = std::env::temp_dir().join(format!("glove-ds-sniff-{}.txt", std::process::id()));
        write_file(&ds, &path).unwrap();
        assert!(!is_events_file(&path).unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn event_parse_errors_carry_line_numbers() {
        // Record on line 3 (after header comments) is malformed.
        let text = "# glove events v1\n# name: x\nE 0 0 0 100 100 0\n";
        let err = events_from_str(text).unwrap_err();
        assert!(
            matches!(err, ParseError::Syntax { line: 3, .. }),
            "got {err:?}"
        );
        let text = "# glove events v1\nE 0 zero 0 100 100 0 1\n";
        let err = events_from_str(text).unwrap_err();
        assert!(err.to_string().contains("line 2"), "got {err}");
        assert!(err.to_string().contains("bad integer"));
        // Invalid box extents surface as model errors, not panics.
        let text = "E 0 0 0 0 100 0 1\n";
        assert!(matches!(
            events_from_str(text).unwrap_err(),
            ParseError::Model(_)
        ));
    }

    #[test]
    fn buffered_writer_output_matches_to_string() {
        // write_file must stay byte-identical to the in-memory serializer —
        // the equivalence anchor relies on it.
        let ds = sample_dataset();
        let path = std::env::temp_dir().join(format!("glove-bufw-{}.txt", std::process::id()));
        write_file(&ds, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes, to_string(&ds).into_bytes());
        let _ = std::fs::remove_file(&path);
    }
}
