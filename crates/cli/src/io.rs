//! Dataset file format: a line-oriented, diff-friendly text encoding.
//!
//! ```text
//! # glove dataset v1
//! # name: civ-like
//! F 17            <- fingerprint header: user ids (comma-separated)
//! S 1200 300 100 100 481 1
//! S 5400 800 100 100 912 1
//! F 18,19         <- merged fingerprint shared by users 18 and 19
//! S 0 0 2000 1500 100 60
//! ```
//!
//! `S x y dx dy t dt` — the box encoding of [`Sample`]: west/south corner in
//! meters, extents in meters, window start/length in minutes. Comments (`#`)
//! and blank lines are ignored except for the `# name:` header.

use glove_core::{Dataset, Fingerprint, GloveError, Sample, UserId};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Serializes a dataset to its text representation.
pub fn to_string(dataset: &Dataset) -> String {
    let mut out = String::new();
    out.push_str("# glove dataset v1\n");
    out.push_str(&format!("# name: {}\n", dataset.name));
    for fp in &dataset.fingerprints {
        let users: Vec<String> = fp.users().iter().map(|u| u.to_string()).collect();
        out.push_str(&format!("F {}\n", users.join(",")));
        for s in fp.samples() {
            out.push_str(&format!(
                "S {} {} {} {} {} {}\n",
                s.x, s.y, s.dx, s.dy, s.t, s.dt
            ));
        }
    }
    out
}

/// Writes a dataset to a file.
pub fn write_file(dataset: &Dataset, path: &Path) -> io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(to_string(dataset).as_bytes())
}

/// Parse error with line context.
#[derive(Debug)]
pub enum ParseError {
    /// I/O failure while reading.
    Io(io::Error),
    /// Syntax or semantic error at a line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// The parsed data violates model invariants.
    Model(GloveError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Model(e) => write!(f, "invalid data: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

impl From<GloveError> for ParseError {
    fn from(e: GloveError) -> Self {
        ParseError::Model(e)
    }
}

/// Parses a dataset from its text representation.
pub fn from_str(content: &str) -> Result<Dataset, ParseError> {
    let mut name = String::from("unnamed");
    let mut fingerprints: Vec<Fingerprint> = Vec::new();
    let mut current_users: Option<Vec<UserId>> = None;
    let mut current_samples: Vec<Sample> = Vec::new();

    let mut flush = |users: Option<Vec<UserId>>,
                     samples: &mut Vec<Sample>,
                     line: usize|
     -> Result<(), ParseError> {
        if let Some(users) = users {
            if samples.is_empty() {
                return Err(ParseError::Syntax {
                    line,
                    message: "fingerprint with no samples".into(),
                });
            }
            fingerprints.push(Fingerprint::with_users(users, std::mem::take(samples))?);
        }
        Ok(())
    };

    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("name:") {
                name = n.trim().to_string();
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("F ") {
            flush(current_users.take(), &mut current_samples, line_no)?;
            let users: Result<Vec<UserId>, _> = rest
                .split(',')
                .map(|t| t.trim().parse::<UserId>())
                .collect();
            let users = users.map_err(|e| ParseError::Syntax {
                line: line_no,
                message: format!("bad user id list: {e}"),
            })?;
            if users.is_empty() {
                return Err(ParseError::Syntax {
                    line: line_no,
                    message: "empty user id list".into(),
                });
            }
            current_users = Some(users);
        } else if let Some(rest) = line.strip_prefix("S ") {
            if current_users.is_none() {
                return Err(ParseError::Syntax {
                    line: line_no,
                    message: "sample before any fingerprint header".into(),
                });
            }
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 6 {
                return Err(ParseError::Syntax {
                    line: line_no,
                    message: format!("expected 6 sample fields, got {}", fields.len()),
                });
            }
            let parse_i64 = |s: &str| -> Result<i64, ParseError> {
                s.parse().map_err(|e| ParseError::Syntax {
                    line: line_no,
                    message: format!("bad integer '{s}': {e}"),
                })
            };
            let parse_u32 = |s: &str| -> Result<u32, ParseError> {
                s.parse().map_err(|e| ParseError::Syntax {
                    line: line_no,
                    message: format!("bad integer '{s}': {e}"),
                })
            };
            let sample = Sample::new(
                parse_i64(fields[0])?,
                parse_i64(fields[1])?,
                parse_u32(fields[2])?,
                parse_u32(fields[3])?,
                parse_u32(fields[4])?,
                parse_u32(fields[5])?,
            )?;
            current_samples.push(sample);
        } else {
            return Err(ParseError::Syntax {
                line: line_no,
                message: format!("unrecognized line: {line}"),
            });
        }
    }
    flush(
        current_users.take(),
        &mut current_samples,
        content.lines().count(),
    )?;
    Ok(Dataset::new(name, fingerprints)?)
}

/// Reads a dataset from a file.
pub fn read_file(path: &Path) -> Result<Dataset, ParseError> {
    let content = fs::read_to_string(path)?;
    from_str(&content)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let fps = vec![
            Fingerprint::from_points(0, &[(100, 200, 5), (5_000, -300, 700)]).unwrap(),
            Fingerprint::with_users(
                vec![1, 2],
                vec![Sample::new(0, 0, 2_000, 1_500, 100, 60).unwrap()],
            )
            .unwrap(),
        ];
        Dataset::new("round-trip", fps).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ds = sample_dataset();
        let text = to_string(&ds);
        let back = from_str(&text).unwrap();
        assert_eq!(back.name, ds.name);
        assert_eq!(back.fingerprints.len(), ds.fingerprints.len());
        for (a, b) in back.fingerprints.iter().zip(&ds.fingerprints) {
            assert_eq!(a.users(), b.users());
            assert_eq!(a.samples(), b.samples());
        }
    }

    #[test]
    fn file_round_trip() {
        let ds = sample_dataset();
        let path = std::env::temp_dir().join("glove-io-test.txt");
        write_file(&ds, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.num_users(), ds.num_users());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_sample_before_header() {
        let err = from_str("S 0 0 100 100 0 1\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }));
    }

    #[test]
    fn rejects_malformed_sample() {
        let err = from_str("F 0\nS 0 0 100 100 0\n").unwrap_err();
        assert!(err.to_string().contains("expected 6 sample fields"));
    }

    #[test]
    fn rejects_bad_numbers() {
        let err = from_str("F 0\nS a 0 100 100 0 1\n").unwrap_err();
        assert!(err.to_string().contains("bad integer"));
    }

    #[test]
    fn rejects_empty_fingerprint() {
        let err = from_str("F 0\nF 1\nS 0 0 100 100 0 1\n").unwrap_err();
        assert!(err.to_string().contains("no samples"));
    }

    #[test]
    fn rejects_duplicate_users_across_fingerprints() {
        let text = "F 0\nS 0 0 100 100 0 1\nF 0\nS 0 0 100 100 5 1\n";
        let err = from_str(text).unwrap_err();
        assert!(matches!(err, ParseError::Model(_)));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# comment\n\n# name: hello\nF 3\n# inner comment\nS 0 0 100 100 0 1\n\n";
        let ds = from_str(text).unwrap();
        assert_eq!(ds.name, "hello");
        assert_eq!(ds.num_users(), 1);
    }

    #[test]
    fn rejects_zero_extent_sample() {
        let err = from_str("F 0\nS 0 0 0 100 0 1\n").unwrap_err();
        assert!(matches!(err, ParseError::Model(_)));
    }
}
