//! Smoke test: every registered experiment runs to completion on a tiny
//! population and produces a non-empty report plus its CSV artifacts.
//!
//! This guards the harness itself — the figure-regeneration code is part of
//! the deliverable and must not rot.

use glove_eval::{run_experiment, EvalConfig, EvalContext, EXPERIMENTS};

#[test]
fn every_experiment_runs_at_tiny_scale() {
    let out_dir = std::env::temp_dir().join(format!("glove-eval-smoke-{}", std::process::id()));
    let mut ctx = EvalContext::new(EvalConfig {
        users: 24,
        threads: 1,
        out_dir: out_dir.clone(),
        events_per_day: None,
    });

    for name in EXPERIMENTS {
        let report = run_experiment(name, &mut ctx)
            .unwrap_or_else(|| panic!("registered experiment {name} missing from dispatcher"));
        assert_eq!(&report.name, name);
        assert!(
            !report.body.trim().is_empty(),
            "experiment {name} produced an empty report"
        );
        for csv in &report.csv_files {
            let content = std::fs::read_to_string(csv)
                .unwrap_or_else(|e| panic!("experiment {name}: unreadable CSV {csv:?}: {e}"));
            let mut lines = content.lines();
            let header = lines.next().unwrap_or_default();
            assert!(
                header.contains(','),
                "experiment {name}: CSV {csv:?} has no header columns"
            );
            assert!(
                lines.next().is_some(),
                "experiment {name}: CSV {csv:?} has no data rows"
            );
        }
        // The rendered report must carry the experiment banner.
        assert!(report.render().contains(name));
    }

    let _ = std::fs::remove_dir_all(&out_dir);
}

#[test]
fn unknown_experiment_is_rejected() {
    let mut ctx = EvalContext::new(EvalConfig {
        users: 24,
        threads: 1,
        out_dir: std::env::temp_dir(),
        events_per_day: None,
    });
    assert!(run_experiment("fig99", &mut ctx).is_none());
}
