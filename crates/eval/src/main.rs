//! `glove-eval` — regenerate the tables and figures of the GLOVE paper.
//!
//! ```text
//! glove-eval [OPTIONS] <experiment>... | all
//!
//! Experiments: fig3a fig3b fig4 fig5a fig5b fig7 fig8 fig9 fig10 fig11
//!              table2 rog throughput attack ablation shard stream scenarios
//!
//! Options:
//!   --users N     subscribers per nation-wide dataset  (default 600)
//!   --events F    median CDR events per user-day       (default: preset)
//!   --threads N   worker threads, 0 = all cores        (default 0)
//!   --out DIR     CSV output directory                 (default results/)
//!   --quick       shorthand for --users 150
//! ```

use glove_eval::{run_experiment, EvalConfig, EvalContext, EXPERIMENTS};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: glove-eval [--users N] [--threads N] [--out DIR] [--quick] <experiment>... | all\n\
         experiments: {}",
        EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = EvalConfig::default();
    let mut selected: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--users" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.users = v.parse().unwrap_or_else(|_| usage());
            }
            "--events" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.events_per_day = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.threads = v.parse().unwrap_or_else(|_| usage());
            }
            "--out" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.out_dir = PathBuf::from(v);
            }
            "--quick" => cfg.users = 150,
            "--help" | "-h" => usage(),
            "all" => selected.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            name if EXPERIMENTS.contains(&name) => selected.push(name.to_string()),
            other => {
                eprintln!("unknown experiment or option: {other}");
                usage();
            }
        }
    }
    if selected.is_empty() {
        usage();
    }
    if cfg.users < 10 {
        eprintln!("--users must be at least 10");
        return ExitCode::from(2);
    }

    let mut ctx = EvalContext::new(cfg);
    for name in &selected {
        match run_experiment(name, &mut ctx) {
            Some(report) => println!("{}", report.render()),
            None => {
                eprintln!("unknown experiment: {name}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}
