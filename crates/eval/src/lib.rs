//! # glove-eval — the experiment harness of the GLOVE reproduction
//!
//! One runner per table and figure of the paper's evaluation (§5 and §7).
//! Each runner generates (or reuses) the synthetic stand-ins for the
//! `d4d-civ` / `d4d-sen` datasets, executes the corresponding workload and
//! emits:
//!
//! * a paper-style text report on stdout (the same rows/series the paper
//!   plots), and
//! * CSV series under the configured output directory, ready for plotting.
//!
//! The experiment inventory lives in DESIGN.md §4; measured-vs-paper values
//! are recorded in EXPERIMENTS.md. Run everything with
//! `cargo run --release -p glove-eval -- all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod experiments;
pub mod report;

pub use context::{EvalConfig, EvalContext};
pub use report::Report;

/// The registry of experiment names accepted by the CLI, in paper order.
pub const EXPERIMENTS: &[&str] = &[
    "fig3a",
    "fig3b",
    "fig4",
    "fig5a",
    "fig5b",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table2",
    "rog",
    "throughput",
    "attack",
    "ablation",
    "shard",
    "stream",
    "scenarios",
    "frontier",
];

/// Runs one experiment by name. Returns `None` for unknown names.
pub fn run_experiment(name: &str, ctx: &mut EvalContext) -> Option<Report> {
    let report = match name {
        "fig3a" => experiments::kgap::fig3a(ctx),
        "fig3b" => experiments::kgap::fig3b(ctx),
        "fig4" => experiments::kgap::fig4(ctx),
        "fig5a" => experiments::kgap::fig5a(ctx),
        "fig5b" => experiments::kgap::fig5b(ctx),
        "fig7" => experiments::accuracy::fig7(ctx),
        "fig8" => experiments::accuracy::fig8(ctx),
        "fig9" => experiments::accuracy::fig9(ctx),
        "fig10" => experiments::accuracy::fig10(ctx),
        "fig11" => experiments::accuracy::fig11(ctx),
        "table2" => experiments::table2::table2(ctx),
        "rog" => experiments::misc::rog(ctx),
        "throughput" => experiments::misc::throughput(ctx),
        "attack" => experiments::attack::attack(ctx),
        "ablation" => experiments::ablation::ablation(ctx),
        "shard" => experiments::shard::shard(ctx),
        "stream" => experiments::stream::stream(ctx),
        "scenarios" => experiments::scenarios::scenarios(ctx),
        "frontier" => experiments::frontier::frontier(ctx),
        _ => return None,
    };
    Some(report)
}
