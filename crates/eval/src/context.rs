//! Shared state across experiments: configuration, dataset cache and
//! memoized GLOVE runs.

use glove_core::api::RunBuilder;
use glove_core::glove::GloveOutput;
use glove_core::{Dataset, GloveConfig, SuppressionThresholds};
use glove_synth::{generate, ScenarioConfig, SynthDataset};
use std::collections::HashMap;
use std::path::PathBuf;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Subscribers per nation-wide dataset. The paper uses 82 k / 320 k; the
    /// reproduction defaults to a laptop-scale population whose distribution
    /// shapes are stable (see DESIGN.md §1 on scaling).
    pub users: usize,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Output directory for CSV series.
    pub out_dir: PathBuf,
    /// Override of the median CDR events per user-day (None = preset
    /// values). The paper's fingerprints carry hundreds of samples per week
    /// (§8); denser fingerprints sharpen the §5.3 tail-weight analysis but
    /// cost quadratically in the O(N²·n̄²) kernel.
    pub events_per_day: Option<f64>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            users: 600,
            threads: 0,
            out_dir: PathBuf::from("results"),
            events_per_day: None,
        }
    }
}

/// Lazily generated datasets plus memoized GLOVE runs, shared by all
/// experiments in one harness invocation.
pub struct EvalContext {
    /// The harness configuration.
    pub cfg: EvalConfig,
    civ: Option<SynthDataset>,
    sen: Option<SynthDataset>,
    metro: Option<SynthDataset>,
    scenarios: HashMap<String, SynthDataset>,
    glove_cache: HashMap<String, GloveOutput>,
}

impl EvalContext {
    /// Creates a context.
    pub fn new(cfg: EvalConfig) -> Self {
        Self {
            cfg,
            civ: None,
            sen: None,
            metro: None,
            scenarios: HashMap::new(),
            glove_cache: HashMap::new(),
        }
    }

    /// The `d4d-civ` stand-in (generated on first use).
    pub fn civ(&mut self) -> &SynthDataset {
        if self.civ.is_none() {
            let mut cfg = ScenarioConfig::civ_like(self.cfg.users);
            if let Some(rate) = self.cfg.events_per_day {
                cfg.traffic.events_per_day_median = rate;
            }
            eprintln!("[eval] generating {} ({} users)…", cfg.name, self.cfg.users);
            self.civ = Some(generate(&cfg));
        }
        self.civ.as_ref().expect("generated above")
    }

    /// The `d4d-sen` stand-in (generated on first use).
    pub fn sen(&mut self) -> &SynthDataset {
        if self.sen.is_none() {
            let mut cfg = ScenarioConfig::sen_like(self.cfg.users);
            if let Some(rate) = self.cfg.events_per_day {
                cfg.traffic.events_per_day_median = rate;
            }
            eprintln!("[eval] generating {} ({} users)…", cfg.name, self.cfg.users);
            self.sen = Some(generate(&cfg));
        }
        self.sen.as_ref().expect("generated above")
    }

    /// The dense single-region `metro-like` scenario (generated on first
    /// use) — the workload the adversarial evaluation targets.
    pub fn metro(&mut self) -> &SynthDataset {
        if self.metro.is_none() {
            let mut cfg = ScenarioConfig::metro_like(self.cfg.users);
            if let Some(rate) = self.cfg.events_per_day {
                cfg.traffic.events_per_day_median = rate;
            }
            eprintln!("[eval] generating {} ({} users)…", cfg.name, self.cfg.users);
            self.metro = Some(generate(&cfg));
        }
        self.metro.as_ref().expect("generated above")
    }

    /// A workload scenario by preset name (`"flash"`, `"churn"`, …; see
    /// `glove_synth::PRESETS`), generated on first use at the harness user
    /// count. Panics on unknown preset names — the scenario-matrix
    /// experiment only asks for advertised ones.
    pub fn scenario(&mut self, name: &str) -> &SynthDataset {
        if !self.scenarios.contains_key(name) {
            let mut cfg = ScenarioConfig::preset(name, self.cfg.users)
                .unwrap_or_else(|| panic!("unknown scenario preset '{name}'"));
            if let Some(rate) = self.cfg.events_per_day {
                cfg.traffic.events_per_day_median = rate;
            }
            eprintln!("[eval] generating {} ({} users)…", cfg.name, self.cfg.users);
            self.scenarios.insert(name.to_string(), generate(&cfg));
        }
        &self.scenarios[name]
    }

    /// Both nation-wide datasets, cloned out of the cache (cheap relative to
    /// the experiments themselves; avoids borrow entanglement in runners).
    pub fn both(&mut self) -> Vec<(String, Dataset)> {
        let civ = self.civ().dataset.clone();
        let sen = self.sen().dataset.clone();
        vec![("civ-like".into(), civ), ("sen-like".into(), sen)]
    }

    /// Runs GLOVE, memoizing on `(dataset name, k, suppression)` so that
    /// experiments sharing a configuration (e.g. Fig. 7 and Fig. 8 at k = 2)
    /// pay for it once.
    pub fn glove(
        &mut self,
        dataset: &Dataset,
        k: usize,
        suppression: SuppressionThresholds,
    ) -> GloveOutput {
        let key = format!(
            "{}|k={}|s={:?}|t={:?}",
            dataset.name, k, suppression.max_space_m, suppression.max_time_min
        );
        if let Some(hit) = self.glove_cache.get(&key) {
            return hit.clone();
        }
        let config = GloveConfig {
            k,
            suppression,
            threads: self.cfg.threads,
            ..GloveConfig::default()
        };
        eprintln!(
            "[eval] GLOVE on {} (k={}, suppression={:?}/{:?})…",
            dataset.name, k, suppression.max_space_m, suppression.max_time_min
        );
        let outcome = RunBuilder::new(config)
            .run(dataset)
            .expect("anonymization must succeed");
        let stats = outcome
            .report
            .detail
            .as_glove()
            .expect("glove detail")
            .clone();
        let out = GloveOutput {
            dataset: outcome.expect_dataset(),
            stats,
        };
        self.glove_cache.insert(key.clone(), out);
        self.glove_cache[&key].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> EvalContext {
        EvalContext::new(EvalConfig {
            users: 24,
            threads: 0,
            out_dir: std::env::temp_dir().join("glove-eval-ctx-test"),
            events_per_day: None,
        })
    }

    #[test]
    fn datasets_are_cached() {
        let mut ctx = tiny_ctx();
        let a = ctx.civ().dataset.num_samples();
        let b = ctx.civ().dataset.num_samples();
        assert_eq!(a, b);
    }

    #[test]
    fn scenario_cache_serves_workload_presets() {
        let mut ctx = tiny_ctx();
        let a = ctx.scenario("longtail").dataset.num_samples();
        let b = ctx.scenario("longtail").dataset.num_samples();
        assert_eq!(a, b);
        assert!(
            !ctx.scenario("longtail").long_tail_users().is_empty(),
            "the longtail preset must label a cohort"
        );
    }

    #[test]
    fn glove_runs_are_memoized() {
        let mut ctx = tiny_ctx();
        let ds = ctx.civ().dataset.clone();
        let a = ctx.glove(&ds, 2, SuppressionThresholds::default());
        let b = ctx.glove(&ds, 2, SuppressionThresholds::default());
        // Same cached run: identical stats object contents.
        assert_eq!(a.stats.merges, b.stats.merges);
        assert_eq!(a.dataset.num_samples(), b.dataset.num_samples());
    }
}
