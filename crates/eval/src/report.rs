//! Report rendering: aligned text tables for stdout and CSV files for
//! plotting.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A finished experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment identifier (e.g. `fig5a`).
    pub name: String,
    /// Title line (paper reference).
    pub title: String,
    /// Rendered text body.
    pub body: String,
    /// CSV files written.
    pub csv_files: Vec<PathBuf>,
}

impl Report {
    /// Starts a report.
    pub fn new(name: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            title: title.into(),
            body: String::new(),
            csv_files: Vec::new(),
        }
    }

    /// Appends a paragraph line.
    pub fn line(&mut self, text: impl AsRef<str>) {
        self.body.push_str(text.as_ref());
        self.body.push('\n');
    }

    /// Appends an aligned table: `header` then `rows` (all stringly).
    pub fn table(&mut self, header: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                let _ = write!(out, "{cell:>w$}  ");
            }
            out.push('\n');
        };
        let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
        render_row(&header_cells, &mut self.body);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        render_row(&rule, &mut self.body);
        for row in rows {
            render_row(row, &mut self.body);
        }
    }

    /// Writes a CSV series under `dir` and books it in `csv_files` — the
    /// one shared writer every experiment goes through. A write failure is
    /// noted in the report body instead of aborting the experiment (the
    /// text report is still worth printing on a read-only filesystem).
    pub fn csv(&mut self, dir: &Path, file_name: &str, header: &[&str], rows: &[Vec<String>]) {
        match write_csv(dir, file_name, header, rows) {
            Ok(path) => self.csv_files.push(path),
            Err(e) => self.line(format!("({file_name} not written: {e})")),
        }
    }

    /// Renders the full report for stdout.
    pub fn render(&self) -> String {
        let bar = "=".repeat(72);
        let mut out = String::new();
        let _ = writeln!(out, "{bar}\n{} — {}\n{bar}", self.name, self.title);
        out.push_str(&self.body);
        if !self.csv_files.is_empty() {
            let _ = writeln!(out, "CSV:");
            for f in &self.csv_files {
                let _ = writeln!(out, "  {}", f.display());
            }
        }
        out
    }
}

/// Writes a CSV file: `header` row then `rows`, creating the directory.
pub fn write_csv(
    dir: &Path,
    file_name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(file_name);
    let mut content = String::new();
    content.push_str(&header.join(","));
    content.push('\n');
    for row in rows {
        content.push_str(&row.join(","));
        content.push('\n');
    }
    fs::write(&path, content)?;
    Ok(path)
}

/// A labelled CDF curve, as the experiment runners build them for
/// [`ascii_cdf`] rendering.
pub type NamedCurve = (String, Box<dyn Fn(f64) -> f64>);

/// Renders a set of CDF curves as a compact ASCII chart, one row per curve:
/// each column is an abscissa bucket over `[lo, hi]` and the glyph encodes
/// F(x) in ninths (` ` = 0, `█` = 1). A legend line maps rows to labels.
///
/// This is what makes `glove-eval` output *look* like the paper's figures
/// in a terminal; the precise series go to CSV.
pub fn ascii_cdf(
    curves: &[(String, &dyn Fn(f64) -> f64)],
    lo: f64,
    hi: f64,
    width: usize,
) -> String {
    const GLYPHS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    assert!(width >= 2 && hi > lo);
    let label_w = curves.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, f) in curves {
        let _ = write!(out, "{label:>label_w$} |");
        for i in 0..width {
            let x = lo + (hi - lo) * i as f64 / (width - 1) as f64;
            let v = f(x).clamp(0.0, 1.0);
            let idx = (v * (GLYPHS.len() - 1) as f64).round() as usize;
            out.push(GLYPHS[idx]);
        }
        out.push_str("|\n");
    }
    let lo_label = format!("{lo}");
    let _ = writeln!(
        out,
        "{:>label_w$}  {lo_label:<w$}{hi}",
        "",
        w = width.saturating_sub(format!("{hi}").len())
    );
    out
}

/// Formats a float compactly for reports (4 significant-ish decimals).
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut r = Report::new("t", "test");
        r.table(
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["100".into(), "20000".into()],
            ],
        );
        let lines: Vec<&str> = r.body.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows render to the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("glove-eval-test-csv");
        let path = write_csv(&dir, "t.csv", &["x", "y"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234567), "0.1235");
        assert_eq!(fmt(2.4459), "2.45");
        assert_eq!(fmt(12345.6), "12345.6");
        assert_eq!(pct(0.125), "12.5%");
    }

    #[test]
    fn ascii_cdf_renders_monotone_fill() {
        let f = |x: f64| x; // identity CDF on [0, 1]
        let g = |_: f64| 1.0; // saturated CDF
        let chart = ascii_cdf(
            &[("ramp".to_string(), &f as _), ("full".to_string(), &g as _)],
            0.0,
            1.0,
            20,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("ramp |"));
        assert!(lines[0].trim_end().ends_with('|'));
        // Saturated curve is all-full glyphs.
        assert!(lines[1].contains("████████████████████"));
    }

    #[test]
    fn render_includes_title_and_body() {
        let mut r = Report::new("figX", "An experiment");
        r.line("hello");
        let s = r.render();
        assert!(s.contains("figX"));
        assert!(s.contains("An experiment"));
        assert!(s.contains("hello"));
    }
}
