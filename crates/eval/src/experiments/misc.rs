//! Supporting measurements: radius of gyration (§7.3) and the pairwise
//! kernel throughput (§6.3).

use crate::context::EvalContext;
use crate::report::{fmt, Report};
use glove_core::parallel::par_map;
use glove_core::stretch::fingerprint_stretch;
use glove_core::StretchConfig;
use glove_stats::{radius_of_gyration, Summary};
use std::time::Instant;

/// §7.3 — radius of gyration of the synthetic populations.
///
/// Paper values: median ≈ 1.8 km / mean ≈ 12 km (civ), median ≈ 2 km / mean
/// ≈ 10 km (sen). The generator is calibrated to land in these bands.
pub fn rog(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new("rog", "radius of gyration (paper §7.3)");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (name, ds) in ctx.both() {
        let rogs: Vec<f64> = ds
            .fingerprints
            .iter()
            .filter_map(|fp| {
                let pts: Vec<(f64, f64)> = fp
                    .samples()
                    .iter()
                    .map(|s| (s.x as f64, s.y as f64))
                    .collect();
                radius_of_gyration(&pts)
            })
            .collect();
        let s = Summary::of(&rogs).expect("non-empty");
        rows.push(vec![
            name.clone(),
            fmt(s.median / 1_000.0),
            fmt(s.mean / 1_000.0),
            fmt(s.p25 / 1_000.0),
            fmt(s.p75 / 1_000.0),
        ]);
        csv_rows.push(vec![
            name,
            fmt(s.median),
            fmt(s.mean),
            fmt(s.p25),
            fmt(s.p75),
        ]);
    }
    report.table(
        &[
            "dataset",
            "median [km]",
            "mean [km]",
            "p25 [km]",
            "p75 [km]",
        ],
        &rows,
    );
    report.line("");
    report.line("Paper: median 1.8-2 km, mean 10-12 km.");
    report.csv(
        &ctx.cfg.out_dir,
        "rog_stats.csv",
        &["dataset", "median_m", "mean_m", "p25_m", "p75_m"],
        &csv_rows,
    );
    report
}

/// §6.3 — throughput of the pairwise stretch kernel, in fingerprint pairs
/// per second (the paper reports 20–50 k pairs/s on a GeForce GT 740).
pub fn throughput(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new("throughput", "pairwise kernel throughput (paper §6.3)");
    let cfg = StretchConfig::default();
    let threads = ctx.cfg.threads;
    let ds = ctx.civ().dataset.clone();
    let n = ds.fingerprints.len().min(300);
    let pairs = n * (n - 1) / 2;

    let started = Instant::now();
    let _rows = par_map(n, threads, |i| {
        let mut row = Vec::with_capacity(i);
        for j in 0..i {
            row.push(fingerprint_stretch(
                &ds.fingerprints[i],
                &ds.fingerprints[j],
                &cfg,
            ));
        }
        row
    });
    let elapsed = started.elapsed().as_secs_f64();
    let rate = pairs as f64 / elapsed;

    let avg_len: f64 = ds.fingerprints[..n]
        .iter()
        .map(|f| f.len() as f64)
        .sum::<f64>()
        / n as f64;
    report.line(format!(
        "{pairs} pairs over {n} fingerprints (mean length {}) in {} s",
        fmt(avg_len),
        fmt(elapsed)
    ));
    report.line(format!("throughput: {} pairs/second", fmt(rate)));
    report.line("");
    report.line("Paper: 20,000-50,000 pairs/second on a single low-end GPU (GT 740).");
    report.csv(
        &ctx.cfg.out_dir,
        "throughput.csv",
        &[
            "fingerprints",
            "pairs",
            "mean_len",
            "seconds",
            "pairs_per_s",
        ],
        &[vec![
            n.to_string(),
            pairs.to_string(),
            fmt(avg_len),
            fmt(elapsed),
            fmt(rate),
        ]],
    );
    report
}
