//! Streaming vs batch GLOVE: pricing the window length.
//!
//! Runs GLOVE on the same dataset as one batch job and as a windowed stream
//! at several window lengths (both carry policies) and reports, per
//! configuration:
//!
//! * **k-retention** — the fraction of user-window slices that reach a
//!   published k-anonymous group (slices lost to under-`k` windows are the
//!   price of short windows on sparse data);
//! * **accuracy** — mean published position/time accuracy across all
//!   epochs vs the batch output (shorter windows have fewer merge partners
//!   per epoch, so accuracy degrades gracefully with `W`);
//! * **cost and residency** — anonymization wall clock, events/s, and the
//!   peak resident fingerprints/samples that bound the engine's memory.
//!
//! The full-horizon `fresh` row doubles as the equivalence anchor: its
//! single epoch must equal the batch output exactly.

use crate::context::EvalContext;
use crate::report::{fmt, pct, Report};
use glove_core::accuracy::{mean_position_accuracy_m, mean_time_accuracy_min};
use glove_core::api::{NullObserver, RunBuilder, RunOutput};
use glove_core::stream::{events_of, StreamEvent, StreamRun};
use glove_core::{CarryPolicy, GloveConfig, StreamConfig, SuppressionThresholds, UnderKPolicy};

/// One measured configuration.
struct Row {
    label: String,
    window_min: u32,
    epochs: u64,
    retention: f64,
    pos_acc_m: f64,
    time_acc_min: f64,
    events_per_s: f64,
    peak_fps: usize,
    peak_samples: usize,
    peak_store_bytes: u64,
    peak_rss_bytes: u64,
}

impl Row {
    fn cells(&self, retained_as_pct: bool) -> Vec<String> {
        vec![
            self.label.clone(),
            self.window_min.to_string(),
            self.epochs.to_string(),
            if retained_as_pct {
                pct(self.retention)
            } else {
                fmt(self.retention)
            },
            fmt(self.pos_acc_m),
            fmt(self.time_acc_min),
            fmt(self.events_per_s),
            self.peak_fps.to_string(),
            self.peak_samples.to_string(),
            self.peak_store_bytes.to_string(),
            self.peak_rss_bytes.to_string(),
        ]
    }
}

/// Sample-weighted mean accuracy across all epoch outputs.
fn stream_accuracy(run: &StreamRun) -> (f64, f64) {
    let mut pos = 0.0;
    let mut time = 0.0;
    let mut weight = 0.0;
    for epoch in &run.epochs {
        let ds = &epoch.output.dataset;
        let w = ds.num_samples() as f64;
        pos += mean_position_accuracy_m(ds) * w;
        time += mean_time_accuracy_min(ds) * w;
        weight += w;
    }
    if weight > 0.0 {
        (pos / weight, time / weight)
    } else {
        (0.0, 0.0)
    }
}

fn run_one(
    name: &str,
    events: &[StreamEvent],
    window_min: u32,
    carry: CarryPolicy,
    threads: usize,
    label: &str,
) -> (Row, StreamRun) {
    let glove = GloveConfig {
        threads,
        ..GloveConfig::default()
    };
    let config = StreamConfig {
        window_min,
        carry,
        under_k: UnderKPolicy::Suppress,
        glove,
    };
    let started = std::time::Instant::now();
    let outcome = RunBuilder::new(glove)
        .stream(config)
        .run_events(name, &mut events.iter().copied().map(Ok), &mut NullObserver)
        .expect("stream succeeds");
    let elapsed = started.elapsed().as_secs_f64();
    let stats = outcome
        .report
        .detail
        .as_stream()
        .expect("stream detail")
        .clone();
    let epochs = match outcome.output {
        RunOutput::Epochs(epochs) => epochs,
        RunOutput::Dataset(_) => unreachable!("stream mode emits epochs"),
    };
    let run = StreamRun { epochs, stats };
    for epoch in &run.epochs {
        assert!(
            epoch.output.dataset.is_k_anonymous(2),
            "{label}: epoch {} below k",
            epoch.epoch
        );
    }
    let entered = run.stats.entered_user_slices() + run.stats.suppressed_users;
    let published: u64 = run
        .epochs
        .iter()
        .map(|e| e.output.dataset.num_users() as u64)
        .sum();
    let (pos_acc_m, time_acc_min) = stream_accuracy(&run);
    let row = Row {
        label: label.to_string(),
        window_min,
        epochs: run.stats.epochs,
        retention: if entered > 0 {
            published as f64 / entered as f64
        } else {
            0.0
        },
        pos_acc_m,
        time_acc_min,
        events_per_s: run.stats.events as f64 / elapsed.max(1e-9),
        peak_fps: run.stats.peak_resident_fingerprints,
        peak_samples: run.stats.peak_resident_samples,
        peak_store_bytes: run.stats.ledger.peak_store_bytes,
        peak_rss_bytes: run.stats.ledger.peak_rss_bytes,
    };
    (row, run)
}

/// The `stream` experiment entry point.
pub fn stream(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new(
        "stream",
        "windowed online GLOVE vs the monolithic batch run",
    );
    let threads = ctx.cfg.threads;
    let ds = ctx.civ().dataset.clone();
    let batch = ctx.glove(&ds, 2, SuppressionThresholds::default());
    let events = events_of(&ds);
    let span = ds.span_min() as u32 + 1;

    let mut rows = Vec::new();

    // Full-horizon single window: the equivalence anchor.
    let (row, run) = run_one(
        &ds.name,
        &events,
        span,
        CarryPolicy::Fresh,
        threads,
        "batch-window",
    );
    assert_eq!(run.epochs.len(), 1, "full horizon must be one window");
    assert_eq!(
        run.epochs[0].output.dataset.fingerprints, batch.dataset.fingerprints,
        "single-window fresh stream diverged from the batch run"
    );
    rows.push(row);

    for window in [5_760u32, 1_440] {
        for (carry, tag) in [
            (CarryPolicy::Fresh, "fresh"),
            (CarryPolicy::Sticky, "sticky"),
        ] {
            let label = format!("{tag}-w{window}");
            let (row, _) = run_one(&ds.name, &events, window, carry, threads, &label);
            rows.push(row);
        }
    }

    let table: Vec<Vec<String>> = rows.iter().map(|r| r.cells(true)).collect();
    report.table(
        &[
            "mode",
            "window [min]",
            "epochs",
            "slices kept",
            "pos acc [m]",
            "time acc [min]",
            "events/s",
            "peak fps",
            "peak samples",
            "store [B]",
            "rss [B]",
        ],
        &table,
    );
    report.line("");
    report.line(format!(
        "batch reference: {:.0} m / {:.0} min accuracy over {} samples.",
        mean_position_accuracy_m(&batch.dataset),
        mean_time_accuracy_min(&batch.dataset),
        batch.dataset.num_samples(),
    ));
    report.line(
        "The batch-window row is the exactness anchor (single full-horizon window, \
         fresh carry: output equals the batch run). Shorter windows trade \
         k-retention and accuracy for bounded latency and memory; sticky carry \
         keeps stable cohorts' merge partners across epochs.",
    );

    report.csv(
        &ctx.cfg.out_dir,
        "stream_window.csv",
        &[
            "mode",
            "window_min",
            "epochs",
            "slices_retained",
            "pos_acc_m",
            "time_acc_min",
            "events_per_s",
            "peak_resident_fingerprints",
            "peak_resident_samples",
            "peak_store_bytes",
            "peak_rss_bytes",
        ],
        &rows.iter().map(|r| r.cells(false)).collect::<Vec<_>>(),
    );
    report
}
