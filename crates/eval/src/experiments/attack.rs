//! Record-linkage attack evaluation — the motivating threat model of §1
//! and §2.3, demonstrated before and after GLOVE, plus the scaled-up
//! adversaries of the attack subsystem (multi-point with noise,
//! top-location classifier, cross-epoch stream linkage).
//!
//! Not a figure of the paper itself, but the empirical closure of its
//! argument: the uniqueness statistics the paper cites (refs. `[5]` and
//! `[6]`) hold on the synthetic data too, and GLOVE's k-anonymity bounds
//! the adversary's anonymity set at k regardless of how many true points
//! they know (quasi-identifier-blind anonymity, §2.3). Two CSV series go
//! beyond the paper:
//!
//! * `attack_success_vs_k.csv` — multi-point success (p ∈ {1, 2, 3, 5})
//!   against the raw release and GLOVE at increasing k on the metro
//!   scenario, the Fig. 7/8-style attacker-success axis;
//! * `attack_stream_linkage.csv` — cross-epoch group linkage of streamed
//!   output under `Fresh` vs `Sticky` carry, quantifying the DESIGN.md
//!   caveat that `Sticky` trades cross-epoch unlinkability for stability.

use crate::context::EvalContext;
use crate::report::{fmt, pct, Report};
use glove_attack::{
    cross_epoch_attack, multi_point_attack, random_point_attack, top_location_uniqueness,
    AdversaryNoise, CrossEpochAttack, MultiPointAttack, PublishedView, RandomPointAttack,
};
use glove_core::stream::{events_of, run_stream};
use glove_core::{CarryPolicy, Dataset, StreamConfig, SuppressionThresholds};

/// Window length of the streamed-linkage measurement: two-day epochs over
/// the metro scenario's multi-day horizon.
const STREAM_WINDOW_MIN: u32 = 2_880;

/// Runs all adversaries against raw and anonymized releases.
pub fn attack(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new(
        "attack",
        "record-linkage adversaries before/after GLOVE (paper §1, §2.3)",
    );
    let mut csv_rows = Vec::new();

    for (name, ds) in ctx.both() {
        let out = ctx.glove(&ds, 2, SuppressionThresholds::default());

        // Adversary [5]: top-L locations.
        let mut rows = Vec::new();
        for l in [1usize, 2, 3] {
            let raw = top_location_uniqueness(&ds, l);
            let anon = top_location_uniqueness(&out.dataset, l);
            rows.push(vec![format!("top-{l} locations"), pct(raw), pct(anon)]);
            csv_rows.push(vec![name.clone(), format!("top{l}"), fmt(raw), fmt(anon)]);
        }

        // Adversary [6]: p random spatiotemporal points.
        for points in [2usize, 4] {
            let cfg = RandomPointAttack {
                points,
                trials: 300,
                seed: 0x00A7_7AC4 + points as u64,
            };
            let raw = random_point_attack(&ds, &ds, &cfg);
            let anon = random_point_attack(&ds, &out.dataset, &cfg);
            rows.push(vec![
                format!("{points} random points"),
                pct(raw.pinpoint_rate()),
                pct(anon.pinpoint_rate()),
            ]);
            rows.push(vec![
                format!("  min anonymity set"),
                raw.min_anonymity().to_string(),
                anon.min_anonymity().to_string(),
            ]);
            csv_rows.push(vec![
                name.clone(),
                format!("random{points}"),
                fmt(raw.pinpoint_rate()),
                fmt(anon.pinpoint_rate()),
            ]);
        }

        report.line(format!("dataset: {name}"));
        report.table(&["adversary", "raw data", "after GLOVE k=2"], &rows);
        report.line("");
    }

    report.line("Context: ref. `[5]` found 50% top-3 uniqueness at 25M users; ref. `[6]`");
    report.line("pinpointed ~95% of users from 4 points. After GLOVE every record hides");
    report.line(">= k subscribers, so the pinpoint rate must be exactly 0.");
    report.line("");

    report.csv(
        &ctx.cfg.out_dir,
        "attack_linkage.csv",
        &["dataset", "adversary", "raw", "after_glove"],
        &csv_rows,
    );

    success_vs_k(ctx, &mut report);
    stream_linkage(ctx, &mut report);
    report
}

/// Multi-point attacker success vs k on the metro scenario.
fn success_vs_k(ctx: &mut EvalContext, report: &mut Report) {
    let threads = ctx.cfg.threads;
    let ds = ctx.metro().dataset.clone();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for k in [1usize, 2, 4] {
        let published = if k == 1 {
            ds.clone() // the raw release
        } else {
            ctx.glove(&ds, k, SuppressionThresholds::default()).dataset
        };
        for points in [1usize, 2, 3, 5] {
            let cfg = MultiPointAttack {
                points,
                trials: 200,
                seed: 0x00A7_7AC4 + points as u64,
                noise: AdversaryNoise::exact(),
                threads,
            };
            let outcome = multi_point_attack(&ds, &PublishedView::Dataset(&published), &cfg);
            rows.push(vec![
                k.to_string(),
                points.to_string(),
                pct(outcome.pinpoint_rate()),
                pct(outcome.linked_rate()),
                fmt(outcome.mean_anonymity()),
                outcome.min_anonymity().to_string(),
            ]);
            csv.push(vec![
                ds.name.clone(),
                k.to_string(),
                points.to_string(),
                fmt(outcome.pinpoint_rate()),
                fmt(outcome.linked_rate()),
                fmt(outcome.mean_anonymity()),
                outcome.min_anonymity().to_string(),
            ]);
        }
    }
    report.line(format!(
        "multi-point attacker success vs k ({}, k = 1 is the raw release):",
        ds.name
    ));
    report.table(
        &[
            "k",
            "points",
            "pinpoint",
            "linked",
            "mean anon set",
            "min anon set",
        ],
        &rows,
    );
    report.line("");
    report.csv(
        &ctx.cfg.out_dir,
        "attack_success_vs_k.csv",
        &[
            "dataset",
            "k",
            "points",
            "pinpoint_rate",
            "linked_rate",
            "mean_anonymity",
            "min_anonymity",
        ],
        &csv,
    );
}

/// Cross-epoch linkage of streamed output: the Sticky-vs-Fresh gap.
fn stream_linkage(ctx: &mut EvalContext, report: &mut Report) {
    let threads = ctx.cfg.threads;
    let ds = ctx.metro().dataset.clone();
    let events = events_of(&ds);
    let attack_cfg = CrossEpochAttack { l: 8, threads };

    let mut measured = Vec::new();
    for (carry, tag) in [
        (CarryPolicy::Fresh, "fresh"),
        (CarryPolicy::Sticky, "sticky"),
    ] {
        let mut config = StreamConfig {
            window_min: STREAM_WINDOW_MIN,
            carry,
            ..StreamConfig::default()
        };
        config.glove.threads = threads;
        let run = run_stream(ds.name.clone(), events.iter().copied(), config)
            .expect("streamed run succeeds");
        let epochs: Vec<Dataset> = run.epochs.into_iter().map(|e| e.output.dataset).collect();
        let outcome = cross_epoch_attack(&epochs, &attack_cfg);
        measured.push((tag, outcome));
    }

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (tag, outcome) in &measured {
        rows.push(vec![
            tag.to_string(),
            outcome.epochs.to_string(),
            outcome.attempts().to_string(),
            pct(outcome.linkage_rate()),
            pct(outcome.persistence_rate()),
        ]);
        csv.push(vec![
            ds.name.clone(),
            tag.to_string(),
            STREAM_WINDOW_MIN.to_string(),
            outcome.epochs.to_string(),
            outcome.attempts().to_string(),
            fmt(outcome.linkage_rate()),
            fmt(outcome.persistence_rate()),
        ]);
    }
    // The headline number: how much extra cross-epoch linkability Sticky
    // concedes relative to Fresh (positive = Sticky leaks more).
    let gap_linkage = measured[1].1.linkage_rate() - measured[0].1.linkage_rate();
    let gap_persistence = measured[1].1.persistence_rate() - measured[0].1.persistence_rate();
    csv.push(vec![
        ds.name.clone(),
        "gap".to_string(),
        STREAM_WINDOW_MIN.to_string(),
        String::new(),
        String::new(),
        fmt(gap_linkage),
        fmt(gap_persistence),
    ]);

    report.line(format!(
        "cross-epoch linkage of streamed output ({}, {} min windows):",
        ds.name, STREAM_WINDOW_MIN
    ));
    report.table(
        &["carry", "epochs", "attempts", "sig. linkage", "persistence"],
        &rows,
    );
    report.line(format!(
        "sticky-vs-fresh gap: {} linkage, {} persistence — what Sticky's group \
         stability concedes to a longitudinal adversary (DESIGN.md, Adversary model).",
        pct(gap_linkage),
        pct(gap_persistence),
    ));
    report.csv(
        &ctx.cfg.out_dir,
        "attack_stream_linkage.csv",
        &[
            "dataset",
            "carry",
            "window_min",
            "epochs",
            "link_attempts",
            "signature_linkage",
            "cohort_persistence",
        ],
        &csv,
    );
}
