//! Record-linkage attack evaluation — the motivating threat model of §1
//! and §2.3, demonstrated before and after GLOVE.
//!
//! Not a figure of the paper itself, but the empirical closure of its
//! argument: the uniqueness statistics the paper cites (refs. `[5]` and `[6]`)
//! hold on the synthetic data too, and GLOVE's k-anonymity bounds the
//! adversary's anonymity set at k regardless of how many true points they
//! know (quasi-identifier-blind anonymity, §2.3).

use crate::context::EvalContext;
use crate::report::{fmt, pct, write_csv, Report};
use glove_attack::{random_point_attack, top_location_uniqueness, RandomPointAttack};
use glove_core::SuppressionThresholds;

/// Runs both adversaries against the raw and the 2-anonymized datasets.
pub fn attack(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new(
        "attack",
        "record-linkage adversaries before/after GLOVE (paper §1, §2.3)",
    );
    let mut csv_rows = Vec::new();

    for (name, ds) in ctx.both() {
        let out = ctx.glove(&ds, 2, SuppressionThresholds::default());

        // Adversary [5]: top-L locations.
        let mut rows = Vec::new();
        for l in [1usize, 2, 3] {
            let raw = top_location_uniqueness(&ds, l);
            let anon = top_location_uniqueness(&out.dataset, l);
            rows.push(vec![format!("top-{l} locations"), pct(raw), pct(anon)]);
            csv_rows.push(vec![name.clone(), format!("top{l}"), fmt(raw), fmt(anon)]);
        }

        // Adversary [6]: p random spatiotemporal points.
        for points in [2usize, 4] {
            let cfg = RandomPointAttack {
                points,
                trials: 300,
                seed: 0x00A7_7AC4 + points as u64,
            };
            let raw = random_point_attack(&ds, &ds, &cfg);
            let anon = random_point_attack(&ds, &out.dataset, &cfg);
            rows.push(vec![
                format!("{points} random points"),
                pct(raw.pinpoint_rate()),
                pct(anon.pinpoint_rate()),
            ]);
            rows.push(vec![
                format!("  min anonymity set"),
                raw.min_anonymity().to_string(),
                anon.min_anonymity().to_string(),
            ]);
            csv_rows.push(vec![
                name.clone(),
                format!("random{points}"),
                fmt(raw.pinpoint_rate()),
                fmt(anon.pinpoint_rate()),
            ]);
        }

        report.line(format!("dataset: {name}"));
        report.table(&["adversary", "raw data", "after GLOVE k=2"], &rows);
        report.line("");
    }

    report.line("Context: ref. `[5]` found 50% top-3 uniqueness at 25M users; ref. `[6]`");
    report.line("pinpointed ~95% of users from 4 points. After GLOVE every record hides");
    report.line(">= k subscribers, so the pinpoint rate must be exactly 0.");

    if let Ok(path) = write_csv(
        &ctx.cfg.out_dir,
        "attack_linkage.csv",
        &["dataset", "adversary", "raw", "after_glove"],
        &csv_rows,
    ) {
        report.csv_files.push(path);
    }
    report
}
