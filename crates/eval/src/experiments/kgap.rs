//! Anonymizability experiments (§5): the k-gap CDFs, the failure of uniform
//! generalization, and the tail-weight root-cause analysis.

use crate::context::EvalContext;
use crate::report::{ascii_cdf, fmt, pct, NamedCurve, Report};
use glove_baselines::{GeneralizationLevel, UniformAnonymizer};
use glove_core::api::{Anonymizer, NullObserver};
use glove_core::kgap::{kgap_all, kgap_decomposed_all, kgap_many};
use glove_core::StretchConfig;
use glove_stats::{twi, Ecdf};

/// Fig. 3a — CDF of the 2-gap in both datasets.
///
/// Paper headline: no subscriber is 2-anonymous (CDF is 0 at the origin) and
/// the probability mass sits below Δ² ≈ 0.2 (civ median ≈ 0.09, sen p80 ≈
/// 0.17): anonymity looks close, yet (Fig. 4) uniform generalization cannot
/// reach it.
pub fn fig3a(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new("fig3a", "CDF of k-gap, k = 2 (paper Fig. 3a)");
    let cfg = StretchConfig::default();
    let threads = ctx.cfg.threads;
    let mut rows = Vec::new();
    let mut curves: Vec<(String, Ecdf)> = Vec::new();

    for (name, ds) in ctx.both() {
        let gaps = kgap_all(&ds, 2, threads, &cfg);
        let ecdf = Ecdf::new(gaps).expect("non-empty finite k-gaps");
        rows.push(vec![
            name.clone(),
            pct(ecdf.fraction_at_or_below(0.0)),
            fmt(ecdf.quantile(0.5)),
            fmt(ecdf.quantile(0.8)),
            fmt(ecdf.quantile(0.95)),
            fmt(ecdf.max()),
        ]);
        curves.push((name, ecdf));
    }
    report.table(
        &["dataset", "2-anonymous", "median", "p80", "p95", "max"],
        &rows,
    );
    report.line("");
    report.line("CDF of the 2-gap over [0, 0.8] (fill height = F(x)):");
    let chart_curves: Vec<NamedCurve> = curves
        .iter()
        .map(|(name, ecdf)| {
            let ecdf = ecdf.clone();
            (
                name.clone(),
                Box::new(move |x: f64| ecdf.fraction_at_or_below(x)) as Box<dyn Fn(f64) -> f64>,
            )
        })
        .collect();
    let borrowed: Vec<(String, &dyn Fn(f64) -> f64)> = chart_curves
        .iter()
        .map(|(n, f)| (n.clone(), f.as_ref() as &dyn Fn(f64) -> f64))
        .collect();
    report.line(ascii_cdf(&borrowed, 0.0, 0.8, 60));
    report.line("Paper: 2-anonymous = 0% in both datasets; civ median ≈ 0.09; sen p80 ≈ 0.17.");

    // CSV series over the paper's x-range [0, 0.4].
    let grid = 81;
    let mut csv_rows = Vec::with_capacity(grid);
    for i in 0..grid {
        let x = 0.4 * i as f64 / (grid - 1) as f64;
        let mut row = vec![fmt(x)];
        for (_, ecdf) in &curves {
            row.push(fmt(ecdf.fraction_at_or_below(x)));
        }
        csv_rows.push(row);
    }
    report.csv(
        &ctx.cfg.out_dir,
        "fig3a_kgap_cdf.csv",
        &["delta2", "cdf_civ", "cdf_sen"],
        &csv_rows,
    );
    report
}

/// Fig. 3b — CDF of the k-gap for k ∈ {2…100} on the sen-like dataset.
///
/// Paper headline: the cost of k-anonymity grows sub-linearly with k.
pub fn fig3b(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new("fig3b", "CDF of k-gap, 2 <= k <= 100 (paper Fig. 3b)");
    let cfg = StretchConfig::default();
    let threads = ctx.cfg.threads;
    let ds = ctx.sen().dataset.clone();
    let n = ds.fingerprints.len();

    let ks: Vec<usize> = [2usize, 5, 10, 25, 50, 100]
        .into_iter()
        .filter(|&k| k <= n)
        .collect();
    let gap_sets = kgap_many(&ds, &ks, threads, &cfg);
    let mut rows = Vec::new();
    let mut curves = Vec::new();
    for (&k, gaps) in ks.iter().zip(gap_sets) {
        let ecdf = Ecdf::new(gaps).expect("non-empty");
        rows.push(vec![
            k.to_string(),
            fmt(ecdf.quantile(0.5)),
            fmt(ecdf.quantile(0.8)),
            fmt(ecdf.mean()),
        ]);
        curves.push((k, ecdf));
    }
    report.table(&["k", "median", "p80", "mean"], &rows);
    report.line("");

    // Sub-linearity check: median(k) / median(2) vs k / 2.
    if curves.len() >= 2 {
        let base = curves[0].1.quantile(0.5).max(1e-9);
        let last = curves.last().expect("non-empty");
        let growth = last.1.quantile(0.5) / base;
        let linear = last.0 as f64 / 2.0;
        report.line(format!(
            "median growth x{} for k x{} (linear would be x{}) — sub-linear: {}",
            fmt(growth),
            fmt(last.0 as f64 / 2.0),
            fmt(linear),
            growth < linear
        ));
    }

    let grid = 81;
    let mut csv_rows = Vec::with_capacity(grid);
    for i in 0..grid {
        let x = 0.4 * i as f64 / (grid - 1) as f64;
        let mut row = vec![fmt(x)];
        for (_, ecdf) in &curves {
            row.push(fmt(ecdf.fraction_at_or_below(x)));
        }
        csv_rows.push(row);
    }
    let mut header = vec!["deltak".to_string()];
    header.extend(ks.iter().map(|k| format!("cdf_k{k}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    report.csv(
        &ctx.cfg.out_dir,
        "fig3b_kgap_by_k.csv",
        &header_refs,
        &csv_rows,
    );
    report
}

/// Fig. 4 — CDF of the 2-gap under uniform spatiotemporal generalization.
///
/// Paper headline: even at 20 km / 8 h granularity only ~35 % of users
/// become 2-anonymous — legacy generalization does not work.
pub fn fig4(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new("fig4", "2-gap under uniform generalization (paper Fig. 4)");
    let cfg = StretchConfig::default();
    let threads = ctx.cfg.threads;

    for (name, ds) in ctx.both() {
        let mut rows = Vec::new();
        let mut csv_rows: Vec<Vec<String>> = Vec::new();
        for level in GeneralizationLevel::figure4_sweep() {
            // The uniform baseline through the same trait every other
            // defense is driven by.
            let generalized = UniformAnonymizer::new(level)
                .run(&ds, &mut NullObserver)
                .expect("generalization succeeds")
                .expect_dataset();
            let gaps = kgap_all(&generalized, 2, threads, &cfg);
            let ecdf = Ecdf::new(gaps).expect("non-empty");
            let anon = ecdf.fraction_at_or_below(0.0);
            rows.push(vec![
                level.label(),
                pct(anon),
                fmt(ecdf.quantile(0.5)),
                fmt(ecdf.quantile(0.9)),
            ]);
            csv_rows.push(vec![
                level.label(),
                fmt(anon),
                fmt(ecdf.quantile(0.5)),
                fmt(ecdf.quantile(0.9)),
            ]);
        }
        report.line(format!("dataset: {name}"));
        report.table(&["km-min", "2-anonymous", "median gap", "p90 gap"], &rows);
        report.line("");
        report.csv(
            &ctx.cfg.out_dir,
            &format!("fig4_uniform_{name}.csv"),
            &["level", "frac_2anon", "median_gap", "p90_gap"],
            &csv_rows,
        );
    }
    report.line("Paper: fraction 2-anonymized stays below ~35% even at 20km-480min.");
    report
}

/// Fig. 5a — CDF of the Tail Weight Index of per-user sample-stretch
/// distributions (total δ, spatial and temporal components).
///
/// Paper headline: spatial stretch tails are light (TWI < 1.5 in ~85 % of
/// fingerprints) while temporal tails are heavy (TWI ≥ 1.5 in ~70 %), and
/// the total follows the temporal component — hiding *when* is the problem.
pub fn fig5a(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new("fig5a", "TWI of sample stretch efforts (paper Fig. 5a)");
    let cfg = StretchConfig::default();
    let threads = ctx.cfg.threads;
    let ds = ctx.civ().dataset.clone();

    let decomposed = kgap_decomposed_all(&ds, 2, threads, &cfg);
    let mut twi_delta = Vec::new();
    let mut twi_spatial = Vec::new();
    let mut twi_temporal = Vec::new();
    let mut degenerate = 0usize;
    for d in &decomposed {
        match (twi(&d.deltas), twi(&d.spatial), twi(&d.temporal)) {
            (Some(a), Some(b), Some(c)) => {
                twi_delta.push(a);
                twi_spatial.push(b);
                twi_temporal.push(c);
            }
            _ => degenerate += 1,
        }
    }

    let curves = [
        ("delta", &twi_delta),
        ("spatial", &twi_spatial),
        ("temporal", &twi_temporal),
    ];
    let mut rows = Vec::new();
    let mut ecdfs = Vec::new();
    for (label, values) in curves {
        let ecdf = Ecdf::new(values.clone()).expect("non-degenerate fingerprints exist");
        rows.push(vec![
            label.to_string(),
            fmt(ecdf.quantile(0.5)),
            pct(ecdf.fraction_at_or_below(1.5)),
            pct(1.0 - ecdf.fraction_at_or_below(1.5)),
        ]);
        ecdfs.push((label, ecdf));
    }
    report.table(
        &["component", "median TWI", "TWI < 1.5", "TWI >= 1.5"],
        &rows,
    );
    report.line(format!(
        "fingerprints with degenerate stretch distributions (skipped): {degenerate}"
    ));
    report.line("");
    report.line("Paper: spatial TWI < 1.5 in ~85% of fingerprints; temporal TWI >= 1.5 in ~70%.");

    // CSV: CDF over the paper's log-ish x-range [0.3, 100].
    let grid = 120;
    let mut csv_rows = Vec::with_capacity(grid);
    for i in 0..grid {
        let x = 0.3 * (100.0f64 / 0.3).powf(i as f64 / (grid - 1) as f64);
        let mut row = vec![fmt(x)];
        for (_, ecdf) in &ecdfs {
            row.push(fmt(ecdf.fraction_at_or_below(x)));
        }
        csv_rows.push(row);
    }
    report.csv(
        &ctx.cfg.out_dir,
        "fig5a_twi_cdf.csv",
        &["twi", "cdf_delta", "cdf_spatial", "cdf_temporal"],
        &csv_rows,
    );
    report
}

/// Fig. 5b — CDF of the temporal share of the total stretch effort.
///
/// Paper headline: in ~95 % of fingerprints the temporal stretch exceeds the
/// spatial one; in half of the cases it contributes ≥ 80 % of the total; in
/// ~15 % the cost is purely temporal.
pub fn fig5b(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new(
        "fig5b",
        "temporal share of the stretch effort (paper Fig. 5b)",
    );
    let cfg = StretchConfig::default();
    let threads = ctx.cfg.threads;
    let mut rows = Vec::new();
    let mut curves = Vec::new();

    for (name, ds) in ctx.both() {
        let decomposed = kgap_decomposed_all(&ds, 2, threads, &cfg);
        let shares: Vec<f64> = decomposed
            .iter()
            .filter_map(|d| d.temporal_share())
            .collect();
        let ecdf = Ecdf::new(shares).expect("non-empty");
        rows.push(vec![
            name.clone(),
            pct(1.0 - ecdf.fraction_at_or_below(0.5)),
            fmt(ecdf.quantile(0.5)),
            pct(1.0 - ecdf.fraction_at_or_below(1.0 - 1e-9)),
        ]);
        curves.push((name, ecdf));
    }
    report.table(
        &["dataset", "share > 0.5", "median share", "share = 1"],
        &rows,
    );
    report.line("");
    report.line("Paper: share > 0.5 in ~95% of fingerprints; median >= 0.8; share = 1 in ~15%.");

    let grid = 101;
    let mut csv_rows = Vec::with_capacity(grid);
    for i in 0..grid {
        let x = i as f64 / (grid - 1) as f64;
        let mut row = vec![fmt(x)];
        for (_, ecdf) in &curves {
            row.push(fmt(ecdf.fraction_at_or_below(x)));
        }
        csv_rows.push(row);
    }
    report.csv(
        &ctx.cfg.out_dir,
        "fig5b_temporal_share.csv",
        &["share", "cdf_civ", "cdf_sen"],
        &csv_rows,
    );
    report
}
