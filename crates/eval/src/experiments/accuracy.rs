//! GLOVE performance experiments (§7): accuracy of the anonymized data and
//! the suppression / timespan / dataset-size sweeps.

use crate::context::EvalContext;
use crate::report::{ascii_cdf, fmt, pct, NamedCurve, Report};
use glove_core::accuracy::{position_accuracy_m, time_accuracy_min};
use glove_core::{Dataset, SuppressionThresholds};
use glove_stats::{Ecdf, Summary};
use glove_synth::{time_subset, user_subset};

/// The CDF abscissae used for accuracy series: log-spaced like the paper's
/// axes (200 m … 20 km; 1 min … 1 day).
fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| lo * (hi / lo).powf(i as f64 / (n - 1) as f64))
        .collect()
}

fn accuracy_row(label: &str, pos: &Ecdf, time: &Ecdf) -> Vec<String> {
    vec![
        label.to_string(),
        pct(pos.fraction_at_or_below(100.0)),
        pct(pos.fraction_at_or_below(2_000.0)),
        fmt(pos.quantile(0.5) / 1_000.0),
        pct(time.fraction_at_or_below(30.0)),
        pct(time.fraction_at_or_below(120.0)),
        fmt(time.quantile(0.5)),
    ]
}

const ACCURACY_HEADER: [&str; 7] = [
    "run",
    "pos<=100m",
    "pos<=2km",
    "med pos [km]",
    "time<=30m",
    "time<=2h",
    "med time [min]",
];

/// Writes the position/time accuracy CDF series of several runs to CSV.
fn write_accuracy_csv(
    ctx: &EvalContext,
    stem: &str,
    runs: &[(String, Ecdf, Ecdf)],
    report: &mut Report,
) {
    let pos_grid = log_grid(100.0, 50_000.0, 80);
    let mut rows = Vec::new();
    for &x in &pos_grid {
        let mut row = vec![fmt(x)];
        for (_, pos, _) in runs {
            row.push(fmt(pos.fraction_at_or_below(x)));
        }
        rows.push(row);
    }
    let mut header = vec!["position_m".to_string()];
    header.extend(runs.iter().map(|(l, _, _)| format!("cdf_{l}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    report.csv(
        &ctx.cfg.out_dir,
        &format!("{stem}_position.csv"),
        &header_refs,
        &rows,
    );

    let time_grid = log_grid(1.0, 1_440.0, 80);
    let mut rows = Vec::new();
    for &x in &time_grid {
        let mut row = vec![fmt(x)];
        for (_, _, time) in runs {
            row.push(fmt(time.fraction_at_or_below(x)));
        }
        rows.push(row);
    }
    let mut header = vec!["time_min".to_string()];
    header.extend(runs.iter().map(|(l, _, _)| format!("cdf_{l}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    report.csv(
        &ctx.cfg.out_dir,
        &format!("{stem}_time.csv"),
        &header_refs,
        &rows,
    );
}

fn accuracy_ecdfs(ds: &Dataset) -> (Ecdf, Ecdf) {
    let pos = Ecdf::new(position_accuracy_m(ds)).expect("non-empty dataset");
    let time = Ecdf::new(time_accuracy_min(ds)).expect("non-empty dataset");
    (pos, time)
}

/// Fig. 7 — accuracy after 2-anonymization with GLOVE, both datasets.
///
/// Paper headline: 20–40 % of samples keep the original spatial accuracy
/// with ≤ 30 min time error; 70–80 % stay within 2 km / 2 h.
pub fn fig7(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new("fig7", "accuracy after GLOVE k=2 (paper Fig. 7)");
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for (name, ds) in ctx.both() {
        let out = ctx.glove(&ds, 2, SuppressionThresholds::default());
        let (pos, time) = accuracy_ecdfs(&out.dataset);
        rows.push(accuracy_row(&name, &pos, &time));
        runs.push((name, pos, time));
    }
    report.table(&ACCURACY_HEADER, &rows);
    report.line("");
    report.line("position-accuracy CDF over [0.1, 20] km (fill height = F(x)):");
    let chart_curves: Vec<NamedCurve> = runs
        .iter()
        .map(|(name, pos, _)| {
            let pos = pos.clone();
            (
                name.clone(),
                Box::new(move |x_km: f64| pos.fraction_at_or_below(x_km * 1_000.0))
                    as Box<dyn Fn(f64) -> f64>,
            )
        })
        .collect();
    let borrowed: Vec<(String, &dyn Fn(f64) -> f64)> = chart_curves
        .iter()
        .map(|(n, f)| (n.clone(), f.as_ref() as &dyn Fn(f64) -> f64))
        .collect();
    report.line(ascii_cdf(&borrowed, 0.1, 20.0, 60));
    report.line("Paper: 20-40% of samples keep 100 m accuracy; 70-80% within 2 km / 2 h.");
    write_accuracy_csv(ctx, "fig7_accuracy_k2", &runs, &mut report);
    report
}

/// Fig. 8 — accuracy for k ∈ {2, 3, 5} on the civ-like dataset.
///
/// Paper headline: graceful degradation with k; beyond k = 5 the data is
/// hardly exploitable.
pub fn fig8(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new("fig8", "accuracy vs k (paper Fig. 8)");
    let ds = ctx.civ().dataset.clone();
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for k in [2usize, 3, 5] {
        let out = ctx.glove(&ds, k, SuppressionThresholds::default());
        let (pos, time) = accuracy_ecdfs(&out.dataset);
        let label = format!("k{k}");
        rows.push(accuracy_row(&label, &pos, &time));
        runs.push((label, pos, time));
    }
    report.table(&ACCURACY_HEADER, &rows);
    report.line("");
    report.line(
        "Paper: samples at native position accuracy drop 25% (k=3) and 15% (k=5); \
         within-2km drops to 70% (k=3) and 50% (k=5).",
    );
    write_accuracy_csv(ctx, "fig8_accuracy_by_k", &runs, &mut report);
    report
}

/// Fig. 9 — suppression sweep: accuracy gained per sample discarded.
///
/// Paper headline: discarding < 8 % of samples cuts the mean spatial error
/// from > 5 km to ≈ 1 km; 4 % suppression halves the mean time error.
pub fn fig9(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new("fig9", "GLOVE + suppression sweep (paper Fig. 9)");
    let ds = ctx.civ().dataset.clone();
    let baseline_user_samples = ds.num_user_samples() as f64;

    // Left plot: spatial thresholds at a fixed 6 h temporal threshold.
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    report.line("spatial thresholds (temporal threshold fixed at 6 h):");
    for space_km in [4u32, 8, 10, 15, 20, 40, 80] {
        let thresholds = SuppressionThresholds {
            max_space_m: Some(space_km * 1_000),
            max_time_min: Some(360),
        };
        let out = ctx.glove(&ds, 2, thresholds);
        let discarded = out.stats.suppressed.user_samples as f64 / baseline_user_samples;
        let pos = Summary::of(&position_accuracy_m(&out.dataset)).expect("non-empty");
        rows.push(vec![
            format!("6h-{space_km}Km"),
            pct(discarded),
            fmt(pos.mean / 1_000.0),
            fmt(pos.median / 1_000.0),
            fmt(pos.p25 / 1_000.0),
            fmt(pos.p75 / 1_000.0),
        ]);
        csv_rows.push(vec![
            format!("6h-{space_km}Km"),
            fmt(discarded),
            fmt(pos.mean),
            fmt(pos.median),
            fmt(pos.p25),
            fmt(pos.p75),
        ]);
    }
    // No-suppression reference point ("Original" marker in the paper).
    {
        let out = ctx.glove(&ds, 2, SuppressionThresholds::default());
        let pos = Summary::of(&position_accuracy_m(&out.dataset)).expect("non-empty");
        rows.push(vec![
            "original".into(),
            pct(0.0),
            fmt(pos.mean / 1_000.0),
            fmt(pos.median / 1_000.0),
            fmt(pos.p25 / 1_000.0),
            fmt(pos.p75 / 1_000.0),
        ]);
        csv_rows.push(vec![
            "original".into(),
            "0".into(),
            fmt(pos.mean),
            fmt(pos.median),
            fmt(pos.p25),
            fmt(pos.p75),
        ]);
    }
    report.table(
        &[
            "thresholds",
            "discarded",
            "mean [km]",
            "median [km]",
            "p25 [km]",
            "p75 [km]",
        ],
        &rows,
    );
    report.csv(
        &ctx.cfg.out_dir,
        "fig9_suppression_spatial.csv",
        &[
            "thresholds",
            "discarded_frac",
            "mean_m",
            "median_m",
            "p25_m",
            "p75_m",
        ],
        &csv_rows,
    );

    // Right plot: temporal-only thresholds (footnote 8: spatial-only
    // thresholding gains little, so the temporal axis is swept alone).
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    report.line("");
    report.line("temporal thresholds (no spatial threshold):");
    for (label, time_min) in [
        ("90m", 90u32),
        ("2h", 120),
        ("3h", 180),
        ("4h", 240),
        ("6h", 360),
        ("8h", 480),
    ] {
        let thresholds = SuppressionThresholds {
            max_space_m: None,
            max_time_min: Some(time_min),
        };
        let out = ctx.glove(&ds, 2, thresholds);
        let discarded = out.stats.suppressed.user_samples as f64 / baseline_user_samples;
        let time = Summary::of(&time_accuracy_min(&out.dataset)).expect("non-empty");
        rows.push(vec![
            label.to_string(),
            pct(discarded),
            fmt(time.mean),
            fmt(time.median),
            fmt(time.p25),
            fmt(time.p75),
        ]);
        csv_rows.push(vec![
            label.to_string(),
            fmt(discarded),
            fmt(time.mean),
            fmt(time.median),
            fmt(time.p25),
            fmt(time.p75),
        ]);
    }
    {
        let out = ctx.glove(&ds, 2, SuppressionThresholds::default());
        let time = Summary::of(&time_accuracy_min(&out.dataset)).expect("non-empty");
        rows.push(vec![
            "original".into(),
            pct(0.0),
            fmt(time.mean),
            fmt(time.median),
            fmt(time.p25),
            fmt(time.p75),
        ]);
        csv_rows.push(vec![
            "original".into(),
            "0".into(),
            fmt(time.mean),
            fmt(time.median),
            fmt(time.p25),
            fmt(time.p75),
        ]);
    }
    report.table(
        &[
            "threshold",
            "discarded",
            "mean [min]",
            "median [min]",
            "p25 [min]",
            "p75 [min]",
        ],
        &rows,
    );
    report.csv(
        &ctx.cfg.out_dir,
        "fig9_suppression_temporal.csv",
        &[
            "threshold",
            "discarded_frac",
            "mean_min",
            "median_min",
            "p25_min",
            "p75_min",
        ],
        &csv_rows,
    );
    report.line("");
    report.line("Paper: suppressing <8% of samples improves mean spatial accuracy ~5x;");
    report.line("thresholding time at 6h halves the mean time error for ~4% of samples.");
    report
}

/// Fig. 10 — accuracy of 2-anonymized datasets vs observation timespan.
///
/// Paper headline: shorter datasets anonymize more accurately, with
/// sub-linear degradation attributed to weekly periodicity.
pub fn fig10(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new("fig10", "accuracy vs dataset timespan (paper Fig. 10)");
    for (name, ds) in ctx.both() {
        let mut rows = Vec::new();
        let mut csv_rows = Vec::new();
        for days in [1u32, 2, 5, 7, 14] {
            let sub = time_subset(&ds, days);
            if sub.num_users() < 2 {
                continue;
            }
            let out = ctx.glove(&sub, 2, SuppressionThresholds::default());
            let pos = Summary::of(&position_accuracy_m(&out.dataset)).expect("non-empty");
            let time = Summary::of(&time_accuracy_min(&out.dataset)).expect("non-empty");
            rows.push(vec![
                days.to_string(),
                fmt(pos.median / 1_000.0),
                fmt(pos.mean / 1_000.0),
                fmt(time.median),
                fmt(time.mean),
            ]);
            csv_rows.push(vec![
                days.to_string(),
                fmt(pos.median),
                fmt(pos.mean),
                fmt(time.median),
                fmt(time.mean),
            ]);
        }
        report.line(format!("dataset: {name}"));
        report.table(
            &[
                "days",
                "med pos [km]",
                "mean pos [km]",
                "med time [min]",
                "mean time [min]",
            ],
            &rows,
        );
        report.line("");
        report.csv(
            &ctx.cfg.out_dir,
            &format!("fig10_timespan_{name}.csv"),
            &[
                "days",
                "median_pos_m",
                "mean_pos_m",
                "median_time_min",
                "mean_time_min",
            ],
            &csv_rows,
        );
    }
    report.line("Paper: 1-day datasets are ~2x more accurate than 2-week ones; the loss");
    report.line("flattens with length (weekly periodicity bounds fingerprint diversity).");
    report
}

/// Fig. 11 — accuracy of 2-anonymized datasets vs subscriber count.
///
/// Paper headline: thinner crowds are harder to hide in, but the effect only
/// bites when the population drops to a few tens of thousands (here: scaled
/// proportionally — the smallest fractions).
pub fn fig11(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new("fig11", "accuracy vs dataset size (paper Fig. 11)");
    for (name, ds) in ctx.both() {
        let mut rows = Vec::new();
        let mut csv_rows = Vec::new();
        for pct_users in [5u32, 10, 25, 50, 75, 100] {
            let sub = user_subset(
                &ds,
                pct_users as f64 / 100.0,
                0x000F_1611 + pct_users as u64,
            );
            if sub.num_users() < 2 {
                continue;
            }
            let out = ctx.glove(&sub, 2, SuppressionThresholds::default());
            let pos = Summary::of(&position_accuracy_m(&out.dataset)).expect("non-empty");
            let time = Summary::of(&time_accuracy_min(&out.dataset)).expect("non-empty");
            rows.push(vec![
                format!("{pct_users}%"),
                fmt(pos.median / 1_000.0),
                fmt(pos.mean / 1_000.0),
                fmt(time.median),
                fmt(time.mean),
            ]);
            csv_rows.push(vec![
                pct_users.to_string(),
                fmt(pos.median),
                fmt(pos.mean),
                fmt(time.median),
                fmt(time.mean),
            ]);
        }
        report.line(format!("dataset: {name}"));
        report.table(
            &[
                "users",
                "med pos [km]",
                "mean pos [km]",
                "med time [min]",
                "mean time [min]",
            ],
            &rows,
        );
        report.line("");
        report.csv(
            &ctx.cfg.out_dir,
            &format!("fig11_size_{name}.csv"),
            &[
                "users_pct",
                "median_pos_m",
                "mean_pos_m",
                "median_time_min",
                "mean_time_min",
            ],
            &csv_rows,
        );
    }
    report.line("Paper: accuracy degrades only for the smallest user fractions.");
    report
}
