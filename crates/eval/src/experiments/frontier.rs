//! The defense frontier: utility vs cross-epoch attacker success, and
//! where the adaptive loop lands on it.
//!
//! The policy plane (DESIGN.md "The policy plane and the adaptive loop")
//! turns defense strength into a tunable: per-epoch/per-cohort overrides
//! of `k` and the carry policy. This experiment maps the static frontier —
//! every `carry × k` point of a windowed metro run, scored by the
//! cross-epoch linkage adversary on one axis and k-retention/accuracy on
//! the other — then closes the loop: the `Sticky, k = 2` run's attack
//! report is fed to [`glove_attack::adapt_policy`] against the default
//! [`glove_attack::AttackBudget`], and the adapted plane is re-run and
//! scored as one more point. The adapted point must land at or below the
//! `Fresh` baseline's linkage without giving up more retention than the
//! budget's `k` cap allows — `BENCH_adaptive` asserts exactly that; here
//! the whole frontier is laid out for plotting.

use crate::context::EvalContext;
use crate::report::{fmt, pct, Report};
use glove_core::accuracy::mean_position_accuracy_m;
use glove_core::api::{NullObserver, RunBuilder, RunOutput};
use glove_core::policy::PolicyPlane;
use glove_core::stream::{events_of, StreamEvent, StreamRun};
use glove_core::{CarryPolicy, Dataset, GloveConfig, StreamConfig, UnderKPolicy};

/// One frontier point.
struct Point {
    policy: String,
    carry: &'static str,
    k: usize,
    epochs: u64,
    linkage: f64,
    persistence: f64,
    retention: f64,
    pos_acc_m: f64,
}

impl Point {
    fn cells(&self, as_pct: bool) -> Vec<String> {
        let frac = |v: f64| if as_pct { pct(v) } else { fmt(v) };
        vec![
            self.policy.clone(),
            self.carry.to_string(),
            self.k.to_string(),
            self.epochs.to_string(),
            frac(self.linkage),
            frac(self.persistence),
            frac(self.retention),
            fmt(self.pos_acc_m),
        ]
    }
}

/// What to run and how to label the resulting [`Point`].
struct PointSpec<'a> {
    plane: Option<&'a PolicyPlane>,
    policy: &'a str,
    carry: &'static str,
    k: usize,
    l: usize,
}

/// Runs a windowed stream (optionally under a policy plane) and scores it
/// with the cross-epoch adversary.
fn run_point(name: &str, events: &[StreamEvent], base: &StreamConfig, spec: PointSpec) -> Point {
    let mut builder = RunBuilder::new(base.glove).stream(*base);
    if let Some(plane) = spec.plane {
        builder = builder.policy(plane.clone());
    }
    let outcome = builder
        .run_events(name, &mut events.iter().copied().map(Ok), &mut NullObserver)
        .expect("stream succeeds");
    let stats = outcome
        .report
        .detail
        .as_stream()
        .expect("stream detail")
        .clone();
    let epochs = match outcome.output {
        RunOutput::Epochs(epochs) => epochs,
        RunOutput::Dataset(_) => unreachable!("stream mode emits epochs"),
    };
    let run = StreamRun { epochs, stats };

    let published: Vec<Dataset> = run
        .epochs
        .iter()
        .map(|e| e.output.dataset.clone())
        .collect();
    let link = glove_attack::cross_epoch_attack(
        &published,
        &glove_attack::CrossEpochAttack {
            l: spec.l,
            threads: base.glove.threads,
        },
    );

    let entered = run.stats.entered_user_slices() + run.stats.suppressed_users;
    let published_users: u64 = published.iter().map(|d| d.num_users() as u64).sum();
    let weighted_acc = {
        let mut pos = 0.0;
        let mut weight = 0.0;
        for ds in &published {
            let w = ds.num_samples() as f64;
            pos += mean_position_accuracy_m(ds) * w;
            weight += w;
        }
        if weight > 0.0 {
            pos / weight
        } else {
            0.0
        }
    };
    Point {
        policy: spec.policy.to_string(),
        carry: spec.carry,
        k: spec.k,
        epochs: run.stats.epochs,
        linkage: link.linkage_rate(),
        persistence: link.persistence_rate(),
        retention: if entered > 0 {
            published_users as f64 / entered as f64
        } else {
            0.0
        },
        pos_acc_m: weighted_acc,
    }
}

/// The `frontier` experiment entry point.
pub fn frontier(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new(
        "frontier",
        "defense frontier: utility vs cross-epoch linkage, with the adaptive point",
    );
    let threads = ctx.cfg.threads;
    let ds = ctx.metro().dataset.clone();
    let events = events_of(&ds);
    // Six windows over the horizon give the adversary five epoch pairs.
    let window_min = (ds.span_min() as u32 / 6).max(1);
    let base_of = |k: usize, carry: CarryPolicy| StreamConfig {
        window_min,
        carry,
        under_k: UnderKPolicy::Suppress,
        glove: GloveConfig {
            k,
            threads,
            ..GloveConfig::default()
        },
    };
    const L: usize = 8;

    let mut points = Vec::new();
    for (carry, tag) in [
        (CarryPolicy::Fresh, "fresh"),
        (CarryPolicy::Sticky, "sticky"),
    ] {
        for k in [2usize, 4, 6] {
            eprintln!("[eval] frontier: static {tag} k={k}…");
            points.push(run_point(
                &ds.name,
                &events,
                &base_of(k, carry),
                PointSpec {
                    plane: None,
                    policy: "static",
                    carry: tag,
                    k,
                    l: L,
                },
            ));
        }
    }

    // Close the loop on the most exposed static point: Sticky at the base
    // k. Its attack report drives the tuner; the adapted plane re-runs the
    // same feed from epoch 0 (a next-deployment re-plan).
    let sticky_base = base_of(2, CarryPolicy::Sticky);
    let sticky_run = {
        let outcome = RunBuilder::new(sticky_base.glove)
            .stream(sticky_base)
            .run_events(
                &ds.name,
                &mut events.iter().copied().map(Ok),
                &mut NullObserver,
            )
            .expect("stream succeeds");
        match outcome.output {
            RunOutput::Epochs(epochs) => epochs
                .into_iter()
                .map(|e| e.output.dataset)
                .collect::<Vec<_>>(),
            RunOutput::Dataset(_) => unreachable!("stream mode emits epochs"),
        }
    };
    let cross = glove_attack::CrossEpochAttack { l: L, threads };
    let attack_report = glove_attack::Attack::run(
        &cross,
        &ds,
        &glove_attack::PublishedView::Epochs(&sticky_run),
    )
    .expect("cross-epoch attack runs");
    let budget = glove_attack::AttackBudget::default();
    let adapted = glove_attack::adapt_policy(
        &PolicyPlane::uniform(),
        &sticky_base,
        std::slice::from_ref(&attack_report),
        &budget,
        0,
    )
    .expect("adaptation succeeds");
    report.line(format!(
        "tuner input: sticky k=2 linkage {} vs budget {} — {} action(s):",
        pct(attack_report.success_rate),
        pct(budget.max_linkage),
        adapted.actions.len(),
    ));
    for action in &adapted.actions {
        report.line(format!("  - {action}"));
    }
    report.line("");
    eprintln!("[eval] frontier: adapted re-run…");
    points.push(run_point(
        &ds.name,
        &events,
        &sticky_base,
        PointSpec {
            plane: Some(&adapted.plane),
            policy: "adapted",
            carry: "sticky",
            k: 2,
            l: L,
        },
    ));

    report.table(
        &[
            "policy",
            "carry",
            "k",
            "epochs",
            "linkage",
            "persisted",
            "retention",
            "pos acc [m]",
        ],
        &points.iter().map(|p| p.cells(true)).collect::<Vec<_>>(),
    );
    report.line("");
    report.line(
        "Each row is one frontier point: attacker success (cross-epoch signature \
         linkage and group persistence) against utility (k-retention, published \
         position accuracy). The adapted row re-runs the sticky base under the \
         tuner's plane; BENCH_adaptive.json asserts it reaches the fresh \
         baseline's linkage with bounded retention loss.",
    );

    report.csv(
        &ctx.cfg.out_dir,
        "defense_frontier.csv",
        &[
            "policy",
            "carry",
            "k",
            "epochs",
            "linkage_rate",
            "persistence_rate",
            "retention",
            "pos_acc_m",
        ],
        &points.iter().map(|p| p.cells(false)).collect::<Vec<_>>(),
    );
    report
}
