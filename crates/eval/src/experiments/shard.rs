//! Shard-vs-monolithic comparison: the §6.3 batching idea quantified.
//!
//! Runs GLOVE on the same dataset monolithically and sharded (activity and
//! spatial partitioners at several shard counts) and reports, per
//! configuration:
//!
//! * wall-clock time and speedup over the monolithic run;
//! * k-anonymity retention — the minimum multiplicity across published
//!   fingerprints (must stay ≥ k) and the fraction of subscribers retained;
//! * the accuracy price of forfeiting cross-shard merges (mean published
//!   position/time accuracy vs the monolithic output).

use crate::context::EvalContext;
use crate::report::{fmt, pct, Report};
use glove_core::accuracy::{mean_position_accuracy_m, mean_time_accuracy_min};
use glove_core::api::RunBuilder;
use glove_core::{GloveConfig, ShardBy, ShardPolicy};
use std::time::Instant;

/// One measured configuration.
struct Row {
    label: String,
    elapsed_s: f64,
    pairs: u64,
    pruned: u64,
    skipped_tier0: u64,
    skipped_tier1: u64,
    abandoned: u64,
    merges: u64,
    min_multiplicity: usize,
    users_retained: f64,
    pos_acc_m: f64,
    time_acc_min: f64,
    peak_arena_bytes: u64,
    peak_store_bytes: u64,
    peak_rss_bytes: u64,
}

impl Row {
    /// One serialized row; the stdout table shows `users_retained` as a
    /// percentage and memory in MiB, the CSV plain fractions and raw bytes.
    fn cells(&self, mono_s: f64, retained_as_pct: bool) -> Vec<String> {
        let mib = |b: u64| fmt(b as f64 / (1 << 20) as f64);
        let mut cells = vec![
            self.label.clone(),
            fmt(self.elapsed_s),
            fmt(mono_s / self.elapsed_s.max(1e-9)),
            self.pairs.to_string(),
            self.pruned.to_string(),
            self.skipped_tier0.to_string(),
            self.skipped_tier1.to_string(),
            self.abandoned.to_string(),
            self.merges.to_string(),
            self.min_multiplicity.to_string(),
            if retained_as_pct {
                pct(self.users_retained)
            } else {
                fmt(self.users_retained)
            },
            fmt(self.pos_acc_m),
            fmt(self.time_acc_min),
        ];
        if retained_as_pct {
            cells.extend([mib(self.peak_arena_bytes), mib(self.peak_rss_bytes)]);
        } else {
            cells.extend([
                self.peak_arena_bytes.to_string(),
                self.peak_store_bytes.to_string(),
                self.peak_rss_bytes.to_string(),
            ]);
        }
        cells
    }
}

fn run_one(
    ds: &glove_core::Dataset,
    k: usize,
    threads: usize,
    shard: Option<ShardPolicy>,
    label: &str,
) -> Row {
    let config = GloveConfig {
        k,
        threads,
        ..GloveConfig::default()
    };
    // One builder path serves both modes; `new` defaults to batch and
    // `sharded` overrides it.
    let builder = match shard {
        Some(policy) => RunBuilder::new(config).sharded(policy),
        None => RunBuilder::new(config).batch(),
    };
    let started = Instant::now();
    let outcome = builder.run(ds).expect("anonymization succeeds");
    let elapsed_s = started.elapsed().as_secs_f64();
    let published = outcome.output.dataset().expect("single-release engine");
    let ledger = outcome
        .report
        .detail
        .as_glove()
        .expect("glove detail")
        .ledger;
    Row {
        label: label.to_string(),
        elapsed_s,
        pairs: outcome.report.pairs_computed,
        pruned: outcome.report.pairs_pruned,
        skipped_tier0: outcome.report.pairs_skipped_tier0,
        skipped_tier1: outcome.report.pairs_skipped_tier1,
        abandoned: outcome.report.pairs_abandoned,
        merges: outcome.report.merges,
        min_multiplicity: published
            .fingerprints
            .iter()
            .map(|f| f.multiplicity())
            .min()
            .unwrap_or(0),
        users_retained: outcome.report.users_out as f64 / ds.num_users() as f64,
        pos_acc_m: mean_position_accuracy_m(published),
        time_acc_min: mean_time_accuracy_min(published),
        peak_arena_bytes: ledger.peak_arena_bytes,
        peak_store_bytes: ledger.peak_store_bytes,
        peak_rss_bytes: ledger.peak_rss_bytes,
    }
}

/// The `shard` experiment entry point.
pub fn shard(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new(
        "shard",
        "sharded vs monolithic GLOVE (batching idea of paper §6.3)",
    );
    let k = 2;
    let threads = ctx.cfg.threads;
    let ds = ctx.civ().dataset.clone();
    let shard_counts = [2usize, 4];

    let mut rows = vec![run_one(&ds, k, threads, None, "monolithic")];
    for &s in &shard_counts {
        for (by, tag) in [
            (ShardBy::Activity, "activity"),
            (ShardBy::Spatial, "spatial"),
            (ShardBy::TwoLevel, "two-level"),
        ] {
            rows.push(run_one(
                &ds,
                k,
                threads,
                Some(ShardPolicy { shards: s, by }),
                &format!("{tag}x{s}"),
            ));
        }
    }

    let mono_s = rows[0].elapsed_s;
    let table: Vec<Vec<String>> = rows.iter().map(|r| r.cells(mono_s, true)).collect();
    report.table(
        &[
            "mode",
            "wall [s]",
            "speedup",
            "pairs",
            "pruned",
            "tier0",
            "tier1",
            "abandoned",
            "merges",
            "min mult",
            "users kept",
            "pos acc [m]",
            "time acc [min]",
            "arena [MiB]",
            "rss [MiB]",
        ],
        &table,
    );
    report.line("");
    report.line(format!(
        "k-anonymity retention: every mode must show min mult >= {k} and 100% users kept \
         (default residual policy)."
    ));
    report.line(
        "Speedup comes from the shards-fold smaller pair matrices; the accuracy \
         columns price the forfeited cross-shard merges.",
    );
    for r in &rows {
        assert!(
            r.min_multiplicity >= k,
            "{}: published fingerprint below k",
            r.label
        );
    }

    report.csv(
        &ctx.cfg.out_dir,
        "shard_vs_monolithic.csv",
        &[
            "mode",
            "wall_s",
            "speedup",
            "pairs",
            "pruned",
            "pairs_skipped_tier0",
            "pairs_skipped_tier1",
            "pairs_abandoned",
            "merges",
            "min_multiplicity",
            "users_retained",
            "pos_acc_m",
            "time_acc_min",
            "peak_arena_bytes",
            "peak_store_bytes",
            "peak_rss_bytes",
        ],
        &rows
            .iter()
            .map(|r| r.cells(mono_s, false))
            .collect::<Vec<_>>(),
    );
    report
}
