//! The experiment runners, grouped by theme:
//!
//! * [`kgap`] — anonymizability analysis (§5: Figs. 3a, 3b, 4, 5a, 5b);
//! * [`accuracy`] — GLOVE performance (§7: Figs. 7, 8, 9, 10, 11);
//! * [`table2`] — the comparative analysis against W4M-LC (§7.2);
//! * [`misc`] — supporting measurements (radius of gyration §7.3, kernel
//!   throughput §6.3);
//! * [`attack`] — record-linkage adversaries before/after GLOVE (§1, §2.3);
//! * [`ablation`] — design-choice ablations (DESIGN.md §5);
//! * [`shard`] — sharded vs monolithic GLOVE: speedup and k-anonymity
//!   retention of the §6.3 batching idea;
//! * [`stream`] — windowed online GLOVE: k-retention, accuracy and
//!   residency vs window length against the batch run;
//! * [`scenarios`] — the scenario matrix: every engine against every
//!   adversarial workload preset, with long-tail cohort risk splits;
//! * [`frontier`] — the defense frontier: utility vs cross-epoch attacker
//!   success across the static carry × k grid, plus the point the
//!   attack-guided adaptive policy loop converges to.

pub mod ablation;
pub mod accuracy;
pub mod attack;
pub mod frontier;
pub mod kgap;
pub mod misc;
pub mod scenarios;
pub mod shard;
pub mod stream;
pub mod table2;
