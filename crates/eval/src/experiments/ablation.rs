//! Ablations of GLOVE's design choices (DESIGN.md §5):
//!
//! * **temporal-gap pruning** in the Eq. 10 inner loop (an implementation
//!   choice: must not change results, should change speed);
//! * **reshaping** (§6.2: costs spatial granularity, buys disjoint
//!   timelines);
//! * **population weighting** in Eqs. 4/7 (the paper's argument: weighting
//!   protects the accuracy of the many against the few);
//! * **residual policy** (merge-into-nearest vs suppress — our extension
//!   point where Alg. 1 is silent).

use crate::context::EvalContext;
use crate::report::{fmt, pct, Report};
use glove_core::accuracy::{mean_position_accuracy_m, mean_time_accuracy_min};
use glove_core::api::RunBuilder;
use glove_core::stretch::{fingerprint_stretch, fingerprint_stretch_naive};
use glove_core::{GloveConfig, ResidualPolicy, StretchConfig};
use std::time::Instant;

/// Runs all ablations on a civ-like dataset.
pub fn ablation(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new("ablation", "design-choice ablations (DESIGN.md §5)");
    let ds = ctx.civ().dataset.clone();
    let threads = ctx.cfg.threads;
    let mut csv_rows = Vec::new();

    // --- Pruning: identical results, measured speedup ----------------------
    {
        let cfg = StretchConfig::default();
        let n = ds.fingerprints.len().min(80);
        let run = |f: &dyn Fn(usize, usize) -> f64| {
            let started = Instant::now();
            let mut acc = 0.0;
            for i in 0..n {
                for j in 0..i {
                    acc += f(i, j);
                }
            }
            (acc, started.elapsed().as_secs_f64())
        };
        let (sum_pruned, t_pruned) =
            run(&|i, j| fingerprint_stretch(&ds.fingerprints[i], &ds.fingerprints[j], &cfg));
        let (sum_naive, t_naive) =
            run(&|i, j| fingerprint_stretch_naive(&ds.fingerprints[i], &ds.fingerprints[j], &cfg));
        assert!(
            (sum_pruned - sum_naive).abs() < 1e-9,
            "pruning changed results"
        );
        report.line(format!(
            "pruning: identical results; {} s pruned vs {} s naive (speedup x{})",
            fmt(t_pruned),
            fmt(t_naive),
            fmt(t_naive / t_pruned.max(1e-9))
        ));
        csv_rows.push(vec![
            "pruning_speedup".into(),
            fmt(t_naive / t_pruned.max(1e-9)),
            String::new(),
        ]);
    }
    report.line("");

    // --- Reshaping, weighting, residual policy: four GLOVE variants --------
    let variants: Vec<(&str, GloveConfig)> = vec![
        (
            "baseline",
            GloveConfig {
                threads,
                ..GloveConfig::default()
            },
        ),
        (
            "no-reshape",
            GloveConfig {
                reshape: false,
                threads,
                ..GloveConfig::default()
            },
        ),
        (
            "no-weighting",
            GloveConfig {
                stretch: StretchConfig {
                    population_weighting: false,
                    ..StretchConfig::default()
                },
                threads,
                ..GloveConfig::default()
            },
        ),
        // The residual policies only differ when |M| mod k != 0, which never
        // happens for k = 2 on an even population — compare them at k = 3.
        (
            "residual-merge-k3",
            GloveConfig {
                k: 3,
                threads,
                ..GloveConfig::default()
            },
        ),
        (
            "residual-suppress-k3",
            GloveConfig {
                k: 3,
                residual: ResidualPolicy::Suppress,
                threads,
                ..GloveConfig::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, config) in variants {
        eprintln!("[eval] ablation variant {label}…");
        let outcome = RunBuilder::new(config)
            .run(&ds)
            .expect("anonymization succeeds");
        let published = outcome.expect_dataset();
        assert!(published.is_k_anonymous(config.k));
        // Count residual time overlaps (readability metric of §6.2).
        let overlaps: usize = published
            .fingerprints
            .iter()
            .map(|fp| {
                fp.samples()
                    .windows(2)
                    .filter(|w| w[0].overlaps_in_time(&w[1]))
                    .count()
            })
            .sum();
        let mean_pos = mean_position_accuracy_m(&published);
        let mean_time = mean_time_accuracy_min(&published);
        rows.push(vec![
            label.to_string(),
            fmt(mean_pos / 1_000.0),
            fmt(mean_time),
            overlaps.to_string(),
            pct(published.num_users() as f64 / ds.num_users() as f64),
        ]);
        csv_rows.push(vec![label.into(), fmt(mean_pos), fmt(mean_time)]);
    }
    report.table(
        &[
            "variant",
            "mean pos [km]",
            "mean time [min]",
            "time overlaps",
            "users kept",
        ],
        &rows,
    );
    report.line("");
    report.line("Expected: no-reshape keeps finer space but leaves overlapping windows;");
    report.line("no-weighting sacrifices large groups to small ones (worse mean accuracy);");
    report.line("residual-suppress drops the odd leftover subscriber instead of merging.");

    report.csv(
        &ctx.cfg.out_dir,
        "ablation.csv",
        &["variant", "value_a", "value_b"],
        &csv_rows,
    );
    report
}
