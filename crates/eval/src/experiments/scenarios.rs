//! The scenario matrix: every anonymization engine against every
//! adversarial workload scenario, with attack success broken down by the
//! ground-truth long-tail cohort.
//!
//! The paper evaluates GLOVE on two real CDR horizons whose structure is
//! fixed; the workload subsystem (`glove_synth::workloads`) instead dials
//! specific adversarial structure up — flash crowds, corridor travellers,
//! device churn, labelled long-tail users — and this experiment answers
//! the question those scenarios exist for: *which engine degrades, on
//! which workload, and who pays*. Per `(scenario, engine)` cell it
//! reports:
//!
//! * **k-retention and suppression** — the fraction of subscribers (or
//!   user-window slices, for streams) that reach a published k-anonymous
//!   group, plus the minimum published multiplicity (the k floor);
//! * **utility** — mean published position/time accuracy;
//! * **attack success** — multi-point linkage and top-location classifier
//!   linkage against the published view, and cross-epoch group linkage for
//!   the streaming engines — each overall *and* restricted to the
//!   scenario's labelled long-tail cohort, the risk split the cohort
//!   labels make possible.
//!
//! Every cell asserts its published output is k-anonymous (k = 2), so the
//! matrix doubles as an end-to-end exactness sweep over the preset
//! surface.

use crate::context::EvalContext;
use crate::report::{fmt, pct, Report};
use glove_attack::{
    classifier_attack, cross_epoch_attack_cohort, multi_point_attack, AdversaryNoise,
    CrossEpochAttack, MultiPointAttack, PublishedView, TopLocationClassifier,
};
use glove_core::accuracy::{mean_position_accuracy_m, mean_time_accuracy_min};
use glove_core::api::RunBuilder;
use glove_core::stream::{events_of, run_stream};
use glove_core::{CarryPolicy, Dataset, GloveConfig, ShardBy, ShardPolicy, StreamConfig, UserId};
use std::collections::HashSet;

/// Scenarios of the matrix: the plain metro baseline plus every workload
/// preset (`glove_synth::PRESETS` minus the two nation-wide legacy
/// geometries, which the other experiments already cover).
const SCENARIOS: &[&str] = &[
    "metro", "mixed", "flash", "corridor", "churn", "longtail", "storm",
];

/// Window length of the streaming cells: two-day epochs.
const STREAM_WINDOW_MIN: u32 = 2_880;

/// One `(scenario, engine)` cell of the matrix.
struct Cell {
    scenario: String,
    engine: &'static str,
    user_ids: usize,
    long_tail_ids: usize,
    samples: usize,
    retention: f64,
    suppressed_users: u64,
    min_multiplicity: usize,
    pos_acc_m: f64,
    time_acc_min: f64,
    mp_linked: f64,
    mp_linked_longtail: String,
    mp_mean_anonymity: f64,
    tl_linked: f64,
    tl_linked_longtail: String,
    /// Cross-epoch linkage, streams only ("" elsewhere).
    ce_linked: String,
    ce_linked_longtail: String,
}

impl Cell {
    fn csv(&self) -> Vec<String> {
        vec![
            self.scenario.clone(),
            self.engine.to_string(),
            self.user_ids.to_string(),
            self.long_tail_ids.to_string(),
            self.samples.to_string(),
            fmt(self.retention),
            self.suppressed_users.to_string(),
            self.min_multiplicity.to_string(),
            fmt(self.pos_acc_m),
            fmt(self.time_acc_min),
            fmt(self.mp_linked),
            self.mp_linked_longtail.clone(),
            fmt(self.mp_mean_anonymity),
            fmt(self.tl_linked),
            self.tl_linked_longtail.clone(),
            self.ce_linked.clone(),
            self.ce_linked_longtail.clone(),
        ]
    }

    fn table(&self) -> Vec<String> {
        vec![
            self.scenario.clone(),
            self.engine.to_string(),
            pct(self.retention),
            self.min_multiplicity.to_string(),
            fmt(self.pos_acc_m),
            pct(self.mp_linked),
            self.mp_linked_longtail.clone(),
            pct(self.tl_linked),
            self.ce_linked.clone(),
        ]
    }
}

/// Rate restricted to a cohort, rendered as a CSV cell ("" when the
/// scenario labels no cohort or no attempt touched it).
fn cohort_cell(n: usize, rate: f64, cohort_empty: bool) -> String {
    if cohort_empty || n == 0 {
        String::new()
    } else {
        fmt(rate)
    }
}

/// The shared adversary sweep against one published view.
#[allow(clippy::type_complexity)]
fn attack_view(
    raw: &Dataset,
    view: &PublishedView<'_>,
    cohort: &HashSet<UserId>,
    seed: u64,
    threads: usize,
) -> (f64, String, f64, f64, String) {
    let mp_cfg = MultiPointAttack {
        points: 3,
        trials: 120,
        seed,
        noise: AdversaryNoise::exact(),
        threads,
    };
    let mp = multi_point_attack(raw, view, &mp_cfg);
    let (mp_n, mp_cohort) = mp.linked_rate_within(cohort);
    let tl_cfg = TopLocationClassifier {
        l: 5,
        split_min: None,
        threads,
    };
    let tl = classifier_attack(view, &tl_cfg);
    let (tl_n, tl_cohort) = tl.linkage_rate_within(cohort);
    (
        mp.linked_rate(),
        cohort_cell(mp_n, mp_cohort, cohort.is_empty()),
        mp.mean_anonymity(),
        tl.linkage_rate(),
        cohort_cell(tl_n, tl_cohort, cohort.is_empty()),
    )
}

/// Minimum published multiplicity across datasets (0 when nothing was
/// published at all).
fn min_multiplicity<'a>(datasets: impl Iterator<Item = &'a Dataset>) -> usize {
    datasets
        .flat_map(|ds| ds.fingerprints.iter())
        .map(|fp| fp.multiplicity())
        .min()
        .unwrap_or(0)
}

/// One single-release engine cell (batch or sharded).
fn single_release_cell(
    scenario: &str,
    engine: &'static str,
    raw: &Dataset,
    cohort: &HashSet<UserId>,
    shard: Option<ShardPolicy>,
    seed: u64,
    threads: usize,
) -> Cell {
    let config = GloveConfig {
        threads,
        ..GloveConfig::default()
    };
    let builder = match shard {
        Some(policy) => RunBuilder::new(config).sharded(policy),
        None => RunBuilder::new(config).batch(),
    };
    let outcome = builder.run(raw).expect("anonymization succeeds");
    let published = outcome.output.dataset().expect("single-release engine");
    assert!(
        published.is_k_anonymous(2),
        "{scenario}/{engine}: published release below k"
    );
    let (mp, mp_lt, mp_anon, tl, tl_lt) = attack_view(
        raw,
        &PublishedView::Dataset(published),
        cohort,
        seed,
        threads,
    );
    Cell {
        scenario: scenario.to_string(),
        engine,
        user_ids: raw.num_users(),
        long_tail_ids: cohort.len(),
        samples: published.num_samples(),
        retention: outcome.report.users_out as f64 / raw.num_users() as f64,
        suppressed_users: (raw.num_users() - outcome.report.users_out) as u64,
        min_multiplicity: min_multiplicity(std::iter::once(published)),
        pos_acc_m: mean_position_accuracy_m(published),
        time_acc_min: mean_time_accuracy_min(published),
        mp_linked: mp,
        mp_linked_longtail: mp_lt,
        mp_mean_anonymity: mp_anon,
        tl_linked: tl,
        tl_linked_longtail: tl_lt,
        ce_linked: String::new(),
        ce_linked_longtail: String::new(),
    }
}

/// One streaming engine cell (fresh or sticky carry).
fn stream_cell(
    scenario: &str,
    engine: &'static str,
    raw: &Dataset,
    cohort: &HashSet<UserId>,
    carry: CarryPolicy,
    seed: u64,
    threads: usize,
) -> Cell {
    let mut config = StreamConfig {
        window_min: STREAM_WINDOW_MIN,
        carry,
        ..StreamConfig::default()
    };
    config.glove.threads = threads;
    let events = events_of(raw);
    let run = run_stream(raw.name.clone(), events, config).expect("stream succeeds");
    let epochs: Vec<Dataset> = run.epochs.into_iter().map(|e| e.output.dataset).collect();
    for (i, ds) in epochs.iter().enumerate() {
        assert!(
            ds.is_k_anonymous(2),
            "{scenario}/{engine}: epoch {i} below k"
        );
    }
    let entered = run.stats.entered_user_slices() + run.stats.suppressed_users;
    let published: u64 = epochs.iter().map(|ds| ds.num_users() as u64).sum();
    // Sample-weighted accuracy across epochs.
    let (mut pos, mut time, mut weight) = (0.0, 0.0, 0.0);
    for ds in &epochs {
        let w = ds.num_samples() as f64;
        pos += mean_position_accuracy_m(ds) * w;
        time += mean_time_accuracy_min(ds) * w;
        weight += w;
    }
    let (mp, mp_lt, mp_anon, tl, tl_lt) =
        attack_view(raw, &PublishedView::Epochs(&epochs), cohort, seed, threads);
    let ce =
        cross_epoch_attack_cohort(&epochs, &CrossEpochAttack { l: 8, threads }, cohort.clone());
    Cell {
        scenario: scenario.to_string(),
        engine,
        user_ids: raw.num_users(),
        long_tail_ids: cohort.len(),
        samples: epochs.iter().map(Dataset::num_samples).sum(),
        retention: if entered > 0 {
            published as f64 / entered as f64
        } else {
            0.0
        },
        suppressed_users: run.stats.suppressed_users,
        min_multiplicity: min_multiplicity(epochs.iter()),
        pos_acc_m: if weight > 0.0 { pos / weight } else { 0.0 },
        time_acc_min: if weight > 0.0 { time / weight } else { 0.0 },
        mp_linked: mp,
        mp_linked_longtail: mp_lt,
        mp_mean_anonymity: mp_anon,
        tl_linked: tl,
        tl_linked_longtail: tl_lt,
        ce_linked: fmt(ce.linkage_rate()),
        ce_linked_longtail: cohort_cell(
            ce.cohort_attempts(),
            ce.cohort_linkage_rate(),
            cohort.is_empty(),
        ),
    }
}

/// The `scenarios` experiment entry point.
pub fn scenarios(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new(
        "scenarios",
        "anonymization engines x adversarial workload scenarios, with long-tail risk split",
    );
    let threads = ctx.cfg.threads;
    let mut cells = Vec::new();
    for (i, &scenario) in SCENARIOS.iter().enumerate() {
        let synth = ctx.scenario(scenario);
        let raw = synth.dataset.clone();
        let cohort: HashSet<UserId> = synth.long_tail_users().into_iter().collect();
        let seed = 0x5CE4_A210 + i as u64;
        eprintln!(
            "[eval] scenario matrix: {scenario} ({} ids)…",
            raw.num_users()
        );
        cells.push(single_release_cell(
            scenario, "batch", &raw, &cohort, None, seed, threads,
        ));
        cells.push(single_release_cell(
            scenario,
            "sharded",
            &raw,
            &cohort,
            Some(ShardPolicy {
                shards: 4,
                by: ShardBy::Activity,
            }),
            seed,
            threads,
        ));
        cells.push(stream_cell(
            scenario,
            "stream-fresh",
            &raw,
            &cohort,
            CarryPolicy::Fresh,
            seed,
            threads,
        ));
        cells.push(stream_cell(
            scenario,
            "stream-sticky",
            &raw,
            &cohort,
            CarryPolicy::Sticky,
            seed,
            threads,
        ));
    }

    let table: Vec<Vec<String>> = cells.iter().map(Cell::table).collect();
    report.table(
        &[
            "scenario",
            "engine",
            "retained",
            "min mult",
            "pos acc [m]",
            "mp linked",
            "mp long-tail",
            "tl linked",
            "ce linked",
        ],
        &table,
    );
    report.line("");
    report.line(
        "Every cell's published output is k-anonymous (asserted, k = 2). Long-tail \
         columns re-score the same attacks on the scenario's labelled cohort; blank \
         means the scenario labels no cohort (or no attempt touched it). Cross-epoch \
         linkage only exists for the streaming engines.",
    );

    report.csv(
        &ctx.cfg.out_dir,
        "scenario_matrix.csv",
        &[
            "scenario",
            "engine",
            "user_ids",
            "long_tail_ids",
            "samples",
            "retention",
            "suppressed_users",
            "min_multiplicity",
            "pos_acc_m",
            "time_acc_min",
            "mp_linked",
            "mp_linked_longtail",
            "mp_mean_anonymity",
            "tl_linked",
            "tl_linked_longtail",
            "ce_linked",
            "ce_linked_longtail",
        ],
        &cells.iter().map(Cell::csv).collect::<Vec<_>>(),
    );
    report
}
