//! Table 2 — comparative analysis: GLOVE (with suppression) vs W4M-LC on
//! the two nation-wide datasets and the two citywide subsets, for k ∈ {2, 5}.
//!
//! Paper headline (shape, not absolute numbers): W4M-LC discards
//! fingerprints, fabricates 17–74 % synthetic samples and still incurs
//! kilometre/hours-to-days errors; GLOVE discards nothing, fabricates
//! nothing, and keeps mean errors around 1 km / 1 h at k = 2 for a modest
//! (4–17 %) suppression of samples.

use crate::context::EvalContext;
use crate::report::{fmt, pct, Report};
use glove_baselines::{W4mAnonymizer, W4mConfig};
use glove_core::accuracy::{mean_position_accuracy_m, mean_time_accuracy_min};
use glove_core::api::json::JsonValue;
use glove_core::api::{Anonymizer, NullObserver};
use glove_core::{Dataset, SuppressionThresholds};
use glove_synth::city_subset;

/// One comparison cell of Table 2.
#[derive(Debug, Clone)]
struct Cell {
    discarded_fp: u64,
    discarded_fp_frac: f64,
    created_samples: u64,
    created_frac: f64,
    deleted_samples: u64,
    deleted_frac: f64,
    mean_pos_err_m: f64,
    mean_time_err_min: f64,
}

fn run_glove(ctx: &mut EvalContext, ds: &Dataset, k: usize) -> Cell {
    let total_user_samples = ds.num_user_samples() as f64;
    let out = ctx.glove(ds, k, SuppressionThresholds::table2());
    Cell {
        discarded_fp: out.stats.discarded_fingerprints,
        discarded_fp_frac: out.stats.discarded_fingerprints as f64 / ds.fingerprints.len() as f64,
        created_samples: 0,
        created_frac: 0.0,
        deleted_samples: out.stats.suppressed.user_samples,
        deleted_frac: out.stats.suppressed.user_samples as f64 / total_user_samples,
        mean_pos_err_m: mean_position_accuracy_m(&out.dataset),
        mean_time_err_min: mean_time_accuracy_min(&out.dataset),
    }
}

/// W4M runs through the unified [`Anonymizer`] trait: the shared counters
/// come straight off the engine-agnostic report, the error metrics off its
/// external detail section — the same uniform read any future defense
/// behind the trait gets.
fn run_w4m(ds: &Dataset, k: usize) -> Cell {
    let total_samples = ds.num_user_samples() as f64;
    let engine: Box<dyn Anonymizer> = Box::new(W4mAnonymizer::new(W4mConfig {
        k,
        ..W4mConfig::default()
    }));
    engine.prepare(ds).expect("W4M applicable to raw input");
    let outcome = engine.run(ds, &mut NullObserver).expect("W4M succeeds");
    let report = &outcome.report;
    let detail = report.detail.as_external().expect("w4m detail");
    let err = |key: &str| detail.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
    Cell {
        discarded_fp: report.discarded_fingerprints,
        discarded_fp_frac: report.discarded_fingerprints as f64 / ds.fingerprints.len() as f64,
        created_samples: report.created_samples,
        created_frac: report.created_samples as f64 / total_samples,
        deleted_samples: report.deleted_samples,
        deleted_frac: report.deleted_samples as f64 / total_samples,
        mean_pos_err_m: err("mean_position_error_m"),
        mean_time_err_min: err("mean_time_error_min"),
    }
}

/// Runs the full Table 2 grid.
pub fn table2(ctx: &mut EvalContext) -> Report {
    let mut report = Report::new(
        "table2",
        "W4M-LC vs GLOVE on four datasets, k in {2, 5} (paper Table 2)",
    );

    // Assemble the four datasets: the two nation-wide ones plus the two
    // citywide subsets (metropolitan radius: 5 sigma of the primary city).
    let mut datasets: Vec<(String, Dataset)> = Vec::new();
    {
        let civ = ctx.civ();
        let city = civ.country.primary_city().clone();
        let abidjan =
            city_subset(civ, &city.name, 5.0 * city.sigma_m).expect("primary city exists");
        datasets.push(("civ-like".into(), civ.dataset.clone()));
        datasets.push((city.name, abidjan));
    }
    {
        let sen = ctx.sen();
        let city = sen.country.primary_city().clone();
        let dakar = city_subset(sen, &city.name, 5.0 * city.sigma_m).expect("primary city exists");
        datasets.push(("sen-like".into(), sen.dataset.clone()));
        datasets.push((city.name, dakar));
    }

    let mut csv_rows = Vec::new();
    for k in [2usize, 5] {
        report.line(format!("k = {k}"));
        let mut rows = Vec::new();
        for (name, ds) in &datasets {
            if ds.num_users() < k.max(2) * 2 {
                report.line(format!("  (skipping {name}: too few users)"));
                continue;
            }
            eprintln!("[eval] table2: W4M-LC on {name} (k={k})…");
            let w4m = run_w4m(ds, k);
            let glove = run_glove(ctx, ds, k);
            for (method, cell) in [("W4M-LC", &w4m), ("GLOVE", &glove)] {
                rows.push(vec![
                    name.clone(),
                    method.to_string(),
                    format!("{} ({})", cell.discarded_fp, pct(cell.discarded_fp_frac)),
                    format!("{} ({})", cell.created_samples, pct(cell.created_frac)),
                    format!("{} ({})", cell.deleted_samples, pct(cell.deleted_frac)),
                    fmt(cell.mean_pos_err_m),
                    fmt(cell.mean_time_err_min),
                ]);
                csv_rows.push(vec![
                    k.to_string(),
                    name.clone(),
                    method.to_string(),
                    cell.discarded_fp.to_string(),
                    fmt(cell.discarded_fp_frac),
                    cell.created_samples.to_string(),
                    fmt(cell.created_frac),
                    cell.deleted_samples.to_string(),
                    fmt(cell.deleted_frac),
                    fmt(cell.mean_pos_err_m),
                    fmt(cell.mean_time_err_min),
                ]);
            }
        }
        report.table(
            &[
                "dataset",
                "method",
                "discarded fp",
                "created samples",
                "deleted samples",
                "mean pos err [m]",
                "mean time err [min]",
            ],
            &rows,
        );
        report.line("");
    }

    report.line("Paper shape: W4M-LC fabricates 17-74% synthetic samples and errs by");
    report.line("kilometres / many hours; GLOVE creates none, discards no fingerprints,");
    report.line("and keeps errors around 1 km / ~1 h (k=2) with modest suppression.");

    report.csv(
        &ctx.cfg.out_dir,
        "table2_comparison.csv",
        &[
            "k",
            "dataset",
            "method",
            "discarded_fp",
            "discarded_fp_frac",
            "created_samples",
            "created_frac",
            "deleted_samples",
            "deleted_frac",
            "mean_pos_err_m",
            "mean_time_err_min",
        ],
        &csv_rows,
    );
    report
}
