//! Tenant sessions: one bounded ingest queue feeding one engine worker.
//!
//! A session is the PR 4 run-API seam bound to a socket: the worker thread
//! drives `RunBuilder::new(glove).stream(config).keep_epochs(false)
//! .run_events(tenant, queue, observer)` — exactly the loop a library
//! caller would run — while the connection thread feeds the queue with
//! decoded `EVENTS` frames. Because the engine consumes the identical
//! event sequence in the identical order, the session's epochs are
//! byte-identical to a direct [`glove_core::stream::StreamEngine`] run
//! over the same events (the anchor `tests/serve_e2e.rs` pins).
//!
//! ### Backpressure vs shedding
//!
//! The queue is a bounded [`std::sync::mpsc::sync_channel`]; `offer` never
//! blocks the connection thread. When the queue is full the session either
//! answers `BUSY` (default — the client retries the unsent suffix after a
//! backoff, and nothing is lost) or, when the tenant opted into
//! `shed`, drops the remainder of the batch and books the drops in the
//! shed ledger ([`StreamStats::shed_events`] — queryable over the wire via
//! `STATS`, and part of the final `REPORT`). Accepted events are never
//! shed: once `offer` counts an event as accepted, only an engine error
//! can keep it out of an epoch.

use crate::protocol::{write_frame, Frame};
use glove_core::api::report::RunDetail;
use glove_core::api::{JsonlReportWriter, Observer, RunBuilder, RunReport};
use glove_core::config::StreamConfig;
use glove_core::policy::{PolicyPlane, SharedPolicy};
use glove_core::stream::{EpochOutput, StreamEvent, StreamStats};
use glove_core::{Dataset, GloveError};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// The epoch persistence hook: called with each closed epoch's dataset and
/// its target file path. Injected (rather than imported) so this crate
/// never depends on the CLI's text-format module — the CLI injects its
/// canonical dataset writer, tests inject capture closures.
pub type EpochWriteFn = dyn Fn(&Dataset, &Path) -> std::io::Result<()> + Send + Sync;

/// A shared frame sink for server pushes (`EPOCH`), serialized by a mutex
/// because the connection thread writes replies to the same socket.
pub type PushSink = Arc<Mutex<dyn Write + Send>>;

/// Everything needed to open one tenant session.
pub struct SessionConfig {
    /// Tenant name (names the engine run and the output subdirectory).
    pub tenant: String,
    /// `true`: drop events instead of signalling `BUSY` when the queue is
    /// full.
    pub shed: bool,
    /// The tenant's full streaming configuration.
    pub stream: StreamConfig,
    /// The session's initial policy plane ([`PolicyPlane::uniform`] for
    /// plain runs). Swappable mid-run via [`Session::swap_policy`] (the
    /// `RECONFIG` frame); the engine picks swaps up at its next window
    /// boundary.
    pub policy: PolicyPlane,
    /// Bounded queue capacity, events.
    pub queue_events: usize,
    /// Backoff suggested to clients in `BUSY` replies, milliseconds.
    pub retry_ms: u32,
    /// The tenant's own output directory (already tenant-specific);
    /// `None` disables epoch/report persistence.
    pub out_dir: Option<PathBuf>,
    /// Writes one epoch dataset to one path; `None` disables epoch files
    /// (epochs are still counted and pushed as `EPOCH` frames).
    pub epoch_writer: Option<Arc<EpochWriteFn>>,
}

/// Live counters of one session, shared between the connection thread,
/// the worker, and `STATS` snapshots.
#[derive(Debug)]
pub struct SessionMetrics {
    tenant: String,
    k: usize,
    accepted: AtomicU64,
    shed: AtomicU64,
    epochs: AtomicU64,
    queue_len: AtomicU64,
    queue_peak: AtomicU64,
    progress: Mutex<(u64, u64, u64)>,
    final_report: Mutex<Option<RunReport>>,
}

impl SessionMetrics {
    fn new(tenant: String, k: usize) -> Self {
        Self {
            tenant,
            k,
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            epochs: AtomicU64::new(0),
            queue_len: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            progress: Mutex::new((0, 0, 0)),
            final_report: Mutex::new(None),
        }
    }

    /// The tenant the counters belong to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Events accepted into the queue so far (never shed).
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Events dropped by the shed policy so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::SeqCst)
    }

    /// Epochs emitted so far.
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::SeqCst)
    }

    /// High-water mark of the bounded queue (events). Never exceeds the
    /// configured capacity — the bounded-memory proof of the bench.
    pub fn queue_peak(&self) -> u64 {
        self.queue_peak.load(Ordering::SeqCst)
    }

    /// The final report, once the session finished successfully.
    pub fn final_report(&self) -> Option<RunReport> {
        self.final_report.lock().expect("metrics lock").clone()
    }

    /// A report for `STATS`: the final report once the run finished,
    /// otherwise a coarse mid-run snapshot (engine `"glove-serve"`) whose
    /// stream detail carries the live accepted/shed/epoch counters and the
    /// latest cumulative progress counters. Snapshot totals count queue
    /// admissions, which can lead the engine's consumed-event count by up
    /// to the queue capacity.
    pub fn snapshot_report(&self) -> RunReport {
        if let Some(report) = self.final_report() {
            return report;
        }
        let (merges, pairs_computed, pairs_pruned) = *self.progress.lock().expect("metrics lock");
        let stats = StreamStats {
            events: self.accepted(),
            epochs: self.epochs(),
            shed_events: self.shed(),
            merges,
            pairs_computed,
            pairs_pruned,
            ..StreamStats::default()
        };
        RunReport {
            engine: "glove-serve".to_string(),
            dataset: self.tenant.clone(),
            k: self.k,
            samples_in: usize::try_from(self.accepted()).unwrap_or(usize::MAX),
            merges,
            pairs_computed,
            pairs_pruned,
            detail: RunDetail::Stream(stats),
            ..RunReport::default()
        }
    }
}

/// Result of offering one `EVENTS` batch to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// The whole batch was accounted for: `accepted` enqueued, `shed`
    /// dropped by policy.
    Accepted {
        /// Events enqueued.
        accepted: u32,
        /// Events dropped (shed sessions only).
        shed: u32,
    },
    /// The queue filled after `accepted` events; the client should resend
    /// the remainder after `retry_ms`.
    Busy {
        /// Events enqueued before the queue filled.
        accepted: u32,
        /// Suggested backoff, milliseconds.
        retry_ms: u32,
    },
    /// The worker is gone (engine error or panic); [`Session::finish`]
    /// returns the cause.
    Dead,
}

/// One open tenant session (owned by its connection thread).
pub struct Session {
    metrics: Arc<SessionMetrics>,
    sender: Option<SyncSender<StreamEvent>>,
    worker: Option<JoinHandle<Result<RunReport, String>>>,
    policy: SharedPolicy,
    shed: bool,
    retry_ms: u32,
}

impl Session {
    /// Validates the configuration, creates the output directory, and
    /// spawns the engine worker. `push` (when given) receives `EPOCH`
    /// frames as windows close.
    pub fn spawn(config: SessionConfig, push: Option<PushSink>) -> Result<Session, GloveError> {
        config.stream.validate()?;
        config.policy.validate()?;
        if let Some(dir) = &config.out_dir {
            std::fs::create_dir_all(dir).map_err(|e| {
                GloveError::InvalidConfig(format!(
                    "cannot create tenant output dir {}: {e}",
                    dir.display()
                ))
            })?;
        }
        let metrics = Arc::new(SessionMetrics::new(
            config.tenant.clone(),
            config.stream.glove.k,
        ));
        let (shed, retry_ms) = (config.shed, config.retry_ms);
        let policy = glove_core::policy::shared(config.policy.clone());
        let (sender, receiver) = sync_channel::<StreamEvent>(config.queue_events.max(1));
        let worker = {
            let metrics = Arc::clone(&metrics);
            let policy = Arc::clone(&policy);
            std::thread::Builder::new()
                .name(format!("glove-serve-{}", config.tenant))
                .spawn(move || run_worker(config, receiver, metrics, policy, push))
                .map_err(|e| GloveError::InvalidConfig(format!("cannot spawn worker: {e}")))?
        };
        Ok(Session {
            metrics,
            sender: Some(sender),
            worker: Some(worker),
            policy,
            shed,
            retry_ms,
        })
    }

    /// Swaps the session's policy plane (the `RECONFIG` handler). The
    /// plane is validated before installation; the engine picks it up at
    /// its next window boundary — the window currently filling keeps the
    /// policy it opened under. Returns the installed rule count.
    pub fn swap_policy(&self, plane: PolicyPlane) -> Result<u32, GloveError> {
        plane.validate()?;
        let rules = plane.rules.len() as u32;
        *self.policy.write().expect("policy lock poisoned") = plane;
        Ok(rules)
    }

    /// The session's live counters.
    pub fn metrics(&self) -> &Arc<SessionMetrics> {
        &self.metrics
    }

    /// Offers a batch to the bounded queue without blocking. See
    /// [`Offer`] for the three outcomes.
    pub fn offer(&mut self, events: Vec<StreamEvent>) -> Offer {
        let Some(sender) = &self.sender else {
            return Offer::Dead;
        };
        let total = events.len();
        let mut accepted = 0u32;
        for event in events {
            // Count the slot *before* handing the event over: the worker
            // decrements after recv, so counting afterwards could underflow
            // when the worker wins the race.
            let len = self.metrics.queue_len.fetch_add(1, Ordering::SeqCst) + 1;
            match sender.try_send(event) {
                Ok(()) => {
                    accepted += 1;
                    self.metrics.queue_peak.fetch_max(len, Ordering::SeqCst);
                }
                Err(TrySendError::Full(_)) => {
                    self.metrics.queue_len.fetch_sub(1, Ordering::SeqCst);
                    self.metrics
                        .accepted
                        .fetch_add(u64::from(accepted), Ordering::SeqCst);
                    let rest = (total - accepted as usize) as u32;
                    if self.shed {
                        self.metrics
                            .shed
                            .fetch_add(u64::from(rest), Ordering::SeqCst);
                        return Offer::Accepted {
                            accepted,
                            shed: rest,
                        };
                    }
                    return Offer::Busy {
                        accepted,
                        retry_ms: self.retry_ms,
                    };
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.metrics.queue_len.fetch_sub(1, Ordering::SeqCst);
                    return Offer::Dead;
                }
            }
        }
        self.metrics
            .accepted
            .fetch_add(u64::from(accepted), Ordering::SeqCst);
        Offer::Accepted { accepted, shed: 0 }
    }

    /// Closes the queue, drains the worker (every accepted event is
    /// consumed before the engine's final flush), and returns the final
    /// report — or the engine/sink failure that ended the run early.
    pub fn finish(&mut self) -> Result<RunReport, String> {
        self.sender = None;
        match self.worker.take() {
            Some(handle) => handle
                .join()
                .map_err(|_| "session worker panicked".to_string())?,
            None => self
                .metrics
                .final_report()
                .ok_or_else(|| "session already finished without a report".to_string()),
        }
    }
}

/// The blocking queue-drain iterator the worker feeds to `run_events`.
struct QueueIter {
    receiver: Receiver<StreamEvent>,
    metrics: Arc<SessionMetrics>,
    sink_failed: Arc<AtomicBool>,
}

impl Iterator for QueueIter {
    type Item = Result<StreamEvent, GloveError>;

    fn next(&mut self) -> Option<Self::Item> {
        // Once the epoch sink has failed, stop consuming: the run aborts
        // at the next event instead of anonymizing into the void.
        if self.sink_failed.load(Ordering::SeqCst) {
            return Some(Err(GloveError::InvalidDataset(
                "aborting tenant stream: an epoch could not be persisted".into(),
            )));
        }
        match self.receiver.recv() {
            Ok(event) => {
                self.metrics.queue_len.fetch_sub(1, Ordering::SeqCst);
                Some(Ok(event))
            }
            Err(_) => None, // every sender dropped: clean end of stream
        }
    }
}

/// The observer bound to the socket: persists epochs, pushes `EPOCH`
/// frames, and mirrors progress counters into the shared metrics.
struct ServeObserver {
    tenant: String,
    out_dir: Option<PathBuf>,
    epoch_writer: Option<Arc<EpochWriteFn>>,
    push: Option<PushSink>,
    metrics: Arc<SessionMetrics>,
    sink_failed: Arc<AtomicBool>,
    sink_error: Option<String>,
}

impl Observer for ServeObserver {
    fn on_epoch(&mut self, epoch: &EpochOutput) {
        if let (Some(writer), Some(dir)) = (&self.epoch_writer, &self.out_dir) {
            if !self.sink_failed.load(Ordering::SeqCst) {
                let path = dir.join(format!("epoch-{:04}.txt", epoch.epoch));
                if let Err(e) = writer(&epoch.output.dataset, &path) {
                    self.sink_error = Some(format!("writing {}: {e}", path.display()));
                    self.sink_failed.store(true, Ordering::SeqCst);
                    return;
                }
            } else {
                return;
            }
        }
        self.metrics.epochs.fetch_add(1, Ordering::SeqCst);
        if let Some(push) = &self.push {
            let frame = Frame::Epoch {
                tenant: self.tenant.clone(),
                epoch: epoch.epoch,
                window_start_min: epoch.window_start_min,
                groups: epoch.output.dataset.fingerprints.len() as u64,
                users: epoch.output.dataset.num_users() as u64,
            };
            // A peer that stopped reading must not stall or kill the run;
            // epoch files and the final report are the durable record.
            if let Ok(mut w) = push.lock() {
                let _ = write_frame(&mut *w, &frame);
            }
        }
    }

    fn on_progress(&mut self, merges: u64, pairs_computed: u64, pairs_pruned: u64) {
        *self.metrics.progress.lock().expect("metrics lock") =
            (merges, pairs_computed, pairs_pruned);
    }
}

fn run_worker(
    config: SessionConfig,
    receiver: Receiver<StreamEvent>,
    metrics: Arc<SessionMetrics>,
    policy: SharedPolicy,
    push: Option<PushSink>,
) -> Result<RunReport, String> {
    let SessionConfig {
        tenant,
        stream,
        out_dir,
        epoch_writer,
        ..
    } = config;
    let sink_failed = Arc::new(AtomicBool::new(false));
    let mut observer = ServeObserver {
        tenant: tenant.clone(),
        out_dir: out_dir.clone(),
        epoch_writer,
        push,
        metrics: Arc::clone(&metrics),
        sink_failed: Arc::clone(&sink_failed),
        sink_error: None,
    };
    let mut events = QueueIter {
        receiver,
        metrics: Arc::clone(&metrics),
        sink_failed: Arc::clone(&sink_failed),
    };
    let builder = RunBuilder::new(stream.glove)
        .stream(stream)
        .keep_epochs(false)
        .shared_policy(policy);
    let run = builder.run_events(&tenant, &mut events, &mut observer);
    // The sink failure outranks the abort sentinel it raised — and covers
    // a failed write of the final, flush-emitted epoch too.
    if let Some(cause) = observer.sink_error.take() {
        return Err(cause);
    }
    let outcome = run.map_err(|e| e.to_string())?;

    let mut report = outcome.report;
    if let RunDetail::Stream(stats) = &mut report.detail {
        stats.shed_events = metrics.shed();
        report.samples_in = usize::try_from(stats.events + stats.shed_events).unwrap_or(usize::MAX);
    }
    // Best-effort durable record (flushed per record, so even a killed
    // daemon keeps it): the wire REPORT and the metrics are authoritative.
    if let Some(dir) = &out_dir {
        if let Ok(file) = std::fs::File::create(dir.join("report.jsonl")) {
            let mut sink = JsonlReportWriter::new(std::io::BufWriter::new(file));
            sink.on_report(&report);
        }
    }
    *metrics.final_report.lock().expect("metrics lock") = Some(report.clone());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glove_core::stream::{events_of, run_stream};
    use glove_core::Sample;

    fn two_user_events(n: u32) -> Vec<StreamEvent> {
        (0..n)
            .flat_map(|t| {
                [0u32, 1u32].map(|user| StreamEvent {
                    user,
                    sample: Sample::point(i64::from(t) * 100, 0, t + 1),
                })
            })
            .collect()
    }

    fn config(window_min: u32) -> StreamConfig {
        StreamConfig {
            window_min,
            glove: glove_core::GloveConfig {
                threads: 1,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn session_matches_direct_engine_run() {
        let events = two_user_events(200);
        let captured: Arc<Mutex<Vec<Dataset>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&captured);
        let writer: Arc<EpochWriteFn> = Arc::new(move |ds: &Dataset, _path: &Path| {
            sink.lock().unwrap().push(ds.clone());
            Ok(())
        });
        let dir = std::env::temp_dir().join(format!("glove-serve-session-{}", std::process::id()));
        let mut session = Session::spawn(
            SessionConfig {
                tenant: "t".into(),
                shed: false,
                stream: config(60),
                policy: PolicyPlane::uniform(),
                queue_events: 8,
                retry_ms: 1,
                out_dir: Some(dir.clone()),
                epoch_writer: Some(writer),
            },
            None,
        )
        .unwrap();

        // Feed in small batches, honouring BUSY like a client would.
        let mut pending = events.clone();
        while !pending.is_empty() {
            let batch: Vec<_> = pending.drain(..pending.len().min(16)).collect();
            let mut rest = batch;
            loop {
                match session.offer(rest.clone()) {
                    Offer::Accepted { accepted, shed } => {
                        assert_eq!(shed, 0);
                        assert_eq!(accepted as usize, rest.len());
                        break;
                    }
                    Offer::Busy { accepted, .. } => {
                        rest.drain(..accepted as usize);
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Offer::Dead => panic!("worker died"),
                }
            }
        }
        let report = session.finish().unwrap();
        let stats = report.detail.as_stream().unwrap();
        assert_eq!(stats.events, events.len() as u64);
        assert_eq!(stats.shed_events, 0);
        assert_eq!(session.metrics().accepted(), events.len() as u64);

        let reference = run_stream("t", events, config(60)).unwrap();
        let got = captured.lock().unwrap();
        assert_eq!(got.len(), reference.epochs.len());
        for (a, b) in got.iter().zip(&reference.epochs) {
            assert_eq!(a.fingerprints, b.output.dataset.fingerprints);
        }
        // Identical modulo wall-clock timing.
        let strip = |e: &glove_core::stream::EpochStat| {
            let mut e = e.clone();
            e.elapsed_s = 0.0;
            e
        };
        assert_eq!(
            stats.per_epoch.iter().map(strip).collect::<Vec<_>>(),
            reference
                .stats
                .per_epoch
                .iter()
                .map(strip)
                .collect::<Vec<_>>()
        );
        // The flushed-per-record report file exists and parses.
        let text = std::fs::read_to_string(dir.join("report.jsonl")).unwrap();
        let back = RunReport::from_json(text.lines().next().unwrap()).unwrap();
        assert_eq!(back.detail.as_stream().unwrap().events, stats.events);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reconfig_applies_at_next_window() {
        use glove_core::policy::{PolicyOverride, PolicyRule};
        let feed = |t0: u32, t1: u32| -> Vec<StreamEvent> {
            (t0..t1)
                .flat_map(|t| {
                    (0u32..6).map(move |user| StreamEvent {
                        user,
                        sample: Sample::point(i64::from(user) * 100, 0, t),
                    })
                })
                .collect()
        };
        let mut session = Session::spawn(
            SessionConfig {
                tenant: "tune".into(),
                shed: false,
                stream: config(60),
                policy: PolicyPlane::uniform(),
                queue_events: 1024,
                retry_ms: 1,
                out_dir: None,
                epoch_writer: None,
            },
            None,
        )
        .unwrap();

        // Window 0 runs under the uniform plane.
        assert!(matches!(session.offer(feed(1, 60)), Offer::Accepted { .. }));

        // Retune mid-run: k = 6 from epoch 1 on. The rule starts at epoch 1
        // and the swap happens-before any window-1 event is offered, so the
        // outcome is deterministic no matter when the worker drains window 0.
        let mut plane = PolicyPlane::uniform();
        plane.rules.push(PolicyRule {
            from_epoch: 1,
            to_epoch: None,
            cohort: None,
            set: PolicyOverride {
                k: Some(6),
                ..PolicyOverride::default()
            },
        });
        assert_eq!(session.swap_policy(plane).unwrap(), 1);

        assert!(matches!(
            session.offer(feed(61, 120)),
            Offer::Accepted { .. }
        ));
        let report = session.finish().unwrap();
        let stats = report.detail.as_stream().unwrap();
        let ks: Vec<usize> = stats.per_epoch.iter().map(|e| e.policy_k).collect();
        assert_eq!(ks, [2, 6]);
    }

    #[test]
    fn shed_session_bounds_the_queue_and_books_drops() {
        // A deliberately stalled consumer: the writer sleeps, so the tiny
        // queue fills and the shed ledger must pick up the overflow.
        let writer: Arc<EpochWriteFn> = Arc::new(|_ds: &Dataset, _path: &Path| {
            std::thread::sleep(std::time::Duration::from_millis(30));
            Ok(())
        });
        let dir = std::env::temp_dir().join(format!("glove-serve-shed-{}", std::process::id()));
        let mut session = Session::spawn(
            SessionConfig {
                tenant: "shed".into(),
                shed: true,
                stream: config(10),
                policy: PolicyPlane::uniform(),
                queue_events: 4,
                retry_ms: 1,
                out_dir: Some(dir.clone()),
                epoch_writer: Some(writer),
            },
            None,
        )
        .unwrap();
        let events = two_user_events(600);
        let mut offered = 0u64;
        let mut accepted = 0u64;
        let mut shed = 0u64;
        for chunk in events.chunks(50) {
            offered += chunk.len() as u64;
            match session.offer(chunk.to_vec()) {
                Offer::Accepted {
                    accepted: a,
                    shed: s,
                } => {
                    accepted += u64::from(a);
                    shed += u64::from(s);
                }
                other => panic!("shed session never answers {other:?}"),
            }
        }
        let report = session.finish().unwrap();
        let stats = report.detail.as_stream().unwrap();
        assert!(stats.shed_events > 0, "stall must shed: {stats:?}");
        assert_eq!(stats.shed_events, shed);
        assert_eq!(stats.events, accepted);
        assert_eq!(stats.events + stats.shed_events, offered);
        assert_eq!(report.samples_in as u64, offered);
        assert!(
            session.metrics().queue_peak() <= 4,
            "bounded queue exceeded its capacity: {}",
            session.metrics().queue_peak()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_order_events_kill_the_worker_with_engine_error() {
        let mut session = Session::spawn(
            SessionConfig {
                tenant: "ooo".into(),
                shed: false,
                stream: config(60),
                policy: PolicyPlane::uniform(),
                queue_events: 4,
                retry_ms: 1,
                out_dir: None,
                epoch_writer: None,
            },
            None,
        )
        .unwrap();
        let late_then_early = vec![
            StreamEvent {
                user: 0,
                sample: Sample::point(0, 0, 100),
            },
            StreamEvent {
                user: 1,
                sample: Sample::point(0, 0, 5),
            },
        ];
        let _ = session.offer(late_then_early);
        let err = session.finish().unwrap_err();
        assert!(err.contains("out-of-order"), "unexpected error: {err}");
    }

    #[test]
    fn epoch_sink_failure_aborts_the_run() {
        let writer: Arc<EpochWriteFn> =
            Arc::new(|_ds: &Dataset, _path: &Path| Err(std::io::Error::other("disk full")));
        let mut session = Session::spawn(
            SessionConfig {
                tenant: "sink".into(),
                shed: false,
                stream: config(10),
                policy: PolicyPlane::uniform(),
                queue_events: 64,
                retry_ms: 1,
                out_dir: Some(
                    std::env::temp_dir()
                        .join(format!("glove-serve-sinkfail-{}", std::process::id())),
                ),
                epoch_writer: Some(writer),
            },
            None,
        )
        .unwrap();
        let mut rest = two_user_events(400);
        loop {
            match session.offer(rest.clone()) {
                Offer::Accepted { .. } | Offer::Dead => break,
                Offer::Busy { accepted, .. } => {
                    rest.drain(..accepted as usize);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
        let err = session.finish().unwrap_err();
        assert!(err.contains("disk full"), "unexpected error: {err}");
    }

    #[test]
    fn snapshot_report_carries_live_counters() {
        let mut session = Session::spawn(
            SessionConfig {
                tenant: "snap".into(),
                shed: true,
                stream: config(1_000_000),
                policy: PolicyPlane::uniform(),
                queue_events: 2,
                retry_ms: 1,
                out_dir: None,
                epoch_writer: None,
            },
            None,
        )
        .unwrap();
        let ds_events = events_of(
            &glove_core::Dataset::new(
                "snap-src",
                vec![
                    glove_core::Fingerprint::new(0, vec![Sample::point(0, 0, 1)]).unwrap(),
                    glove_core::Fingerprint::new(1, vec![Sample::point(0, 0, 2)]).unwrap(),
                ],
            )
            .unwrap(),
        );
        let _ = session.offer(ds_events);
        let snap = session.metrics().snapshot_report();
        assert_eq!(snap.engine, "glove-serve");
        assert_eq!(snap.dataset, "snap");
        let report = session.finish().unwrap();
        assert_eq!(report.engine, "glove-stream");
        // After the run, the snapshot is the final report.
        assert_eq!(session.metrics().snapshot_report(), report);
    }
}
