//! JSON codec for [`StreamConfig`] / [`GloveConfig`], used by the `HELLO`
//! frame to inline a tenant's full configuration.
//!
//! Parsing is *tolerant*: every field defaults to the library default when
//! absent, so a minimal `{"k": 3}` glove section is a valid configuration.
//! Serialization is total — `to_value` followed by `from_value` returns
//! the identical configuration (f64 fields survive because the JSON
//! renderer prints shortest-round-trip floats). Validation is *not* done
//! here; the session calls [`StreamConfig::validate`] after decoding so
//! invalid configurations fail with the engine's own error text.

use glove_core::api::json::JsonValue;
use glove_core::config::{
    CarryPolicy, GloveConfig, ResidualPolicy, ShardBy, ShardPolicy, StreamConfig, StretchConfig,
    SuppressionThresholds, UnderKPolicy,
};

fn uint(v: u64) -> JsonValue {
    JsonValue::Int(i128::from(v))
}

fn num(v: f64) -> JsonValue {
    JsonValue::Num(v)
}

/// Serializes a [`StreamConfig`] (including its inner [`GloveConfig`]).
pub fn stream_config_to_value(c: &StreamConfig) -> JsonValue {
    JsonValue::obj(vec![
        ("window_min", uint(u64::from(c.window_min))),
        (
            "carry",
            JsonValue::Str(
                match c.carry {
                    CarryPolicy::Fresh => "fresh",
                    CarryPolicy::Sticky => "sticky",
                }
                .to_string(),
            ),
        ),
        (
            "under_k",
            JsonValue::Str(
                match c.under_k {
                    UnderKPolicy::Suppress => "suppress",
                    UnderKPolicy::Defer => "defer",
                }
                .to_string(),
            ),
        ),
        ("glove", glove_config_to_value(&c.glove)),
    ])
}

/// Parses a [`StreamConfig`]; absent fields take library defaults.
pub fn stream_config_from_value(v: &JsonValue) -> Result<StreamConfig, String> {
    let mut config = StreamConfig::default();
    if let Some(w) = v.get("window_min") {
        config.window_min = w
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or("window_min must be a u32")?;
    }
    if let Some(s) = v.get("carry") {
        config.carry = s.as_str().ok_or("carry must be a string")?.parse()?;
    }
    if let Some(s) = v.get("under_k") {
        config.under_k = s.as_str().ok_or("under_k must be a string")?.parse()?;
    }
    if let Some(g) = v.get("glove") {
        config.glove = glove_config_from_value(g)?;
    }
    Ok(config)
}

/// Serializes a [`GloveConfig`].
pub fn glove_config_to_value(c: &GloveConfig) -> JsonValue {
    JsonValue::obj(vec![
        ("k", uint(c.k as u64)),
        (
            "stretch",
            JsonValue::obj(vec![
                ("phi_max_space_m", num(c.stretch.phi_max_space_m)),
                ("phi_max_time_min", num(c.stretch.phi_max_time_min)),
                ("w_space", num(c.stretch.w_space)),
                ("w_time", num(c.stretch.w_time)),
                (
                    "population_weighting",
                    JsonValue::Bool(c.stretch.population_weighting),
                ),
            ]),
        ),
        (
            "suppression",
            JsonValue::obj(vec![
                (
                    "max_space_m",
                    c.suppression
                        .max_space_m
                        .map_or(JsonValue::Null, |n| uint(u64::from(n))),
                ),
                (
                    "max_time_min",
                    c.suppression
                        .max_time_min
                        .map_or(JsonValue::Null, |n| uint(u64::from(n))),
                ),
            ]),
        ),
        (
            "residual",
            JsonValue::Str(
                match c.residual {
                    ResidualPolicy::MergeIntoNearest => "merge",
                    ResidualPolicy::Suppress => "suppress",
                }
                .to_string(),
            ),
        ),
        ("reshape", JsonValue::Bool(c.reshape)),
        ("threads", uint(c.threads as u64)),
        (
            "shard",
            c.shard.map_or(JsonValue::Null, |p| {
                JsonValue::obj(vec![
                    ("shards", uint(p.shards as u64)),
                    (
                        "by",
                        JsonValue::Str(
                            match p.by {
                                ShardBy::Activity => "activity",
                                ShardBy::Spatial => "spatial",
                                ShardBy::TwoLevel => "two-level",
                            }
                            .to_string(),
                        ),
                    ),
                ])
            }),
        ),
        ("pruning", JsonValue::Bool(c.pruning)),
        ("cascade", JsonValue::Bool(c.cascade)),
        ("columnar", JsonValue::Bool(c.columnar)),
    ])
}

fn opt_u32(v: &JsonValue, what: &str) -> Result<Option<u32>, String> {
    match v {
        JsonValue::Null => Ok(None),
        other => other
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .map(Some)
            .ok_or_else(|| format!("{what} must be null or a u32")),
    }
}

fn bool_field(v: &JsonValue, key: &str, default: bool) -> Result<bool, String> {
    match v.get(key) {
        None => Ok(default),
        Some(b) => b.as_bool().ok_or_else(|| format!("{key} must be a bool")),
    }
}

/// Parses a [`GloveConfig`]; absent fields take library defaults.
pub fn glove_config_from_value(v: &JsonValue) -> Result<GloveConfig, String> {
    let mut config = GloveConfig::default();
    if let Some(k) = v.get("k") {
        config.k = k.as_usize().ok_or("k must be an unsigned integer")?;
    }
    if let Some(s) = v.get("stretch") {
        let d = StretchConfig::default();
        let f = |key: &str, default: f64| -> Result<f64, String> {
            match s.get(key) {
                None => Ok(default),
                Some(x) => x.as_f64().ok_or_else(|| format!("{key} must be a number")),
            }
        };
        config.stretch = StretchConfig {
            phi_max_space_m: f("phi_max_space_m", d.phi_max_space_m)?,
            phi_max_time_min: f("phi_max_time_min", d.phi_max_time_min)?,
            w_space: f("w_space", d.w_space)?,
            w_time: f("w_time", d.w_time)?,
            population_weighting: bool_field(s, "population_weighting", d.population_weighting)?,
        };
    }
    if let Some(s) = v.get("suppression") {
        config.suppression = SuppressionThresholds {
            max_space_m: s
                .get("max_space_m")
                .map_or(Ok(None), |x| opt_u32(x, "max_space_m"))?,
            max_time_min: s
                .get("max_time_min")
                .map_or(Ok(None), |x| opt_u32(x, "max_time_min"))?,
        };
    }
    if let Some(r) = v.get("residual") {
        config.residual = match r.as_str().ok_or("residual must be a string")? {
            "merge" => ResidualPolicy::MergeIntoNearest,
            "suppress" => ResidualPolicy::Suppress,
            other => return Err(format!("residual must be merge|suppress, got '{other}'")),
        };
    }
    config.reshape = bool_field(v, "reshape", config.reshape)?;
    if let Some(t) = v.get("threads") {
        config.threads = t.as_usize().ok_or("threads must be an unsigned integer")?;
    }
    if let Some(s) = v.get("shard") {
        config.shard = match s {
            JsonValue::Null => None,
            obj => Some(ShardPolicy {
                shards: obj
                    .get("shards")
                    .and_then(JsonValue::as_usize)
                    .ok_or("shard.shards must be an unsigned integer")?,
                by: match obj.get("by") {
                    None => ShardBy::default(),
                    Some(b) => b.as_str().ok_or("shard.by must be a string")?.parse()?,
                },
            }),
        };
    }
    config.pruning = bool_field(v, "pruning", config.pruning)?;
    config.cascade = bool_field(v, "cascade", config.cascade)?;
    config.columnar = bool_field(v, "columnar", config.columnar)?;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips() {
        let c = StreamConfig::default();
        let back = stream_config_from_value(&stream_config_to_value(&c)).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn non_default_round_trips_exactly() {
        let c = StreamConfig {
            window_min: 720,
            carry: CarryPolicy::Sticky,
            under_k: UnderKPolicy::Defer,
            glove: GloveConfig {
                k: 7,
                stretch: StretchConfig {
                    phi_max_space_m: 12_345.678,
                    phi_max_time_min: 90.5,
                    w_space: 0.3,
                    w_time: 0.7,
                    population_weighting: false,
                },
                suppression: SuppressionThresholds::table2(),
                residual: ResidualPolicy::Suppress,
                reshape: false,
                threads: 3,
                shard: Some(ShardPolicy::two_level(9)),
                pruning: false,
                cascade: false,
                columnar: false,
            },
        };
        let back = stream_config_from_value(&stream_config_to_value(&c)).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn minimal_json_takes_defaults() {
        let v = JsonValue::parse(r#"{"glove": {"k": 3}}"#).unwrap();
        let c = stream_config_from_value(&v).unwrap();
        assert_eq!(c.glove.k, 3);
        assert_eq!(c.window_min, StreamConfig::default().window_min);
        assert!(c.glove.pruning);
    }

    #[test]
    fn bad_fields_are_rejected() {
        for text in [
            r#"{"window_min": "day"}"#,
            r#"{"carry": "warm"}"#,
            r#"{"glove": {"residual": "drop"}}"#,
            r#"{"glove": {"shard": {"by": "geohash", "shards": 2}}}"#,
        ] {
            let v = JsonValue::parse(text).unwrap();
            assert!(stream_config_from_value(&v).is_err(), "{text}");
        }
    }
}
