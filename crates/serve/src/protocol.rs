//! The `glove serve` wire protocol: length-prefixed binary frames.
//!
//! ### Framing
//!
//! Every frame is `[len: u32 LE][tag: u8][payload: len-1 bytes]` — `len`
//! counts the tag byte plus the payload, so the smallest legal frame is 5
//! bytes on the wire. `len` is capped at [`MAX_FRAME_LEN`]; a peer
//! announcing a longer frame is rejected before any payload is read.
//!
//! Payloads are JSON (control frames, rendered by the dependency-free
//! `glove_core::api::json` module) except [`Frame::Events`], which packs
//! event batches as fixed-width little-endian records
//! ([`EVENT_WIRE_BYTES`] bytes each, `E`-record semantics: `user x y dx dy
//! t dt`) — ingest is the hot path and must not pay JSON costs.
//!
//! ### Frame set
//!
//! | frame      | direction | meaning |
//! |------------|-----------|---------|
//! | `HELLO`    | c → s     | open a tenant session (name, shed flag, inlined [`StreamConfig`] JSON) |
//! | `HELLO_OK` | s → c     | session open; announces the bounded queue capacity |
//! | `EVENTS`   | c → s     | a batch of time-ordered events |
//! | `EVENTS_OK`| s → c     | batch accounted: `accepted` enqueued, `shed` dropped by policy |
//! | `BUSY`     | s → c     | backpressure: queue full after `accepted`; retry the rest after `retry_ms` |
//! | `FLUSH`    | c → s     | end the stream; reply is the final `REPORT` |
//! | `CLOSE`    | c → s     | end the connection (flushes an open session); reply `BYE` |
//! | `BYE`      | s → c     | goodbye |
//! | `EPOCH`    | s → c     | push: an epoch closed (metadata only, never the dataset) |
//! | `REPORT`   | s → c     | a full [`RunReport`] (reply to `FLUSH`/`STATS`) |
//! | `STATS`    | c → s     | request a mid-run report snapshot |
//! | `SHUTDOWN` | c → s     | drain every session and stop the daemon; reply `BYE` |
//! | `ERROR`    | s → c     | request failed (code + message) |
//! | `RECONFIG` | c → s     | swap the tenant's policy plane (applies at the next window boundary) |
//! | `RECONFIG_OK` | s → c  | policy plane installed; echoes the rule count |
//!
//! Decoding is total: any byte sequence either parses or yields a
//! [`WireError`] carrying the byte offset (relative to the frame start)
//! where decoding failed — never a panic. The proptests in
//! `tests/protocol_properties.rs` pin both directions.

use glove_core::api::json::JsonValue;
use glove_core::api::report::RunReport;
use glove_core::config::StreamConfig;
use glove_core::policy::PolicyPlane;
use glove_core::stream::StreamEvent;
use glove_core::Sample;
use std::io::{Read, Write};

use crate::config_wire::{stream_config_from_value, stream_config_to_value};

/// Hard cap on `len` (tag + payload bytes) of a single frame: 16 MiB.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Bytes of one event record inside an [`Frame::Events`] payload:
/// `user: u32, x: i64, y: i64, dx: u32, dy: u32, t: u32, dt: u32`, all
/// little-endian.
pub const EVENT_WIRE_BYTES: usize = 36;

/// Hard cap on events per [`Frame::Events`] frame, keeping the largest
/// ingest frame (~2.3 MiB) far below [`MAX_FRAME_LEN`].
pub const MAX_EVENTS_PER_FRAME: usize = 65_536;

/// Machine-readable category of a [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer violated the protocol (bad frame sequence or payload).
    Protocol,
    /// `HELLO` named a tenant that already ran or is running.
    TenantExists,
    /// An ingest/control frame arrived with no open session.
    NoTenant,
    /// The tenant's engine rejected the stream (e.g. out-of-order events)
    /// or its epoch sink failed.
    Engine,
    /// The daemon is shutting down and takes no new work.
    Shutdown,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::TenantExists => "tenant-exists",
            ErrorCode::NoTenant => "no-tenant",
            ErrorCode::Engine => "engine",
            ErrorCode::Shutdown => "shutdown",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "protocol" => ErrorCode::Protocol,
            "tenant-exists" => ErrorCode::TenantExists,
            "no-tenant" => ErrorCode::NoTenant,
            "engine" => ErrorCode::Engine,
            "shutdown" => ErrorCode::Shutdown,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One protocol frame (see the module docs for the frame table).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Open a tenant session.
    Hello {
        /// Tenant name (also the epoch output subdirectory).
        tenant: String,
        /// `true`: drop events instead of answering `BUSY` when the
        /// bounded queue is full (the drops are booked in the shed ledger).
        shed: bool,
        /// The session's full streaming configuration.
        config: StreamConfig,
    },
    /// Session opened.
    HelloOk {
        /// Echoed tenant name.
        tenant: String,
        /// Capacity of the session's bounded event queue.
        queue: u32,
    },
    /// A batch of time-ordered events.
    Events(Vec<StreamEvent>),
    /// Ingest accounting for one `EVENTS` frame.
    EventsOk {
        /// Events enqueued for the engine.
        accepted: u32,
        /// Events dropped by the shed policy (shed sessions only).
        shed: u32,
    },
    /// Backpressure: the queue filled after `accepted` events; resend the
    /// remainder after `retry_ms` milliseconds.
    Busy {
        /// Events enqueued before the queue filled.
        accepted: u32,
        /// Suggested client backoff, milliseconds.
        retry_ms: u32,
    },
    /// End the tenant's stream and await its final report.
    Flush,
    /// End the connection.
    Close,
    /// Goodbye (reply to `CLOSE` and `SHUTDOWN`).
    Bye,
    /// Server push: an epoch closed (metadata only — epoch datasets go to
    /// the tenant's output directory, never over the wire).
    Epoch {
        /// Tenant the epoch belongs to.
        tenant: String,
        /// Epoch sequence number.
        epoch: u64,
        /// Start of the closed window, minutes since the stream origin.
        window_start_min: u64,
        /// k-anonymous groups published.
        groups: u64,
        /// Subscribers published.
        users: u64,
    },
    /// A full run report (reply to `FLUSH` and `STATS`).
    Report {
        /// Tenant the report describes.
        tenant: String,
        /// The report itself (final after `FLUSH`, snapshot after
        /// `STATS`). Boxed: a `RunReport` dwarfs every other variant.
        report: Box<RunReport>,
    },
    /// Request a mid-run report snapshot.
    Stats,
    /// Drain every session and stop the daemon.
    Shutdown,
    /// The previous request failed.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Swap the open session's policy plane. The engine picks the new
    /// plane up at its next window boundary — the epoch currently filling
    /// keeps the policy it opened under.
    Reconfig {
        /// The replacement plane (validated before installation). Boxed:
        /// a plane with cohorts dwarfs the scalar variants.
        plane: Box<PolicyPlane>,
    },
    /// Policy plane installed.
    ReconfigOk {
        /// Echoed tenant name.
        tenant: String,
        /// Rules in the installed plane (0 = back to uniform).
        rules: u32,
    },
}

impl Frame {
    /// The frame's tag byte.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::HelloOk { .. } => 2,
            Frame::Events(_) => 3,
            Frame::EventsOk { .. } => 4,
            Frame::Busy { .. } => 5,
            Frame::Flush => 6,
            Frame::Close => 7,
            Frame::Bye => 8,
            Frame::Epoch { .. } => 9,
            Frame::Report { .. } => 10,
            Frame::Stats => 11,
            Frame::Shutdown => 12,
            Frame::Error { .. } => 13,
            Frame::Reconfig { .. } => 14,
            Frame::ReconfigOk { .. } => 15,
        }
    }

    /// The frame's name (for diagnostics).
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "HELLO",
            Frame::HelloOk { .. } => "HELLO_OK",
            Frame::Events(_) => "EVENTS",
            Frame::EventsOk { .. } => "EVENTS_OK",
            Frame::Busy { .. } => "BUSY",
            Frame::Flush => "FLUSH",
            Frame::Close => "CLOSE",
            Frame::Bye => "BYE",
            Frame::Epoch { .. } => "EPOCH",
            Frame::Report { .. } => "REPORT",
            Frame::Stats => "STATS",
            Frame::Shutdown => "SHUTDOWN",
            Frame::Error { .. } => "ERROR",
            Frame::Reconfig { .. } => "RECONFIG",
            Frame::ReconfigOk { .. } => "RECONFIG_OK",
        }
    }
}

/// A framing/decoding failure, locating the offending byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset relative to the start of the frame (offset 0 is the
    /// first length byte; the payload starts at offset 5).
    pub offset: usize,
    /// What went wrong there.
    pub message: String,
}

impl WireError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for WireError {}

/// Offset of the first payload byte inside a frame (after `len` + tag).
pub const PAYLOAD_OFFSET: usize = 5;

fn json_payload(v: &JsonValue) -> Vec<u8> {
    v.render().into_bytes()
}

fn str_field(v: &JsonValue, key: &str) -> Result<String, WireError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| WireError::new(PAYLOAD_OFFSET, format!("missing string field '{key}'")))
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, WireError> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| WireError::new(PAYLOAD_OFFSET, format!("missing integer field '{key}'")))
}

fn u32_field(v: &JsonValue, key: &str) -> Result<u32, WireError> {
    u64_field(v, key).and_then(|n| {
        u32::try_from(n)
            .map_err(|_| WireError::new(PAYLOAD_OFFSET, format!("field '{key}' exceeds u32")))
    })
}

fn parse_json(payload: &[u8], what: &str) -> Result<JsonValue, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| WireError::new(PAYLOAD_OFFSET + e.valid_up_to(), "payload is not UTF-8"))?;
    JsonValue::parse(text)
        .map_err(|e| WireError::new(PAYLOAD_OFFSET, format!("bad {what} JSON: {e}")))
}

/// Encodes one frame to its wire bytes.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload: Vec<u8> = match frame {
        Frame::Hello {
            tenant,
            shed,
            config,
        } => json_payload(&JsonValue::obj(vec![
            ("tenant", JsonValue::Str(tenant.clone())),
            ("shed", JsonValue::Bool(*shed)),
            ("config", stream_config_to_value(config)),
        ])),
        Frame::HelloOk { tenant, queue } => json_payload(&JsonValue::obj(vec![
            ("tenant", JsonValue::Str(tenant.clone())),
            ("queue", JsonValue::Int(i128::from(*queue))),
        ])),
        Frame::Events(events) => {
            let mut out = Vec::with_capacity(4 + events.len() * EVENT_WIRE_BYTES);
            out.extend_from_slice(&(events.len() as u32).to_le_bytes());
            for e in events {
                out.extend_from_slice(&e.user.to_le_bytes());
                out.extend_from_slice(&e.sample.x.to_le_bytes());
                out.extend_from_slice(&e.sample.y.to_le_bytes());
                out.extend_from_slice(&e.sample.dx.to_le_bytes());
                out.extend_from_slice(&e.sample.dy.to_le_bytes());
                out.extend_from_slice(&e.sample.t.to_le_bytes());
                out.extend_from_slice(&e.sample.dt.to_le_bytes());
            }
            out
        }
        Frame::EventsOk { accepted, shed } => json_payload(&JsonValue::obj(vec![
            ("accepted", JsonValue::Int(i128::from(*accepted))),
            ("shed", JsonValue::Int(i128::from(*shed))),
        ])),
        Frame::Busy { accepted, retry_ms } => json_payload(&JsonValue::obj(vec![
            ("accepted", JsonValue::Int(i128::from(*accepted))),
            ("retry_ms", JsonValue::Int(i128::from(*retry_ms))),
        ])),
        Frame::Flush | Frame::Close | Frame::Bye | Frame::Stats | Frame::Shutdown => Vec::new(),
        Frame::Epoch {
            tenant,
            epoch,
            window_start_min,
            groups,
            users,
        } => json_payload(&JsonValue::obj(vec![
            ("tenant", JsonValue::Str(tenant.clone())),
            ("epoch", JsonValue::Int(i128::from(*epoch))),
            (
                "window_start_min",
                JsonValue::Int(i128::from(*window_start_min)),
            ),
            ("groups", JsonValue::Int(i128::from(*groups))),
            ("users", JsonValue::Int(i128::from(*users))),
        ])),
        Frame::Report { tenant, report } => json_payload(&JsonValue::obj(vec![
            ("tenant", JsonValue::Str(tenant.clone())),
            ("report", report.to_value()),
        ])),
        Frame::Error { code, message } => json_payload(&JsonValue::obj(vec![
            ("code", JsonValue::Str(code.as_str().to_string())),
            ("message", JsonValue::Str(message.clone())),
        ])),
        Frame::Reconfig { plane } => {
            json_payload(&JsonValue::obj(vec![("plane", plane.to_value())]))
        }
        Frame::ReconfigOk { tenant, rules } => json_payload(&JsonValue::obj(vec![
            ("tenant", JsonValue::Str(tenant.clone())),
            ("rules", JsonValue::Int(i128::from(*rules))),
        ])),
    };
    let len = 1 + payload.len();
    debug_assert!(len <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(frame.tag());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one frame from the front of `buf`, returning it with the number
/// of bytes consumed.
///
/// Total: every input either decodes or returns a [`WireError`] whose
/// `offset` points at the byte where decoding failed — truncated input is
/// an error (offset = the length available), never a panic.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    if buf.len() < 4 {
        return Err(WireError::new(
            buf.len(),
            format!(
                "truncated frame header: have {} of 4 length bytes",
                buf.len()
            ),
        ));
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len == 0 {
        return Err(WireError::new(
            0,
            "frame length 0 (a frame has at least a tag)",
        ));
    }
    if len > MAX_FRAME_LEN {
        return Err(WireError::new(
            0,
            format!("frame length {len} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"),
        ));
    }
    let total = 4 + len;
    if buf.len() < total {
        return Err(WireError::new(
            buf.len(),
            format!(
                "truncated frame: header promises {total} bytes, have {}",
                buf.len()
            ),
        ));
    }
    let tag = buf[4];
    let payload = &buf[5..total];
    let frame = decode_body(tag, payload)?;
    Ok((frame, total))
}

fn expect_empty(payload: &[u8], name: &str, frame: Frame) -> Result<Frame, WireError> {
    if payload.is_empty() {
        Ok(frame)
    } else {
        Err(WireError::new(
            PAYLOAD_OFFSET,
            format!("{name} carries no payload, got {} bytes", payload.len()),
        ))
    }
}

fn decode_body(tag: u8, payload: &[u8]) -> Result<Frame, WireError> {
    match tag {
        1 => {
            let v = parse_json(payload, "HELLO")?;
            let tenant = str_field(&v, "tenant")?;
            if tenant.is_empty()
                || !tenant
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
            {
                return Err(WireError::new(
                    PAYLOAD_OFFSET,
                    "tenant names are non-empty [A-Za-z0-9_-]",
                ));
            }
            let shed = v.get("shed").and_then(JsonValue::as_bool).unwrap_or(false);
            let config = stream_config_from_value(
                v.get("config")
                    .ok_or_else(|| WireError::new(PAYLOAD_OFFSET, "missing 'config' object"))?,
            )
            .map_err(|e| WireError::new(PAYLOAD_OFFSET, format!("bad config: {e}")))?;
            Ok(Frame::Hello {
                tenant,
                shed,
                config,
            })
        }
        2 => {
            let v = parse_json(payload, "HELLO_OK")?;
            Ok(Frame::HelloOk {
                tenant: str_field(&v, "tenant")?,
                queue: u32_field(&v, "queue")?,
            })
        }
        3 => {
            if payload.len() < 4 {
                return Err(WireError::new(
                    PAYLOAD_OFFSET + payload.len(),
                    "truncated EVENTS count",
                ));
            }
            let count =
                u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
            if count > MAX_EVENTS_PER_FRAME {
                return Err(WireError::new(
                    PAYLOAD_OFFSET,
                    format!("EVENTS count {count} exceeds {MAX_EVENTS_PER_FRAME}"),
                ));
            }
            let body = &payload[4..];
            if body.len() != count * EVENT_WIRE_BYTES {
                return Err(WireError::new(
                    PAYLOAD_OFFSET + 4 + body.len().min(count * EVENT_WIRE_BYTES),
                    format!(
                        "EVENTS body is {} bytes, count {count} needs {}",
                        body.len(),
                        count * EVENT_WIRE_BYTES
                    ),
                ));
            }
            let mut events = Vec::with_capacity(count);
            for i in 0..count {
                let at = i * EVENT_WIRE_BYTES;
                let rec = &body[at..at + EVENT_WIRE_BYTES];
                let le_u32 =
                    |o: usize| u32::from_le_bytes([rec[o], rec[o + 1], rec[o + 2], rec[o + 3]]);
                let le_i64 = |o: usize| {
                    i64::from_le_bytes([
                        rec[o],
                        rec[o + 1],
                        rec[o + 2],
                        rec[o + 3],
                        rec[o + 4],
                        rec[o + 5],
                        rec[o + 6],
                        rec[o + 7],
                    ])
                };
                let sample = Sample::new(
                    le_i64(4),
                    le_i64(12),
                    le_u32(20),
                    le_u32(24),
                    le_u32(28),
                    le_u32(32),
                )
                .map_err(|e| WireError::new(PAYLOAD_OFFSET + 4 + at, format!("event {i}: {e}")))?;
                events.push(StreamEvent {
                    user: le_u32(0),
                    sample,
                });
            }
            Ok(Frame::Events(events))
        }
        4 => {
            let v = parse_json(payload, "EVENTS_OK")?;
            Ok(Frame::EventsOk {
                accepted: u32_field(&v, "accepted")?,
                shed: u32_field(&v, "shed")?,
            })
        }
        5 => {
            let v = parse_json(payload, "BUSY")?;
            Ok(Frame::Busy {
                accepted: u32_field(&v, "accepted")?,
                retry_ms: u32_field(&v, "retry_ms")?,
            })
        }
        6 => expect_empty(payload, "FLUSH", Frame::Flush),
        7 => expect_empty(payload, "CLOSE", Frame::Close),
        8 => expect_empty(payload, "BYE", Frame::Bye),
        9 => {
            let v = parse_json(payload, "EPOCH")?;
            Ok(Frame::Epoch {
                tenant: str_field(&v, "tenant")?,
                epoch: u64_field(&v, "epoch")?,
                window_start_min: u64_field(&v, "window_start_min")?,
                groups: u64_field(&v, "groups")?,
                users: u64_field(&v, "users")?,
            })
        }
        10 => {
            let v = parse_json(payload, "REPORT")?;
            let tenant = str_field(&v, "tenant")?;
            let report = RunReport::from_value(
                v.get("report")
                    .ok_or_else(|| WireError::new(PAYLOAD_OFFSET, "missing 'report' object"))?,
            )
            .map_err(|e| WireError::new(PAYLOAD_OFFSET, format!("bad report: {e}")))?;
            Ok(Frame::Report {
                tenant,
                report: Box::new(report),
            })
        }
        11 => expect_empty(payload, "STATS", Frame::Stats),
        12 => expect_empty(payload, "SHUTDOWN", Frame::Shutdown),
        13 => {
            let v = parse_json(payload, "ERROR")?;
            let code_str = str_field(&v, "code")?;
            let code = ErrorCode::parse(&code_str).ok_or_else(|| {
                WireError::new(PAYLOAD_OFFSET, format!("unknown error code '{code_str}'"))
            })?;
            Ok(Frame::Error {
                code,
                message: str_field(&v, "message")?,
            })
        }
        14 => {
            let v = parse_json(payload, "RECONFIG")?;
            let plane = PolicyPlane::from_value(
                v.get("plane")
                    .ok_or_else(|| WireError::new(PAYLOAD_OFFSET, "missing 'plane' object"))?,
            )
            .map_err(|e| WireError::new(PAYLOAD_OFFSET, format!("bad plane: {e}")))?;
            Ok(Frame::Reconfig {
                plane: Box::new(plane),
            })
        }
        15 => {
            let v = parse_json(payload, "RECONFIG_OK")?;
            Ok(Frame::ReconfigOk {
                tenant: str_field(&v, "tenant")?,
                rules: u32_field(&v, "rules")?,
            })
        }
        other => Err(WireError::new(4, format!("unknown frame tag {other}"))),
    }
}

/// Writes one frame to `w` (unbuffered single write; callers wrap sockets
/// in a `BufWriter` and flush per frame).
pub fn write_frame<W: Write + ?Sized>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))?;
    w.flush()
}

/// Reads one frame from `w`, blocking. `Ok(None)` is a clean EOF at a
/// frame boundary; EOF inside a frame or a decode failure is an
/// `InvalidData` error carrying the [`WireError`] text.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Frame>> {
    let mut head = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut head[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("EOF inside frame header after {got} bytes"),
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(head) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::new(0, format!("bad frame length {len}")).to_string(),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let mut whole = Vec::with_capacity(4 + len);
    whole.extend_from_slice(&head);
    whole.extend_from_slice(&body);
    match decode_frame(&whole) {
        Ok((frame, consumed)) => {
            debug_assert_eq!(consumed, whole.len());
            Ok(Some(frame))
        }
        Err(e) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            e.to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_frames_round_trip() {
        for frame in [
            Frame::Flush,
            Frame::Close,
            Frame::Bye,
            Frame::Stats,
            Frame::Shutdown,
            Frame::HelloOk {
                tenant: "a".into(),
                queue: 4096,
            },
            Frame::EventsOk {
                accepted: 7,
                shed: 3,
            },
            Frame::Busy {
                accepted: 2,
                retry_ms: 50,
            },
            Frame::Epoch {
                tenant: "metro".into(),
                epoch: 3,
                window_start_min: 4320,
                groups: 12,
                users: 40,
            },
            Frame::Error {
                code: ErrorCode::NoTenant,
                message: "say HELLO first".into(),
            },
        ] {
            let bytes = encode_frame(&frame);
            let (back, used) = decode_frame(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn hello_round_trips_config_exactly() {
        let mut config = StreamConfig {
            window_min: 720,
            ..StreamConfig::default()
        };
        config.glove.k = 5;
        config.glove.stretch.w_space = 0.25;
        config.glove.stretch.w_time = 0.75;
        let frame = Frame::Hello {
            tenant: "metro-a".into(),
            shed: true,
            config,
        };
        let (back, _) = decode_frame(&encode_frame(&frame)).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn events_round_trip() {
        let events: Vec<StreamEvent> = (0..100u32)
            .map(|i| StreamEvent {
                user: i % 7,
                sample: Sample::point(i64::from(i) * 100 - 3_000, -50, i + 1),
            })
            .collect();
        let frame = Frame::Events(events);
        let (back, _) = decode_frame(&encode_frame(&frame)).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn reconfig_round_trips_plane_exactly() {
        use glove_core::policy::{CohortSpec, PolicyOverride, PolicyRule};
        let plane = PolicyPlane {
            cohorts: vec![CohortSpec {
                name: "vip".into(),
                users: vec![3, 9, 27],
            }],
            rules: vec![
                PolicyRule {
                    from_epoch: 2,
                    to_epoch: Some(6),
                    cohort: None,
                    set: PolicyOverride {
                        k: Some(4),
                        ..PolicyOverride::default()
                    },
                },
                PolicyRule {
                    from_epoch: 2,
                    to_epoch: None,
                    cohort: Some("vip".into()),
                    set: PolicyOverride {
                        k: Some(6),
                        ..PolicyOverride::default()
                    },
                },
            ],
        };
        let frame = Frame::Reconfig {
            plane: Box::new(plane),
        };
        let (back, used) = decode_frame(&encode_frame(&frame)).unwrap();
        assert_eq!(used, encode_frame(&frame).len());
        assert_eq!(back, frame);

        let ok = Frame::ReconfigOk {
            tenant: "metro".into(),
            rules: 2,
        };
        let (back, _) = decode_frame(&encode_frame(&ok)).unwrap();
        assert_eq!(back, ok);
    }

    #[test]
    fn reconfig_without_a_plane_is_rejected() {
        let mut bytes = Vec::new();
        let payload = b"{\"nope\":1}";
        bytes.extend_from_slice(&((1 + payload.len()) as u32).to_le_bytes());
        bytes.push(14);
        bytes.extend_from_slice(payload);
        let err = decode_frame(&bytes).unwrap_err();
        assert!(err.message.contains("plane"), "{}", err.message);
    }

    #[test]
    fn truncation_is_an_error_with_the_right_offset() {
        let bytes = encode_frame(&Frame::Stats);
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut]).unwrap_err();
            assert_eq!(err.offset, cut, "offset should be where bytes ran out");
        }
    }

    #[test]
    fn oversized_and_zero_lengths_are_rejected() {
        let mut bytes = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        bytes.push(11);
        assert!(decode_frame(&bytes)
            .unwrap_err()
            .message
            .contains("exceeds"));
        let bytes = 0u32.to_le_bytes().to_vec();
        assert!(decode_frame(&bytes)
            .unwrap_err()
            .message
            .contains("length 0"));
    }

    #[test]
    fn invalid_event_extent_is_rejected_at_its_record() {
        let good = StreamEvent {
            user: 1,
            sample: Sample::point(0, 0, 5),
        };
        let mut bytes = encode_frame(&Frame::Events(vec![good, good]));
        // Zero the second record's dx (offset: 4 len + 1 tag + 4 count +
        // 36 first record + 20 into the second record).
        let at = 4 + 1 + 4 + EVENT_WIRE_BYTES + 20;
        bytes[at..at + 4].copy_from_slice(&0u32.to_le_bytes());
        let err = decode_frame(&bytes).unwrap_err();
        assert_eq!(err.offset, PAYLOAD_OFFSET + 4 + EVENT_WIRE_BYTES);
        assert!(err.message.contains("event 1"), "{}", err.message);
    }

    #[test]
    fn read_frame_handles_eof() {
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
        let bytes = encode_frame(&Frame::Bye);
        let mut cut: &[u8] = &bytes[..3];
        assert!(
            read_frame(&mut cut).is_err(),
            "EOF inside a frame is an error"
        );
        let mut whole: &[u8] = &bytes;
        assert_eq!(read_frame(&mut whole).unwrap(), Some(Frame::Bye));
    }
}
