//! The `glove serve` daemon: TCP accept loop, per-connection threads, and
//! the tenant registry.
//!
//! ### Layering
//!
//! One thread per connection reads frames and owns at most one open
//! [`Session`] at a time (sequential sessions on one connection are fine —
//! `FLUSH` then another `HELLO`). The session's engine worker is a second
//! thread; `EPOCH` pushes from the worker and replies from the connection
//! thread share the socket behind one mutex. Tenant names are unique for
//! the daemon's lifetime: a second `HELLO` for a finished tenant is
//! `tenant-exists` — its epoch directory is a durable record, never
//! silently overwritten.
//!
//! ### Graceful shutdown
//!
//! The workspace is offline and std-only, so there is no signal handling:
//! shutdown is protocol-driven. A `SHUTDOWN` frame (from any connection)
//! stops the accept loop, half-closes every open connection's socket, and
//! then joins every connection thread — each one finalizes its open
//! session on the way out, which drains the bounded queue and flushes the
//! engine's final partial window. Accepted (non-shed) events are therefore
//! never lost by a graceful shutdown; the bench asserts exactly that.

use crate::protocol::{read_frame, write_frame, ErrorCode, Frame};
use crate::session::{EpochWriteFn, Offer, PushSink, Session, SessionConfig};
use glove_core::api::RunReport;
use glove_core::policy::PolicyPlane;
use std::collections::HashSet;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Daemon-wide options (per-tenant configuration arrives in `HELLO`).
#[derive(Clone)]
pub struct ServeOptions {
    /// Root output directory; each tenant writes epochs and its
    /// `report.jsonl` under `<out_dir>/<tenant>/`. `None` disables
    /// persistence (wire-only operation).
    pub out_dir: Option<PathBuf>,
    /// Bounded per-tenant queue capacity, events.
    pub queue_events: usize,
    /// Backoff suggested to clients in `BUSY` replies, milliseconds.
    pub retry_ms: u32,
    /// The epoch persistence hook (the CLI injects its dataset writer so
    /// epoch files are byte-identical to `glove stream` output); `None`
    /// disables epoch files.
    pub epoch_writer: Option<Arc<EpochWriteFn>>,
    /// The initial policy plane handed to every tenant session
    /// ([`PolicyPlane::uniform`] = plain runs). Tenants retune their own
    /// copy mid-run via `RECONFIG`.
    pub policy: PolicyPlane,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            out_dir: None,
            queue_events: 4096,
            retry_ms: 25,
            epoch_writer: None,
            policy: PolicyPlane::uniform(),
        }
    }
}

impl std::fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOptions")
            .field("out_dir", &self.out_dir)
            .field("queue_events", &self.queue_events)
            .field("retry_ms", &self.retry_ms)
            .field("epoch_writer", &self.epoch_writer.as_ref().map(|_| "fn"))
            .finish()
    }
}

/// What the daemon saw over its lifetime, returned by [`Server::run`].
#[derive(Debug, Default)]
pub struct ServerSummary {
    /// Final reports of every session that finished cleanly, in completion
    /// order.
    pub reports: Vec<RunReport>,
    /// Sessions that ended in an engine/sink error: `(tenant, cause)`.
    pub failures: Vec<(String, String)>,
}

impl ServerSummary {
    /// Total events shed across all finished sessions.
    pub fn shed_total(&self) -> u64 {
        self.reports
            .iter()
            .filter_map(|r| r.detail.as_stream())
            .map(|s| s.shed_events)
            .sum()
    }

    /// The finished report of `tenant`, if any.
    pub fn report_of(&self, tenant: &str) -> Option<&RunReport> {
        self.reports.iter().find(|r| r.dataset == tenant)
    }
}

struct ServerState {
    opts: ServeOptions,
    addr: SocketAddr,
    tenants: Mutex<HashSet<String>>,
    reports: Mutex<Vec<RunReport>>,
    failures: Mutex<Vec<(String, String)>>,
    conns: Mutex<Vec<TcpStream>>,
    shutdown: AtomicBool,
}

impl ServerState {
    fn claim_tenant(&self, name: &str) -> bool {
        self.tenants
            .lock()
            .expect("tenant registry")
            .insert(name.to_string())
    }

    fn unclaim_tenant(&self, name: &str) {
        self.tenants.lock().expect("tenant registry").remove(name);
    }

    fn record(&self, result: Result<RunReport, (String, String)>) {
        match result {
            Ok(report) => self.reports.lock().expect("reports").push(report),
            Err(failure) => self.failures.lock().expect("failures").push(failure),
        }
    }

    /// Half-closes every registered connection socket so blocked readers
    /// see EOF and finalize their sessions.
    fn nudge_connections(&self) {
        for conn in self.conns.lock().expect("conn registry").iter() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Unblocks the accept loop after the shutdown flag is set.
    fn nudge_accept(&self) {
        let _ = TcpStream::connect(self.addr);
    }
}

/// The bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A daemon running on its own thread (the in-process harness used by
/// tests and the bench; the CLI calls [`Server::run`] directly).
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<ServerSummary>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the daemon to shut down and returns its summary.
    pub fn join(self) -> ServerSummary {
        self.thread.join().expect("server thread panicked")
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs, opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                opts,
                addr,
                tenants: Mutex::new(HashSet::new()),
                reports: Mutex::new(Vec::new()),
                failures: Mutex::new(Vec::new()),
                conns: Mutex::new(Vec::new()),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (after `bind` with port 0, the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Runs the accept loop until a `SHUTDOWN` frame arrives, then drains
    /// every session and returns the lifetime summary.
    pub fn run(self) -> ServerSummary {
        let mut joins = Vec::new();
        for incoming in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(s) => s,
                Err(_) => continue,
            };
            if let Ok(clone) = stream.try_clone() {
                self.state.conns.lock().expect("conn registry").push(clone);
            }
            let state = Arc::clone(&self.state);
            match std::thread::Builder::new()
                .name("glove-serve-conn".to_string())
                .spawn(move || handle_connection(stream, state))
            {
                Ok(handle) => joins.push(handle),
                Err(_) => continue,
            }
        }
        for join in joins {
            let _ = join.join();
        }
        let state = self.state;
        let reports = std::mem::take(&mut *state.reports.lock().expect("reports"));
        let failures = std::mem::take(&mut *state.failures.lock().expect("failures"));
        ServerSummary { reports, failures }
    }

    /// Moves the daemon onto its own thread.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr();
        let thread = std::thread::Builder::new()
            .name("glove-serve-accept".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle { addr, thread })
    }
}

/// Finalizes a connection's open session (if any), recording the outcome
/// in the daemon summary.
fn finalize(
    session: &mut Option<Session>,
    state: &ServerState,
) -> Option<Result<RunReport, String>> {
    let mut open = session.take()?;
    let tenant = open.metrics().tenant().to_string();
    let result = open.finish();
    state.record(result.clone().map_err(|e| (tenant, e)));
    Some(result)
}

fn reply(sink: &PushSink, frame: &Frame) -> bool {
    match sink.lock() {
        Ok(mut w) => write_frame(&mut *w, frame).is_ok(),
        Err(_) => false,
    }
}

fn error_frame(code: ErrorCode, message: impl Into<String>) -> Frame {
    Frame::Error {
        code,
        message: message.into(),
    }
}

fn handle_connection(stream: TcpStream, state: Arc<ServerState>) {
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let writer: PushSink = Arc::new(Mutex::new(stream));
    let mut session: Option<Session> = None;

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // clean disconnect; finalize below
            Err(e) => {
                // Half-closed by shutdown, or a framing violation: tell the
                // peer if it is still there, then finalize.
                let _ = reply(&writer, &error_frame(ErrorCode::Protocol, e.to_string()));
                break;
            }
        };
        let ok = match frame {
            Frame::Hello {
                tenant,
                shed,
                config,
            } => {
                if state.shutdown.load(Ordering::SeqCst) {
                    reply(
                        &writer,
                        &error_frame(ErrorCode::Shutdown, "daemon is shutting down"),
                    )
                } else if session.is_some() {
                    reply(
                        &writer,
                        &error_frame(
                            ErrorCode::Protocol,
                            "a session is already open; FLUSH first",
                        ),
                    )
                } else if !state.claim_tenant(&tenant) {
                    reply(
                        &writer,
                        &error_frame(
                            ErrorCode::TenantExists,
                            format!("tenant '{tenant}' already ran on this daemon"),
                        ),
                    )
                } else {
                    let config = SessionConfig {
                        tenant: tenant.clone(),
                        shed,
                        stream: config,
                        policy: state.opts.policy.clone(),
                        queue_events: state.opts.queue_events,
                        retry_ms: state.opts.retry_ms,
                        out_dir: state.opts.out_dir.as_ref().map(|d| d.join(&tenant)),
                        epoch_writer: state.opts.epoch_writer.clone(),
                    };
                    match Session::spawn(config, Some(Arc::clone(&writer))) {
                        Ok(open) => {
                            session = Some(open);
                            reply(
                                &writer,
                                &Frame::HelloOk {
                                    tenant,
                                    queue: state.opts.queue_events as u32,
                                },
                            )
                        }
                        Err(e) => {
                            state.unclaim_tenant(&tenant);
                            reply(&writer, &error_frame(ErrorCode::Engine, e.to_string()))
                        }
                    }
                }
            }
            Frame::Events(events) => match &mut session {
                None => reply(
                    &writer,
                    &error_frame(ErrorCode::NoTenant, "EVENTS before HELLO"),
                ),
                Some(open) => match open.offer(events) {
                    Offer::Accepted { accepted, shed } => {
                        reply(&writer, &Frame::EventsOk { accepted, shed })
                    }
                    Offer::Busy { accepted, retry_ms } => {
                        reply(&writer, &Frame::Busy { accepted, retry_ms })
                    }
                    Offer::Dead => {
                        let cause = finalize(&mut session, &state)
                            .and_then(Result::err)
                            .unwrap_or_else(|| "engine worker died".to_string());
                        reply(&writer, &error_frame(ErrorCode::Engine, cause))
                    }
                },
            },
            Frame::Stats => match &session {
                None => reply(
                    &writer,
                    &error_frame(ErrorCode::NoTenant, "STATS before HELLO"),
                ),
                Some(open) => {
                    let metrics = open.metrics();
                    reply(
                        &writer,
                        &Frame::Report {
                            tenant: metrics.tenant().to_string(),
                            report: Box::new(metrics.snapshot_report()),
                        },
                    )
                }
            },
            Frame::Flush => match session.take() {
                None => reply(
                    &writer,
                    &error_frame(ErrorCode::NoTenant, "FLUSH before HELLO"),
                ),
                Some(open) => {
                    let tenant = open.metrics().tenant().to_string();
                    session = Some(open);
                    match finalize(&mut session, &state).expect("session present") {
                        Ok(report) => reply(
                            &writer,
                            &Frame::Report {
                                tenant,
                                report: Box::new(report),
                            },
                        ),
                        Err(cause) => reply(&writer, &error_frame(ErrorCode::Engine, cause)),
                    }
                }
            },
            Frame::Reconfig { plane } => match &session {
                None => reply(
                    &writer,
                    &error_frame(ErrorCode::NoTenant, "RECONFIG before HELLO"),
                ),
                Some(open) => match open.swap_policy(*plane) {
                    Ok(rules) => reply(
                        &writer,
                        &Frame::ReconfigOk {
                            tenant: open.metrics().tenant().to_string(),
                            rules,
                        },
                    ),
                    Err(e) => reply(&writer, &error_frame(ErrorCode::Protocol, e.to_string())),
                },
            },
            Frame::Close => {
                let _ = finalize(&mut session, &state);
                let _ = reply(&writer, &Frame::Bye);
                break;
            }
            Frame::Shutdown => {
                let _ = finalize(&mut session, &state);
                state.shutdown.store(true, Ordering::SeqCst);
                let _ = reply(&writer, &Frame::Bye);
                state.nudge_connections();
                state.nudge_accept();
                break;
            }
            other => reply(
                &writer,
                &error_frame(
                    ErrorCode::Protocol,
                    format!("unexpected {} from a client", other.name()),
                ),
            ),
        };
        if !ok {
            break; // peer gone; finalize below
        }
    }
    let _ = finalize(&mut session, &state);
}
