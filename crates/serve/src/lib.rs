//! `glove-serve` — the multi-tenant GLOVE ingest daemon.
//!
//! This crate turns the library's [`RunBuilder`](glove_core::api::RunBuilder)
//! run API into a long-running network service, std-only (no async
//! runtime; `std::net` + `std::thread`):
//!
//! - [`protocol`] — the length-prefixed wire format: `[len: u32 LE]`
//!   `[tag: u8][payload]`, JSON payloads except binary `EVENTS`.
//! - [`config_wire`] — JSON codec for the full per-tenant
//!   [`StreamConfig`](glove_core::config::StreamConfig) inlined in `HELLO`.
//! - [`session`] — one tenant's bounded-queue ingest pipeline: a
//!   `sync_channel` feeding a dedicated engine worker thread, with
//!   explicit backpressure (`BUSY`) or load shedding, live
//!   [`SessionMetrics`], and epoch/report persistence.
//! - [`server`] — the accept loop, tenant registry, and protocol-driven
//!   graceful shutdown.
//! - [`client`] — the blocking reference client (`glove send` and the
//!   e2e bench are built on it).
//!
//! ### Exactness
//!
//! A tenant session is pinned to one `StreamEngine` run: the epoch files
//! and final report a tenant gets over the wire are byte-for-byte
//! identical to a direct `run_stream` call with the same configuration
//! and event order — backpressure retries and server thread counts
//! change timing, never output. Shed mode is the one deliberate
//! exception: dropped events are excluded from the run but fully
//! accounted in `StreamStats::shed_events`.

pub mod client;
pub mod config_wire;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::{Client, ClientError, EpochNote, SendOutcome};
pub use protocol::{
    decode_frame, encode_frame, read_frame, write_frame, ErrorCode, Frame, WireError,
    MAX_EVENTS_PER_FRAME, MAX_FRAME_LEN,
};
pub use server::{ServeOptions, Server, ServerHandle, ServerSummary};
pub use session::{EpochWriteFn, Offer, PushSink, Session, SessionConfig, SessionMetrics};
