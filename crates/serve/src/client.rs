//! Client side of the serve protocol: a blocking connection that honors
//! `BUSY` backpressure and collects asynchronous `EPOCH` pushes.
//!
//! The CLI's `glove send` verb and the e2e tests/bench are all built on
//! this type; it is the reference implementation of the retry contract:
//! on `BUSY {accepted, retry_ms}` the client drops the `accepted` prefix,
//! sleeps `retry_ms`, and resends the remaining suffix of the *same*
//! batch. Accepted events are never resent, so the server-side stream
//! stays an exact prefix-ordered copy of the client's event sequence.

use crate::protocol::{read_frame, write_frame, ErrorCode, Frame, MAX_EVENTS_PER_FRAME};
use glove_core::api::RunReport;
use glove_core::config::StreamConfig;
use glove_core::policy::PolicyPlane;
use glove_core::stream::StreamEvent;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// An asynchronous `EPOCH` push observed while waiting for a reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochNote {
    /// Tenant the epoch belongs to.
    pub tenant: String,
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Window start, minutes since the stream origin.
    pub window_start_min: u64,
    /// Anonymized groups emitted in the epoch.
    pub groups: u64,
    /// Distinct users covered by the epoch.
    pub users: u64,
}

/// What a [`Client::send_events`] call achieved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendOutcome {
    /// Events accepted into the tenant queue.
    pub accepted: u64,
    /// Events shed by the daemon (only in shed mode).
    pub shed: u64,
    /// `BUSY` round-trips absorbed while sending.
    pub busy_retries: u64,
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The daemon replied with an `ERROR` frame.
    Server {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable cause.
        message: String,
    },
    /// The daemon replied with a frame the protocol does not allow here.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{}]: {message}", code.as_str())
            }
            ClientError::Unexpected(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    epochs: Vec<EpochNote>,
    busy_retries: u64,
    busy_retry_limit: u64,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            epochs: Vec::new(),
            busy_retries: 0,
            busy_retry_limit: 10_000,
        })
    }

    /// Caps consecutive `BUSY` retries per batch before giving up
    /// (default 10 000).
    pub fn busy_retry_limit(mut self, limit: u64) -> Client {
        self.busy_retry_limit = limit.max(1);
        self
    }

    /// `EPOCH` pushes collected so far, in arrival order.
    pub fn epochs(&self) -> &[EpochNote] {
        &self.epochs
    }

    /// Total `BUSY` round-trips absorbed on this connection.
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    /// Opens a tenant session; returns the daemon's queue capacity.
    pub fn hello(
        &mut self,
        tenant: &str,
        config: StreamConfig,
        shed: bool,
    ) -> Result<u32, ClientError> {
        let reply = self.request(&Frame::Hello {
            tenant: tenant.to_string(),
            shed,
            config,
        })?;
        match reply {
            Frame::HelloOk { queue, .. } => Ok(queue),
            other => Err(unexpected(other)),
        }
    }

    /// Sends `events` in frames of at most `batch` records, honoring
    /// `BUSY` backpressure (sleep and resend the unaccepted suffix).
    pub fn send_events(
        &mut self,
        events: &[StreamEvent],
        batch: usize,
    ) -> Result<SendOutcome, ClientError> {
        let batch = batch.clamp(1, MAX_EVENTS_PER_FRAME);
        let mut outcome = SendOutcome::default();
        for chunk in events.chunks(batch) {
            let part = self.send_batch(chunk)?;
            outcome.accepted += part.accepted;
            outcome.shed += part.shed;
            outcome.busy_retries += part.busy_retries;
        }
        Ok(outcome)
    }

    /// Sends one batch (at most [`MAX_EVENTS_PER_FRAME`] events), retrying
    /// through `BUSY` until every event is accepted or shed.
    pub fn send_batch(&mut self, batch: &[StreamEvent]) -> Result<SendOutcome, ClientError> {
        assert!(
            batch.len() <= MAX_EVENTS_PER_FRAME,
            "batch exceeds MAX_EVENTS_PER_FRAME"
        );
        let mut outcome = SendOutcome::default();
        let mut rest = batch;
        while !rest.is_empty() {
            let reply = self.request(&Frame::Events(rest.to_vec()))?;
            match reply {
                Frame::EventsOk { accepted, shed } => {
                    outcome.accepted += u64::from(accepted);
                    outcome.shed += u64::from(shed);
                    rest = &rest[(accepted as usize + shed as usize).min(rest.len())..];
                }
                Frame::Busy { accepted, retry_ms } => {
                    outcome.accepted += u64::from(accepted);
                    outcome.busy_retries += 1;
                    self.busy_retries += 1;
                    if outcome.busy_retries > self.busy_retry_limit {
                        return Err(ClientError::Unexpected(format!(
                            "gave up after {} BUSY retries",
                            outcome.busy_retries - 1
                        )));
                    }
                    rest = &rest[(accepted as usize).min(rest.len())..];
                    std::thread::sleep(Duration::from_millis(u64::from(retry_ms.max(1))));
                }
                other => return Err(unexpected(other)),
            }
        }
        Ok(outcome)
    }

    /// Installs a new policy plane for the open session; the daemon picks
    /// it up at the next window boundary. Returns the installed rule count.
    pub fn reconfig(&mut self, plane: PolicyPlane) -> Result<u32, ClientError> {
        match self.request(&Frame::Reconfig {
            plane: Box::new(plane),
        })? {
            Frame::ReconfigOk { rules, .. } => Ok(rules),
            other => Err(unexpected(other)),
        }
    }

    /// Requests a live metrics snapshot for the open session.
    pub fn stats(&mut self) -> Result<RunReport, ClientError> {
        match self.request(&Frame::Stats)? {
            Frame::Report { report, .. } => Ok(*report),
            other => Err(unexpected(other)),
        }
    }

    /// Finalizes the open session: drains the queue, flushes the final
    /// window, and returns the tenant's final [`RunReport`].
    pub fn flush(&mut self) -> Result<RunReport, ClientError> {
        match self.request(&Frame::Flush)? {
            Frame::Report { report, .. } => Ok(*report),
            other => Err(unexpected(other)),
        }
    }

    /// Closes the connection politely (finalizing any open session).
    pub fn close(mut self) -> Result<(), ClientError> {
        match self.request(&Frame::Close)? {
            Frame::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to shut down gracefully.
    pub fn shutdown_daemon(mut self) -> Result<(), ClientError> {
        match self.request(&Frame::Shutdown)? {
            Frame::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Writes `frame` and returns the next non-push reply, stashing any
    /// `EPOCH` pushes seen while waiting and raising `ERROR` frames.
    fn request(&mut self, frame: &Frame) -> Result<Frame, ClientError> {
        write_frame(&mut self.writer, frame)?;
        loop {
            let reply = match read_frame(&mut self.reader)? {
                Some(reply) => reply,
                None => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "daemon closed the connection",
                    )))
                }
            };
            match reply {
                Frame::Epoch {
                    tenant,
                    epoch,
                    window_start_min,
                    groups,
                    users,
                } => self.epochs.push(EpochNote {
                    tenant,
                    epoch,
                    window_start_min,
                    groups,
                    users,
                }),
                Frame::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                other => return Ok(other),
            }
        }
    }
}

fn unexpected(frame: Frame) -> ClientError {
    ClientError::Unexpected(frame.name().to_string())
}

/// One-shot convenience: connect and ask the daemon to shut down.
pub fn shutdown(addr: impl ToSocketAddrs) -> Result<(), ClientError> {
    Client::connect(addr)?.shutdown_daemon()
}
