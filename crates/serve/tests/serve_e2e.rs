//! End-to-end tests of the daemon over real TCP sockets.
//!
//! The anchor property (ISSUE 8): a tenant's epochs and final report,
//! obtained through the socket path — framing, bounded queue, worker
//! thread, backpressure retries — are **identical** to a direct
//! `run_stream` library call with the same configuration and event
//! order; and N interleaved tenants are each identical to their solo
//! runs, invariant under the engine thread count.

use glove_core::config::{CarryPolicy, StreamConfig, UnderKPolicy};
use glove_core::stream::{events_of, run_stream, StreamEvent};
use glove_core::Dataset;
use glove_serve::{Client, ClientError, ErrorCode, ServeOptions, Server, ServerHandle};
use glove_synth::{generate, ScenarioConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn synth_dataset(users: usize, seed: u64) -> Dataset {
    let mut cfg = ScenarioConfig::metro_like(users);
    cfg.num_towers = 60;
    cfg.seed = seed;
    generate(&cfg).dataset
}

fn tenant_config(k: usize, window_min: u32, threads: usize) -> StreamConfig {
    let mut c = StreamConfig {
        window_min,
        carry: CarryPolicy::Fresh,
        under_k: UnderKPolicy::Suppress,
        ..StreamConfig::default()
    };
    c.glove.k = k;
    c.glove.threads = threads;
    c
}

type CanonRows = Vec<(Vec<u32>, Vec<(i64, i64, u32, u32, u32, u32)>)>;

/// Serializes a dataset into a canonical comparable form.
fn canon(ds: &Dataset) -> CanonRows {
    let mut rows: CanonRows = ds
        .fingerprints
        .iter()
        .map(|f| {
            (
                f.users().to_vec(),
                f.samples()
                    .iter()
                    .map(|s| (s.x, s.y, s.dx, s.dy, s.t, s.dt))
                    .collect(),
            )
        })
        .collect();
    rows.sort();
    rows
}

/// Spawns a daemon persisting epochs via a plain-text writer into `dir`.
fn spawn_server(dir: &Path, queue_events: usize) -> ServerHandle {
    let opts = ServeOptions {
        out_dir: Some(dir.to_path_buf()),
        queue_events,
        retry_ms: 1,
        epoch_writer: Some(Arc::new(write_epoch)),
        policy: glove_core::policy::PolicyPlane::uniform(),
    };
    Server::bind("127.0.0.1:0", opts)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// Minimal epoch persistence: a users header then one line per sample.
fn write_epoch(ds: &Dataset, path: &Path) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for f in &ds.fingerprints {
        let users: Vec<String> = f.users().iter().map(|u| u.to_string()).collect();
        writeln!(out, "# {}", users.join(" "))?;
        for s in f.samples() {
            writeln!(out, "{} {} {} {} {} {}", s.x, s.y, s.dx, s.dy, s.t, s.dt)?;
        }
    }
    out.flush()
}

fn read_epoch(path: &Path) -> CanonRows {
    let text = std::fs::read_to_string(path).unwrap();
    let mut rows: CanonRows = Vec::new();
    for line in text.lines() {
        if let Some(users) = line.strip_prefix("# ") {
            rows.push((
                users.split(' ').map(|t| t.parse().unwrap()).collect(),
                Vec::new(),
            ));
        } else {
            let v: Vec<i64> = line.split(' ').map(|t| t.parse().unwrap()).collect();
            rows.last_mut().unwrap().1.push((
                v[0],
                v[1],
                v[2] as u32,
                v[3] as u32,
                v[4] as u32,
                v[5] as u32,
            ));
        }
    }
    rows.sort();
    rows
}

fn epoch_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("epoch-") && n.ends_with(".txt"))
        })
        .collect();
    files.sort();
    files
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("glove-serve-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Feeds all events through a client session and returns the final report.
fn drive_tenant(
    addr: std::net::SocketAddr,
    tenant: &str,
    config: StreamConfig,
    events: &[StreamEvent],
    batch: usize,
) -> glove_core::api::RunReport {
    let mut client = Client::connect(addr).unwrap();
    client.hello(tenant, config, false).unwrap();
    let outcome = client.send_events(events, batch).unwrap();
    assert_eq!(outcome.accepted, events.len() as u64);
    assert_eq!(outcome.shed, 0);
    let report = client.flush().unwrap();
    client.close().unwrap();
    report
}

#[test]
fn socket_path_is_byte_identical_to_library_run() {
    let dir = tmp_dir("identity");
    let server = spawn_server(&dir, 64); // small queue to exercise BUSY
    let ds = synth_dataset(40, 0xA11CE);
    let events = events_of(&ds);
    let config = tenant_config(2, 720, 1);

    let report = drive_tenant(server.addr(), "alpha", config, &events, 48);

    // Library reference run.
    let reference = run_stream("alpha", events.iter().copied(), config).unwrap();

    // Epoch files match the reference epochs exactly.
    let files = epoch_files(&dir.join("alpha"));
    assert_eq!(files.len(), reference.epochs.len());
    assert!(!files.is_empty(), "no epochs produced");
    for (file, epoch) in files.iter().zip(&reference.epochs) {
        assert_eq!(read_epoch(file), canon(&epoch.output.dataset));
    }

    // Aggregate stats match (modulo wall-clock fields).
    let got = report.detail.as_stream().unwrap();
    assert_eq!(got.events, reference.stats.events);
    assert_eq!(got.epochs, reference.stats.epochs);
    assert_eq!(got.merges, reference.stats.merges);
    assert_eq!(got.suppressed_users, reference.stats.suppressed_users);
    assert_eq!(got.suppressed_samples, reference.stats.suppressed_samples);
    assert_eq!(got.shed_events, 0);

    glove_serve::client::shutdown(server.addr()).unwrap();
    let summary = server.join();
    assert_eq!(summary.reports.len(), 1);
    assert!(summary.failures.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interleaved_tenants_match_their_solo_runs_across_thread_counts() {
    for engine_threads in [1usize, 2] {
        let dir = tmp_dir(&format!("multi-{engine_threads}"));
        let server = spawn_server(&dir, 32);
        let tenants = ["t-metro", "t-sparse", "t-defer"];
        let configs = [
            tenant_config(2, 720, engine_threads),
            tenant_config(3, 1440, engine_threads),
            {
                let mut c = tenant_config(2, 720, engine_threads);
                c.under_k = UnderKPolicy::Defer;
                c.carry = CarryPolicy::Sticky;
                c
            },
        ];
        let datasets: Vec<Dataset> = (0..3)
            .map(|i| synth_dataset(24 + 8 * i, 0xBEEF + i as u64))
            .collect();

        // Interleave: three client threads hammer the daemon concurrently.
        let mut joins = Vec::new();
        for i in 0..3 {
            let addr = server.addr();
            let tenant = tenants[i].to_string();
            let config = configs[i];
            let events = events_of(&datasets[i]);
            joins.push(std::thread::spawn(move || {
                drive_tenant(addr, &tenant, config, &events, 16)
            }));
        }
        let reports: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();

        // Each tenant's epochs are identical to its solo library run.
        for i in 0..3 {
            let reference = run_stream(
                tenants[i],
                events_of(&datasets[i]).iter().copied(),
                configs[i],
            )
            .unwrap();
            let files = epoch_files(&dir.join(tenants[i]));
            assert_eq!(files.len(), reference.epochs.len(), "tenant {}", tenants[i]);
            for (file, epoch) in files.iter().zip(&reference.epochs) {
                assert_eq!(
                    read_epoch(file),
                    canon(&epoch.output.dataset),
                    "tenant {} diverged from its solo run",
                    tenants[i]
                );
            }
            let got = reports[i].detail.as_stream().unwrap();
            assert_eq!(got.events, reference.stats.events);
            assert_eq!(got.epochs, reference.stats.epochs);
            assert_eq!(got.merges, reference.stats.merges);
        }

        glove_serve::client::shutdown(server.addr()).unwrap();
        let summary = server.join();
        assert_eq!(summary.reports.len(), 3);
        assert!(summary.failures.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn stats_mid_run_and_epoch_pushes() {
    let dir = tmp_dir("stats");
    let server = spawn_server(&dir, 256);
    let ds = synth_dataset(24, 0x57A75);
    let events = events_of(&ds);

    let mut client = Client::connect(server.addr()).unwrap();
    let queue = client
        .hello("live", tenant_config(2, 720, 1), false)
        .unwrap();
    assert_eq!(queue, 256);
    client.send_events(&events, 64).unwrap();

    // Live snapshot: accepted events are visible before FLUSH.
    let snap = client.stats().unwrap();
    let stats = snap.detail.as_stream().unwrap();
    assert!(stats.events + stats.shed_events <= events.len() as u64);
    assert_eq!(snap.dataset, "live");

    let report = client.flush().unwrap();
    assert_eq!(
        report.detail.as_stream().unwrap().events,
        events.len() as u64
    );
    // The worker pushed one EPOCH note per epoch file.
    let files = epoch_files(&dir.join("live"));
    assert_eq!(client.epochs().len(), files.len());
    assert!(client.epochs().iter().all(|e| e.tenant == "live"));

    client.close().unwrap();
    glove_serve::client::shutdown(server.addr()).unwrap();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenant_names_are_unique_and_errors_are_typed() {
    let dir = tmp_dir("unique");
    let server = spawn_server(&dir, 16);

    let mut a = Client::connect(server.addr()).unwrap();
    a.hello("dup", tenant_config(2, 720, 1), false).unwrap();

    // Same tenant on a second connection → TENANT_EXISTS.
    let mut b = Client::connect(server.addr()).unwrap();
    match b.hello("dup", tenant_config(2, 720, 1), false) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::TenantExists),
        other => panic!("expected tenant-exists, got {other:?}"),
    }

    // EVENTS before HELLO → NO_TENANT.
    let mut c = Client::connect(server.addr()).unwrap();
    match c.send_events(&events_of(&synth_dataset(4, 7))[..4], 4) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::NoTenant),
        other => panic!("expected no-tenant, got {other:?}"),
    }

    // Invalid config → ENGINE error, and the name is released for reuse.
    let mut d = Client::connect(server.addr()).unwrap();
    let bad = tenant_config(0, 720, 1); // k = 0 is invalid
    assert!(matches!(
        d.hello("fixme", bad, false),
        Err(ClientError::Server {
            code: ErrorCode::Engine,
            ..
        })
    ));
    let mut e = Client::connect(server.addr()).unwrap();
    e.hello("fixme", tenant_config(2, 720, 1), false).unwrap();

    a.flush().unwrap();
    glove_serve::client::shutdown(server.addr()).unwrap();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_flushes_open_sessions() {
    let dir = tmp_dir("shutdown");
    let server = spawn_server(&dir, 4096);
    let ds = synth_dataset(24, 0xD00D);
    let events = events_of(&ds);

    let mut client = Client::connect(server.addr()).unwrap();
    client
        .hello("partial", tenant_config(2, 720, 1), false)
        .unwrap();
    let sent = client.send_events(&events, 128).unwrap();
    assert_eq!(sent.accepted, events.len() as u64);

    // No FLUSH: a second connection shuts the daemon down instead.
    glove_serve::client::shutdown(server.addr()).unwrap();
    let summary = server.join();

    // The open session was finalized: every accepted event reached the
    // engine and the final partial window was flushed to disk.
    assert_eq!(summary.reports.len(), 1, "failures: {:?}", summary.failures);
    let report = &summary.reports[0];
    assert_eq!(report.dataset, "partial");
    assert_eq!(
        report.detail.as_stream().unwrap().events,
        events.len() as u64,
        "graceful shutdown lost accepted events"
    );
    let reference =
        run_stream("partial", events.iter().copied(), tenant_config(2, 720, 1)).unwrap();
    let files = epoch_files(&dir.join("partial"));
    assert_eq!(files.len(), reference.epochs.len());
    let _ = std::fs::remove_dir_all(&dir);
}
