//! Property tests for the serve wire protocol.
//!
//! Three families:
//! 1. every frame round-trips `encode_frame → decode_frame` exactly;
//! 2. every truncation/corruption of a valid encoding is rejected with a
//!    byte-offset error, never a panic;
//! 3. arbitrary byte soup never panics the decoder.

use glove_core::config::{CarryPolicy, StreamConfig, UnderKPolicy};
use glove_core::stream::StreamEvent;
use glove_core::Sample;
use glove_serve::protocol::{
    decode_frame, encode_frame, ErrorCode, Frame, MAX_FRAME_LEN, PAYLOAD_OFFSET,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn sample_strategy() -> impl Strategy<Value = Sample> {
    (
        -1_000_000i64..1_000_000,
        -1_000_000i64..1_000_000,
        1u32..5000,
        1u32..5000,
        0u32..100_000,
        1u32..10_000,
    )
        .prop_map(|(x, y, dx, dy, t, dt)| Sample::new(x, y, dx, dy, t, dt).unwrap())
}

fn event_strategy() -> impl Strategy<Value = StreamEvent> {
    (0u32..5_000, sample_strategy()).prop_map(|(user, sample)| StreamEvent { user, sample })
}

fn config_strategy() -> impl Strategy<Value = StreamConfig> {
    (2usize..9, 15u32..1440, 0u8..2, 0u8..2).prop_map(|(k, window, carry, under_k)| {
        let mut c = StreamConfig::default();
        c.glove.k = k;
        c.window_min = window;
        c.carry = if carry == 0 {
            CarryPolicy::Fresh
        } else {
            CarryPolicy::Sticky
        };
        c.under_k = if under_k == 0 {
            UnderKPolicy::Suppress
        } else {
            UnderKPolicy::Defer
        };
        c
    })
}

fn tenant_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z0-9_-]{1,24}"
}

const ERROR_CODES: [ErrorCode; 5] = [
    ErrorCode::Protocol,
    ErrorCode::TenantExists,
    ErrorCode::NoTenant,
    ErrorCode::Engine,
    ErrorCode::Shutdown,
];

/// Draws one frame covering every protocol variant.
fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        0u8..13,
        tenant_strategy(),
        config_strategy(),
        vec(event_strategy(), 0..40),
        (0u32..10_000, 0u32..10_000),
        (0u64..1_000_000, 0u64..1_000_000, 0u64..100_000),
        "[ -~]{0,60}",
    )
        .prop_map(
            |(variant, tenant, config, events, (a, b), (e1, e2, e3), text)| match variant {
                0 => Frame::Hello {
                    tenant,
                    shed: a % 2 == 0,
                    config,
                },
                1 => Frame::HelloOk { tenant, queue: a },
                2 => Frame::Events(events),
                3 => Frame::EventsOk {
                    accepted: a,
                    shed: b,
                },
                4 => Frame::Busy {
                    accepted: a,
                    retry_ms: b,
                },
                5 => Frame::Flush,
                6 => Frame::Close,
                7 => Frame::Bye,
                8 => Frame::Epoch {
                    tenant,
                    epoch: e1,
                    window_start_min: e2,
                    groups: e3,
                    users: u64::from(a),
                },
                9 => Frame::Report {
                    tenant,
                    report: Box::new(glove_core::api::RunReport {
                        engine: "glove-serve".to_string(),
                        dataset: text.clone(),
                        k: (a % 10) as usize,
                        samples_in: b as usize,
                        ..Default::default()
                    }),
                },
                10 => Frame::Stats,
                11 => Frame::Shutdown,
                _ => Frame::Error {
                    code: ERROR_CODES[(a as usize) % ERROR_CODES.len()],
                    message: text,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn every_frame_round_trips(frame in frame_strategy()) {
        let bytes = encode_frame(&frame);
        let (decoded, consumed) = decode_frame(&bytes).unwrap();
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn truncations_are_rejected_with_offsets(frame in frame_strategy(), frac in 0.0f64..1.0) {
        let bytes = encode_frame(&frame);
        // Every strict prefix is either "need more bytes" (reported at the
        // cut) or, below the 4-byte header, reported at the prefix length.
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            let err = decode_frame(&bytes[..cut]).unwrap_err();
            prop_assert!(err.offset <= cut, "offset {} past cut {cut}", err.offset);
        }
    }

    #[test]
    fn corrupted_tags_are_rejected(frame in frame_strategy(), tag in 16u8..255) {
        let mut bytes = encode_frame(&frame);
        bytes[4] = tag;
        let err = decode_frame(&bytes).unwrap_err();
        prop_assert_eq!(err.offset, 4);
        prop_assert!(err.message.contains("tag"), "{}", err.message);
    }

    #[test]
    fn byte_soup_never_panics(bytes in vec(0u8..=255, 0..512)) {
        // Any outcome is fine except a panic; errors must carry an
        // in-range offset.
        if let Err(e) = decode_frame(&bytes) {
            prop_assert!(e.offset <= bytes.len().max(PAYLOAD_OFFSET));
        }
    }

    #[test]
    fn json_payload_corruption_is_rejected_at_payload_offset(
        frame in frame_strategy(),
        junk in 0u8..=255,
    ) {
        // Overwrite the first payload byte of a JSON-framed message with a
        // byte that cannot start a JSON object.
        let json_framed = !matches!(frame, Frame::Events(_) | Frame::Flush | Frame::Close
            | Frame::Bye | Frame::Stats | Frame::Shutdown);
        if json_framed && junk != b'{' {
            let mut bytes = encode_frame(&frame);
            bytes[PAYLOAD_OFFSET] = junk;
            prop_assert!(decode_frame(&bytes).is_err());
        }
    }
}

#[test]
fn oversized_length_is_rejected_up_front() {
    let mut bytes = encode_frame(&Frame::Flush);
    let huge = (MAX_FRAME_LEN as u32) + 1;
    bytes[..4].copy_from_slice(&huge.to_le_bytes());
    let err = decode_frame(&bytes).unwrap_err();
    assert_eq!(err.offset, 0);
    assert!(err.message.contains("frame"), "{}", err.message);
}
