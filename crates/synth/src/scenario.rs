//! End-to-end dataset builders: country → towers → users → CDR fingerprints.
//!
//! [`generate`] assembles the full pipeline of §3: it deploys a tower
//! network, samples user profiles and itineraries, draws event times from
//! the traffic process, maps each event to the nearest tower (the logged
//! cell), snaps to the 100 m grid and screens out low-activity users the
//! way the paper screens `d4d-civ` ("filtering out users that have less
//! than one sample per day").
//!
//! The two presets mirror the paper's datasets in structure (not in size —
//! see DESIGN.md §1 on scaling): [`ScenarioConfig::civ_like`] and
//! [`ScenarioConfig::sen_like`].

use crate::churn::{ChurnPlan, DeviceChurn};
use crate::corridor::CorridorTravel;
use crate::country::Country;
use crate::mobility::{build_itinerary, sample_profile, MobilityConfig, DAY_MIN};
use crate::towers::TowerNetwork;
use crate::traffic::{generate_event_minutes, sample_user_rate, TrafficConfig};
use crate::workloads::{apply_workloads, Cohort, FlashCrowd, LongTailMix, WorkloadConfig};
use glove_core::{Dataset, Fingerprint, Sample, UserId};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::fmt;

/// Full configuration of a synthetic CDR scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Dataset name (propagated to [`Dataset::name`]).
    pub name: String,
    /// Master seed; every derived stream is a pure function of it.
    pub seed: u64,
    /// Number of subscribers that must *survive screening*.
    pub num_users: usize,
    /// Observation span in days (the paper's windows are 14 days).
    pub span_days: u32,
    /// Number of cell towers to deploy.
    pub num_towers: usize,
    /// Country geometry.
    pub country: Country,
    /// Mobility model tunables.
    pub mobility: MobilityConfig,
    /// Traffic process tunables.
    pub traffic: TrafficConfig,
    /// Screening: minimum average events/day to keep a user (the paper uses
    /// 1.0 for `d4d-civ`). Set 0.0 to disable.
    pub min_events_per_day: f64,
    /// Local wander: Gaussian jitter of the true position around the
    /// current anchor at event time, meters (models in-cell and
    /// neighbouring-cell movement).
    pub wander_sigma_m: f64,
    /// Probability that an event happens during a one-off excursion far
    /// from the routine (heavy-tailed displacement) — the rare outlier
    /// samples that §5.4 identifies as the anonymization blockers.
    pub excursion_p: f64,
    /// Composable adversarial workloads layered on the base commuter model
    /// (flash crowds, corridor travel, device churn, long-tail cohorts).
    /// The default empty stack reproduces the legacy generator byte for
    /// byte.
    pub workloads: WorkloadConfig,
}

/// A typed rejection of a degenerate [`ScenarioConfig`], returned by
/// [`ScenarioConfig::validate`] / [`try_generate`] instead of panicking or
/// silently producing an empty dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// `num_users` is zero.
    NoUsers,
    /// `num_towers` is zero.
    NoTowers,
    /// `span_days` is zero.
    NoSpan,
    /// A numeric tunable is outside its domain (negative sigma,
    /// out-of-range probability, non-finite value, …).
    InvalidField {
        /// Dotted path of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The country geometry failed [`Country::validate`].
    InvalidCountry(String),
    /// The workload stack is inconsistent with the scenario.
    InvalidWorkload(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NoUsers => write!(f, "num_users must be at least 1"),
            ScenarioError::NoTowers => write!(f, "num_towers must be at least 1"),
            ScenarioError::NoSpan => write!(f, "span_days must be at least 1"),
            ScenarioError::InvalidField { field, value } => {
                write!(f, "{field} = {value} is outside its domain")
            }
            ScenarioError::InvalidCountry(why) => write!(f, "invalid country: {why}"),
            ScenarioError::InvalidWorkload(why) => write!(f, "invalid workload: {why}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl ScenarioConfig {
    /// Ivory-Coast-like scenario (`d4d-civ` stand-in): 2-week span,
    /// ≥ 1 event/day screening.
    pub fn civ_like(num_users: usize) -> Self {
        Self {
            name: "civ-like".into(),
            seed: 0xC11F_00D5,
            num_users,
            span_days: 14,
            num_towers: 900,
            country: Country::civ_like(),
            mobility: MobilityConfig::default(),
            traffic: TrafficConfig::default(),
            min_events_per_day: 1.0,
            wander_sigma_m: 220.0,
            excursion_p: 0.012,
            workloads: WorkloadConfig::default(),
        }
    }

    /// Metropolitan scenario: one dense ~70 × 70 km conurbation at high
    /// subscriber density — the sharded-engine workload (tens of thousands
    /// of users in a single region). Fingerprints are kept lighter than the
    /// nation-wide presets (≈ 2.2 events/day median) so population, not
    /// per-user sample count, dominates the cost, matching the regime where
    /// the §6.3 batching idea pays off.
    pub fn metro_like(num_users: usize) -> Self {
        Self {
            name: "metro-like".into(),
            seed: 0x3E7A_05C0,
            num_users,
            span_days: 14,
            num_towers: 700,
            country: Country::metro_like(),
            mobility: MobilityConfig {
                commute_median_m: 2_200.0,
                ..MobilityConfig::default()
            },
            traffic: TrafficConfig {
                events_per_day_median: 2.2,
                ..TrafficConfig::default()
            },
            min_events_per_day: 1.0,
            wander_sigma_m: 180.0,
            excursion_p: 0.006,
            workloads: WorkloadConfig::default(),
        }
    }

    /// Senegal-like scenario (`d4d-sen` stand-in): 2-week span; the source
    /// dataset is pre-screened to users active on > 75 % of days, which a
    /// 0.75 events/day floor approximates.
    pub fn sen_like(num_users: usize) -> Self {
        Self {
            name: "sen-like".into(),
            seed: 0x5E_4E_6A_17,
            num_users,
            span_days: 14,
            num_towers: 1_100,
            country: Country::sen_like(),
            mobility: MobilityConfig {
                commute_median_m: 2_900.0,
                ..MobilityConfig::default()
            },
            traffic: TrafficConfig {
                events_per_day_median: 5.5,
                ..TrafficConfig::default()
            },
            min_events_per_day: 0.75,
            wander_sigma_m: 250.0,
            excursion_p: 0.010,
            workloads: WorkloadConfig::default(),
        }
    }

    /// Mixed-topology scenario: a dense conurbation core inside a vast
    /// sparse rural plain ([`Country::mixed_like`]) — both coverage regimes
    /// in one dataset, so one engine run faces metro-dense and
    /// rural-sparse fingerprints simultaneously.
    pub fn mixed_like(num_users: usize) -> Self {
        Self {
            name: "mixed-like".into(),
            seed: 0x301D_C04E,
            num_users,
            span_days: 14,
            num_towers: 500,
            country: Country::mixed_like(),
            mobility: MobilityConfig::default(),
            traffic: TrafficConfig {
                events_per_day_median: 3.0,
                ..TrafficConfig::default()
            },
            min_events_per_day: 1.0,
            wander_sigma_m: 200.0,
            excursion_p: 0.008,
            workloads: WorkloadConfig::default(),
        }
    }

    /// Flash-crowd scenario: the metro preset plus two evening venue
    /// surges (a stadium night at the centro, a concert in levante).
    pub fn flash_like(num_users: usize) -> Self {
        let mut cfg = Self::metro_like(num_users);
        cfg.name = "flash-like".into();
        cfg.seed = 0xF1A5_4C40;
        cfg.workloads.flash_crowds = vec![
            FlashCrowd {
                venue: None, // primary city centre (centro)
                scatter_m: 400.0,
                start_min: 2 * DAY_MIN + 19 * 60,
                duration_min: 180,
                attendance: 0.35,
                extra_events: 3,
            },
            FlashCrowd {
                venue: Some((58_000.0, 38_000.0)), // levante
                scatter_m: 500.0,
                start_min: 9 * DAY_MIN + 20 * 60,
                duration_min: 240,
                attendance: 0.25,
                extra_events: 2,
            },
        ];
        cfg
    }

    /// Corridor-travel scenario: the civ-like nation with explicit
    /// inter-city corridors ([`Country::corridor_like`]) and a third of the
    /// population taking scheduled round trips along them.
    pub fn corridor_like(num_users: usize) -> Self {
        let mut cfg = Self::civ_like(num_users);
        cfg.name = "corridor-like".into();
        cfg.seed = 0xC044_1D04;
        cfg.country = Country::corridor_like();
        cfg.workloads.corridor = Some(CorridorTravel {
            travelers: 0.30,
            trips: 2,
            speed_m_min: 1_200.0,
            dwell_min: 240,
        });
        cfg
    }

    /// Device-churn scenario: the metro preset with SIM swaps and dual-SIM
    /// users splitting samples across user ids mid-horizon.
    pub fn churn_like(num_users: usize) -> Self {
        let mut cfg = Self::metro_like(num_users);
        cfg.name = "churn-like".into();
        cfg.seed = 0xC4_42_17;
        cfg.workloads.churn = Some(DeviceChurn {
            sim_swap: 0.18,
            dual_sim: 0.12,
        });
        cfg
    }

    /// Long-tail scenario: the metro preset with ground-truth-labelled
    /// night-shift, hyper-mobile and sedentary outlier cohorts injected.
    pub fn longtail_like(num_users: usize) -> Self {
        let mut cfg = Self::metro_like(num_users);
        cfg.name = "longtail-like".into();
        cfg.seed = 0x10A6_7A11;
        cfg.workloads.long_tail = Some(LongTailMix {
            night_shift: 0.06,
            hyper_mobile: 0.05,
            sedentary: 0.08,
        });
        cfg
    }

    /// The composition proof: metro base with a flash crowd, device churn
    /// *and* long-tail cohorts stacked in one dataset.
    pub fn storm_like(num_users: usize) -> Self {
        let mut cfg = Self::metro_like(num_users);
        cfg.name = "storm-like".into();
        cfg.seed = 0x5702_4A11;
        cfg.workloads = WorkloadConfig {
            flash_crowds: vec![FlashCrowd {
                venue: None,
                scatter_m: 450.0,
                start_min: 4 * DAY_MIN + 19 * 60 + 30,
                duration_min: 200,
                attendance: 0.30,
                extra_events: 3,
            }],
            corridor: None,
            churn: Some(DeviceChurn {
                sim_swap: 0.12,
                dual_sim: 0.08,
            }),
            long_tail: Some(LongTailMix {
                night_shift: 0.05,
                hyper_mobile: 0.04,
                sedentary: 0.06,
            }),
        };
        cfg
    }

    /// Resolves a preset name — any entry of [`PRESETS`], with or without
    /// the `-like` suffix — to its configuration. `None` for unknown names.
    pub fn preset(name: &str, num_users: usize) -> Option<Self> {
        Some(match name.strip_suffix("-like").unwrap_or(name) {
            "civ" => Self::civ_like(num_users),
            "sen" => Self::sen_like(num_users),
            "metro" => Self::metro_like(num_users),
            "mixed" => Self::mixed_like(num_users),
            "flash" => Self::flash_like(num_users),
            "corridor" => Self::corridor_like(num_users),
            "churn" => Self::churn_like(num_users),
            "longtail" => Self::longtail_like(num_users),
            "storm" => Self::storm_like(num_users),
            _ => return None,
        })
    }

    /// Validates the configuration, returning the first violation as a
    /// typed [`ScenarioError`]. [`try_generate`] and
    /// [`crate::ScenarioEvents::try_new`] run this before generating.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.num_users == 0 {
            return Err(ScenarioError::NoUsers);
        }
        if self.num_towers == 0 {
            return Err(ScenarioError::NoTowers);
        }
        if self.span_days == 0 {
            return Err(ScenarioError::NoSpan);
        }
        let field = |field: &'static str, value: f64, ok: bool| {
            if ok && value.is_finite() {
                Ok(())
            } else {
                Err(ScenarioError::InvalidField { field, value })
            }
        };
        field(
            "min_events_per_day",
            self.min_events_per_day,
            self.min_events_per_day >= 0.0,
        )?;
        field(
            "wander_sigma_m",
            self.wander_sigma_m,
            self.wander_sigma_m >= 0.0,
        )?;
        field(
            "excursion_p",
            self.excursion_p,
            (0.0..=1.0).contains(&self.excursion_p),
        )?;
        let m = &self.mobility;
        field(
            "mobility.employed_p",
            m.employed_p,
            (0.0..=1.0).contains(&m.employed_p),
        )?;
        field(
            "mobility.work_same_city_p",
            m.work_same_city_p,
            (0.0..=1.0).contains(&m.work_same_city_p),
        )?;
        field(
            "mobility.commute_median_m",
            m.commute_median_m,
            m.commute_median_m > 0.0,
        )?;
        field(
            "mobility.commute_sigma",
            m.commute_sigma,
            m.commute_sigma >= 0.0,
        )?;
        field(
            "mobility.errand_radius_m",
            m.errand_radius_m,
            m.errand_radius_m > 200.0,
        )?;
        field(
            "mobility.weekend_trip_p",
            m.weekend_trip_p,
            (0.0..=1.0).contains(&m.weekend_trip_p),
        )?;
        field("mobility.trip_alpha", m.trip_alpha, m.trip_alpha > 0.0)?;
        field("mobility.trip_min_m", m.trip_min_m, m.trip_min_m > 0.0)?;
        if m.errands_min > m.errands_max {
            return Err(ScenarioError::InvalidField {
                field: "mobility.errands_min",
                value: m.errands_min as f64,
            });
        }
        let t = &self.traffic;
        field(
            "traffic.events_per_day_median",
            t.events_per_day_median,
            t.events_per_day_median > 0.0,
        )?;
        field("traffic.rate_sigma", t.rate_sigma, t.rate_sigma >= 0.0)?;
        field(
            "traffic.session_extra_mean",
            t.session_extra_mean,
            t.session_extra_mean >= 0.0,
        )?;
        if t.session_gap_max_min == 0 {
            return Err(ScenarioError::InvalidField {
                field: "traffic.session_gap_max_min",
                value: 0.0,
            });
        }
        self.country
            .validate()
            .map_err(ScenarioError::InvalidCountry)?;
        self.workloads
            .validate(&self.country, self.span_days)
            .map_err(ScenarioError::InvalidWorkload)?;
        Ok(())
    }
}

/// All preset names accepted by [`ScenarioConfig::preset`] and by
/// `glove synth --preset`.
pub const PRESETS: &[&str] = &[
    "civ", "sen", "metro", "mixed", "flash", "corridor", "churn", "longtail", "storm",
];

/// A generated dataset together with the geometry needed by the city
/// subsetting and by diagnostics.
#[derive(Debug, Clone)]
pub struct SynthDataset {
    /// The CDR fingerprint dataset.
    pub dataset: Dataset,
    /// The deployed tower network.
    pub towers: TowerNetwork,
    /// The country geometry.
    pub country: Country,
    /// Home-city index per user id (`None` = rural), aligned with user ids.
    pub home_city: Vec<Option<usize>>,
    /// Ground-truth mobility cohort per user id (secondary churn
    /// identities inherit their person's cohort), aligned with user ids.
    pub cohorts: Vec<Cohort>,
    /// Users rejected by the activity screening before `num_users` accepted
    /// candidates were found.
    pub screened_out: usize,
}

impl SynthDataset {
    /// User ids labelled with a long-tail cohort — the ground truth for
    /// cohort-conditioned attack scoring.
    pub fn long_tail_users(&self) -> Vec<UserId> {
        self.cohorts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_long_tail())
            .map(|(i, _)| i as UserId)
            .collect()
    }
}

/// The resident generation state of one accepted subscriber: the event
/// minutes still to be synthesized, the itinerary that positions them, and
/// the mid-stream RNG whose remaining draws are the per-event jitter.
///
/// This is the unit both [`generate`] and the event-iterator view
/// ([`crate::events::ScenarioEvents`]) build on — the two paths share the
/// same candidate screening and the same per-event synthesis, so they can
/// never drift apart.
pub(crate) struct UserGen {
    pub(crate) minutes: Vec<u32>,
    pub(crate) itinerary: crate::mobility::Itinerary,
    pub(crate) rng: StdRng,
    pub(crate) home_city: Option<usize>,
    pub(crate) cohort: Cohort,
    pub(crate) churn: ChurnPlan,
}

/// Screening floor: minimum events over the span to keep a candidate.
pub(crate) fn min_events(cfg: &ScenarioConfig) -> usize {
    let floor = (cfg.min_events_per_day * cfg.span_days as f64).ceil() as usize;
    floor.max(1)
}

/// Runs one candidate through profile/rate/screening. Returns `None` when
/// the candidate is screened out. Deterministic per `(seed, candidate)`.
pub(crate) fn spawn_user(cfg: &ScenarioConfig, candidate: u64) -> Option<UserGen> {
    // Independent, reproducible stream per candidate.
    let mut rng = StdRng::seed_from_u64(
        cfg.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(candidate),
    );
    let profile = sample_profile(&cfg.country, &cfg.mobility, &mut rng);
    let rate = sample_user_rate(&cfg.traffic, &mut rng);
    let mut minutes = generate_event_minutes(rate, cfg.span_days, &cfg.traffic, &mut rng);
    if minutes.len() < min_events(cfg) {
        return None;
    }
    let mut itinerary = build_itinerary(
        &profile,
        &cfg.country,
        &cfg.mobility,
        cfg.span_days,
        &mut rng,
    );
    // Workloads transform the accepted candidate in place (screening stays
    // on the base traffic process); an empty stack consumes zero draws.
    let (cohort, churn) = apply_workloads(
        &cfg.workloads,
        &cfg.country,
        cfg.span_days,
        &profile,
        &mut minutes,
        &mut itinerary,
        &mut rng,
    );
    Some(UserGen {
        minutes,
        itinerary,
        rng,
        home_city: profile.home_city,
        cohort,
        churn,
    })
}

/// Panic guard shared by both generation paths: a pathologically low
/// acceptance rate indicates an inconsistent configuration (e.g. screening
/// threshold far above the traffic rate).
pub(crate) fn screening_guard(cfg: &ScenarioConfig, candidate: u64, screened_out: usize) {
    if candidate > 50 * cfg.num_users as u64 + 1_000 {
        panic!(
            "screening rejected {screened_out} of {candidate} candidates; \
             the scenario configuration is inconsistent"
        );
    }
}

/// Synthesizes the logged sample of one event: true position from the
/// itinerary, excursion/wander jitter, clamp, nearest tower, 100 m grid.
pub(crate) fn synth_sample(
    cfg: &ScenarioConfig,
    towers: &TowerNetwork,
    itinerary: &crate::mobility::Itinerary,
    rng: &mut StdRng,
    t: u32,
) -> Sample {
    let (mut x, mut y) = itinerary.position_at(t);
    // Rare excursion: the device is somewhere unusual entirely.
    if rng.gen_bool(cfg.excursion_p) {
        let u: f64 = rng.gen_range(1e-9..1.0f64);
        let d = (3_000.0 * u.powf(-1.0 / 1.3)).min(cfg.country.width_m.max(cfg.country.height_m));
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        x += d * theta.cos();
        y += d * theta.sin();
    } else if cfg.wander_sigma_m > 0.0 {
        x += normal(rng) * cfg.wander_sigma_m;
        y += normal(rng) * cfg.wander_sigma_m;
    }
    let (x, y) = cfg.country.clamp(x, y);
    let tower = towers.towers()[towers.nearest(x, y)];
    Sample::point(tower.x, tower.y, t)
}

/// Deploys the tower network of a scenario (deterministic per seed).
pub(crate) fn deploy_towers(cfg: &ScenarioConfig) -> TowerNetwork {
    cfg.country.validate().expect("valid country geometry");
    let mut deploy_rng = StdRng::seed_from_u64(cfg.seed ^ 0x7077_3235);
    TowerNetwork::deploy(&cfg.country, cfg.num_towers, &mut deploy_rng)
}

/// Generates a synthetic CDR dataset. Deterministic for a given config.
///
/// # Panics
/// Panics with the [`ScenarioError`] message on a degenerate configuration
/// (use [`try_generate`] for a `Result`), and if the acceptance rate of the
/// screening is pathologically low (more than 50× oversampling), which
/// indicates an inconsistent configuration (e.g. screening threshold far
/// above the traffic rate).
pub fn generate(cfg: &ScenarioConfig) -> SynthDataset {
    match try_generate(cfg) {
        Ok(synth) => synth,
        Err(e) => panic!("invalid scenario configuration: {e}"),
    }
}

/// [`generate`] with the degenerate-configuration panic lifted into a typed
/// [`ScenarioError`].
pub fn try_generate(cfg: &ScenarioConfig) -> Result<SynthDataset, ScenarioError> {
    cfg.validate()?;
    Ok(generate_inner(cfg))
}

fn generate_inner(cfg: &ScenarioConfig) -> SynthDataset {
    let towers = deploy_towers(cfg);

    let mut fingerprints: Vec<Fingerprint> = Vec::with_capacity(cfg.num_users);
    let mut home_city = Vec::with_capacity(cfg.num_users);
    let mut cohorts = Vec::with_capacity(cfg.num_users);
    // Samples routed to secondary (churn) identities, in person-acceptance
    // order; their ids are allocated past `num_users` after the loop, the
    // same allocation the event-iterator path performs.
    let mut split: Vec<(Vec<Sample>, Option<usize>, Cohort)> = Vec::new();
    let mut screened_out = 0usize;

    let mut candidate = 0u64;
    while fingerprints.len() < cfg.num_users {
        screening_guard(cfg, candidate, screened_out);
        let Some(mut user_gen) = spawn_user(cfg, candidate) else {
            screened_out += 1;
            candidate += 1;
            continue;
        };
        candidate += 1;

        let minutes = std::mem::take(&mut user_gen.minutes);
        let mut samples = Vec::with_capacity(minutes.len());
        let mut secondary = Vec::new();
        for &t in &minutes {
            let sample = synth_sample(cfg, &towers, &user_gen.itinerary, &mut user_gen.rng, t);
            if user_gen.churn.routes_secondary(t) {
                secondary.push(sample);
            } else {
                samples.push(sample);
            }
        }
        // One event per minute is guaranteed by the traffic process, but the
        // same (cell, minute) can only appear once in a fingerprint.
        samples.sort_unstable_by_key(|s| (s.t, s.x, s.y));
        samples.dedup();

        let user = fingerprints.len() as UserId;
        fingerprints
            .push(Fingerprint::with_users(vec![user], samples).expect("non-empty by screening"));
        home_city.push(user_gen.home_city);
        cohorts.push(user_gen.cohort);
        if !secondary.is_empty() {
            secondary.sort_unstable_by_key(|s| (s.t, s.x, s.y));
            secondary.dedup();
            split.push((secondary, user_gen.home_city, user_gen.cohort));
        }
    }

    for (samples, city, cohort) in split {
        let user = fingerprints.len() as UserId;
        fingerprints
            .push(Fingerprint::with_users(vec![user], samples).expect("split ids are non-empty"));
        home_city.push(city);
        cohorts.push(cohort);
    }

    let dataset = Dataset::new(cfg.name.clone(), fingerprints).expect("unique user ids");
    SynthDataset {
        dataset,
        towers,
        country: cfg.country.clone(),
        home_city,
        cohorts,
        screened_out,
    }
}

/// Standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0f64);
    let u2: f64 = rng.gen_range(0.0..1.0f64);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glove_stats::radius_of_gyration;

    fn small(n: usize) -> SynthDataset {
        let mut cfg = ScenarioConfig::civ_like(n);
        cfg.num_towers = 400;
        generate(&cfg)
    }

    #[test]
    fn generates_requested_population() {
        let s = small(60);
        assert_eq!(s.dataset.fingerprints.len(), 60);
        assert_eq!(s.dataset.num_users(), 60);
        assert_eq!(s.home_city.len(), 60);
    }

    #[test]
    fn screening_enforces_min_activity() {
        let s = small(80);
        for fp in &s.dataset.fingerprints {
            assert!(
                fp.len() >= 14,
                "user with {} samples survived 1/day screening",
                fp.len()
            );
        }
    }

    #[test]
    fn samples_are_native_granularity_tower_positions() {
        let s = small(30);
        for fp in &s.dataset.fingerprints {
            for smp in fp.samples() {
                assert_eq!(smp.dx, 100);
                assert_eq!(smp.dy, 100);
                assert_eq!(smp.dt, 1);
                assert_eq!(smp.x % 100, 0);
                assert!(smp.t < 14 * 1_440);
                // Position is an actual tower.
                assert!(s
                    .towers
                    .towers()
                    .iter()
                    .any(|t| t.x == smp.x && t.y == smp.y));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(25);
        let b = small(25);
        for (fa, fb) in a.dataset.fingerprints.iter().zip(&b.dataset.fingerprints) {
            assert_eq!(fa.samples(), fb.samples());
        }
    }

    #[test]
    fn radius_of_gyration_matches_paper_bands() {
        // §7.3: median rog ~ 1.8–2 km, mean ~ 10–12 km. Accept generous
        // bands — the claim is structural (local median, heavy-tailed mean).
        let s = small(250);
        let mut rogs: Vec<f64> = s
            .dataset
            .fingerprints
            .iter()
            .map(|fp| {
                let pts: Vec<(f64, f64)> = fp
                    .samples()
                    .iter()
                    .map(|smp| (smp.x as f64, smp.y as f64))
                    .collect();
                radius_of_gyration(&pts).unwrap()
            })
            .collect();
        rogs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = rogs[rogs.len() / 2];
        let mean = rogs.iter().sum::<f64>() / rogs.len() as f64;
        assert!(
            (600.0..6_000.0).contains(&median),
            "median rog {median} m outside the paper-like band"
        );
        assert!(
            (3_000.0..30_000.0).contains(&mean),
            "mean rog {mean} m outside the paper-like band"
        );
        assert!(mean > 2.0 * median, "rog distribution must be heavy-tailed");
    }

    #[test]
    fn fingerprints_are_unique_at_native_granularity() {
        // The paper's baseline fact (Fig. 3a): no subscriber is 2-anonymous
        // in the original data. With towers + minute timestamps, identical
        // fingerprints would require identical event histories.
        let s = small(60);
        let cfg = glove_core::StretchConfig::default();
        let gaps = glove_core::kgap::kgap_all(&s.dataset, 2, 0, &cfg);
        assert!(
            gaps.iter().all(|&g| g > 0.0),
            "some users are already 2-anonymous — synthetic data too regular"
        );
    }

    #[test]
    fn preset_lookup_covers_every_advertised_name() {
        for &name in PRESETS {
            let cfg = ScenarioConfig::preset(name, 10)
                .unwrap_or_else(|| panic!("advertised preset '{name}' unknown"));
            cfg.validate()
                .unwrap_or_else(|e| panic!("preset '{name}' invalid: {e}"));
            assert!(
                ScenarioConfig::preset(&format!("{name}-like"), 10).is_some(),
                "'{name}-like' alias must resolve"
            );
        }
        assert!(ScenarioConfig::preset("atlantis", 10).is_none());
    }

    #[test]
    fn validation_rejects_each_degenerate_field() {
        let base = || {
            let mut c = ScenarioConfig::civ_like(10);
            c.num_towers = 100;
            c
        };
        let mut c = base();
        c.num_users = 0;
        assert_eq!(c.validate(), Err(ScenarioError::NoUsers));

        let mut c = base();
        c.num_towers = 0;
        assert_eq!(c.validate(), Err(ScenarioError::NoTowers));

        let mut c = base();
        c.span_days = 0;
        assert_eq!(c.validate(), Err(ScenarioError::NoSpan));

        let mut c = base();
        c.wander_sigma_m = -1.0;
        assert!(matches!(
            c.validate(),
            Err(ScenarioError::InvalidField {
                field: "wander_sigma_m",
                ..
            })
        ));

        let mut c = base();
        c.excursion_p = 1.5;
        assert!(matches!(
            c.validate(),
            Err(ScenarioError::InvalidField {
                field: "excursion_p",
                ..
            })
        ));

        let mut c = base();
        c.mobility.commute_sigma = -0.5;
        assert!(matches!(
            c.validate(),
            Err(ScenarioError::InvalidField {
                field: "mobility.commute_sigma",
                ..
            })
        ));

        let mut c = base();
        c.mobility.commute_median_m = f64::NAN;
        assert!(c.validate().is_err(), "NaN must be rejected");

        let mut c = base();
        c.traffic.events_per_day_median = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ScenarioError::InvalidField {
                field: "traffic.events_per_day_median",
                ..
            })
        ));

        let mut c = base();
        c.country.cities.clear();
        assert!(matches!(
            c.validate(),
            Err(ScenarioError::InvalidCountry(_))
        ));

        let mut c = base();
        c.workloads.churn = Some(DeviceChurn {
            sim_swap: 0.8,
            dual_sim: 0.8,
        });
        assert!(matches!(
            c.validate(),
            Err(ScenarioError::InvalidWorkload(_))
        ));

        // The Result path surfaces the same error without generating.
        let mut c = base();
        c.num_users = 0;
        assert_eq!(try_generate(&c).err(), Some(ScenarioError::NoUsers));
        // The error renders a human-readable message.
        assert!(ScenarioError::NoUsers.to_string().contains("num_users"));
    }

    #[test]
    fn churn_split_allocates_secondary_ids_past_num_users() {
        let mut cfg = ScenarioConfig::churn_like(40);
        cfg.num_towers = 250;
        let s = generate(&cfg);
        assert!(
            s.dataset.num_users() > 40,
            "churn at 30% produced no split identity"
        );
        assert_eq!(s.dataset.fingerprints.len(), s.cohorts.len());
        assert_eq!(s.dataset.fingerprints.len(), s.home_city.len());
        for (i, fp) in s.dataset.fingerprints.iter().enumerate() {
            assert_eq!(fp.users(), &[i as UserId], "ids must equal indices");
            assert!(!fp.samples().is_empty(), "split ids must be non-empty");
        }
    }

    #[test]
    fn longtail_cohorts_are_labelled_with_night_events_at_night() {
        let mut cfg = ScenarioConfig::longtail_like(150);
        cfg.num_towers = 250;
        let s = generate(&cfg);
        let long_tail = s.long_tail_users();
        assert!(
            (5..75).contains(&long_tail.len()),
            "{} long-tail users out of 150 is outside the configured band",
            long_tail.len()
        );
        // Night-shift users log a large share of events in the small hours
        // (00:00–06:00), where typical diurnal traffic nearly vanishes.
        let night_share = |fp: &Fingerprint| {
            let night = fp
                .samples()
                .iter()
                .filter(|smp| (smp.t % DAY_MIN) < 6 * 60)
                .count();
            night as f64 / fp.len() as f64
        };
        let mut checked = 0;
        for (i, fp) in s.dataset.fingerprints.iter().enumerate() {
            match s.cohorts[i] {
                Cohort::NightShift => {
                    assert!(
                        night_share(fp) > 0.15,
                        "night-shift user {i} has day-shaped traffic"
                    );
                    checked += 1;
                }
                Cohort::Typical => {
                    assert!(
                        night_share(fp) < 0.30,
                        "typical user {i} looks night-shifted"
                    );
                }
                _ => {}
            }
        }
        assert!(checked >= 2, "no night-shift users to check");
    }

    #[test]
    fn storm_preset_composes_workloads_deterministically() {
        let mut cfg = ScenarioConfig::storm_like(60);
        cfg.num_towers = 250;
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.dataset.fingerprints.len(), b.dataset.fingerprints.len());
        for (fa, fb) in a.dataset.fingerprints.iter().zip(&b.dataset.fingerprints) {
            assert_eq!(fa.samples(), fb.samples());
        }
        assert_eq!(a.cohorts, b.cohorts);
        // All three stacked workloads materialize.
        assert!(!a.long_tail_users().is_empty(), "no long-tail cohort");
        assert!(a.dataset.num_users() > 60, "no churn split ids");
    }

    #[test]
    fn sen_like_preset_generates() {
        let mut cfg = ScenarioConfig::sen_like(20);
        cfg.num_towers = 300;
        let s = generate(&cfg);
        assert_eq!(s.dataset.fingerprints.len(), 20);
        assert_eq!(s.dataset.name, "sen-like");
    }

    #[test]
    fn metro_like_preset_generates_dense_compact_region() {
        let mut cfg = ScenarioConfig::metro_like(30);
        cfg.num_towers = 250;
        let s = generate(&cfg);
        assert_eq!(s.dataset.fingerprints.len(), 30);
        assert_eq!(s.dataset.name, "metro-like");
        // Everything fits inside the 70 km metro square.
        for fp in &s.dataset.fingerprints {
            for smp in fp.samples() {
                assert!((0..=70_000).contains(&smp.x), "x = {} outside metro", smp.x);
                assert!((0..=70_000).contains(&smp.y), "y = {} outside metro", smp.y);
            }
        }
        // Lighter fingerprints than the nation-wide presets: screening
        // floor is 14 samples, the median stays laptop-friendly.
        let mut lens: Vec<usize> = s.dataset.fingerprints.iter().map(|f| f.len()).collect();
        lens.sort_unstable();
        assert!(lens[0] >= 14, "screening floor violated");
        assert!(lens[lens.len() / 2] < 120, "metro fingerprints too dense");
    }
}
