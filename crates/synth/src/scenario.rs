//! End-to-end dataset builders: country → towers → users → CDR fingerprints.
//!
//! [`generate`] assembles the full pipeline of §3: it deploys a tower
//! network, samples user profiles and itineraries, draws event times from
//! the traffic process, maps each event to the nearest tower (the logged
//! cell), snaps to the 100 m grid and screens out low-activity users the
//! way the paper screens `d4d-civ` ("filtering out users that have less
//! than one sample per day").
//!
//! The two presets mirror the paper's datasets in structure (not in size —
//! see DESIGN.md §1 on scaling): [`ScenarioConfig::civ_like`] and
//! [`ScenarioConfig::sen_like`].

use crate::country::Country;
use crate::mobility::{build_itinerary, sample_profile, MobilityConfig};
use crate::towers::TowerNetwork;
use crate::traffic::{generate_event_minutes, sample_user_rate, TrafficConfig};
use glove_core::{Dataset, Fingerprint, Sample, UserId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Full configuration of a synthetic CDR scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Dataset name (propagated to [`Dataset::name`]).
    pub name: String,
    /// Master seed; every derived stream is a pure function of it.
    pub seed: u64,
    /// Number of subscribers that must *survive screening*.
    pub num_users: usize,
    /// Observation span in days (the paper's windows are 14 days).
    pub span_days: u32,
    /// Number of cell towers to deploy.
    pub num_towers: usize,
    /// Country geometry.
    pub country: Country,
    /// Mobility model tunables.
    pub mobility: MobilityConfig,
    /// Traffic process tunables.
    pub traffic: TrafficConfig,
    /// Screening: minimum average events/day to keep a user (the paper uses
    /// 1.0 for `d4d-civ`). Set 0.0 to disable.
    pub min_events_per_day: f64,
    /// Local wander: Gaussian jitter of the true position around the
    /// current anchor at event time, meters (models in-cell and
    /// neighbouring-cell movement).
    pub wander_sigma_m: f64,
    /// Probability that an event happens during a one-off excursion far
    /// from the routine (heavy-tailed displacement) — the rare outlier
    /// samples that §5.4 identifies as the anonymization blockers.
    pub excursion_p: f64,
}

impl ScenarioConfig {
    /// Ivory-Coast-like scenario (`d4d-civ` stand-in): 2-week span,
    /// ≥ 1 event/day screening.
    pub fn civ_like(num_users: usize) -> Self {
        Self {
            name: "civ-like".into(),
            seed: 0xC11F_00D5,
            num_users,
            span_days: 14,
            num_towers: 900,
            country: Country::civ_like(),
            mobility: MobilityConfig::default(),
            traffic: TrafficConfig::default(),
            min_events_per_day: 1.0,
            wander_sigma_m: 220.0,
            excursion_p: 0.012,
        }
    }

    /// Metropolitan scenario: one dense ~70 × 70 km conurbation at high
    /// subscriber density — the sharded-engine workload (tens of thousands
    /// of users in a single region). Fingerprints are kept lighter than the
    /// nation-wide presets (≈ 2.2 events/day median) so population, not
    /// per-user sample count, dominates the cost, matching the regime where
    /// the §6.3 batching idea pays off.
    pub fn metro_like(num_users: usize) -> Self {
        Self {
            name: "metro-like".into(),
            seed: 0x3E7A_05C0,
            num_users,
            span_days: 14,
            num_towers: 700,
            country: Country::metro_like(),
            mobility: MobilityConfig {
                commute_median_m: 2_200.0,
                ..MobilityConfig::default()
            },
            traffic: TrafficConfig {
                events_per_day_median: 2.2,
                ..TrafficConfig::default()
            },
            min_events_per_day: 1.0,
            wander_sigma_m: 180.0,
            excursion_p: 0.006,
        }
    }

    /// Senegal-like scenario (`d4d-sen` stand-in): 2-week span; the source
    /// dataset is pre-screened to users active on > 75 % of days, which a
    /// 0.75 events/day floor approximates.
    pub fn sen_like(num_users: usize) -> Self {
        Self {
            name: "sen-like".into(),
            seed: 0x5E_4E_6A_17,
            num_users,
            span_days: 14,
            num_towers: 1_100,
            country: Country::sen_like(),
            mobility: MobilityConfig {
                commute_median_m: 2_900.0,
                ..MobilityConfig::default()
            },
            traffic: TrafficConfig {
                events_per_day_median: 5.5,
                ..TrafficConfig::default()
            },
            min_events_per_day: 0.75,
            wander_sigma_m: 250.0,
            excursion_p: 0.010,
        }
    }
}

/// A generated dataset together with the geometry needed by the city
/// subsetting and by diagnostics.
#[derive(Debug, Clone)]
pub struct SynthDataset {
    /// The CDR fingerprint dataset.
    pub dataset: Dataset,
    /// The deployed tower network.
    pub towers: TowerNetwork,
    /// The country geometry.
    pub country: Country,
    /// Home-city index per user id (`None` = rural), aligned with user ids.
    pub home_city: Vec<Option<usize>>,
    /// Users rejected by the activity screening before `num_users` accepted
    /// candidates were found.
    pub screened_out: usize,
}

/// The resident generation state of one accepted subscriber: the event
/// minutes still to be synthesized, the itinerary that positions them, and
/// the mid-stream RNG whose remaining draws are the per-event jitter.
///
/// This is the unit both [`generate`] and the event-iterator view
/// ([`crate::events::ScenarioEvents`]) build on — the two paths share the
/// same candidate screening and the same per-event synthesis, so they can
/// never drift apart.
pub(crate) struct UserGen {
    pub(crate) minutes: Vec<u32>,
    pub(crate) itinerary: crate::mobility::Itinerary,
    pub(crate) rng: StdRng,
    pub(crate) home_city: Option<usize>,
}

/// Screening floor: minimum events over the span to keep a candidate.
pub(crate) fn min_events(cfg: &ScenarioConfig) -> usize {
    let floor = (cfg.min_events_per_day * cfg.span_days as f64).ceil() as usize;
    floor.max(1)
}

/// Runs one candidate through profile/rate/screening. Returns `None` when
/// the candidate is screened out. Deterministic per `(seed, candidate)`.
pub(crate) fn spawn_user(cfg: &ScenarioConfig, candidate: u64) -> Option<UserGen> {
    // Independent, reproducible stream per candidate.
    let mut rng = StdRng::seed_from_u64(
        cfg.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(candidate),
    );
    let profile = sample_profile(&cfg.country, &cfg.mobility, &mut rng);
    let rate = sample_user_rate(&cfg.traffic, &mut rng);
    let minutes = generate_event_minutes(rate, cfg.span_days, &cfg.traffic, &mut rng);
    if minutes.len() < min_events(cfg) {
        return None;
    }
    let itinerary = build_itinerary(
        &profile,
        &cfg.country,
        &cfg.mobility,
        cfg.span_days,
        &mut rng,
    );
    Some(UserGen {
        minutes,
        itinerary,
        rng,
        home_city: profile.home_city,
    })
}

/// Panic guard shared by both generation paths: a pathologically low
/// acceptance rate indicates an inconsistent configuration (e.g. screening
/// threshold far above the traffic rate).
pub(crate) fn screening_guard(cfg: &ScenarioConfig, candidate: u64, screened_out: usize) {
    if candidate > 50 * cfg.num_users as u64 + 1_000 {
        panic!(
            "screening rejected {screened_out} of {candidate} candidates; \
             the scenario configuration is inconsistent"
        );
    }
}

/// Synthesizes the logged sample of one event: true position from the
/// itinerary, excursion/wander jitter, clamp, nearest tower, 100 m grid.
pub(crate) fn synth_sample(
    cfg: &ScenarioConfig,
    towers: &TowerNetwork,
    itinerary: &crate::mobility::Itinerary,
    rng: &mut StdRng,
    t: u32,
) -> Sample {
    let (mut x, mut y) = itinerary.position_at(t);
    // Rare excursion: the device is somewhere unusual entirely.
    if rng.gen_bool(cfg.excursion_p) {
        let u: f64 = rng.gen_range(1e-9..1.0f64);
        let d = (3_000.0 * u.powf(-1.0 / 1.3)).min(cfg.country.width_m.max(cfg.country.height_m));
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        x += d * theta.cos();
        y += d * theta.sin();
    } else if cfg.wander_sigma_m > 0.0 {
        x += normal(rng) * cfg.wander_sigma_m;
        y += normal(rng) * cfg.wander_sigma_m;
    }
    let (x, y) = cfg.country.clamp(x, y);
    let tower = towers.towers()[towers.nearest(x, y)];
    Sample::point(tower.x, tower.y, t)
}

/// Deploys the tower network of a scenario (deterministic per seed).
pub(crate) fn deploy_towers(cfg: &ScenarioConfig) -> TowerNetwork {
    cfg.country.validate().expect("valid country geometry");
    let mut deploy_rng = StdRng::seed_from_u64(cfg.seed ^ 0x7077_3235);
    TowerNetwork::deploy(&cfg.country, cfg.num_towers, &mut deploy_rng)
}

/// Generates a synthetic CDR dataset. Deterministic for a given config.
///
/// # Panics
/// Panics if the acceptance rate of the screening is pathologically low
/// (more than 50× oversampling), which indicates an inconsistent
/// configuration (e.g. screening threshold far above the traffic rate).
pub fn generate(cfg: &ScenarioConfig) -> SynthDataset {
    let towers = deploy_towers(cfg);

    let mut fingerprints: Vec<Fingerprint> = Vec::with_capacity(cfg.num_users);
    let mut home_city = Vec::with_capacity(cfg.num_users);
    let mut screened_out = 0usize;

    let mut candidate = 0u64;
    while fingerprints.len() < cfg.num_users {
        screening_guard(cfg, candidate, screened_out);
        let Some(mut user_gen) = spawn_user(cfg, candidate) else {
            screened_out += 1;
            candidate += 1;
            continue;
        };
        candidate += 1;

        let minutes = std::mem::take(&mut user_gen.minutes);
        let mut samples = Vec::with_capacity(minutes.len());
        for &t in &minutes {
            samples.push(synth_sample(
                cfg,
                &towers,
                &user_gen.itinerary,
                &mut user_gen.rng,
                t,
            ));
        }
        // One event per minute is guaranteed by the traffic process, but the
        // same (cell, minute) can only appear once in a fingerprint.
        samples.sort_unstable_by_key(|s| (s.t, s.x, s.y));
        samples.dedup();

        let user = fingerprints.len() as UserId;
        fingerprints
            .push(Fingerprint::with_users(vec![user], samples).expect("non-empty by screening"));
        home_city.push(user_gen.home_city);
    }

    let dataset = Dataset::new(cfg.name.clone(), fingerprints).expect("unique user ids");
    SynthDataset {
        dataset,
        towers,
        country: cfg.country.clone(),
        home_city,
        screened_out,
    }
}

/// Standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0f64);
    let u2: f64 = rng.gen_range(0.0..1.0f64);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glove_stats::radius_of_gyration;

    fn small(n: usize) -> SynthDataset {
        let mut cfg = ScenarioConfig::civ_like(n);
        cfg.num_towers = 400;
        generate(&cfg)
    }

    #[test]
    fn generates_requested_population() {
        let s = small(60);
        assert_eq!(s.dataset.fingerprints.len(), 60);
        assert_eq!(s.dataset.num_users(), 60);
        assert_eq!(s.home_city.len(), 60);
    }

    #[test]
    fn screening_enforces_min_activity() {
        let s = small(80);
        for fp in &s.dataset.fingerprints {
            assert!(
                fp.len() >= 14,
                "user with {} samples survived 1/day screening",
                fp.len()
            );
        }
    }

    #[test]
    fn samples_are_native_granularity_tower_positions() {
        let s = small(30);
        for fp in &s.dataset.fingerprints {
            for smp in fp.samples() {
                assert_eq!(smp.dx, 100);
                assert_eq!(smp.dy, 100);
                assert_eq!(smp.dt, 1);
                assert_eq!(smp.x % 100, 0);
                assert!(smp.t < 14 * 1_440);
                // Position is an actual tower.
                assert!(s
                    .towers
                    .towers()
                    .iter()
                    .any(|t| t.x == smp.x && t.y == smp.y));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(25);
        let b = small(25);
        for (fa, fb) in a.dataset.fingerprints.iter().zip(&b.dataset.fingerprints) {
            assert_eq!(fa.samples(), fb.samples());
        }
    }

    #[test]
    fn radius_of_gyration_matches_paper_bands() {
        // §7.3: median rog ~ 1.8–2 km, mean ~ 10–12 km. Accept generous
        // bands — the claim is structural (local median, heavy-tailed mean).
        let s = small(250);
        let mut rogs: Vec<f64> = s
            .dataset
            .fingerprints
            .iter()
            .map(|fp| {
                let pts: Vec<(f64, f64)> = fp
                    .samples()
                    .iter()
                    .map(|smp| (smp.x as f64, smp.y as f64))
                    .collect();
                radius_of_gyration(&pts).unwrap()
            })
            .collect();
        rogs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = rogs[rogs.len() / 2];
        let mean = rogs.iter().sum::<f64>() / rogs.len() as f64;
        assert!(
            (600.0..6_000.0).contains(&median),
            "median rog {median} m outside the paper-like band"
        );
        assert!(
            (3_000.0..30_000.0).contains(&mean),
            "mean rog {mean} m outside the paper-like band"
        );
        assert!(mean > 2.0 * median, "rog distribution must be heavy-tailed");
    }

    #[test]
    fn fingerprints_are_unique_at_native_granularity() {
        // The paper's baseline fact (Fig. 3a): no subscriber is 2-anonymous
        // in the original data. With towers + minute timestamps, identical
        // fingerprints would require identical event histories.
        let s = small(60);
        let cfg = glove_core::StretchConfig::default();
        let gaps = glove_core::kgap::kgap_all(&s.dataset, 2, 0, &cfg);
        assert!(
            gaps.iter().all(|&g| g > 0.0),
            "some users are already 2-anonymous — synthetic data too regular"
        );
    }

    #[test]
    fn sen_like_preset_generates() {
        let mut cfg = ScenarioConfig::sen_like(20);
        cfg.num_towers = 300;
        let s = generate(&cfg);
        assert_eq!(s.dataset.fingerprints.len(), 20);
        assert_eq!(s.dataset.name, "sen-like");
    }

    #[test]
    fn metro_like_preset_generates_dense_compact_region() {
        let mut cfg = ScenarioConfig::metro_like(30);
        cfg.num_towers = 250;
        let s = generate(&cfg);
        assert_eq!(s.dataset.fingerprints.len(), 30);
        assert_eq!(s.dataset.name, "metro-like");
        // Everything fits inside the 70 km metro square.
        for fp in &s.dataset.fingerprints {
            for smp in fp.samples() {
                assert!((0..=70_000).contains(&smp.x), "x = {} outside metro", smp.x);
                assert!((0..=70_000).contains(&smp.y), "y = {} outside metro", smp.y);
            }
        }
        // Lighter fingerprints than the nation-wide presets: screening
        // floor is 14 samples, the median stays laptop-friendly.
        let mut lens: Vec<usize> = s.dataset.fingerprints.iter().map(|f| f.len()).collect();
        lens.sort_unstable();
        assert!(lens[0] >= 14, "screening floor violated");
        assert!(lens[lens.len() / 2] < 120, "metro fingerprints too dense");
    }
}
