//! An event-iterator view of a scenario: the same synthetic CDR process as
//! [`crate::generate`], delivered as a single time-ordered stream of
//! [`StreamEvent`]s instead of a materialized [`glove_core::Dataset`].
//!
//! This is the generator-side half of the streaming pipeline: the batch
//! path builds every fingerprint up front (O(dataset) resident memory in
//! `Sample`-sized records plus `Fingerprint`/`Dataset` structure), while
//! [`ScenarioEvents`] keeps only compact per-user cursors — the pending
//! event *minutes* (4 bytes each), the itinerary blocks and a mid-stream
//! RNG — and synthesizes each 40-byte sample lazily at its emission minute.
//! Feeding `glove stream` (or a [`glove_core::stream::StreamEngine`])
//! directly from this iterator keeps the whole synth→anonymize pipeline's
//! resident sample count bounded by the window population.
//!
//! The two paths cannot drift: both are built from the same
//! `spawn_user`/`synth_sample` helpers in [`crate::scenario`], and the
//! equivalence is pinned by tests (`stream_matches_generated_dataset`).

use crate::scenario::{
    deploy_towers, min_events, screening_guard, spawn_user, ScenarioConfig, ScenarioError,
};
use crate::towers::TowerNetwork;
use crate::workloads::Cohort;
use glove_core::stream::StreamEvent;
use glove_core::UserId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::scenario::synth_sample;
use crate::scenario::UserGen;

/// Time-ordered iterator over every event of a scenario.
///
/// Events are ordered by `(minute, user id)` — the same canonical order
/// [`glove_core::stream::events_of`] produces from a materialized dataset —
/// so the stream can be consumed by a
/// [`glove_core::stream::StreamEngine`] as-is. Device-churn scenarios
/// route each event to the person's primary or secondary id exactly like
/// the batch generator (secondary ids allocated past `num_users` in
/// person-acceptance order).
///
/// ```
/// use glove_synth::{ScenarioConfig, ScenarioEvents};
///
/// let mut cfg = ScenarioConfig::civ_like(5);
/// cfg.num_towers = 150;
/// let events: Vec<_> = ScenarioEvents::new(&cfg).collect();
/// assert!(events.windows(2).all(|w| w[0].sample.t <= w[1].sample.t));
/// ```
pub struct ScenarioEvents {
    cfg: ScenarioConfig,
    towers: TowerNetwork,
    users: Vec<UserCursor>,
    /// Min-heap of `(next event minute, emitted user id, person index)` —
    /// one entry per person with events remaining. Minutes are unique per
    /// person and ids unique per (person, route), so ordering by
    /// `(minute, id)` is total.
    heap: BinaryHeap<Reverse<(u32, UserId, u32)>>,
    screened_out: usize,
    /// Ground-truth cohort per emitted user id (primaries then split
    /// secondaries), matching [`crate::SynthDataset::cohorts`].
    cohorts: Vec<Cohort>,
}

/// One person's generation state plus its emission position.
struct UserCursor {
    gen: UserGen,
    /// Index of the next minute to synthesize.
    next: usize,
    /// Secondary user id, for persons with a split churn plan.
    secondary: Option<UserId>,
}

impl UserCursor {
    /// The id the event at minute `t` is logged under.
    fn emit_id(&self, person: u32, t: u32) -> UserId {
        match self.secondary {
            Some(sec) if self.gen.churn.routes_secondary(t) => sec,
            _ => person as UserId,
        }
    }
}

impl ScenarioEvents {
    /// Builds the event view of a scenario. Screening and per-user streams
    /// are identical to [`crate::generate`] (deterministic per seed).
    ///
    /// # Panics
    /// Panics with the [`ScenarioError`] message on a degenerate
    /// configuration (use [`Self::try_new`] for a `Result`), and on a
    /// pathologically low screening acceptance rate, exactly like
    /// [`crate::generate`].
    pub fn new(cfg: &ScenarioConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(events) => events,
            Err(e) => panic!("invalid scenario configuration: {e}"),
        }
    }

    /// [`Self::new`] with the degenerate-configuration panic lifted into a
    /// typed [`ScenarioError`].
    pub fn try_new(cfg: &ScenarioConfig) -> Result<Self, ScenarioError> {
        cfg.validate()?;
        let towers = deploy_towers(cfg);
        let mut users = Vec::with_capacity(cfg.num_users);
        let mut screened_out = 0usize;
        let mut candidate = 0u64;
        while users.len() < cfg.num_users {
            screening_guard(cfg, candidate, screened_out);
            match spawn_user(cfg, candidate) {
                Some(gen) => users.push(UserCursor {
                    gen,
                    next: 0,
                    secondary: None,
                }),
                None => screened_out += 1,
            }
            candidate += 1;
        }
        // Secondary churn ids: past num_users, in person-acceptance order —
        // the identical allocation the batch generator performs.
        let mut cohorts: Vec<Cohort> = users.iter().map(|c| c.gen.cohort).collect();
        let mut next_secondary = cfg.num_users as UserId;
        for cursor in users.iter_mut() {
            if cursor.gen.churn.is_split() {
                cursor.secondary = Some(next_secondary);
                cohorts.push(cursor.gen.cohort);
                next_secondary += 1;
            }
        }
        let mut heap = BinaryHeap::with_capacity(users.len());
        for (person, cursor) in users.iter().enumerate() {
            // Screening guarantees at least `min_events` minutes per user.
            debug_assert!(cursor.gen.minutes.len() >= min_events(cfg));
            let t0 = cursor.gen.minutes[0];
            heap.push(Reverse((
                t0,
                cursor.emit_id(person as u32, t0),
                person as u32,
            )));
        }
        Ok(Self {
            cfg: cfg.clone(),
            towers,
            users,
            heap,
            screened_out,
            cohorts,
        })
    }

    /// Candidates rejected by the activity screening before `num_users`
    /// accepted candidates were found (matches
    /// [`crate::SynthDataset::screened_out`]).
    pub fn screened_out(&self) -> usize {
        self.screened_out
    }

    /// The deployed tower network (identical to the batch path's).
    pub fn towers(&self) -> &TowerNetwork {
        &self.towers
    }

    /// Ground-truth cohort per emitted user id — primaries `0..num_users`,
    /// then churn secondaries — matching
    /// [`crate::SynthDataset::cohorts`].
    pub fn cohorts(&self) -> &[Cohort] {
        &self.cohorts
    }

    /// Total user ids this stream emits (persons plus churn secondaries).
    pub fn num_user_ids(&self) -> usize {
        self.cohorts.len()
    }

    /// Events not yet emitted.
    pub fn remaining(&self) -> usize {
        self.users
            .iter()
            .map(|c| c.gen.minutes.len() - c.next)
            .sum()
    }
}

impl Iterator for ScenarioEvents {
    type Item = StreamEvent;

    fn next(&mut self) -> Option<StreamEvent> {
        let Reverse((t, user, person)) = self.heap.pop()?;
        let cursor = &mut self.users[person as usize];
        let sample = synth_sample(
            &self.cfg,
            &self.towers,
            &cursor.gen.itinerary,
            &mut cursor.gen.rng,
            t,
        );
        cursor.next += 1;
        if let Some(&next_t) = cursor.gen.minutes.get(cursor.next) {
            let id = cursor.emit_id(person, next_t);
            self.heap.push(Reverse((next_t, id, person)));
        }
        Some(StreamEvent { user, sample })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::generate;
    use std::collections::BTreeMap;

    fn small_cfg(n: usize) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::civ_like(n);
        cfg.num_towers = 200;
        cfg
    }

    #[test]
    fn stream_matches_generated_dataset() {
        // The anchor: grouping the event stream by user must reproduce the
        // batch generator's fingerprints sample for sample.
        let cfg = small_cfg(20);
        let batch = generate(&cfg);
        let stream = ScenarioEvents::new(&cfg);
        assert_eq!(stream.screened_out(), batch.screened_out);

        let mut per_user: BTreeMap<UserId, Vec<glove_core::Sample>> = BTreeMap::new();
        for e in stream {
            per_user.entry(e.user).or_default().push(e.sample);
        }
        assert_eq!(per_user.len(), batch.dataset.fingerprints.len());
        for (user, samples) in per_user {
            let fp = &batch.dataset.fingerprints[user as usize];
            assert_eq!(fp.users(), &[user]);
            assert_eq!(
                fp.samples(),
                &samples[..],
                "event stream diverged from the batch generator for user {user}"
            );
        }
    }

    #[test]
    fn stream_is_globally_time_ordered() {
        let cfg = small_cfg(12);
        let events: Vec<StreamEvent> = ScenarioEvents::new(&cfg).collect();
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(
                (w[0].sample.t, w[0].user) < (w[1].sample.t, w[1].user)
                    || w[0].sample.t < w[1].sample.t,
                "events out of (t, user) order"
            );
        }
    }

    #[test]
    fn size_hint_tracks_remaining() {
        let cfg = small_cfg(6);
        let mut stream = ScenarioEvents::new(&cfg);
        let (lo, hi) = stream.size_hint();
        assert_eq!(Some(lo), hi);
        let total = lo;
        let consumed = 10.min(total);
        for _ in 0..consumed {
            stream.next().unwrap();
        }
        assert_eq!(stream.remaining(), total - consumed);
    }

    #[test]
    fn stream_is_deterministic() {
        let cfg = small_cfg(8);
        let a: Vec<StreamEvent> = ScenarioEvents::new(&cfg).collect();
        let b: Vec<StreamEvent> = ScenarioEvents::new(&cfg).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn every_preset_streams_byte_identical_to_batch() {
        // The parity anchor over the whole preset surface, including the
        // workload scenarios: churn id routing, corridor overlays and
        // long-tail cohorts must all reproduce the batch fingerprints.
        for &name in crate::scenario::PRESETS {
            let mut cfg = ScenarioConfig::preset(name, 24).expect("advertised preset");
            cfg.num_towers = cfg.num_towers.min(250);
            let batch = generate(&cfg);
            let stream = ScenarioEvents::try_new(&cfg).expect("presets validate");
            assert_eq!(stream.cohorts(), &batch.cohorts[..], "cohorts for {name}");
            assert_eq!(
                stream.num_user_ids(),
                batch.dataset.fingerprints.len(),
                "user-id count for {name}"
            );

            let mut per_user: BTreeMap<UserId, Vec<glove_core::Sample>> = BTreeMap::new();
            for e in stream {
                per_user.entry(e.user).or_default().push(e.sample);
            }
            assert_eq!(
                per_user.len(),
                batch.dataset.fingerprints.len(),
                "id population for {name}"
            );
            for (user, samples) in per_user {
                let fp = &batch.dataset.fingerprints[user as usize];
                assert_eq!(fp.users(), &[user]);
                assert_eq!(
                    fp.samples(),
                    &samples[..],
                    "preset {name} diverged from batch for user {user}"
                );
            }
        }
    }

    #[test]
    fn churn_streams_emit_ids_past_num_users() {
        let mut cfg = ScenarioConfig::churn_like(30);
        cfg.num_towers = 250;
        let stream = ScenarioEvents::new(&cfg);
        let ids = stream.num_user_ids();
        assert!(
            ids > cfg.num_users,
            "churn preset produced no secondary ids ({ids} ids for {} persons)",
            cfg.num_users
        );
        let max_id = ScenarioEvents::new(&cfg)
            .map(|e| e.user)
            .max()
            .expect("events");
        assert_eq!(max_id as usize, ids - 1);
    }

    #[test]
    fn try_new_surfaces_validation_errors() {
        let mut cfg = small_cfg(4);
        cfg.num_users = 0;
        assert!(matches!(
            ScenarioEvents::try_new(&cfg),
            Err(ScenarioError::NoUsers)
        ));
    }
}
