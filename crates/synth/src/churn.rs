//! Device churn: subscribers whose samples split across user ids.
//!
//! Real CDR horizons contain identities that are not 1:1 with people: SIM
//! swaps move a person to a fresh subscriber id mid-horizon, and dual-SIM
//! devices interleave two ids over the whole span. Both inflate the id
//! population with *correlated* fingerprints — exactly the structure
//! cross-epoch linkage adversaries exploit — while halving per-id history,
//! which stresses the k-anonymization screening assumptions.
//!
//! The plan for each person is drawn once at spawn time from their final
//! event minutes (`plan_churn`), so the batch generator and the
//! [`crate::events::ScenarioEvents`] iterator route every event to the same
//! id. Secondary ids are allocated past `num_users` in person-acceptance
//! order on both paths, keeping them byte-identical.

use crate::mobility::DAY_MIN;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Fractions of the population whose samples split across two user ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceChurn {
    /// Fraction of users who swap SIMs mid-horizon: every event from the
    /// swap minute (their median event minute) onward is logged under a
    /// fresh user id.
    pub sim_swap: f64,
    /// Fraction of users carrying two SIMs: weekday 08:00–18:00 events go
    /// to the second (work) SIM for the whole span.
    pub dual_sim: f64,
}

/// The churn decision for one person, fixed at spawn time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChurnPlan {
    /// All events stay on the primary id.
    None,
    /// Events at `t >= at_min` move to the secondary id.
    SimSwap {
        /// The swap minute.
        at_min: u32,
    },
    /// Weekday work-hour events move to the secondary (work) SIM.
    DualSim,
}

impl ChurnPlan {
    /// Whether this person materializes as two user ids.
    pub(crate) fn is_split(self) -> bool {
        !matches!(self, ChurnPlan::None)
    }

    /// Whether the event at minute `t` is logged under the secondary id.
    pub(crate) fn routes_secondary(self, t: u32) -> bool {
        match self {
            ChurnPlan::None => false,
            ChurnPlan::SimSwap { at_min } => t >= at_min,
            ChurnPlan::DualSim => {
                let day = t / DAY_MIN;
                let minute = t % DAY_MIN;
                day % 7 < 5 && (8 * 60..18 * 60).contains(&minute)
            }
        }
    }
}

/// Draws the churn plan of one person from their final (post-workload)
/// event minutes. Exactly one uniform draw is consumed regardless of the
/// outcome. Degrades to [`ChurnPlan::None`] when either identity would end
/// up without events, so split persons always materialize as two non-empty
/// fingerprints.
pub(crate) fn plan_churn(churn: &DeviceChurn, minutes: &[u32], rng: &mut StdRng) -> ChurnPlan {
    let u: f64 = rng.gen_range(0.0..1.0);
    let plan = if u < churn.sim_swap {
        ChurnPlan::SimSwap {
            at_min: minutes[minutes.len() / 2],
        }
    } else if u < churn.sim_swap + churn.dual_sim {
        ChurnPlan::DualSim
    } else {
        return ChurnPlan::None;
    };
    let secondary = minutes
        .iter()
        .filter(|&&t| plan.routes_secondary(t))
        .count();
    if secondary == 0 || secondary == minutes.len() {
        ChurnPlan::None
    } else {
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sim_swap_partitions_at_the_median_minute() {
        let minutes: Vec<u32> = (0..100).map(|i| i * 37).collect();
        let churn = DeviceChurn {
            sim_swap: 1.0,
            dual_sim: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let plan = plan_churn(&churn, &minutes, &mut rng);
        let ChurnPlan::SimSwap { at_min } = plan else {
            panic!("sim_swap = 1.0 must always swap, got {plan:?}");
        };
        assert_eq!(at_min, minutes[50]);
        let secondary = minutes
            .iter()
            .filter(|&&t| plan.routes_secondary(t))
            .count();
        assert_eq!(secondary, 50);
    }

    #[test]
    fn dual_sim_routes_weekday_work_hours() {
        let plan = ChurnPlan::DualSim;
        // Monday 09:00 → work SIM; Monday 19:00 → personal; Saturday 09:00
        // (day 5) → personal.
        assert!(plan.routes_secondary(9 * 60));
        assert!(!plan.routes_secondary(19 * 60));
        assert!(!plan.routes_secondary(5 * DAY_MIN + 9 * 60));
    }

    #[test]
    fn degenerate_partitions_degrade_to_no_churn() {
        // All minutes inside work hours: a dual-SIM split would leave the
        // primary id empty, so the plan degrades.
        let minutes: Vec<u32> = (9 * 60..10 * 60).collect();
        let churn = DeviceChurn {
            sim_swap: 0.0,
            dual_sim: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(plan_churn(&churn, &minutes, &mut rng), ChurnPlan::None);
    }

    #[test]
    fn draw_count_is_outcome_independent() {
        // Whatever the plan, exactly one uniform must be consumed, so the
        // downstream per-user stream stays aligned.
        let minutes: Vec<u32> = (0..60).map(|i| i * 53).collect();
        let probe = |churn: DeviceChurn| {
            let mut rng = StdRng::seed_from_u64(7);
            let _ = plan_churn(&churn, &minutes, &mut rng);
            rng.gen_range(0.0..1.0f64)
        };
        let a = probe(DeviceChurn {
            sim_swap: 1.0,
            dual_sim: 0.0,
        });
        let b = probe(DeviceChurn {
            sim_swap: 0.0,
            dual_sim: 0.0,
        });
        assert_eq!(a, b, "plan_churn consumed a different number of draws");
    }
}
