//! Country geometry: a rectangular projected region with
//! population-weighted cities.
//!
//! The two presets loosely mirror the geography of the paper's datasets
//! (§3): a large coastal metropolis holding a substantial share of the
//! subscriber population (Abidjan / Dakar), a handful of secondary cities
//! with Zipf-decaying weights, and a rural remainder. Coordinates are in
//! meters on the LAEA plane with the origin at the country's south-west
//! corner (everything non-negative, ready for the 100 m grid).

/// A city: an attraction pole for homes, workplaces and towers.
#[derive(Debug, Clone)]
pub struct City {
    /// Name (used by [`crate::city_subset`] and Table 2's city columns).
    pub name: String,
    /// City centre, meters (projected plane).
    pub center: (f64, f64),
    /// Share of the subscriber population living in this city (the rural
    /// remainder is `1 − Σ weights`).
    pub weight: f64,
    /// Spatial scale of the city (standard deviation of the tower/home
    /// scatter around the centre), meters.
    pub sigma_m: f64,
}

/// An inter-city travel corridor: an ordered polyline route joining two
/// cities, optionally through intermediate waypoints. Tower deployment
/// chains roadside cells along corridors, and the corridor-travel workload
/// ([`crate::workloads::WorkloadConfig::corridor`]) schedules round trips
/// over them.
#[derive(Debug, Clone, PartialEq)]
pub struct Corridor {
    /// Index of the origin city in [`Country::cities`].
    pub a: usize,
    /// Index of the destination city in [`Country::cities`].
    pub b: usize,
    /// Intermediate waypoints between the two city centres, meters.
    pub via: Vec<(f64, f64)>,
}

impl Corridor {
    /// The corridor polyline: origin centre, via points, destination centre.
    pub fn waypoints(&self, country: &Country) -> Vec<(f64, f64)> {
        let mut pts = Vec::with_capacity(self.via.len() + 2);
        pts.push(country.cities[self.a].center);
        pts.extend(self.via.iter().copied());
        pts.push(country.cities[self.b].center);
        pts
    }

    /// Total polyline length, meters.
    pub fn length_m(&self, country: &Country) -> f64 {
        self.waypoints(country)
            .windows(2)
            .map(|w| ((w[1].0 - w[0].0).powi(2) + (w[1].1 - w[0].1).powi(2)).sqrt())
            .sum()
    }
}

/// A rectangular country on the projected plane.
#[derive(Debug, Clone)]
pub struct Country {
    /// Country name.
    pub name: String,
    /// Extent along x, meters.
    pub width_m: f64,
    /// Extent along y, meters.
    pub height_m: f64,
    /// The cities, ordered by decreasing weight.
    pub cities: Vec<City>,
    /// Inter-city travel corridors (empty for the classic presets; tower
    /// deployment and travel workloads activate only when present).
    pub corridors: Vec<Corridor>,
}

impl Country {
    /// Validates the geometry: positive extent, city weights in (0, 1) with
    /// sum < 1 (the remainder is rural), centres inside the country.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.width_m > 0.0 && self.height_m > 0.0) {
            return Err("country extent must be positive".into());
        }
        if self.cities.is_empty() {
            return Err("a country needs at least one city".into());
        }
        let mut total = 0.0;
        for c in &self.cities {
            if !(c.weight > 0.0 && c.weight < 1.0) {
                return Err(format!(
                    "city {} has weight {} outside (0,1)",
                    c.name, c.weight
                ));
            }
            // NaN must be rejected too, hence not `c.sigma_m <= 0.0`.
            if !(c.sigma_m > 0.0 && c.sigma_m.is_finite()) {
                return Err(format!("city {} has non-positive sigma", c.name));
            }
            if c.center.0 < 0.0
                || c.center.0 > self.width_m
                || c.center.1 < 0.0
                || c.center.1 > self.height_m
            {
                return Err(format!("city {} centre outside the country", c.name));
            }
            total += c.weight;
        }
        if total >= 1.0 {
            return Err(format!("city weights sum to {total} >= 1"));
        }
        for (i, corridor) in self.corridors.iter().enumerate() {
            if corridor.a >= self.cities.len() || corridor.b >= self.cities.len() {
                return Err(format!("corridor {i} references a city out of range"));
            }
            if corridor.a == corridor.b {
                return Err(format!("corridor {i} must join two distinct cities"));
            }
            for &(x, y) in &corridor.via {
                if !(0.0..=self.width_m).contains(&x) || !(0.0..=self.height_m).contains(&y) {
                    return Err(format!("corridor {i} has a waypoint outside the country"));
                }
            }
        }
        Ok(())
    }

    /// The population share not attached to any city (rural).
    pub fn rural_weight(&self) -> f64 {
        1.0 - self.cities.iter().map(|c| c.weight).sum::<f64>()
    }

    /// The largest (first) city.
    pub fn primary_city(&self) -> &City {
        &self.cities[0]
    }

    /// Looks a city up by name (case-sensitive).
    pub fn city(&self, name: &str) -> Option<&City> {
        self.cities.iter().find(|c| c.name == name)
    }

    /// Clamps a point into the country rectangle.
    pub fn clamp(&self, x: f64, y: f64) -> (f64, f64) {
        (x.clamp(0.0, self.width_m), y.clamp(0.0, self.height_m))
    }

    /// Ivory-Coast-like geometry: ~650 × 700 km, a dominant coastal
    /// metropolis ("abidjan") in the south-east, secondary cities inland.
    pub fn civ_like() -> Self {
        let country = Self {
            name: "civ-like".into(),
            width_m: 650_000.0,
            height_m: 700_000.0,
            cities: vec![
                City {
                    name: "abidjan".into(),
                    center: (480_000.0, 80_000.0),
                    weight: 0.34,
                    sigma_m: 9_000.0,
                },
                City {
                    name: "bouake".into(),
                    center: (330_000.0, 390_000.0),
                    weight: 0.10,
                    sigma_m: 5_000.0,
                },
                City {
                    name: "daloa".into(),
                    center: (180_000.0, 330_000.0),
                    weight: 0.06,
                    sigma_m: 4_000.0,
                },
                City {
                    name: "korhogo".into(),
                    center: (310_000.0, 610_000.0),
                    weight: 0.05,
                    sigma_m: 3_500.0,
                },
                City {
                    name: "san-pedro".into(),
                    center: (170_000.0, 60_000.0),
                    weight: 0.05,
                    sigma_m: 3_500.0,
                },
                City {
                    name: "yamoussoukro".into(),
                    center: (310_000.0, 290_000.0),
                    weight: 0.05,
                    sigma_m: 3_500.0,
                },
                City {
                    name: "man".into(),
                    center: (80_000.0, 360_000.0),
                    weight: 0.04,
                    sigma_m: 3_000.0,
                },
                City {
                    name: "abengourou".into(),
                    center: (540_000.0, 280_000.0),
                    weight: 0.03,
                    sigma_m: 2_500.0,
                },
            ],
            corridors: vec![],
        };
        country.validate().expect("civ-like preset is valid");
        country
    }

    /// The civ-like geometry threaded with explicit inter-city corridors:
    /// the coast-to-north axis (abidjan → bouake → korhogo) and the coastal
    /// highway (abidjan → san-pedro). Tower deployment chains roadside
    /// cells along these routes and the corridor-travel workload schedules
    /// trips over them.
    pub fn corridor_like() -> Self {
        let mut country = Self::civ_like();
        country.name = "corridor-like".into();
        country.corridors = vec![
            // abidjan → bouake, bending through the yamoussoukro area.
            Corridor {
                a: 0,
                b: 1,
                via: vec![(400_000.0, 180_000.0), (330_000.0, 290_000.0)],
            },
            // bouake → korhogo, the northern continuation.
            Corridor {
                a: 1,
                b: 3,
                via: vec![(320_000.0, 500_000.0)],
            },
            // abidjan → san-pedro along the coast.
            Corridor {
                a: 0,
                b: 4,
                via: vec![(320_000.0, 50_000.0)],
            },
        ];
        country.validate().expect("corridor-like preset is valid");
        country
    }

    /// Mixed topology: one dense conurbation in the middle of a vast,
    /// sparsely covered rural plain dotted with small villages — the
    /// dense-core + sparse-rural regime in a single country, where a third
    /// of the population produces rural fingerprints over enormous cells
    /// while the core looks like the metro preset.
    pub fn mixed_like() -> Self {
        let country = Self {
            name: "mixed-like".into(),
            width_m: 300_000.0,
            height_m: 300_000.0,
            cities: vec![
                City {
                    name: "core".into(),
                    center: (150_000.0, 150_000.0),
                    weight: 0.52,
                    sigma_m: 5_000.0,
                },
                City {
                    name: "norte-village".into(),
                    center: (70_000.0, 245_000.0),
                    weight: 0.05,
                    sigma_m: 1_500.0,
                },
                City {
                    name: "este-village".into(),
                    center: (235_000.0, 180_000.0),
                    weight: 0.05,
                    sigma_m: 1_500.0,
                },
                City {
                    name: "sur-village".into(),
                    center: (180_000.0, 55_000.0),
                    weight: 0.04,
                    sigma_m: 1_200.0,
                },
            ],
            corridors: vec![],
        };
        country.validate().expect("mixed-like preset is valid");
        country
    }

    /// Metropolitan-area geometry: a single ~70 × 70 km conurbation — a
    /// dense core ("centro") ringed by satellite districts — rather than a
    /// whole country. This is the stand-in for one operator region at full
    /// subscriber density, the workload the sharded engine targets.
    pub fn metro_like() -> Self {
        let country = Self {
            name: "metro-like".into(),
            width_m: 70_000.0,
            height_m: 70_000.0,
            cities: vec![
                City {
                    name: "centro".into(),
                    center: (35_000.0, 35_000.0),
                    weight: 0.40,
                    sigma_m: 5_500.0,
                },
                City {
                    name: "norte".into(),
                    center: (33_000.0, 57_000.0),
                    weight: 0.12,
                    sigma_m: 3_000.0,
                },
                City {
                    name: "levante".into(),
                    center: (58_000.0, 38_000.0),
                    weight: 0.11,
                    sigma_m: 3_000.0,
                },
                City {
                    name: "sur".into(),
                    center: (37_000.0, 12_000.0),
                    weight: 0.10,
                    sigma_m: 2_800.0,
                },
                City {
                    name: "poniente".into(),
                    center: (13_000.0, 33_000.0),
                    weight: 0.09,
                    sigma_m: 2_800.0,
                },
            ],
            corridors: vec![],
        };
        country.validate().expect("metro-like preset is valid");
        country
    }

    /// Senegal-like geometry: ~700 × 580 km, a dominant metropolis
    /// ("dakar") on the far western tip, secondary cities spread east.
    pub fn sen_like() -> Self {
        let country = Self {
            name: "sen-like".into(),
            width_m: 700_000.0,
            height_m: 580_000.0,
            cities: vec![
                City {
                    name: "dakar".into(),
                    center: (40_000.0, 280_000.0),
                    weight: 0.38,
                    sigma_m: 8_000.0,
                },
                City {
                    name: "touba".into(),
                    center: (190_000.0, 310_000.0),
                    weight: 0.10,
                    sigma_m: 4_500.0,
                },
                City {
                    name: "thies".into(),
                    center: (90_000.0, 290_000.0),
                    weight: 0.07,
                    sigma_m: 4_000.0,
                },
                City {
                    name: "saint-louis".into(),
                    center: (120_000.0, 500_000.0),
                    weight: 0.05,
                    sigma_m: 3_500.0,
                },
                City {
                    name: "kaolack".into(),
                    center: (180_000.0, 200_000.0),
                    weight: 0.05,
                    sigma_m: 3_500.0,
                },
                City {
                    name: "ziguinchor".into(),
                    center: (110_000.0, 40_000.0),
                    weight: 0.04,
                    sigma_m: 3_000.0,
                },
                City {
                    name: "tambacounda".into(),
                    center: (430_000.0, 180_000.0),
                    weight: 0.03,
                    sigma_m: 2_500.0,
                },
            ],
            corridors: vec![],
        };
        country.validate().expect("sen-like preset is valid");
        country
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        Country::civ_like().validate().unwrap();
        Country::sen_like().validate().unwrap();
    }

    #[test]
    fn primary_cities_are_the_metropolises() {
        assert_eq!(Country::civ_like().primary_city().name, "abidjan");
        assert_eq!(Country::sen_like().primary_city().name, "dakar");
    }

    #[test]
    fn rural_weight_complements_cities() {
        let c = Country::civ_like();
        let total: f64 = c.cities.iter().map(|c| c.weight).sum();
        assert!((c.rural_weight() - (1.0 - total)).abs() < 1e-12);
        assert!(c.rural_weight() > 0.2, "a sizeable rural population");
    }

    #[test]
    fn city_lookup() {
        let c = Country::sen_like();
        assert!(c.city("dakar").is_some());
        assert!(c.city("atlantis").is_none());
    }

    #[test]
    fn clamp_keeps_points_inside() {
        let c = Country::civ_like();
        let (x, y) = c.clamp(-5.0, 1e9);
        assert_eq!(x, 0.0);
        assert_eq!(y, c.height_m);
    }

    #[test]
    fn corridor_and_mixed_presets_are_valid() {
        Country::corridor_like().validate().unwrap();
        Country::mixed_like().validate().unwrap();
        assert_eq!(Country::corridor_like().corridors.len(), 3);
        assert!(Country::mixed_like().rural_weight() > 0.3);
    }

    #[test]
    fn corridor_waypoints_join_city_centres() {
        let c = Country::corridor_like();
        let corridor = &c.corridors[0];
        let pts = corridor.waypoints(&c);
        assert_eq!(pts.first().copied(), Some(c.cities[corridor.a].center));
        assert_eq!(pts.last().copied(), Some(c.cities[corridor.b].center));
        assert_eq!(pts.len(), corridor.via.len() + 2);
        // abidjan–bouake is a few hundred km as drawn.
        let len = corridor.length_m(&c);
        assert!(
            (300_000.0..600_000.0).contains(&len),
            "implausible corridor length {len}"
        );
    }

    #[test]
    fn validation_catches_bad_corridors() {
        let mut c = Country::corridor_like();
        c.corridors[0].b = 99;
        assert!(c.validate().is_err(), "out-of-range city index rejected");

        let mut c = Country::corridor_like();
        c.corridors[0].b = c.corridors[0].a;
        assert!(c.validate().is_err(), "self-loop corridor rejected");

        let mut c = Country::corridor_like();
        c.corridors[0].via.push((-5.0, 0.0));
        assert!(c.validate().is_err(), "outside waypoint rejected");
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let mut c = Country::civ_like();
        c.cities[0].weight = 1.5;
        assert!(c.validate().is_err());

        let mut c = Country::civ_like();
        c.cities[0].center = (-10.0, 0.0);
        assert!(c.validate().is_err());

        let mut c = Country::civ_like();
        for city in &mut c.cities {
            city.weight = 0.2;
        }
        assert!(c.validate().is_err(), "weights summing past 1 rejected");
    }
}
