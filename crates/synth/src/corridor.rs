//! Scheduled inter-city corridor travel.
//!
//! A corridor traveller takes round trips along one of the country's
//! declared [`crate::country::Corridor`] routes: depart in the morning,
//! hand over along the corridor tower chain (one logged event per waypoint
//! arrival, so the chain actually shows up in the fingerprint), dwell at
//! the destination, and return the same way. The resulting fingerprints
//! have the long, thin spatial support that Eq. 10's stretch cost punishes
//! hardest — the regime where greedy merging either balloons cost or
//! suppresses the traveller.

use crate::country::Country;
use crate::mobility::{Itinerary, UserProfile, DAY_MIN};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Scheduled round trips along the country's travel corridors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorridorTravel {
    /// Fraction of (typical-cohort) users who travel at all.
    pub travelers: f64,
    /// Round trips per traveller over the span.
    pub trips: usize,
    /// Travel speed along the corridor, meters per minute (1 200 ≈ 72 km/h).
    pub speed_m_min: f64,
    /// Dwell time at the destination before the return leg, minutes.
    pub dwell_min: u32,
}

/// Applies corridor travel to one candidate: decides whether they travel
/// (one Bernoulli draw), then overlays each trip's block chain on the
/// itinerary and injects a logged event at every waypoint arrival.
pub(crate) fn apply_corridor(
    travel: &CorridorTravel,
    country: &Country,
    profile: &UserProfile,
    minutes: &mut Vec<u32>,
    itinerary: &mut Itinerary,
    span_min: u32,
    rng: &mut StdRng,
) {
    if country.corridors.is_empty() || !rng.gen_bool(travel.travelers) {
        return;
    }
    let span_days = span_min / DAY_MIN;
    for _ in 0..travel.trips {
        let corridor = &country.corridors[rng.gen_range(0..country.corridors.len())];
        let mut waypoints = corridor.waypoints(country);
        // Travel away from home: reverse the route when the user lives at
        // the far end; coin-flip for users attached to neither endpoint.
        let outbound_from_a = match profile.home_city {
            Some(c) if c == corridor.a => true,
            Some(c) if c == corridor.b => false,
            _ => rng.gen_bool(0.5),
        };
        if !outbound_from_a {
            waypoints.reverse();
        }
        let day = rng.gen_range(0..span_days);
        let depart = day * DAY_MIN + rng.gen_range(7 * 60..10 * 60);

        // Outbound leg, dwell, return leg: one block (and one logged
        // event) per waypoint arrival.
        let mut path: Vec<(u32, (f64, f64))> = vec![(depart, waypoints[0])];
        let mut t = depart;
        for pair in waypoints.windows(2) {
            t = t.saturating_add(leg_minutes(pair[0], pair[1], travel.speed_m_min));
            path.push((t, pair[1]));
        }
        t = t.saturating_add(travel.dwell_min.max(1));
        let mut prev = *waypoints.last().expect("corridor has waypoints");
        for &wp in waypoints.iter().rev().skip(1) {
            t = t.saturating_add(leg_minutes(prev, wp, travel.speed_m_min));
            path.push((t, wp));
            prev = wp;
        }
        let end = t.saturating_add(30).min(span_min);
        itinerary.overlay_path(&path, end);
        for &(wt, _) in &path {
            if wt < span_min {
                minutes.push(wt);
            }
        }
    }
}

/// Travel time of one corridor leg, minutes (at least 1).
fn leg_minutes(a: (f64, f64), b: (f64, f64), speed_m_min: f64) -> u32 {
    let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
    ((d / speed_m_min).ceil() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::{build_itinerary, sample_profile, MobilityConfig};
    use rand::SeedableRng;

    fn travel() -> CorridorTravel {
        CorridorTravel {
            travelers: 1.0,
            trips: 2,
            speed_m_min: 1_200.0,
            dwell_min: 240,
        }
    }

    #[test]
    fn travellers_visit_the_far_end_of_a_corridor() {
        let country = Country::corridor_like();
        let cfg = MobilityConfig::default();
        let span_days = 14;
        let mut reached = false;
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let profile = sample_profile(&country, &cfg, &mut rng);
            let mut it = build_itinerary(&profile, &country, &cfg, span_days, &mut rng);
            let home = it.position_at(0);
            let mut minutes: Vec<u32> = (0..span_days * DAY_MIN).step_by(180).collect();
            apply_corridor(
                &travel(),
                &country,
                &profile,
                &mut minutes,
                &mut it,
                span_days * DAY_MIN,
                &mut rng,
            );
            // Some block of the itinerary must now be > 100 km from home.
            reached |= it.blocks().iter().any(|&(_, (x, y))| {
                ((x - home.0).powi(2) + (y - home.1).powi(2)).sqrt() > 100_000.0
            });
        }
        assert!(reached, "no traveller ever reached a far corridor end");
    }

    #[test]
    fn corridor_trips_keep_itinerary_invariants() {
        let country = Country::corridor_like();
        let cfg = MobilityConfig::default();
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let profile = sample_profile(&country, &cfg, &mut rng);
            let mut it = build_itinerary(&profile, &country, &cfg, 14, &mut rng);
            let mut minutes = vec![10, 2_000, 9_000];
            apply_corridor(
                &travel(),
                &country,
                &profile,
                &mut minutes,
                &mut it,
                14 * DAY_MIN,
                &mut rng,
            );
            for w in it.blocks().windows(2) {
                assert!(w[0].0 < w[1].0, "block starts not strictly increasing");
            }
            assert!(minutes.iter().all(|&t| t < 14 * DAY_MIN));
        }
    }

    #[test]
    fn non_travellers_consume_one_draw_and_change_nothing() {
        let country = Country::corridor_like();
        let cfg = MobilityConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let profile = sample_profile(&country, &cfg, &mut rng);
        let it0 = build_itinerary(&profile, &country, &cfg, 7, &mut rng);
        let mut it = it0.clone();
        let mut minutes = vec![100, 200];
        let none = CorridorTravel {
            travelers: 0.0,
            ..travel()
        };
        apply_corridor(
            &none,
            &country,
            &profile,
            &mut minutes,
            &mut it,
            7 * DAY_MIN,
            &mut rng,
        );
        assert_eq!(it.blocks(), it0.blocks());
        assert_eq!(minutes, vec![100, 200]);
    }
}
