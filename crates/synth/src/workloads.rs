//! Composable scenario workloads: adversarial mobility layered on the base
//! commuter model.
//!
//! The paper's evaluation datasets are commuter-dominated — the regime
//! where greedy generalization looks best. This module injects the mobility
//! it never saw: crowd surges ([`FlashCrowd`]), scheduled inter-city travel
//! ([`crate::corridor::CorridorTravel`]), identity churn
//! ([`crate::churn::DeviceChurn`]) and ground-truth-labelled long-tail
//! outliers ([`LongTailMix`] → [`Cohort`]). Workloads are declared on
//! [`crate::ScenarioConfig::workloads`] and compose freely in one dataset.
//!
//! Composition rules (fixed, so results are reproducible):
//!
//! 1. the long-tail cohort is assigned first and transforms the user's
//!    minutes/itinerary;
//! 2. corridor travel and flash crowds reshape only [`Cohort::Typical`]
//!    users — long-tail users keep their ground-truth profile undiluted;
//! 3. device churn is planned last, from the final event minutes, and
//!    applies to every cohort (a night-shift worker can still swap SIMs).
//!
//! All randomness comes from the per-candidate RNG in a fixed draw order,
//! and an empty [`WorkloadConfig`] consumes **zero** draws — legacy presets
//! stay byte-identical. The batch generator and the event-iterator path
//! share this code via `spawn_user`, preserving the parity invariant.

use crate::churn::{plan_churn, ChurnPlan, DeviceChurn};
use crate::corridor::{apply_corridor, CorridorTravel};
use crate::country::Country;
use crate::mobility::{Itinerary, UserProfile, DAY_MIN};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Ground-truth mobility cohort of a synthetic subscriber. Long-tail
/// cohorts are the adversarially atypical profiles that fingerprinting
/// classifiers single out; [`crate::SynthDataset::cohorts`] carries the
/// label per user id so attacks can be scored on them specifically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cohort {
    /// Baseline commuter mobility.
    Typical,
    /// Diurnal pattern shifted by 12 h: active and at work at night.
    NightShift,
    /// No stable anchors: relocates to a uniformly random position every
    /// few hours, country-wide.
    HyperMobile,
    /// Never leaves the home cell.
    Sedentary,
}

impl Cohort {
    /// Whether this cohort belongs to the adversarial long tail.
    pub fn is_long_tail(self) -> bool {
        !matches!(self, Cohort::Typical)
    }

    /// Stable lowercase label (used in CSV/JSON artifacts).
    pub fn label(self) -> &'static str {
        match self {
            Cohort::Typical => "typical",
            Cohort::NightShift => "night-shift",
            Cohort::HyperMobile => "hyper-mobile",
            Cohort::Sedentary => "sedentary",
        }
    }
}

/// A bounded-window crowd surge: a fraction of the population converges on
/// one venue block for a few hours, produces extra traffic there, then
/// disperses back to their routines.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashCrowd {
    /// Venue centre, meters (`None` → the primary city's centre).
    pub venue: Option<(f64, f64)>,
    /// Gaussian scatter of attendees around the venue centre, meters.
    pub scatter_m: f64,
    /// Surge start, minutes from the span origin.
    pub start_min: u32,
    /// Surge duration, minutes.
    pub duration_min: u32,
    /// Fraction of (typical-cohort) users attending.
    pub attendance: f64,
    /// Extra logged events per attendee inside the window (photos, calls,
    /// "where are you" texts).
    pub extra_events: usize,
}

/// Fractions of the population assigned to each long-tail cohort (the
/// remainder stays [`Cohort::Typical`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongTailMix {
    /// Fraction of night-shift workers.
    pub night_shift: f64,
    /// Fraction of hyper-mobile users.
    pub hyper_mobile: f64,
    /// Fraction of single-cell sedentary users.
    pub sedentary: f64,
}

/// The workload stack of a scenario. `Default` is empty: no extra draws,
/// byte-identical to the pre-workload generator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadConfig {
    /// Crowd surges (applied in order).
    pub flash_crowds: Vec<FlashCrowd>,
    /// Scheduled inter-city travel (requires [`Country::corridors`]).
    pub corridor: Option<CorridorTravel>,
    /// SIM-swap / dual-SIM identity churn.
    pub churn: Option<DeviceChurn>,
    /// Long-tail cohort injection.
    pub long_tail: Option<LongTailMix>,
}

impl WorkloadConfig {
    /// Whether the stack is empty (no transform, zero RNG draws).
    pub fn is_empty(&self) -> bool {
        self.flash_crowds.is_empty()
            && self.corridor.is_none()
            && self.churn.is_none()
            && self.long_tail.is_none()
    }

    /// Validates the stack against the scenario geometry and span.
    pub(crate) fn validate(&self, country: &Country, span_days: u32) -> Result<(), String> {
        let span_min = span_days * DAY_MIN;
        let prob = |field: &str, v: f64| {
            if v.is_finite() && (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{field} = {v} is not a probability"))
            }
        };
        for (i, crowd) in self.flash_crowds.iter().enumerate() {
            prob(&format!("flash_crowds[{i}].attendance"), crowd.attendance)?;
            if !(crowd.scatter_m >= 0.0 && crowd.scatter_m.is_finite()) {
                return Err(format!(
                    "flash_crowds[{i}].scatter_m must be finite and >= 0"
                ));
            }
            if crowd.duration_min == 0 {
                return Err(format!("flash_crowds[{i}].duration_min must be positive"));
            }
            if crowd.start_min >= span_min {
                return Err(format!(
                    "flash_crowds[{i}].start_min = {} is past the {span_min}-minute span",
                    crowd.start_min
                ));
            }
            if let Some((x, y)) = crowd.venue {
                if !(0.0..=country.width_m).contains(&x) || !(0.0..=country.height_m).contains(&y) {
                    return Err(format!("flash_crowds[{i}].venue is outside the country"));
                }
            }
        }
        if let Some(travel) = &self.corridor {
            if country.corridors.is_empty() {
                return Err(
                    "corridor travel configured but the country declares no corridors".to_string(),
                );
            }
            prob("corridor.travelers", travel.travelers)?;
            if travel.trips == 0 {
                return Err("corridor.trips must be positive".to_string());
            }
            if !(travel.speed_m_min > 0.0 && travel.speed_m_min.is_finite()) {
                return Err("corridor.speed_m_min must be finite and positive".to_string());
            }
        }
        if let Some(churn) = &self.churn {
            prob("churn.sim_swap", churn.sim_swap)?;
            prob("churn.dual_sim", churn.dual_sim)?;
            if churn.sim_swap + churn.dual_sim > 1.0 {
                return Err("churn fractions sum past 1".to_string());
            }
        }
        if let Some(mix) = &self.long_tail {
            prob("long_tail.night_shift", mix.night_shift)?;
            prob("long_tail.hyper_mobile", mix.hyper_mobile)?;
            prob("long_tail.sedentary", mix.sedentary)?;
            if mix.night_shift + mix.hyper_mobile + mix.sedentary > 1.0 {
                return Err("long-tail fractions sum past 1".to_string());
            }
        }
        Ok(())
    }
}

/// Applies the workload stack to one accepted candidate, in the fixed
/// composition order documented on the module. Returns the ground-truth
/// cohort and the churn plan. Consumes zero RNG draws when the stack is
/// empty.
pub(crate) fn apply_workloads(
    w: &WorkloadConfig,
    country: &Country,
    span_days: u32,
    profile: &UserProfile,
    minutes: &mut Vec<u32>,
    itinerary: &mut Itinerary,
    rng: &mut StdRng,
) -> (Cohort, ChurnPlan) {
    if w.is_empty() {
        return (Cohort::Typical, ChurnPlan::None);
    }
    let span_min = span_days * DAY_MIN;

    // 1. Long-tail cohort assignment and transform.
    let cohort = match &w.long_tail {
        Some(mix) => assign_cohort(mix, rng),
        None => Cohort::Typical,
    };
    match cohort {
        Cohort::Typical => {}
        Cohort::NightShift => night_shift(profile, minutes, itinerary, span_days),
        Cohort::HyperMobile => hyper_mobile(country, profile, itinerary, span_min, rng),
        Cohort::Sedentary => itinerary.collapse_to(profile.home),
    }

    // 2–3. Corridor trips and crowd surges reshape only typical commuters;
    // long-tail users keep their ground-truth profile undiluted.
    if cohort == Cohort::Typical {
        if let Some(travel) = &w.corridor {
            apply_corridor(travel, country, profile, minutes, itinerary, span_min, rng);
        }
        for crowd in &w.flash_crowds {
            apply_flash_crowd(crowd, country, minutes, itinerary, span_min, rng);
        }
    }

    minutes.retain(|&t| t < span_min);
    minutes.sort_unstable();
    minutes.dedup();

    // 4. Device churn plan, from the final event minutes.
    let plan = match &w.churn {
        Some(churn) => plan_churn(churn, minutes, rng),
        None => ChurnPlan::None,
    };
    (cohort, plan)
}

/// One uniform draw → cohort, by stacked fractions.
fn assign_cohort(mix: &LongTailMix, rng: &mut StdRng) -> Cohort {
    let u: f64 = rng.gen_range(0.0..1.0);
    if u < mix.night_shift {
        Cohort::NightShift
    } else if u < mix.night_shift + mix.hyper_mobile {
        Cohort::HyperMobile
    } else if u < mix.night_shift + mix.hyper_mobile + mix.sedentary {
        Cohort::Sedentary
    } else {
        Cohort::Typical
    }
}

/// Shifts the whole diurnal pattern by 12 h: event minutes move to the
/// night half of each day (a per-day bijection, so the event count is
/// preserved), and an employed user's work block covers 22:00–06:00.
fn night_shift(
    profile: &UserProfile,
    minutes: &mut [u32],
    itinerary: &mut Itinerary,
    span_days: u32,
) {
    for t in minutes.iter_mut() {
        let day = *t / DAY_MIN;
        *t = day * DAY_MIN + (*t % DAY_MIN + 12 * 60) % DAY_MIN;
    }
    if let Some(work) = profile.work {
        for day in 0..span_days {
            let base = day * DAY_MIN;
            itinerary.overlay(base + 22 * 60, base + DAY_MIN + 6 * 60, work);
        }
    }
}

/// Replaces the anchored routine with a country-wide relocation walk: a
/// fresh uniform position every 2–6 hours, no home/work regularity.
fn hyper_mobile(
    country: &Country,
    profile: &UserProfile,
    itinerary: &mut Itinerary,
    span_min: u32,
    rng: &mut StdRng,
) {
    let mut blocks = vec![(0u32, profile.home)];
    let mut t = 0u32;
    loop {
        t += rng.gen_range(120..360);
        if t >= span_min {
            break;
        }
        blocks.push((
            t,
            (
                rng.gen_range(0.0..country.width_m),
                rng.gen_range(0.0..country.height_m),
            ),
        ));
    }
    *itinerary = Itinerary::from_blocks(blocks, span_min);
}

/// One crowd surge for one candidate: a Bernoulli attendance draw, then an
/// itinerary overlay at a per-attendee spot near the venue plus extra
/// logged events inside the window.
fn apply_flash_crowd(
    crowd: &FlashCrowd,
    country: &Country,
    minutes: &mut Vec<u32>,
    itinerary: &mut Itinerary,
    span_min: u32,
    rng: &mut StdRng,
) {
    if !rng.gen_bool(crowd.attendance) {
        return;
    }
    let center = crowd.venue.unwrap_or(country.primary_city().center);
    let spot = country.clamp(
        center.0 + normal(rng) * crowd.scatter_m,
        center.1 + normal(rng) * crowd.scatter_m,
    );
    let start = crowd.start_min.min(span_min.saturating_sub(1));
    let end = crowd
        .start_min
        .saturating_add(crowd.duration_min)
        .min(span_min);
    if end <= start {
        return;
    }
    itinerary.overlay(start, end, spot);
    for _ in 0..crowd.extra_events {
        minutes.push(rng.gen_range(start..end));
    }
}

/// Standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0f64);
    let u2: f64 = rng.gen_range(0.0..1.0f64);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::{build_itinerary, sample_profile, MobilityConfig};
    use rand::SeedableRng;

    fn candidate(seed: u64, span_days: u32) -> (UserProfile, Vec<u32>, Itinerary, StdRng) {
        let country = Country::metro_like();
        let cfg = MobilityConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = sample_profile(&country, &cfg, &mut rng);
        let it = build_itinerary(&profile, &country, &cfg, span_days, &mut rng);
        let minutes: Vec<u32> = (0..span_days * DAY_MIN).step_by(211).collect();
        (profile, minutes, it, rng)
    }

    #[test]
    fn empty_stack_consumes_zero_draws() {
        let (profile, mut minutes, mut it, mut rng) = candidate(1, 7);
        let probe_before = rng.clone().gen_range(0.0..1.0f64);
        let (cohort, plan) = apply_workloads(
            &WorkloadConfig::default(),
            &Country::metro_like(),
            7,
            &profile,
            &mut minutes,
            &mut it,
            &mut rng,
        );
        assert_eq!(cohort, Cohort::Typical);
        assert!(!plan.is_split());
        assert_eq!(
            rng.gen_range(0.0..1.0f64),
            probe_before,
            "empty workload stack must not consume RNG draws"
        );
    }

    #[test]
    fn flash_crowd_pins_attendees_to_the_venue_window() {
        let country = Country::metro_like();
        let crowd = FlashCrowd {
            venue: Some((58_000.0, 38_000.0)),
            scatter_m: 300.0,
            start_min: 2 * DAY_MIN + 19 * 60,
            duration_min: 180,
            attendance: 1.0,
            extra_events: 4,
        };
        let (_, mut minutes, mut it, mut rng) = candidate(2, 7);
        let before_len = minutes.len();
        apply_flash_crowd(
            &crowd,
            &country,
            &mut minutes,
            &mut it,
            7 * DAY_MIN,
            &mut rng,
        );
        let mid = crowd.start_min + 90;
        let (x, y) = it.position_at(mid);
        let d = ((x - 58_000.0).powi(2) + (y - 38_000.0).powi(2)).sqrt();
        assert!(
            d < 5.0 * crowd.scatter_m,
            "attendee {d:.0} m from the venue"
        );
        assert_eq!(minutes.len(), before_len + crowd.extra_events);
        assert!(minutes[before_len..]
            .iter()
            .all(|&t| (crowd.start_min..crowd.start_min + 180).contains(&t)));
    }

    #[test]
    fn night_shift_is_a_per_day_bijection_on_minutes() {
        let (profile, minutes0, mut it, _) = candidate(3, 7);
        let mut minutes = minutes0.clone();
        night_shift(&profile, &mut minutes, &mut it, 7);
        assert_eq!(minutes.len(), minutes0.len());
        let mut sorted = minutes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), minutes0.len(), "night shift collided minutes");
        for (&m, &m0) in minutes.iter().zip(&minutes0) {
            assert_eq!(m / DAY_MIN, m0 / DAY_MIN, "event moved across days");
            assert_eq!(m % DAY_MIN, (m0 % DAY_MIN + 12 * 60) % DAY_MIN);
        }
    }

    #[test]
    fn night_shift_workers_are_at_work_at_3am() {
        let mut found = 0;
        for seed in 0..40u64 {
            let (profile, mut minutes, mut it, _) = candidate(seed, 7);
            let Some(work) = profile.work else { continue };
            night_shift(&profile, &mut minutes, &mut it, 7);
            // 03:00 on days 1..6 (day 0 starts at home before the first
            // 22:00 shift) must be at work.
            for day in 1..7 {
                assert_eq!(
                    it.position_at(day * DAY_MIN + 3 * 60),
                    work,
                    "seed {seed} day {day}: night worker not at work at 3 AM"
                );
            }
            found += 1;
        }
        assert!(found > 10, "not enough employed candidates");
    }

    #[test]
    fn sedentary_users_emit_a_single_position() {
        let mix = LongTailMix {
            night_shift: 0.0,
            hyper_mobile: 0.0,
            sedentary: 1.0,
        };
        let w = WorkloadConfig {
            long_tail: Some(mix),
            ..WorkloadConfig::default()
        };
        let country = Country::metro_like();
        let (profile, mut minutes, mut it, mut rng) = candidate(4, 7);
        let (cohort, _) =
            apply_workloads(&w, &country, 7, &profile, &mut minutes, &mut it, &mut rng);
        assert_eq!(cohort, Cohort::Sedentary);
        for t in (0..7 * DAY_MIN).step_by(131) {
            assert_eq!(it.position_at(t), profile.home);
        }
    }

    #[test]
    fn hyper_mobile_users_roam_the_whole_country() {
        let country = Country::metro_like();
        let (profile, _, mut it, mut rng) = candidate(5, 14);
        hyper_mobile(&country, &profile, &mut it, 14 * DAY_MIN, &mut rng);
        assert!(it.num_blocks() > 40, "too few relocations");
        // Spread: positions span a large fraction of the country extent.
        let xs: Vec<f64> = it.blocks().iter().map(|b| b.1 .0).collect();
        let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread > 0.5 * country.width_m,
            "x spread only {spread:.0} m"
        );
    }

    #[test]
    fn cohort_fractions_roughly_match_mix() {
        let mix = LongTailMix {
            night_shift: 0.2,
            hyper_mobile: 0.1,
            sedentary: 0.3,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let n = 4_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            let i = match assign_cohort(&mix, &mut rng) {
                Cohort::NightShift => 0,
                Cohort::HyperMobile => 1,
                Cohort::Sedentary => 2,
                Cohort::Typical => 3,
            };
            counts[i] += 1;
        }
        for (count, want) in counts.iter().zip([0.2, 0.1, 0.3, 0.4]) {
            let share = *count as f64 / n as f64;
            assert!(
                (share - want).abs() < 0.03,
                "cohort share {share} vs configured {want}"
            );
        }
    }

    #[test]
    fn validation_rejects_degenerate_workloads() {
        let country = Country::metro_like();
        let ok = WorkloadConfig::default();
        assert!(ok.validate(&country, 14).is_ok());

        let bad_attendance = WorkloadConfig {
            flash_crowds: vec![FlashCrowd {
                venue: None,
                scatter_m: 100.0,
                start_min: 0,
                duration_min: 60,
                attendance: 1.5,
                extra_events: 0,
            }],
            ..WorkloadConfig::default()
        };
        assert!(bad_attendance.validate(&country, 14).is_err());

        let late_start = WorkloadConfig {
            flash_crowds: vec![FlashCrowd {
                venue: None,
                scatter_m: 100.0,
                start_min: 14 * DAY_MIN,
                duration_min: 60,
                attendance: 0.5,
                extra_events: 0,
            }],
            ..WorkloadConfig::default()
        };
        assert!(late_start.validate(&country, 14).is_err());

        let corridorless = WorkloadConfig {
            corridor: Some(CorridorTravel {
                travelers: 0.5,
                trips: 1,
                speed_m_min: 1_000.0,
                dwell_min: 60,
            }),
            ..WorkloadConfig::default()
        };
        assert!(
            corridorless.validate(&country, 14).is_err(),
            "corridor travel without country corridors rejected"
        );
        assert!(corridorless.validate(&Country::corridor_like(), 14).is_ok());

        let heavy_tail = WorkloadConfig {
            long_tail: Some(LongTailMix {
                night_shift: 0.5,
                hyper_mobile: 0.4,
                sedentary: 0.3,
            }),
            ..WorkloadConfig::default()
        };
        assert!(heavy_tail.validate(&country, 14).is_err());

        let negative_churn = WorkloadConfig {
            churn: Some(DeviceChurn {
                sim_swap: -0.1,
                dual_sim: 0.0,
            }),
            ..WorkloadConfig::default()
        };
        assert!(negative_churn.validate(&country, 14).is_err());
    }
}
