//! Anchor-based human mobility.
//!
//! Subscribers move between a small set of personally meaningful anchors —
//! home, workplace, errand spots — with strong daily and weekly routine,
//! occasional weekend trips, and rare exploratory excursions. This is the
//! structure that produces the locality statistics the paper leans on in
//! §7.3: a *median* radius of gyration around 2 km (most people live local
//! lives) with a *mean* around 10 km (a minority commutes far or travels).
//!
//! The model builds, per user, a deterministic block itinerary covering the
//! whole observation span: a list of `(start_minute, location)` activity
//! blocks. [`Itinerary::position_at`] resolves any minute to a location in
//! O(log blocks).

use crate::country::Country;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Minutes per day.
pub const DAY_MIN: u32 = 1_440;

/// Tunables of the mobility model (defaults are the calibrated values used
/// by the scenario presets).
#[derive(Debug, Clone)]
pub struct MobilityConfig {
    /// Probability that a user is employed (has a work anchor).
    pub employed_p: f64,
    /// Probability that an employed user works in their home city
    /// (otherwise they long-range commute to another city).
    pub work_same_city_p: f64,
    /// Median home–work distance for same-city commuters, meters.
    pub commute_median_m: f64,
    /// Log-normal sigma of the commute distance.
    pub commute_sigma: f64,
    /// Number of errand anchors per user (inclusive range).
    pub errands_min: usize,
    /// See `errands_min`.
    pub errands_max: usize,
    /// Maximum distance of errand anchors from home, meters.
    pub errand_radius_m: f64,
    /// Probability of a leisure trip on any weekend day.
    pub weekend_trip_p: f64,
    /// Pareto shape of trip distances (smaller = heavier tail).
    pub trip_alpha: f64,
    /// Minimum trip distance, meters.
    pub trip_min_m: f64,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        Self {
            employed_p: 0.72,
            work_same_city_p: 0.94,
            commute_median_m: 2_600.0,
            commute_sigma: 0.75,
            errands_min: 2,
            errands_max: 5,
            errand_radius_m: 3_000.0,
            weekend_trip_p: 0.18,
            trip_alpha: 1.4,
            trip_min_m: 15_000.0,
        }
    }
}

/// The static anchors of one subscriber.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// Home location, meters.
    pub home: (f64, f64),
    /// Index of the home city in `country.cities`, or `None` for rural.
    pub home_city: Option<usize>,
    /// Workplace, if employed.
    pub work: Option<(f64, f64)>,
    /// Errand anchors (markets, friends, worship, …).
    pub errands: Vec<(f64, f64)>,
}

/// Samples a user profile: home city by population weight, home position by
/// Gaussian scatter around the city centre (or uniform if rural), work and
/// errand anchors per the config.
pub fn sample_profile(country: &Country, cfg: &MobilityConfig, rng: &mut StdRng) -> UserProfile {
    // Pick home city (or rural).
    let mut pick: f64 = rng.gen_range(0.0..1.0);
    let mut home_city = None;
    for (i, city) in country.cities.iter().enumerate() {
        if pick < city.weight {
            home_city = Some(i);
            break;
        }
        pick -= city.weight;
    }

    let home = match home_city {
        Some(i) => {
            let city = &country.cities[i];
            country.clamp(
                city.center.0 + normal(rng) * city.sigma_m,
                city.center.1 + normal(rng) * city.sigma_m,
            )
        }
        None => (
            rng.gen_range(0.0..country.width_m),
            rng.gen_range(0.0..country.height_m),
        ),
    };

    // Work anchor.
    let work = if rng.gen_bool(cfg.employed_p) {
        if rng.gen_bool(cfg.work_same_city_p) || country.cities.len() < 2 {
            // Local commute: log-normal distance, random bearing from home.
            let d = cfg.commute_median_m * (normal(rng) * cfg.commute_sigma).exp();
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            Some(country.clamp(home.0 + d * theta.cos(), home.1 + d * theta.sin()))
        } else {
            // Long-range commuter: work near another city's centre.
            let other = loop {
                let i = rng.gen_range(0..country.cities.len());
                if Some(i) != home_city {
                    break i;
                }
            };
            let city = &country.cities[other];
            Some(country.clamp(
                city.center.0 + normal(rng) * city.sigma_m * 0.6,
                city.center.1 + normal(rng) * city.sigma_m * 0.6,
            ))
        }
    } else {
        None
    };

    // Errand anchors around home.
    let n_errands = rng.gen_range(cfg.errands_min..=cfg.errands_max);
    let errands = (0..n_errands)
        .map(|_| {
            let d = rng.gen_range(200.0..cfg.errand_radius_m);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            country.clamp(home.0 + d * theta.cos(), home.1 + d * theta.sin())
        })
        .collect();

    UserProfile {
        home,
        home_city,
        work,
        errands,
    }
}

/// A block itinerary: `blocks[i]` starts at `blocks[i].0` minutes and ends
/// where `blocks[i+1]` starts (the last block runs to the span end).
#[derive(Debug, Clone)]
pub struct Itinerary {
    blocks: Vec<(u32, (f64, f64))>,
    span_min: u32,
}

impl Itinerary {
    /// The location of the user at minute `t` (clamped to the span).
    pub fn position_at(&self, t: u32) -> (f64, f64) {
        let t = t.min(self.span_min.saturating_sub(1));
        let idx = self.blocks.partition_point(|&(start, _)| start <= t);
        self.blocks[idx.saturating_sub(1)].1
    }

    /// Number of activity blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total span covered, minutes.
    pub fn span_min(&self) -> u32 {
        self.span_min
    }

    /// All blocks as `(start_minute, location)` (for tests/inspection).
    pub fn blocks(&self) -> &[(u32, (f64, f64))] {
        &self.blocks
    }

    /// Overrides the window `[start, end)` with a stay at `loc`. The
    /// pre-window routine is untouched and the user resumes the position
    /// they would have held at `end`.
    pub fn overlay(&mut self, start: u32, end: u32, loc: (f64, f64)) {
        self.overlay_path(&[(start, loc)], end);
    }

    /// Overrides `[path[0].0, end)` with an explicit block sequence (starts
    /// must be non-decreasing; ties and out-of-window blocks are skipped).
    /// Blocks previously starting inside the window are dropped, and the
    /// position the user would have held at `end` is reinstated so the
    /// original routine resumes seamlessly.
    pub fn overlay_path(&mut self, path: &[(u32, (f64, f64))], end: u32) {
        let Some(&(start, _)) = path.first() else {
            return;
        };
        if start >= self.span_min || end <= start {
            return;
        }
        let end = end.min(self.span_min);
        let resume = self.position_at(end);
        self.blocks.retain(|&(s, _)| s < start || s >= end);
        let mut at = self.blocks.partition_point(|&(s, _)| s < start);
        let mut last = None;
        for &(s, loc) in path {
            if s >= end {
                break;
            }
            if last.is_some_and(|prev| s <= prev) {
                continue;
            }
            self.blocks.insert(at, (s, loc));
            at += 1;
            last = Some(s);
        }
        if end < self.span_min && !self.blocks.iter().any(|&(s, _)| s == end) {
            let i = self.blocks.partition_point(|&(s, _)| s < end);
            self.blocks.insert(i, (end, resume));
        }
    }

    /// Collapses the whole span to a single stay at `loc` (the sedentary
    /// long-tail profile).
    pub fn collapse_to(&mut self, loc: (f64, f64)) {
        self.blocks = vec![(0, loc)];
    }

    /// Builds an itinerary from explicit blocks: the first must start at
    /// minute 0 and starts must be strictly increasing.
    pub(crate) fn from_blocks(blocks: Vec<(u32, (f64, f64))>, span_min: u32) -> Self {
        debug_assert!(blocks.first().is_some_and(|b| b.0 == 0));
        debug_assert!(blocks.windows(2).all(|w| w[0].0 < w[1].0));
        Self { blocks, span_min }
    }
}

/// Builds the full-span itinerary of a user. Day 0 is a Monday; days 5 and
/// 6 of each week are the weekend.
pub fn build_itinerary(
    profile: &UserProfile,
    country: &Country,
    cfg: &MobilityConfig,
    span_days: u32,
    rng: &mut StdRng,
) -> Itinerary {
    let mut blocks: Vec<(u32, (f64, f64))> = Vec::new();
    let push = |start: u32, loc: (f64, f64), blocks: &mut Vec<(u32, (f64, f64))>| {
        // Skip zero-length / out-of-order artifacts from jittered times.
        if let Some(&(last_start, last_loc)) = blocks.last() {
            if start <= last_start {
                return;
            }
            if last_loc == loc {
                return;
            }
        }
        blocks.push((start, loc));
    };

    blocks.push((0, profile.home));
    for day in 0..span_days {
        let base = day * DAY_MIN;
        let weekday = day % 7 < 5;
        let wake = base + jitter_min(rng, 6 * 60 + 45, 40);
        let sleep = base + jitter_min(rng, 22 * 60 + 30, 50);

        if weekday {
            if let Some(work) = profile.work {
                let leave = wake + rng.gen_range(30..100);
                let work_end = base + jitter_min(rng, 17 * 60 + 15, 55);
                if work_end > leave {
                    push(leave, work, &mut blocks);
                    // Lunch excursion near work, sometimes.
                    if rng.gen_bool(0.25) {
                        let lunch = base + jitter_min(rng, 12 * 60 + 45, 25);
                        if lunch > leave + 30 && lunch + 45 < work_end {
                            let spot = country
                                .clamp(work.0 + normal(rng) * 400.0, work.1 + normal(rng) * 400.0);
                            push(lunch, spot, &mut blocks);
                            push(lunch + rng.gen_range(20..50), work, &mut blocks);
                        }
                    }
                    push(work_end, profile.home, &mut blocks);
                }
            }
            // Evening errand.
            if !profile.errands.is_empty() && rng.gen_bool(0.45) {
                let start = base + jitter_min(rng, 18 * 60 + 40, 45);
                let end = start + rng.gen_range(40..140);
                if end < sleep {
                    let errand = profile.errands[rng.gen_range(0..profile.errands.len())];
                    push(start, errand, &mut blocks);
                    push(end, profile.home, &mut blocks);
                }
            }
        } else {
            // Weekend: trip or errands.
            if rng.gen_bool(cfg.weekend_trip_p) {
                // Lévy-style leisure trip: heavy-tailed distance.
                let u: f64 = rng.gen_range(1e-9..1.0f64);
                let d = (cfg.trip_min_m * u.powf(-1.0 / cfg.trip_alpha))
                    .min(country.width_m.max(country.height_m));
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                let dest = country.clamp(
                    profile.home.0 + d * theta.cos(),
                    profile.home.1 + d * theta.sin(),
                );
                let start = base + jitter_min(rng, 9 * 60 + 30, 90);
                let end = start + rng.gen_range(3 * 60..9 * 60);
                push(start, dest, &mut blocks);
                push(end.min(sleep), profile.home, &mut blocks);
            } else {
                for _ in 0..rng.gen_range(0..3usize) {
                    if profile.errands.is_empty() {
                        break;
                    }
                    let start = base + rng.gen_range(9 * 60..20 * 60);
                    let end = start + rng.gen_range(30..150);
                    if end < sleep {
                        let errand = profile.errands[rng.gen_range(0..profile.errands.len())];
                        push(start, errand, &mut blocks);
                        push(end, profile.home, &mut blocks);
                    }
                }
            }
        }
    }

    blocks.sort_by_key(|&(start, _)| start);
    blocks.dedup_by_key(|&mut (start, _)| start);
    Itinerary {
        blocks,
        span_min: span_days * DAY_MIN,
    }
}

/// `center ± N(0, sigma)` minutes, clamped to stay within the day.
fn jitter_min(rng: &mut StdRng, center: u32, sigma: u32) -> u32 {
    let v = center as f64 + normal(rng) * sigma as f64;
    v.clamp(0.0, (DAY_MIN - 1) as f64) as u32
}

/// Standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0f64);
    let u2: f64 = rng.gen_range(0.0..1.0f64);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Country, MobilityConfig, StdRng) {
        (
            Country::civ_like(),
            MobilityConfig::default(),
            StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn profile_anchors_inside_country() {
        let (country, cfg, mut rng) = setup(1);
        for _ in 0..200 {
            let p = sample_profile(&country, &cfg, &mut rng);
            let check = |(x, y): (f64, f64)| {
                assert!(x >= 0.0 && x <= country.width_m);
                assert!(y >= 0.0 && y <= country.height_m);
            };
            check(p.home);
            if let Some(w) = p.work {
                check(w);
            }
            p.errands.iter().for_each(|&e| check(e));
            assert!(p.errands.len() >= cfg.errands_min && p.errands.len() <= cfg.errands_max);
        }
    }

    #[test]
    fn city_population_shares_roughly_match_weights() {
        let (country, cfg, mut rng) = setup(2);
        let n = 4_000;
        let mut primary = 0usize;
        for _ in 0..n {
            let p = sample_profile(&country, &cfg, &mut rng);
            if p.home_city == Some(0) {
                primary += 1;
            }
        }
        let share = primary as f64 / n as f64;
        let want = country.cities[0].weight;
        assert!(
            (share - want).abs() < 0.04,
            "primary-city share {share} vs weight {want}"
        );
    }

    #[test]
    fn itinerary_starts_at_home_and_covers_span() {
        let (country, cfg, mut rng) = setup(3);
        let p = sample_profile(&country, &cfg, &mut rng);
        let it = build_itinerary(&p, &country, &cfg, 14, &mut rng);
        assert_eq!(it.span_min(), 14 * DAY_MIN);
        assert_eq!(it.position_at(0), p.home);
        // Start times strictly increasing.
        for w in it.blocks().windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn night_time_is_home() {
        let (country, cfg, mut rng) = setup(4);
        for _ in 0..20 {
            let p = sample_profile(&country, &cfg, &mut rng);
            let it = build_itinerary(&p, &country, &cfg, 7, &mut rng);
            // 3 AM every day should be home (sleep ends past midnight only
            // via block carry-over, which still places the user at home).
            for day in 0..7 {
                let pos = it.position_at(day * DAY_MIN + 3 * 60);
                assert_eq!(pos, p.home, "day {day}: not home at 3 AM");
            }
        }
    }

    #[test]
    fn employed_users_are_at_work_midday() {
        let (country, cfg, mut rng) = setup(5);
        let mut checked = 0;
        for _ in 0..50 {
            let p = sample_profile(&country, &cfg, &mut rng);
            let Some(work) = p.work else { continue };
            let it = build_itinerary(&p, &country, &cfg, 5, &mut rng);
            // 11 AM on a weekday: at work most days (allow lunch jitter).
            let mut at_work = 0;
            for day in 0..5 {
                if it.position_at(day * DAY_MIN + 11 * 60) == work {
                    at_work += 1;
                }
            }
            assert!(at_work >= 3, "only {at_work}/5 weekdays at work");
            checked += 1;
        }
        assert!(checked > 20, "not enough employed users sampled");
    }

    #[test]
    fn itinerary_is_deterministic() {
        let country = Country::sen_like();
        let cfg = MobilityConfig::default();
        let build = || {
            let mut rng = StdRng::seed_from_u64(99);
            let p = sample_profile(&country, &cfg, &mut rng);
            build_itinerary(&p, &country, &cfg, 14, &mut rng)
        };
        let a = build();
        let b = build();
        assert_eq!(a.blocks(), b.blocks());
    }

    #[test]
    fn overlay_replaces_window_and_resumes_routine() {
        let (country, cfg, mut rng) = setup(7);
        let p = sample_profile(&country, &cfg, &mut rng);
        let mut it = build_itinerary(&p, &country, &cfg, 7, &mut rng);
        let original = it.clone();
        let venue = (1_234.0, 5_678.0);
        let (start, end) = (2 * DAY_MIN + 19 * 60, 2 * DAY_MIN + 22 * 60);
        it.overlay(start, end, venue);

        for t in (0..it.span_min()).step_by(13) {
            if (start..end).contains(&t) {
                assert_eq!(it.position_at(t), venue, "minute {t} not at the venue");
            } else if !(end..end + 1).contains(&t) {
                assert_eq!(
                    it.position_at(t),
                    original.position_at(t),
                    "minute {t} deviates outside the overlay window"
                );
            }
        }
        // Starts stay strictly increasing (the itinerary invariant).
        for w in it.blocks().windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn overlay_path_splices_a_block_chain() {
        let (country, cfg, mut rng) = setup(8);
        let p = sample_profile(&country, &cfg, &mut rng);
        let mut it = build_itinerary(&p, &country, &cfg, 3, &mut rng);
        let original = it.clone();
        let path = [
            (600u32, (10.0, 10.0)),
            (700, (20.0, 20.0)),
            (800, (30.0, 30.0)),
        ];
        it.overlay_path(&path, 900);
        assert_eq!(it.position_at(650), (10.0, 10.0));
        assert_eq!(it.position_at(750), (20.0, 20.0));
        assert_eq!(it.position_at(850), (30.0, 30.0));
        assert_eq!(it.position_at(900), original.position_at(900));
        for w in it.blocks().windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn collapse_to_pins_every_minute() {
        let (country, cfg, mut rng) = setup(9);
        let p = sample_profile(&country, &cfg, &mut rng);
        let mut it = build_itinerary(&p, &country, &cfg, 5, &mut rng);
        it.collapse_to(p.home);
        for t in (0..it.span_min()).step_by(97) {
            assert_eq!(it.position_at(t), p.home);
        }
        assert_eq!(it.num_blocks(), 1);
    }

    #[test]
    fn position_at_clamps_past_span() {
        let (country, cfg, mut rng) = setup(6);
        let p = sample_profile(&country, &cfg, &mut rng);
        let it = build_itinerary(&p, &country, &cfg, 2, &mut rng);
        // Past-the-end query resolves to the last block, not a panic.
        let _ = it.position_at(10 * DAY_MIN);
    }
}
