//! Data-quality report: does a (synthetic or imported) CDR dataset exhibit
//! the structural properties the paper's findings rest on?
//!
//! The substitution argument of DESIGN.md §1 stands or falls with four
//! stylized facts of mobile traffic data:
//!
//! 1. **activity heterogeneity** — per-user event volumes spread over an
//!    order of magnitude (log-normal-ish);
//! 2. **bursty, heavy-tailed timing** — inter-event gaps mix minute-scale
//!    sessions with multi-hour silences;
//! 3. **diurnal modulation** — deep night troughs;
//! 4. **spatial locality** — median radius of gyration of a couple of
//!    kilometres with a heavy-tailed mean (§7.3).
//!
//! [`QualityReport::of`] measures all four so tests can assert them and the
//! CLI can show them (`glove synth …` prints the report).

use glove_core::Dataset;
use glove_stats::{radius_of_gyration, Ecdf, Summary};

/// Minutes per day.
const DAY_MIN: u32 = 1_440;

/// The measured structural properties of a CDR dataset.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Per-user samples-per-day statistics.
    pub events_per_day: Summary,
    /// Inter-event gap statistics across all users, minutes.
    pub gaps_min: Summary,
    /// Fraction of inter-event gaps of at most 10 minutes (sessions).
    pub short_gap_frac: f64,
    /// Fraction of inter-event gaps of at least 6 hours (silences).
    pub long_gap_frac: f64,
    /// Ratio of night (02:00–05:00) to evening (18:00–21:00) event volume
    /// per hour; deep diurnal modulation gives a small value.
    pub night_evening_ratio: f64,
    /// Per-user radius of gyration statistics, meters.
    pub rog_m: Summary,
}

impl QualityReport {
    /// Measures a dataset. Returns `None` for datasets without enough data
    /// (no users, or no user with at least two samples).
    pub fn of(dataset: &Dataset) -> Option<QualityReport> {
        if dataset.fingerprints.is_empty() {
            return None;
        }
        let span_days =
            (dataset.span_min() as f64 / f64::from(DAY_MIN)).max(1.0 / f64::from(DAY_MIN));

        let mut events_per_day = Vec::new();
        let mut gaps = Vec::new();
        let mut rogs = Vec::new();
        let mut hour_counts = [0u64; 24];

        for fp in &dataset.fingerprints {
            events_per_day.push(fp.len() as f64 / span_days);
            let samples = fp.samples();
            for w in samples.windows(2) {
                gaps.push(f64::from(w[1].t - w[0].t));
            }
            for s in samples {
                hour_counts[((s.t % DAY_MIN) / 60) as usize] += 1;
            }
            let pts: Vec<(f64, f64)> = samples
                .iter()
                .map(|s| {
                    (
                        s.x as f64 + f64::from(s.dx) / 2.0,
                        s.y as f64 + f64::from(s.dy) / 2.0,
                    )
                })
                .collect();
            if let Some(r) = radius_of_gyration(&pts) {
                rogs.push(r);
            }
        }

        let gaps_ecdf = Ecdf::new(gaps.clone())?;
        let night: u64 = (2..5).map(|h| hour_counts[h]).sum();
        let evening: u64 = (18..21).map(|h| hour_counts[h]).sum();
        let night_evening_ratio = if evening > 0 {
            night as f64 / evening as f64
        } else {
            f64::NAN
        };

        Some(QualityReport {
            events_per_day: Summary::of(&events_per_day)?,
            gaps_min: Summary::of_ecdf(&gaps_ecdf),
            short_gap_frac: gaps_ecdf.fraction_at_or_below(10.0),
            long_gap_frac: 1.0 - gaps_ecdf.fraction_at_or_below(360.0 - 1e-9),
            night_evening_ratio,
            rog_m: Summary::of(&rogs)?,
        })
    }

    /// True if the dataset exhibits all four stylized facts of CDR data at
    /// the (deliberately generous) thresholds used by the test suite.
    pub fn looks_like_cdr(&self) -> bool {
        let heterogeneous = self.events_per_day.max >= 2.0 * self.events_per_day.median;
        let bursty = self.short_gap_frac > 0.05 && self.long_gap_frac > 0.02;
        let diurnal = self.night_evening_ratio < 0.35;
        let local = self.rog_m.median < 10_000.0 && self.rog_m.mean > self.rog_m.median;
        heterogeneous && bursty && diurnal && local
    }

    /// Renders the report as aligned text (used by the CLI).
    pub fn render(&self) -> String {
        format!(
            "events/day:    median {:.1}, mean {:.1}, max {:.1}\n\
             gaps [min]:    median {:.0}, p75 {:.0} — <=10 min: {:.0}%, >=6 h: {:.1}%\n\
             night/evening: {:.2} (small = strong diurnal cycle)\n\
             rog [km]:      median {:.2}, mean {:.2}\n\
             CDR-like:      {}",
            self.events_per_day.median,
            self.events_per_day.mean,
            self.events_per_day.max,
            self.gaps_min.median,
            self.gaps_min.p75,
            self.short_gap_frac * 100.0,
            self.long_gap_frac * 100.0,
            self.night_evening_ratio,
            self.rog_m.median / 1_000.0,
            self.rog_m.mean / 1_000.0,
            self.looks_like_cdr(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{generate, ScenarioConfig};
    use glove_core::Fingerprint;

    #[test]
    fn synthetic_presets_pass_the_cdr_check() {
        for cfg in [ScenarioConfig::civ_like(120), ScenarioConfig::sen_like(120)] {
            let mut cfg = cfg;
            cfg.num_towers = 400;
            let synth = generate(&cfg);
            let report = QualityReport::of(&synth.dataset).expect("measurable dataset");
            assert!(
                report.looks_like_cdr(),
                "{} failed the CDR check:\n{}",
                cfg.name,
                report.render()
            );
        }
    }

    #[test]
    fn degenerate_data_fails_the_check() {
        // Perfectly regular robot users: one event per hour, same cell.
        let fps = (0..10)
            .map(|u| {
                let points: Vec<(i64, i64, u32)> = (0..200).map(|i| (0, 0, i * 60)).collect();
                Fingerprint::from_points(u, &points).unwrap()
            })
            .collect();
        let ds = Dataset::new("robots", fps).unwrap();
        let report = QualityReport::of(&ds).expect("measurable dataset");
        assert!(!report.looks_like_cdr(), "robots must not look like CDR");
    }

    #[test]
    fn empty_dataset_is_none() {
        let ds = Dataset::new("empty", vec![]).unwrap();
        assert!(QualityReport::of(&ds).is_none());
    }

    #[test]
    fn render_mentions_all_sections() {
        let mut cfg = ScenarioConfig::civ_like(40);
        cfg.num_towers = 300;
        let synth = generate(&cfg);
        let text = QualityReport::of(&synth.dataset).unwrap().render();
        for needle in ["events/day", "gaps", "night/evening", "rog", "CDR-like"] {
            assert!(text.contains(needle), "missing section {needle}");
        }
    }
}
