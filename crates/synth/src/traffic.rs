//! The CDR event process: *when* devices interact with the network.
//!
//! Two properties of real mobile traffic matter enormously for
//! anonymizability, and the paper's §5.3 shows they are the root cause of
//! the problem GLOVE solves:
//!
//! 1. **Heterogeneity** — users differ wildly in activity volume (some place
//!    three calls a day, others hundreds). Modeled with a log-normal
//!    per-user base rate.
//! 2. **Burstiness** — events cluster in short sessions separated by long
//!    silences (heavy-tailed inter-event times), with strong diurnal
//!    modulation (quiet nights). Modeled as a session process: session
//!    starts follow an inhomogeneous Poisson process shaped by a diurnal
//!    profile; each session carries a geometric number of events a few
//!    minutes apart.
//!
//! The result is exactly the sparse, irregular sampling that breaks
//! GPS-oriented anonymization tools (§7.2) and that makes the *temporal*
//! dimension of fingerprints hard to hide (Fig. 5).

use rand::prelude::*;
use rand::rngs::StdRng;

/// Minutes per day.
const DAY_MIN: u32 = 1_440;

/// Tunables of the traffic process.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Median number of events per user-day (log-normal across users).
    pub events_per_day_median: f64,
    /// Log-normal sigma of the per-user rate (heterogeneity).
    pub rate_sigma: f64,
    /// Expected extra events per session beyond the first (burstiness):
    /// each session has `1 + Geometric(p)` events with mean
    /// `1 + (1-p)/p` = this + 1.
    pub session_extra_mean: f64,
    /// Maximum gap between events inside a session, minutes.
    pub session_gap_max_min: u32,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            events_per_day_median: 5.0,
            rate_sigma: 0.6,
            session_extra_mean: 0.8,
            session_gap_max_min: 6,
        }
    }
}

/// Relative diurnal intensity of traffic per hour of day, normalized to
/// mean 1. Calls/SMS/data dip deeply at night and peak around midday and
/// evening — the canonical two-hump cellular load curve.
pub const DIURNAL_PROFILE: [f64; 24] = [
    0.15, 0.08, 0.05, 0.04, 0.05, 0.10, // 00–05: night trough
    0.35, 0.80, 1.20, 1.40, 1.50, 1.55, // 06–11: morning ramp
    1.60, 1.45, 1.35, 1.40, 1.50, 1.65, // 12–17: daytime plateau
    1.85, 1.95, 1.70, 1.25, 0.80, 0.40, // 18–23: evening peak and decay
];

/// Draws the per-user daily event rate (events/day), log-normal around the
/// configured median.
pub fn sample_user_rate(cfg: &TrafficConfig, rng: &mut StdRng) -> f64 {
    let z = normal(rng);
    cfg.events_per_day_median * (z * cfg.rate_sigma).exp()
}

/// Generates the event minutes of one user over `span_days`, sorted and
/// deduplicated to minute resolution (the paper's finest time granularity).
///
/// `rate_per_day` is the user's expected event volume per day; sessions are
/// placed by thinning a homogeneous Poisson process against the diurnal
/// profile.
pub fn generate_event_minutes(
    rate_per_day: f64,
    span_days: u32,
    cfg: &TrafficConfig,
    rng: &mut StdRng,
) -> Vec<u32> {
    let span_min = span_days * DAY_MIN;
    let events_per_session = 1.0 + cfg.session_extra_mean;
    let sessions_per_day = (rate_per_day / events_per_session).max(0.05);
    // Thinning: candidate sessions at the peak intensity, accepted with
    // probability profile/peak.
    let peak = DIURNAL_PROFILE.iter().cloned().fold(0.0, f64::max);
    let candidate_rate_per_min = sessions_per_day * peak / DAY_MIN as f64;

    let mut minutes = Vec::new();
    let mut t = 0.0f64;
    let geo_p = 1.0 / (1.0 + cfg.session_extra_mean);
    loop {
        // Exponential inter-arrival of candidate sessions.
        let u: f64 = rng.gen_range(1e-12..1.0f64);
        t += -u.ln() / candidate_rate_per_min;
        if t >= span_min as f64 {
            break;
        }
        let minute = t as u32;
        let hour = (minute % DAY_MIN) / 60;
        let accept_p = DIURNAL_PROFILE[hour as usize] / peak;
        if !rng.gen_bool(accept_p.clamp(0.0, 1.0)) {
            continue;
        }
        // Session: 1 + Geometric(p) events, small gaps.
        minutes.push(minute);
        let mut cursor = minute;
        while rng.gen_bool(1.0 - geo_p) {
            cursor += rng.gen_range(1..=cfg.session_gap_max_min);
            if cursor >= span_min {
                break;
            }
            minutes.push(cursor);
        }
    }
    minutes.sort_unstable();
    minutes.dedup();
    minutes
}

/// Standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0f64);
    let u2: f64 = rng.gen_range(0.0..1.0f64);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn diurnal_profile_is_normalized() {
        let mean: f64 = DIURNAL_PROFILE.iter().sum::<f64>() / 24.0;
        assert!(
            (mean - 1.0).abs() < 0.02,
            "profile mean {mean} should be ~1"
        );
    }

    #[test]
    fn event_volume_tracks_rate() {
        let cfg = TrafficConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let days = 200; // long span to average out noise
        let events = generate_event_minutes(8.0, days, &cfg, &mut rng);
        let per_day = events.len() as f64 / days as f64;
        assert!(
            (per_day - 8.0).abs() < 1.6,
            "asked for 8 events/day, got {per_day}"
        );
    }

    #[test]
    fn events_sorted_unique_in_span() {
        let cfg = TrafficConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        let events = generate_event_minutes(20.0, 14, &cfg, &mut rng);
        for w in events.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(events.iter().all(|&t| t < 14 * DAY_MIN));
    }

    #[test]
    fn nights_are_quiet() {
        let cfg = TrafficConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let events = generate_event_minutes(30.0, 100, &cfg, &mut rng);
        let night = events
            .iter()
            .filter(|&&t| {
                let h = (t % DAY_MIN) / 60;
                (2..5).contains(&h)
            })
            .count();
        let evening = events
            .iter()
            .filter(|&&t| {
                let h = (t % DAY_MIN) / 60;
                (18..21).contains(&h)
            })
            .count();
        assert!(
            (night as f64) < (evening as f64) * 0.15,
            "night {night} vs evening {evening}"
        );
    }

    #[test]
    fn inter_event_times_are_heavy_tailed() {
        // The session structure + diurnal troughs must produce a mix of
        // minute-scale gaps and multi-hour gaps — the §5.3 signature.
        let cfg = TrafficConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        let events = generate_event_minutes(10.0, 100, &cfg, &mut rng);
        let gaps: Vec<u32> = events.windows(2).map(|w| w[1] - w[0]).collect();
        let short = gaps.iter().filter(|&&g| g <= 10).count();
        let long = gaps.iter().filter(|&&g| g >= 360).count();
        assert!(short > gaps.len() / 10, "sessions give short gaps");
        assert!(long > gaps.len() / 50, "nights give many multi-hour gaps");
    }

    #[test]
    fn user_rates_are_heterogeneous() {
        let cfg = TrafficConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let rates: Vec<f64> = (0..2_000)
            .map(|_| sample_user_rate(&cfg, &mut rng))
            .collect();
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        let mut sorted = rates.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        // Log-normal: mean exceeds median by exp(sigma^2 / 2).
        assert!((median - cfg.events_per_day_median).abs() < 0.5);
        assert!(mean > median * 1.1, "mean {mean} vs median {median}");
        // And the top users are an order of magnitude above the median.
        assert!(sorted[sorted.len() - 10] > median * 3.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TrafficConfig::default();
        let a = generate_event_minutes(7.0, 14, &cfg, &mut StdRng::seed_from_u64(9));
        let b = generate_event_minutes(7.0, 14, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_ish_rate_yields_few_events() {
        let cfg = TrafficConfig::default();
        let mut rng = StdRng::seed_from_u64(10);
        let events = generate_event_minutes(0.01, 14, &cfg, &mut rng);
        assert!(events.len() < 10);
    }
}
