//! # glove-synth — synthetic CDR substrate
//!
//! The GLOVE paper evaluates on two proprietary datasets released by Orange
//! within the D4D challenges (§3): `d4d-civ` (Ivory Coast, 82 k users) and
//! `d4d-sen` (Senegal, 320 k users over a 2-week rolling window). Those
//! datasets cannot be redistributed, so this crate builds the closest
//! synthetic equivalent that exercises the same code paths (see DESIGN.md
//! §1 for the substitution argument):
//!
//! * [`country`] — country geometry with population-weighted cities
//!   (`civ-like` and `sen-like` presets mirroring the two datasets);
//! * [`towers`] — cell-tower deployment: dense Gaussian scatter in cities,
//!   sparse rural coverage, nearest-tower lookup via a bucket index;
//! * [`mobility`] — anchor-based daily-routine mobility (home/work/errand
//!   anchors, commuting, weekend trips, Lévy-style exploration) calibrated
//!   to the radius-of-gyration statistics the paper reports in §7.3
//!   (median ≈ 2 km, mean ≈ 10 km);
//! * [`traffic`] — the CDR event process: per-user lognormal activity
//!   rates, diurnal modulation and bursty sessions, producing the sparse
//!   *heterogeneous* sampling whose heavy-tailed timing is the root cause
//!   of poor anonymizability (§5.3);
//! * [`scenario`] — end-to-end dataset builders with activity screening
//!   (the paper keeps only users averaging ≥ 1 sample/day in `d4d-civ`);
//! * [`workloads`] — composable adversarial workload generators layered on
//!   a scenario: flash crowds, corridor travel ([`corridor`]), device churn
//!   ([`churn`]) and long-tail cohorts with ground-truth labels;
//! * [`events`] — the event-iterator view of a scenario: the same process
//!   as a time-ordered stream feeding `core::stream`, without ever
//!   materializing a `Dataset`;
//! * [`subset`] — the time-span, user-fraction and city subsetting used by
//!   the generality analysis (§7.3, Figs. 10–11, Table 2's `abidjan`/`dakar`
//!   columns).
//!
//! All generation is deterministic given the scenario seed, and the batch
//! and event paths stay byte-identical for every preset (workloads
//! included).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod corridor;
pub mod country;
pub mod events;
pub mod mobility;
pub mod quality;
pub mod scenario;
pub mod subset;
pub mod towers;
pub mod traffic;
pub mod workloads;

pub use churn::DeviceChurn;
pub use corridor::CorridorTravel;
pub use country::{City, Corridor, Country};
pub use events::ScenarioEvents;
pub use quality::QualityReport;
pub use scenario::{generate, try_generate, ScenarioConfig, ScenarioError, SynthDataset, PRESETS};
pub use subset::{city_subset, time_subset, user_subset};
pub use towers::TowerNetwork;
pub use workloads::{Cohort, FlashCrowd, LongTailMix, WorkloadConfig};
