//! Dataset subsetting for the generality analysis (§7.3).
//!
//! * [`time_subset`] — truncates the observation window (Fig. 10 sweeps
//!   1 → 14 days);
//! * [`user_subset`] — keeps a random fraction of subscribers (Fig. 11
//!   sweeps 5 % → 100 %);
//! * [`city_subset`] — restricts to a metropolitan area (Table 2's
//!   `abidjan` and `dakar` columns).

use crate::scenario::SynthDataset;
use glove_core::{Dataset, Fingerprint};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Minutes per day.
const DAY_MIN: u64 = 1_440;

/// Keeps only the samples of the first `days` days; users left without
/// samples are dropped. Mirrors the paper's timespan sweep (Fig. 10).
pub fn time_subset(dataset: &Dataset, days: u32) -> Dataset {
    let cutoff = u64::from(days) * DAY_MIN;
    let fps: Vec<Fingerprint> = dataset
        .fingerprints
        .iter()
        .filter_map(|fp| {
            let samples: Vec<_> = fp
                .samples()
                .iter()
                .filter(|s| s.t_end() <= cutoff)
                .copied()
                .collect();
            if samples.is_empty() {
                None
            } else {
                Some(
                    Fingerprint::with_users(fp.users().to_vec(), samples)
                        .expect("non-empty samples"),
                )
            }
        })
        .collect();
    Dataset::new(format!("{}-{}d", dataset.name, days), fps).expect("user ids unchanged")
}

/// Keeps a uniformly random `fraction` of the fingerprints (at least one).
/// Mirrors the paper's dataset-size sweep (Fig. 11). Deterministic in
/// `seed`; selection order follows the original dataset order.
pub fn user_subset(dataset: &Dataset, fraction: f64, seed: u64) -> Dataset {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1], got {fraction}"
    );
    let n = dataset.fingerprints.len();
    let keep = ((n as f64 * fraction).round() as usize).clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let mut chosen: Vec<usize> = indices.into_iter().take(keep).collect();
    chosen.sort_unstable();
    let fps = chosen
        .into_iter()
        .map(|i| dataset.fingerprints[i].clone())
        .collect();
    Dataset::new(
        format!("{}-{}pct", dataset.name, (fraction * 100.0).round() as u32),
        fps,
    )
    .expect("subset of valid dataset")
}

/// Restricts the dataset to the metropolitan area of a city: keeps samples
/// within `radius_m` of the city centre, and only users with at least half
/// of their samples inside (the city's actual inhabitants and commuters,
/// not passers-by). Mirrors Table 2's citywide datasets.
///
/// Returns `None` if the city does not exist in the scenario geometry.
pub fn city_subset(synth: &SynthDataset, city_name: &str, radius_m: f64) -> Option<Dataset> {
    let city = synth.country.city(city_name)?;
    let (cx, cy) = city.center;
    let r2 = radius_m * radius_m;

    let fps: Vec<Fingerprint> = synth
        .dataset
        .fingerprints
        .iter()
        .filter_map(|fp| {
            let inside: Vec<_> = fp
                .samples()
                .iter()
                .filter(|s| {
                    let sx = s.x as f64 + f64::from(s.dx) / 2.0;
                    let sy = s.y as f64 + f64::from(s.dy) / 2.0;
                    let dx = sx - cx;
                    let dy = sy - cy;
                    dx * dx + dy * dy <= r2
                })
                .copied()
                .collect();
            if inside.is_empty() || inside.len() * 2 < fp.len() {
                None
            } else {
                Some(
                    Fingerprint::with_users(fp.users().to_vec(), inside)
                        .expect("non-empty samples"),
                )
            }
        })
        .collect();
    Some(Dataset::new(city_name.to_string(), fps).expect("user ids unchanged"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{generate, ScenarioConfig};

    fn synth() -> SynthDataset {
        let mut cfg = ScenarioConfig::civ_like(50);
        cfg.num_towers = 400;
        generate(&cfg)
    }

    #[test]
    fn time_subset_truncates() {
        let s = synth();
        let sub = time_subset(&s.dataset, 5);
        assert!(sub.span_min() <= 5 * 1_440);
        assert!(sub.fingerprints.len() <= s.dataset.fingerprints.len());
        // With >= 1 event/day screening, nearly everyone has samples in the
        // first 5 days.
        assert!(sub.fingerprints.len() >= s.dataset.fingerprints.len() / 2);
    }

    #[test]
    fn time_subset_full_span_is_identity() {
        let s = synth();
        let sub = time_subset(&s.dataset, 14);
        assert_eq!(sub.num_samples(), s.dataset.num_samples());
    }

    #[test]
    fn time_subset_zero_days_drops_everyone() {
        let s = synth();
        let sub = time_subset(&s.dataset, 0);
        assert!(sub.fingerprints.is_empty());
        assert_eq!(sub.num_users(), 0);
    }

    #[test]
    fn user_subset_minimum_is_one_fingerprint() {
        let s = synth();
        let sub = user_subset(&s.dataset, 0.0, 3);
        assert_eq!(sub.fingerprints.len(), 1, "fraction 0 still keeps one");
    }

    #[test]
    fn user_subset_keeps_fraction() {
        let s = synth();
        let sub = user_subset(&s.dataset, 0.5, 7);
        assert_eq!(sub.fingerprints.len(), 25);
        // All kept fingerprints exist in the original.
        for fp in &sub.fingerprints {
            assert!(s
                .dataset
                .fingerprints
                .iter()
                .any(|orig| orig.users() == fp.users()));
        }
    }

    #[test]
    fn user_subset_is_deterministic_and_seed_sensitive() {
        let s = synth();
        let a = user_subset(&s.dataset, 0.3, 1);
        let b = user_subset(&s.dataset, 0.3, 1);
        let c = user_subset(&s.dataset, 0.3, 2);
        let users = |d: &Dataset| {
            d.fingerprints
                .iter()
                .flat_map(|f| f.users().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(users(&a), users(&b));
        assert_ne!(users(&a), users(&c));
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn user_subset_rejects_bad_fraction() {
        let s = synth();
        let _ = user_subset(&s.dataset, 1.5, 0);
    }

    #[test]
    fn city_subset_contains_only_city_samples() {
        let s = synth();
        let city = s.country.primary_city().clone();
        let radius = 6.0 * city.sigma_m;
        let sub = city_subset(&s, &city.name, radius).unwrap();
        assert!(!sub.fingerprints.is_empty(), "metropolis must have users");
        for fp in &sub.fingerprints {
            for smp in fp.samples() {
                let dx = smp.x as f64 + 50.0 - city.center.0;
                let dy = smp.y as f64 + 50.0 - city.center.1;
                assert!((dx * dx + dy * dy).sqrt() <= radius + 1.0);
            }
        }
        // The primary city holds roughly its population weight of users.
        let share = sub.fingerprints.len() as f64 / s.dataset.fingerprints.len() as f64;
        assert!(share > 0.15, "city share {share} suspiciously low");
    }

    #[test]
    fn city_subset_unknown_city_is_none() {
        let s = synth();
        assert!(city_subset(&s, "nowhere", 10_000.0).is_none());
    }
}
