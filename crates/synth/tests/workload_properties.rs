//! Property harness for the scenario workload stack: for *arbitrary*
//! compositions of flash crowds, corridor travel, device churn and
//! long-tail cohorts, the lazy [`ScenarioEvents`] view must
//!
//! * emit a globally time-ordered stream (non-decreasing minute, ties
//!   broken by ascending emitted user id — the documented heap order), and
//! * regroup into exactly the batch [`generate`] output, byte for byte:
//!   same user-id population (churn secondaries included), same cohort
//!   labels, same per-user sample sequences.
//!
//! The strategies deliberately stack workloads at random — any subset of
//! the four transforms, with randomized knobs — so the parity proof covers
//! combinations no preset ships.

use glove_core::{Sample, UserId};
use glove_synth::{
    generate, CorridorTravel, DeviceChurn, FlashCrowd, LongTailMix, ScenarioConfig, ScenarioEvents,
    WorkloadConfig,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

const DAY_MIN: u32 = 1_440;
const SPAN_DAYS: u32 = 4;

/// `Option` strategy: a fair coin gating `inner` (the vendored proptest
/// shim has no `option::of`).
fn maybe<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    (0usize..2, inner).prop_map(|(on, v)| if on == 1 { Some(v) } else { None })
}

fn arb_flash_crowd() -> impl Strategy<Value = FlashCrowd> {
    (
        100.0f64..2_000.0,
        0u32..(SPAN_DAYS * DAY_MIN - 1),
        30u32..400,
        0.05f64..0.6,
        0usize..4,
    )
        .prop_map(
            |(scatter_m, start_min, duration_min, attendance, extra_events)| FlashCrowd {
                venue: None,
                scatter_m,
                start_min,
                duration_min,
                attendance,
                extra_events,
            },
        )
}

fn arb_corridor() -> impl Strategy<Value = CorridorTravel> {
    (0.05f64..0.6, 1usize..4, 600.0f64..2_000.0, 30u32..360).prop_map(
        |(travelers, trips, speed_m_min, dwell_min)| CorridorTravel {
            travelers,
            trips,
            speed_m_min,
            dwell_min,
        },
    )
}

fn arb_churn() -> impl Strategy<Value = DeviceChurn> {
    // Fractions kept clear of the sum-to-1 validation boundary.
    (0.0f64..0.45, 0.0f64..0.45).prop_map(|(sim_swap, dual_sim)| DeviceChurn { sim_swap, dual_sim })
}

fn arb_long_tail() -> impl Strategy<Value = LongTailMix> {
    (0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.3).prop_map(|(night_shift, hyper_mobile, sedentary)| {
        LongTailMix {
            night_shift,
            hyper_mobile,
            sedentary,
        }
    })
}

/// Strategy: a small corridor-geometry scenario carrying any subset of the
/// workload transforms. The corridor country keeps `corridor: Some(..)`
/// combinations valid; a short span and tower budget keep cases fast.
fn arb_config() -> impl Strategy<Value = ScenarioConfig> {
    (
        8usize..=20,
        0u64..u64::MAX,
        proptest::collection::vec(arb_flash_crowd(), 0..=2),
        maybe(arb_corridor()),
        maybe(arb_churn()),
        maybe(arb_long_tail()),
    )
        .prop_map(|(users, seed, flash_crowds, corridor, churn, long_tail)| {
            let mut cfg = ScenarioConfig::corridor_like(users);
            cfg.name = "workload-prop".into();
            cfg.seed = seed;
            cfg.span_days = SPAN_DAYS;
            cfg.num_towers = 250;
            cfg.workloads = WorkloadConfig {
                flash_crowds,
                corridor,
                churn,
                long_tail,
            };
            cfg.validate().expect("strategy produces valid configs");
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The stream is globally ordered: minutes never decrease, and within a
    /// minute emitted user ids ascend (each id appears at most once per
    /// minute — per-person minutes are unique and ids belong to one person).
    #[test]
    fn scenario_events_are_globally_time_ordered(cfg in arb_config()) {
        let events: Vec<_> = ScenarioEvents::new(&cfg).collect();
        prop_assert!(!events.is_empty(), "scenario produced no events");
        for pair in events.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            prop_assert!(
                (a.sample.t, a.user) < (b.sample.t, b.user),
                "stream out of order: ({}, {}) then ({}, {})",
                a.sample.t, a.user, b.sample.t, b.user
            );
        }
    }

    /// Grouping the stream by emitted user id reproduces the batch output
    /// exactly: same id population, same cohort labels, byte-identical
    /// per-user sample sequences — whatever workloads are stacked.
    #[test]
    fn grouped_stream_is_byte_identical_to_batch(cfg in arb_config()) {
        let batch = generate(&cfg);
        let stream = ScenarioEvents::new(&cfg);
        prop_assert_eq!(
            stream.cohorts(),
            &batch.cohorts[..],
            "cohort ground truth diverged"
        );
        let mut per_user: BTreeMap<UserId, Vec<Sample>> = BTreeMap::new();
        for e in stream {
            per_user.entry(e.user).or_default().push(e.sample);
        }
        prop_assert_eq!(
            per_user.len(),
            batch.dataset.fingerprints.len(),
            "stream id population diverged from batch"
        );
        for (user, samples) in &per_user {
            let fp = &batch.dataset.fingerprints[*user as usize];
            prop_assert_eq!(fp.users(), &[*user][..], "fingerprint id mismatch");
            prop_assert_eq!(
                fp.samples(),
                &samples[..],
                "stream diverged from batch for user {}",
                user
            );
        }
    }
}
