//! The stretch-effort algebra of §4: how much accuracy must be sacrificed to
//! merge samples (Eqs. 1–9) and fingerprints (Eq. 10) through
//! generalization.
//!
//! * [`sample_stretch`] — `δ_ab(i,j) = w_σ φ_σ + w_τ φ_τ ∈ [0, 1]`;
//! * [`sample_stretch_parts`] — the same, decomposed into its spatial and
//!   temporal addends (needed by the §5.3 analysis);
//! * [`fingerprint_stretch`] — `Δ_ab`: each sample of the *longer*
//!   fingerprint matched to its minimum-effort partner in the shorter one,
//!   averaged;
//! * [`fingerprint_stretch_decomposed`] — `Δ_ab` plus the per-sample matched
//!   efforts, feeding the tail-weight analysis of Fig. 5.
//!
//! The per-pair inner loop is the hottest code in the workspace (it runs
//! `O(|M|² · n̄²)` times); [`fingerprint_stretch`] therefore uses a
//! temporal-gap lower bound to prune candidates, which is checked against the
//! naive scan by property tests.

use crate::config::StretchConfig;
use crate::model::{Fingerprint, Sample};

/// Read-only, random-access sequence of samples — the storage abstraction
/// the Eq. (10) kernels are generic over, so one set of arithmetic (and
/// therefore bit-identical results) serves both `Vec<Sample>`-backed
/// fingerprints and the columnar pages of
/// [`SampleStore`](crate::compact::SampleStore).
pub trait SampleSeq: Copy {
    /// Number of samples in the sequence.
    fn len(self) -> usize;
    /// The `i`-th sample, assembled by value (columnar backends decode it
    /// from their column arrays, slice backends copy it out — both are
    /// exact integer moves, so downstream arithmetic is identical).
    fn get(self, i: usize) -> Sample;
    /// True when the sequence holds no samples (never, for fingerprints).
    fn is_empty(self) -> bool {
        self.len() == 0
    }
}

impl SampleSeq for &[Sample] {
    #[inline]
    fn len(self) -> usize {
        <[Sample]>::len(self)
    }

    #[inline]
    fn get(self, i: usize) -> Sample {
        self[i]
    }
}

/// One side of a generic Eq. (10) evaluation: a sample sequence plus the
/// multiplicity that weights it (Eqs. 4 and 7).
#[derive(Debug, Clone, Copy)]
pub struct StretchOperand<S: SampleSeq> {
    /// The samples.
    pub samples: S,
    /// Subscribers behind the sequence (`n_a` in the paper's weighting).
    pub multiplicity: usize,
}

impl<'a> StretchOperand<&'a [Sample]> {
    /// The operand view of a fingerprint.
    #[inline]
    pub fn of(fp: &'a Fingerprint) -> Self {
        Self {
            samples: fp.samples(),
            multiplicity: fp.multiplicity(),
        }
    }
}

/// The spatial covering stretch of Eqs. (4)–(6), *before* capping and
/// normalization: the population-weighted sum of how far `a`'s box must grow
/// to cover `b`'s and vice versa, in meters.
///
/// `na` and `nb` are the multiplicities of the (possibly already merged)
/// fingerprints the samples belong to.
#[inline]
pub fn raw_spatial_stretch_m(a: &Sample, na: f64, b: &Sample, nb: f64) -> f64 {
    // l_σ(a, b): westward/southward growth of a to reach b's lower edges.
    // r_σ(a, b): eastward/northward growth of a to reach b's upper edges.
    let l_ab = (a.x - a.x.min(b.x)) + (a.y - a.y.min(b.y));
    let r_ab = (a.x_end().max(b.x_end()) - a.x_end()) + (a.y_end().max(b.y_end()) - a.y_end());
    let l_ba = (b.x - a.x.min(b.x)) + (b.y - a.y.min(b.y));
    let r_ba = (a.x_end().max(b.x_end()) - b.x_end()) + (a.y_end().max(b.y_end()) - b.y_end());
    ((l_ab + r_ab) as f64 * na + (l_ba + r_ba) as f64 * nb) / (na + nb)
}

/// The temporal covering stretch of Eqs. (7)–(9), before capping and
/// normalization, in minutes.
#[inline]
pub fn raw_temporal_stretch_min(a: &Sample, na: f64, b: &Sample, nb: f64) -> f64 {
    let (at, ae) = (i64::from(a.t), a.t_end() as i64);
    let (bt, be) = (i64::from(b.t), b.t_end() as i64);
    let l_ab = at - at.min(bt);
    let r_ab = ae.max(be) - ae;
    let l_ba = bt - at.min(bt);
    let r_ba = ae.max(be) - be;
    ((l_ab + r_ab) as f64 * na + (l_ba + r_ba) as f64 * nb) / (na + nb)
}

/// The two addends of Eq. (1): `(w_σ φ_σ, w_τ φ_τ)`, each already capped to
/// its saturation threshold (Eqs. 2–3) and weighted.
#[inline]
pub fn sample_stretch_parts(
    a: &Sample,
    na: f64,
    b: &Sample,
    nb: f64,
    cfg: &StretchConfig,
) -> (f64, f64) {
    let (na, nb) = if cfg.population_weighting {
        (na, nb)
    } else {
        (1.0, 1.0)
    };
    let phi_s = (raw_spatial_stretch_m(a, na, b, nb) / cfg.phi_max_space_m).min(1.0);
    let phi_t = (raw_temporal_stretch_min(a, na, b, nb) / cfg.phi_max_time_min).min(1.0);
    (cfg.w_space * phi_s, cfg.w_time * phi_t)
}

/// The sample stretch effort `δ_ab(i,j)` of Eq. (1): the loss of accuracy
/// required to merge two samples through generalization, in `[0, 1]`.
///
/// `δ = 0` iff the two boxes are identical; `δ = 1` means both the spatial
/// and temporal stretches saturate their caps and the merged sample would be
/// uninformative.
#[inline]
pub fn sample_stretch(a: &Sample, na: f64, b: &Sample, nb: f64, cfg: &StretchConfig) -> f64 {
    let (s, t) = sample_stretch_parts(a, na, b, nb, cfg);
    s + t
}

/// Convenience wrapper for unweighted (single-subscriber) samples.
#[inline]
pub fn sample_stretch_unweighted(a: &Sample, b: &Sample, cfg: &StretchConfig) -> f64 {
    sample_stretch(a, 1.0, b, 1.0, cfg)
}

/// Separation between two time windows in minutes (0 when they overlap).
///
/// This is a lower bound on the raw temporal stretch of Eqs. (7)–(9): to
/// merge two samples, at least the gap between their windows must be covered
/// on both sides, and the weighted sum of per-side stretches is minimized at
/// exactly `gap` (weights sum to 1).
#[inline]
pub fn time_gap_min(a: &Sample, b: &Sample) -> f64 {
    interval_gap(
        i64::from(a.t),
        a.t_end() as i64,
        i64::from(b.t),
        b.t_end() as i64,
    ) as f64
}

/// The fingerprint stretch effort `Δ_ab` of Eq. (10): for each sample of the
/// longer fingerprint, the minimum sample stretch effort to the shorter
/// fingerprint; averaged over the longer fingerprint.
///
/// The multiplicities of `a` and `b` weight the per-sample efforts per
/// Eqs. (4) and (7), which is how Alg. 1 accounts for the number of
/// subscribers affected when merging already-merged fingerprints.
///
/// ```
/// use glove_core::prelude::*;
///
/// let a = Fingerprint::from_points(0, &[(0, 0, 480), (5_000, 0, 1_020)]).unwrap();
/// let b = Fingerprint::from_points(1, &[(200, 0, 490), (5_100, 0, 1_050)]).unwrap();
/// let cfg = StretchConfig::default();
///
/// let d = fingerprint_stretch(&a, &b, &cfg);
/// assert!(d > 0.0 && d < 0.1, "similar routines are cheap to merge: {d}");
/// assert_eq!(d, fingerprint_stretch(&b, &a, &cfg), "Δ is symmetric");
/// ```
pub fn fingerprint_stretch(a: &Fingerprint, b: &Fingerprint, cfg: &StretchConfig) -> f64 {
    fingerprint_stretch_seq(StretchOperand::of(a), StretchOperand::of(b), cfg)
}

/// Storage-generic form of [`fingerprint_stretch`]: the same Eq. (10)
/// arithmetic over any [`SampleSeq`] backing, so columnar-store slices and
/// `Vec<Sample>` fingerprints produce bit-identical efforts.
pub fn fingerprint_stretch_seq<A: SampleSeq, B: SampleSeq>(
    a: StretchOperand<A>,
    b: StretchOperand<B>,
    cfg: &StretchConfig,
) -> f64 {
    match a.samples.len().cmp(&b.samples.len()) {
        std::cmp::Ordering::Greater => directed_stretch(a, b, cfg),
        std::cmp::Ordering::Less => directed_stretch(b, a, cfg),
        // Eq. (10) leaves the orientation ambiguous for equal lengths (the
        // paper computes the matrix once per unordered pair, so it never
        // observes the asymmetry). We canonicalize by averaging the two
        // directions, which keeps Δ symmetric in its arguments.
        std::cmp::Ordering::Equal => {
            (directed_stretch(a, b, cfg) + directed_stretch(b, a, cfg)) / 2.0
        }
    }
}

/// Below this many samples in the shorter fingerprint, a branch-light
/// linear scan of the inner loop beats the pruned two-sided walk (measured
/// on sparse ~90-sample CDR fingerprints, where pruning eliminates little
/// and its bookkeeping dominates). Dense fingerprints — the paper's
/// hundreds-of-samples-per-week regime — go through the pruned path.
const PRUNE_MIN_SHORT_LEN: usize = 128;

/// One direction of Eq. (10): match every sample of `long` into `short`.
fn directed_stretch<L: SampleSeq, S: SampleSeq>(
    long: StretchOperand<L>,
    short: StretchOperand<S>,
    cfg: &StretchConfig,
) -> f64 {
    let n_long = long.multiplicity as f64;
    let n_short = short.multiplicity as f64;
    let mut total = 0.0;
    if short.samples.len() < PRUNE_MIN_SHORT_LEN {
        for i in 0..long.samples.len() {
            let s = long.samples.get(i);
            let mut best = f64::INFINITY;
            for j in 0..short.samples.len() {
                let q = short.samples.get(j);
                let d = sample_stretch(&s, n_long, &q, n_short, cfg);
                if d < best {
                    best = d;
                }
            }
            total += best;
        }
    } else {
        // Largest window length in the shorter fingerprint, needed to make
        // the temporal pruning bound valid on samples sorted by start time.
        let short_max_dt = seq_max_dt(short.samples);
        for i in 0..long.samples.len() {
            let s = long.samples.get(i);
            total += min_stretch_to(&s, n_long, short.samples, n_short, short_max_dt, cfg);
        }
    }
    total / long.samples.len() as f64
}

/// Largest window length in a sample sequence.
#[inline]
fn seq_max_dt<S: SampleSeq>(samples: S) -> u32 {
    (0..samples.len())
        .map(|j| samples.get(j).dt)
        .max()
        .expect("fingerprints are never empty")
}

/// Result of a cutoff-aware Eq. (10) evaluation: either the exact stretch
/// effort, or — if the evaluation was abandoned early — an admissible lower
/// bound on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StretchEval {
    /// The evaluation ran to completion; the value is bit-identical to what
    /// [`fingerprint_stretch`] returns for the same pair.
    Exact(f64),
    /// The evaluation was abandoned because the partial mean — strengthened
    /// by the per-sample hull floors still owed by the unvisited suffix —
    /// already proved `Δ_ab` strictly above the cutoff; the carried value is
    /// a lower bound on the true effort (and itself strictly above the
    /// cutoff).
    AtLeast(f64),
}

/// Cutoff-aware variant of [`fingerprint_stretch`] — tier 2 of the distance
/// cascade.
///
/// Evaluates `Δ_ab` but abandons as soon as the effort accumulated so far
/// proves the result *strictly* exceeds `cutoff`, returning the proven
/// lower bound instead of finishing the scan. With `cutoff =
/// f64::INFINITY` the function never abandons and
/// `Exact(fingerprint_stretch(a, b, cfg))` is returned bit-for-bit (the
/// accumulation order and arithmetic are identical).
///
/// Admissibility of the partial mean: Eq. (10) averages per-sample minima,
/// each ≥ 0, so after `i` of `n` outer samples the final sum is at least
/// the partial sum (IEEE addition of a non-negative term is monotone and
/// correctly rounded, so this survives floating point) and the final mean
/// is at least `partial_total / n`. The unvisited suffix is additionally
/// booked at its per-sample hull floors rather than at zero (the suffix
/// strengthening) — each floor is an admissible lower bound
/// on the matching effort of one outer sample, and the comparison concedes
/// a rounding slack so the strengthened bound stays below the *computed*
/// value too. For equal-length fingerprints the canonical `Δ` averages
/// both directions; the per-direction mappings `m ↦ m/2` (second direction
/// still unknown, bounded below by 0) and `m ↦ (d₁+m)/2` (first direction
/// exact) keep the carried value a lower bound on the averaged result.
///
/// Abandonment is *strict* (`> cutoff`, never `≥`), so a pair whose true
/// effort ties the cutoff is always evaluated exactly — callers that use
/// the running best-pair value as the cutoff keep their tie-breaking
/// behavior, and hence their output, byte-identical.
pub fn fingerprint_stretch_cutoff(
    a: &Fingerprint,
    b: &Fingerprint,
    cfg: &StretchConfig,
    cutoff: f64,
) -> StretchEval {
    fingerprint_stretch_cutoff_resume(a, b, cfg, cutoff, &mut StretchProgress::start())
}

/// Saved position of an abandoned [`fingerprint_stretch_cutoff_resume`]
/// evaluation of one fixed pair.
///
/// The exact prefix sum of per-sample minima is a deterministic function of
/// the two fingerprints alone — the cutoff only decides *where* the scan
/// stops, never what it accumulates — so an abandoned evaluation can resume
/// from its saved prefix under a later (typically larger) cutoff instead of
/// restarting from sample zero, and a resumed evaluation that runs to
/// completion returns the same bits as an uninterrupted one.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StretchProgress {
    /// First direction's exact mean — meaningful once `dir == 1`
    /// (equal-length pairs only).
    d1: f64,
    /// Exact prefix sum of the direction currently being scanned.
    total: f64,
    /// Outer samples of the current direction already folded into `total`.
    next: u32,
    /// 0 while the first directed scan is incomplete, 1 afterwards.
    dir: u8,
}

impl StretchProgress {
    /// Progress of an evaluation that has not started.
    #[inline]
    pub fn start() -> Self {
        Self::default()
    }
}

/// Resumable form of [`fingerprint_stretch_cutoff`]: picks the evaluation
/// of this pair up where `progress` says it previously abandoned.
///
/// On [`StretchEval::AtLeast`] the updated `progress` records the exact
/// work already done; passing it back in (for the *same* pair and config)
/// skips straight to the first unvisited sample. On [`StretchEval::Exact`]
/// the result is bit-identical to an uninterrupted evaluation — callers
/// cache it and never evaluate the pair again.
pub fn fingerprint_stretch_cutoff_resume(
    a: &Fingerprint,
    b: &Fingerprint,
    cfg: &StretchConfig,
    cutoff: f64,
    progress: &mut StretchProgress,
) -> StretchEval {
    fingerprint_stretch_cutoff_resume_seq(
        StretchOperand::of(a),
        StretchOperand::of(b),
        cfg,
        cutoff,
        progress,
    )
}

/// Storage-generic form of [`fingerprint_stretch_cutoff_resume`]: the tier-2
/// cascade evaluation over any [`SampleSeq`] backing. Bit-identical to the
/// fingerprint entry point for the same samples, cutoff and progress.
pub fn fingerprint_stretch_cutoff_resume_seq<A: SampleSeq, B: SampleSeq>(
    a: StretchOperand<A>,
    b: StretchOperand<B>,
    cfg: &StretchConfig,
    cutoff: f64,
    progress: &mut StretchProgress,
) -> StretchEval {
    match a.samples.len().cmp(&b.samples.len()) {
        std::cmp::Ordering::Greater => directed_resume(a, b, cfg, cutoff, |m| m, progress),
        std::cmp::Ordering::Less => directed_resume(b, a, cfg, cutoff, |m| m, progress),
        std::cmp::Ordering::Equal => {
            if progress.dir == 0 {
                match directed_resume(a, b, cfg, cutoff, |m| m / 2.0, progress) {
                    StretchEval::Exact(d1) => {
                        progress.d1 = d1;
                        progress.dir = 1;
                        progress.total = 0.0;
                        progress.next = 0;
                    }
                    abandoned => return abandoned,
                }
            }
            let d1 = progress.d1;
            match directed_resume(b, a, cfg, cutoff, |m| (d1 + m) / 2.0, progress) {
                StretchEval::Exact(d2) => StretchEval::Exact((d1 + d2) / 2.0),
                abandoned => abandoned,
            }
        }
    }
}

/// Slack conceded by the suffix-strengthened abandonment test of
/// [`directed_stretch_cutoff`].
///
/// The per-sample hull floors and their running remainder are rounded
/// independently of the exact accumulation, so a floor-augmented bound can
/// exceed the *computed* Eq. (10) value by a few ulps even though it never
/// exceeds the real-arithmetic one. Admissibility must hold against the
/// computed value (that is what the exact path publishes and what ties are
/// broken on), so the test concedes this margin — vastly larger than the
/// worst accumulated IEEE error for any realistic fingerprint length
/// (`< len·ε` in the mean) — both before abandoning and in the carried
/// bound. The concession only ever makes abandonment rarer, never unsound.
const FLOOR_SLACK: f64 = 1e-9;

/// Admissible floor on the matching effort of one outer sample: the
/// per-sample analog of [`stretch_lower_bound`], against the hull of the
/// shorter fingerprint.
///
/// Every candidate match lies inside `hull`, per-axis interval gaps only
/// shrink as intervals grow, the raw stretches of Eqs. (4)–(9) dominate the
/// gaps (the direction weights sum to 1), and the saturation caps are
/// monotone — so no sample of the hulled fingerprint can be matched from
/// `s` below this value.
#[inline]
fn sample_hull_floor(s: &Sample, hull: &StretchHull, cfg: &StretchConfig) -> f64 {
    let gx = interval_gap(s.x, s.x_end(), hull.x_min, hull.x_end);
    let gy = interval_gap(s.y, s.y_end(), hull.y_min, hull.y_end);
    let gt = interval_gap(i64::from(s.t), s.t_end() as i64, hull.t_min, hull.t_end);
    if gx == 0 && gy == 0 && gt == 0 {
        return 0.0;
    }
    let phi_s = ((gx + gy) as f64 / cfg.phi_max_space_m).min(1.0);
    let phi_t = (gt as f64 / cfg.phi_max_time_min).min(1.0);
    cfg.w_space * phi_s + cfg.w_time * phi_t
}

/// One direction of [`fingerprint_stretch_cutoff_resume`]. `bound_of` maps
/// the partial mean of *this* direction to a lower bound on the caller's
/// final result (identity for unequal lengths; the averaging maps for the
/// equal-length case). Mirrors [`directed_stretch`] exactly on the
/// non-abandoning path, including the naive/pruned inner-loop split, and
/// starts from — and on abandonment saves back to — the `total`/`next`
/// prefix recorded in `progress`.
///
/// The plain partial mean books every unvisited sample at zero effort, so
/// it only proves abandonment near the end of the scan — on dense metro
/// fingerprints an abandoned evaluation used to cost almost as much as a
/// full one. A finite cutoff therefore arms a suffix strengthening: each
/// outer sample owes at least its [`sample_hull_floor`] toward the final
/// sum, and `owed` carries the floors of the samples not yet visited. The
/// pre-scan check (prefix plus everything owed) frequently abandons before
/// a single inner loop runs, in O(|long|) integer gap arithmetic.
fn directed_resume<L: SampleSeq, S: SampleSeq>(
    long: StretchOperand<L>,
    short: StretchOperand<S>,
    cfg: &StretchConfig,
    cutoff: f64,
    bound_of: impl Fn(f64) -> f64,
    progress: &mut StretchProgress,
) -> StretchEval {
    let n_long = long.multiplicity as f64;
    let n_short = short.multiplicity as f64;
    let len = long.samples.len() as f64;
    let first = progress.next as usize;
    if first >= long.samples.len() {
        // The whole direction is already folded (the previous call abandoned
        // on the final bound check); its mean is now exact.
        return StretchEval::Exact(progress.total / len);
    }
    // Suffix floors are pure overhead when the caller never abandons
    // (`cutoff = ∞`), so only arm them for a finite cutoff.
    let floors = cutoff
        .is_finite()
        .then(|| StretchHull::of_seq(short.samples));
    let mut owed = 0.0;
    if let Some(hull) = &floors {
        for i in first..long.samples.len() {
            owed += sample_hull_floor(&long.samples.get(i), hull, cfg);
        }
        let lb = bound_of((progress.total + owed) / len) - FLOOR_SLACK;
        if lb > cutoff {
            return StretchEval::AtLeast(lb);
        }
    }
    let mut total = progress.total;
    let abandon_at = |i: usize, total: f64, lb: f64, progress: &mut StretchProgress| {
        progress.total = total;
        progress.next = (i + 1) as u32;
        StretchEval::AtLeast(lb)
    };
    if short.samples.len() < PRUNE_MIN_SHORT_LEN {
        for i in first..long.samples.len() {
            let s = long.samples.get(i);
            if let Some(hull) = &floors {
                owed -= sample_hull_floor(&s, hull, cfg);
            }
            let mut best = f64::INFINITY;
            for j in 0..short.samples.len() {
                let q = short.samples.get(j);
                let d = sample_stretch(&s, n_long, &q, n_short, cfg);
                if d < best {
                    best = d;
                }
            }
            total += best;
            let lb = bound_of((total + owed.max(0.0)) / len) - FLOOR_SLACK;
            if lb > cutoff {
                return abandon_at(i, total, lb, progress);
            }
        }
    } else {
        let short_max_dt = seq_max_dt(short.samples);
        for i in first..long.samples.len() {
            let s = long.samples.get(i);
            if let Some(hull) = &floors {
                owed -= sample_hull_floor(&s, hull, cfg);
            }
            total += min_stretch_to(&s, n_long, short.samples, n_short, short_max_dt, cfg);
            let lb = bound_of((total + owed.max(0.0)) / len) - FLOOR_SLACK;
            if lb > cutoff {
                return abandon_at(i, total, lb, progress);
            }
        }
    }
    StretchEval::Exact(total / len)
}

/// `Δ_ab` together with the matched per-sample efforts, decomposed into
/// `(w_σ φ_σ, w_τ φ_τ)` pairs — one per sample of the longer fingerprint.
/// These are the elements of the sets `S^k_a` and `T^k_a` of §5.3.
pub fn fingerprint_stretch_decomposed(
    a: &Fingerprint,
    b: &Fingerprint,
    cfg: &StretchConfig,
) -> (f64, Vec<(f64, f64)>) {
    let mut parts = Vec::new();
    match a.len().cmp(&b.len()) {
        std::cmp::Ordering::Greater => directed_decomposed(a, b, cfg, &mut parts),
        std::cmp::Ordering::Less => directed_decomposed(b, a, cfg, &mut parts),
        // Equal lengths: union of both directions' matched terms, so that
        // mean(parts) still equals the canonical (averaged) Δ.
        std::cmp::Ordering::Equal => {
            directed_decomposed(a, b, cfg, &mut parts);
            directed_decomposed(b, a, cfg, &mut parts);
        }
    }
    let total: f64 = parts.iter().map(|(s, t)| s + t).sum();
    (total / parts.len() as f64, parts)
}

/// One direction of the decomposition: appends one `(w_σ φ_σ, w_τ φ_τ)`
/// pair per sample of `long` (its minimum-effort match into `short`).
fn directed_decomposed(
    long: &Fingerprint,
    short: &Fingerprint,
    cfg: &StretchConfig,
    parts: &mut Vec<(f64, f64)>,
) {
    let n_long = long.multiplicity() as f64;
    let n_short = short.multiplicity() as f64;
    for s in long.samples() {
        let mut best = f64::INFINITY;
        let mut best_parts = (0.0, 0.0);
        for q in short.samples() {
            let (ps, pt) = sample_stretch_parts(s, n_long, q, n_short, cfg);
            let d = ps + pt;
            if d < best {
                best = d;
                best_parts = (ps, pt);
            }
        }
        parts.push(best_parts);
    }
}

/// Minimum sample stretch effort from `s` (of a fingerprint with
/// multiplicity `ns`) to any sample of `short` (multiplicity `n_short`),
/// pruned by a temporal-gap lower bound.
///
/// `short`'s samples are sorted by start time (a `Fingerprint` invariant),
/// but their window lengths `dt` vary, so `t_end` is not monotone in the
/// sort order. The bounds therefore use `short_max_dt`:
///
/// * walking left from the pivot, every remaining candidate `q` has
///   `q.t ≤ samples[lo-1].t`, hence `q.t_end ≤ samples[lo-1].t + max_dt` and
///   `gap ≥ s.t − samples[lo-1].t − max_dt`;
/// * walking right, `q.t ≥ samples[hi].t`, hence `gap ≥ samples[hi].t −
///   s.t_end`.
///
/// Since the raw temporal stretch is at least the gap and `δ ≥ w_τ·φ_τ`,
/// once both bounds exceed the best effort found no better match can exist.
fn min_stretch_to<S: SampleSeq>(
    s: &Sample,
    ns: f64,
    samples: S,
    n_short: f64,
    short_max_dt: u32,
    cfg: &StretchConfig,
) -> f64 {
    let m = samples.len();
    let max_dt = i64::from(short_max_dt);
    let s_t = i64::from(s.t);
    let s_end = s.t_end() as i64;
    // Start position: first sample with start time >= s.t (a manual
    // partition_point — the generic sequence has no slice methods).
    let pivot = {
        let (mut lo, mut hi) = (0usize, m);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if samples.get(mid).t < s.t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    };
    let mut best = f64::INFINITY;
    // A candidate with window gap >= gap_cutoff cannot beat `best`:
    // δ >= w_τ·min(gap/φmax_τ, 1). Expressed as a gap so the per-candidate
    // check is a subtraction and comparison, not a division.
    let mut gap_cutoff = i64::MAX;
    let cutoff_of = |best: f64| -> i64 {
        if best >= cfg.w_time {
            // Even a saturated temporal stretch cannot prune.
            i64::MAX
        } else {
            (best / cfg.w_time * cfg.phi_max_time_min).ceil() as i64
        }
    };

    let mut lo = pivot; // next candidate to the left is lo - 1
    let mut hi = pivot; // next candidate to the right is hi
    loop {
        // Minimum possible gap of the next candidate on each side (and, by
        // sort order + max_dt, of everything beyond it).
        let left_gap = if lo > 0 {
            s_t - i64::from(samples.get(lo - 1).t) - max_dt
        } else {
            i64::MAX
        };
        let right_gap = if hi < m {
            i64::from(samples.get(hi).t) - s_end
        } else {
            i64::MAX
        };
        if left_gap >= gap_cutoff && right_gap >= gap_cutoff {
            break;
        }
        // Visit the side with the smaller gap bound first.
        if left_gap <= right_gap {
            let q = samples.get(lo - 1);
            let d = sample_stretch(s, ns, &q, n_short, cfg);
            if d < best {
                best = d;
                gap_cutoff = cutoff_of(best);
            }
            lo -= 1;
        } else {
            let q = samples.get(hi);
            let d = sample_stretch(s, ns, &q, n_short, cfg);
            if d < best {
                best = d;
                gap_cutoff = cutoff_of(best);
            }
            hi += 1;
        }
    }
    debug_assert!(best.is_finite(), "fingerprints are never empty");
    best
}

/// Per-fingerprint summary powering the admissible *pair* pruning of the
/// GLOVE arena: the spatiotemporal hull (the smallest box covering every
/// sample) plus the sample count.
///
/// Computed once per fingerprint in O(n), it yields [`stretch_lower_bound`]
/// in O(1) per pair — cheap enough to precede every full Eq. (10)
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StretchHull {
    /// West edge of the hull, meters.
    pub x_min: i64,
    /// East edge (exclusive) of the hull, meters.
    pub x_end: i64,
    /// South edge of the hull, meters.
    pub y_min: i64,
    /// North edge (exclusive) of the hull, meters.
    pub y_end: i64,
    /// Start of the hull's time window, minutes.
    pub t_min: i64,
    /// End (exclusive) of the hull's time window, minutes.
    pub t_end: i64,
    /// Number of samples summarized.
    pub len: usize,
}

impl StretchHull {
    /// Computes the hull of a fingerprint.
    pub fn of(fp: &Fingerprint) -> Self {
        Self::of_seq(fp.samples())
    }

    /// Computes the hull of any non-empty sample sequence.
    pub fn of_seq<S: SampleSeq>(samples: S) -> Self {
        let first = samples.get(0);
        let mut hull = Self {
            x_min: first.x,
            x_end: first.x_end(),
            y_min: first.y,
            y_end: first.y_end(),
            t_min: i64::from(first.t),
            t_end: first.t_end() as i64,
            len: samples.len(),
        };
        for i in 1..samples.len() {
            let s = samples.get(i);
            hull.x_min = hull.x_min.min(s.x);
            hull.x_end = hull.x_end.max(s.x_end());
            hull.y_min = hull.y_min.min(s.y);
            hull.y_end = hull.y_end.max(s.y_end());
            hull.t_min = hull.t_min.min(i64::from(s.t));
            hull.t_end = hull.t_end.max(s.t_end() as i64);
        }
        hull
    }

    /// The union of two hulls, with `len` the sample count of the merged
    /// fingerprint it summarizes.
    ///
    /// This is the incremental-maintenance primitive of the merge loop:
    /// when a GLOVE merge suppresses no samples, every merged sample is the
    /// bounding box of a group containing at least one sample from each
    /// parent region it covers, and every parent sample is covered by some
    /// merged sample — so the merged fingerprint's hull is *exactly* the
    /// union of the parents' hulls and needs no O(n) recomputation. (When
    /// the merge does suppress samples, the union is merely a superset and
    /// the caller must fall back to [`StretchHull::of`]: a too-large hull
    /// would weaken the bound's admissibility guarantee in the other
    /// direction — the bound stays sound, but the equality invariant the
    /// incremental path relies on would silently drift.)
    pub fn union(&self, other: &Self, len: usize) -> Self {
        Self {
            x_min: self.x_min.min(other.x_min),
            x_end: self.x_end.max(other.x_end),
            y_min: self.y_min.min(other.y_min),
            y_end: self.y_end.max(other.y_end),
            t_min: self.t_min.min(other.t_min),
            t_end: self.t_end.max(other.t_end),
            len,
        }
    }
}

/// Gap between two half-open intervals `[a0, a1)` and `[b0, b1)`; 0 when
/// they overlap or touch.
#[inline]
fn interval_gap(a0: i64, a1: i64, b0: i64, b1: i64) -> i64 {
    (b0 - a1).max(a0 - b1).max(0)
}

/// An admissible lower bound on the fingerprint stretch effort `Δ_ab` of
/// Eq. (10), computed from the two hull summaries alone.
///
/// Derivation (see DESIGN.md "Admissible pair pruning" for the long form):
/// for any samples `s ∈ a`, `q ∈ b`, the raw per-axis covering stretch of
/// Eqs. (4)–(9) is, in each direction, at least the gap between the two
/// intervals on that axis; since the direction weights `n_a/(n_a+n_b)` and
/// `n_b/(n_a+n_b)` sum to 1, the weighted average is also at least the gap
/// (this holds with population weighting on or off). Samples lie inside
/// their fingerprint's hull and set distances shrink as sets grow, so every
/// per-sample gap is at least the hull gap. Capping (`min(·, 1)`) is
/// monotone, hence
///
/// ```text
/// δ_ab(i,j) ≥ w_σ·min((gx+gy)/φmax_σ, 1) + w_τ·min(gt/φmax_τ, 1)
/// ```
///
/// for every sample pair, where `gx, gy, gt` are the per-axis hull gaps.
/// `Δ_ab` averages per-sample *minima* of `δ`, each of which obeys the same
/// bound, so `Δ_ab` does too — in both orientations of Eq. (10) and for the
/// equal-length average, making the bound independent of which fingerprint
/// is longer.
///
/// The bound is exactly 0 when the hulls overlap on every axis, so it only
/// ever *prunes* genuinely separated pairs; it never misranks a pair.
#[inline]
pub fn stretch_lower_bound(a: &StretchHull, b: &StretchHull, cfg: &StretchConfig) -> f64 {
    let gx = interval_gap(a.x_min, a.x_end, b.x_min, b.x_end);
    let gy = interval_gap(a.y_min, a.y_end, b.y_min, b.y_end);
    let gt = interval_gap(a.t_min, a.t_end, b.t_min, b.t_end);
    if gx == 0 && gy == 0 && gt == 0 {
        return 0.0;
    }
    let phi_s = ((gx + gy) as f64 / cfg.phi_max_space_m).min(1.0);
    let phi_t = (gt as f64 / cfg.phi_max_time_min).min(1.0);
    cfg.w_space * phi_s + cfg.w_time * phi_t
}

/// Naive reference implementation of Eq. (10) (no pruning). Exposed for
/// testing and benchmarking the pruned version against.
pub fn fingerprint_stretch_naive(a: &Fingerprint, b: &Fingerprint, cfg: &StretchConfig) -> f64 {
    let directed = |long: &Fingerprint, short: &Fingerprint| -> f64 {
        let n_long = long.multiplicity() as f64;
        let n_short = short.multiplicity() as f64;
        let mut total = 0.0;
        for s in long.samples() {
            let mut best = f64::INFINITY;
            for q in short.samples() {
                let d = sample_stretch(s, n_long, q, n_short, cfg);
                if d < best {
                    best = d;
                }
            }
            total += best;
        }
        total / long.len() as f64
    };
    match a.len().cmp(&b.len()) {
        std::cmp::Ordering::Greater => directed(a, b),
        std::cmp::Ordering::Less => directed(b, a),
        std::cmp::Ordering::Equal => (directed(a, b) + directed(b, a)) / 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Fingerprint;

    fn cfg() -> StretchConfig {
        StretchConfig::default()
    }

    #[test]
    fn identical_samples_have_zero_stretch() {
        let s = Sample::point(1_000, 2_000, 500);
        assert_eq!(sample_stretch_unweighted(&s, &s, &cfg()), 0.0);
    }

    #[test]
    fn stretch_is_symmetric_for_equal_weights() {
        let a = Sample::point(0, 0, 10);
        let b = Sample::new(5_000, -2_000, 300, 700, 100, 45).unwrap();
        let d_ab = sample_stretch_unweighted(&a, &b, &cfg());
        let d_ba = sample_stretch_unweighted(&b, &a, &cfg());
        assert!((d_ab - d_ba).abs() < 1e-12);
    }

    #[test]
    fn stretch_is_in_unit_interval_and_saturates() {
        let a = Sample::point(0, 0, 0);
        // Farther than both caps: delta saturates at exactly 1.
        let b = Sample::point(1_000_000, 1_000_000, 10_000);
        let d = sample_stretch_unweighted(&a, &b, &cfg());
        assert_eq!(d, 1.0);
    }

    #[test]
    fn disjoint_boxes_spatial_stretch_matches_hand_computation() {
        // a = [0,100)x[0,100), b = [300,400)x[0,100): covering b from a needs
        // r = 300 east; covering a from b needs l = 300 west. Equal weights
        // -> raw spatial stretch = (300 + 300)/2 = 300.
        let a = Sample::point(0, 0, 0);
        let b = Sample::point(300, 0, 0);
        let raw = raw_spatial_stretch_m(&a, 1.0, &b, 1.0);
        assert_eq!(raw, 300.0);
    }

    #[test]
    fn overlapping_boxes_cost_less_than_disjoint() {
        let a = Sample::new(0, 0, 200, 200, 0, 1).unwrap();
        let overlapping = Sample::new(100, 0, 200, 200, 0, 1).unwrap();
        let disjoint = Sample::new(400, 0, 200, 200, 0, 1).unwrap();
        let d_overlap = sample_stretch_unweighted(&a, &overlapping, &cfg());
        let d_disjoint = sample_stretch_unweighted(&a, &disjoint, &cfg());
        assert!(d_overlap < d_disjoint);
    }

    #[test]
    fn containment_still_costs_the_container_side() {
        // b inside a: a needs no growth, but b must grow to cover a, so the
        // weighted effort is positive (Eq. 4 sums both directions).
        let a = Sample::new(0, 0, 1_000, 1_000, 0, 60).unwrap();
        let b = Sample::new(400, 400, 100, 100, 20, 1).unwrap();
        let d = sample_stretch_unweighted(&a, &b, &cfg());
        assert!(d > 0.0);
        // With all the weight on a (na >> nb), the effort vanishes because
        // a's users lose nothing.
        let d_weighted = sample_stretch(&a, 1e9, &b, 1.0, &cfg());
        assert!(d_weighted < 1e-6);
    }

    #[test]
    fn population_weighting_can_be_ablated() {
        // With weighting off, swapping the multiplicities changes nothing
        // and the result equals the unweighted effort.
        let unweighted_cfg = StretchConfig {
            population_weighting: false,
            ..StretchConfig::default()
        };
        let a = Sample::point(0, 0, 0);
        let b = Sample::new(-500, -500, 2_000, 2_000, 0, 1).unwrap();
        let d1 = sample_stretch(&a, 9.0, &b, 1.0, &unweighted_cfg);
        let d2 = sample_stretch(&a, 1.0, &b, 9.0, &unweighted_cfg);
        let d3 = sample_stretch_unweighted(&a, &b, &unweighted_cfg);
        assert_eq!(d1, d2);
        assert_eq!(d1, d3);
        // And with weighting on the two differ (covered by the test below).
    }

    #[test]
    fn weights_shift_cost_toward_larger_group() {
        // Stretching a group of 9 users costs more than stretching 1 user:
        // the effort of the direction affecting more users dominates.
        let a = Sample::point(0, 0, 0); // would need to grow a lot
        let b = Sample::new(-500, -500, 2_000, 2_000, 0, 1).unwrap(); // covers a
                                                                      // a covers nothing of b; b already covers a.
        let d_a_heavy = sample_stretch(&a, 9.0, &b, 1.0, &cfg());
        let d_b_heavy = sample_stretch(&a, 1.0, &b, 9.0, &cfg());
        // When a (the sample that must grow) carries 9 users, cost is higher.
        assert!(d_a_heavy > d_b_heavy);
    }

    #[test]
    fn temporal_stretch_hand_computation() {
        // a = [0, 1), b = [60, 61): gap covering needs 60 min on each side's
        // account; equal weights -> raw = (60 + 60)/2 = 60.
        let a = Sample::point(0, 0, 0);
        let b = Sample::point(0, 0, 60);
        assert_eq!(raw_temporal_stretch_min(&a, 1.0, &b, 1.0), 60.0);
        // delta = 0.5 * 60/480 = 0.0625
        let d = sample_stretch_unweighted(&a, &b, &cfg());
        assert!((d - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn time_gap_is_zero_for_overlap() {
        let a = Sample::new(0, 0, 100, 100, 10, 20).unwrap();
        let b = Sample::new(0, 0, 100, 100, 25, 20).unwrap();
        assert_eq!(time_gap_min(&a, &b), 0.0);
        let c = Sample::new(0, 0, 100, 100, 100, 5).unwrap();
        assert_eq!(time_gap_min(&a, &c), 70.0);
        assert_eq!(time_gap_min(&c, &a), 70.0);
    }

    #[test]
    fn fingerprint_stretch_zero_on_identical() {
        let f = Fingerprint::from_points(0, &[(0, 0, 10), (5_000, 3_000, 400)]).unwrap();
        let g = Fingerprint::with_users(vec![1], f.samples().to_vec()).unwrap();
        assert_eq!(fingerprint_stretch(&f, &g, &cfg()), 0.0);
    }

    #[test]
    fn fingerprint_stretch_averages_over_longer() {
        // long has 2 samples; one matches short exactly (δ=0), the other is
        // 60 min away in time only (δ=0.0625). Average = 0.03125.
        let long = Fingerprint::from_points(0, &[(0, 0, 0), (0, 0, 60)]).unwrap();
        let short = Fingerprint::from_points(1, &[(0, 0, 0)]).unwrap();
        let d = fingerprint_stretch(&long, &short, &cfg());
        assert!((d - 0.03125).abs() < 1e-12);
        // Orientation is by length, so the argument order must not matter.
        let d2 = fingerprint_stretch(&short, &long, &cfg());
        assert_eq!(d, d2);
    }

    #[test]
    fn pruned_matches_naive_on_structured_data() {
        let cfg = cfg();
        let a = Fingerprint::from_points(
            0,
            &[
                (0, 0, 5),
                (1_000, 0, 100),
                (2_000, 500, 101),
                (0, 0, 700),
                (9_000, 9_000, 1_440),
                (0, 0, 10_000),
            ],
        )
        .unwrap();
        let b = Fingerprint::from_points(
            1,
            &[
                (50, 50, 8),
                (1_200, 100, 95),
                (-4_000, 2_000, 650),
                (100, 0, 9_500),
            ],
        )
        .unwrap();
        let pruned = fingerprint_stretch(&a, &b, &cfg);
        let naive = fingerprint_stretch_naive(&a, &b, &cfg);
        assert!((pruned - naive).abs() < 1e-12);
    }

    #[test]
    fn hull_lower_bound_is_admissible_on_structured_data() {
        let cfg = cfg();
        // Spatially and temporally separated fingerprints: the bound is
        // positive and never exceeds the true effort.
        let a = Fingerprint::from_points(0, &[(0, 0, 10), (2_000, 500, 200)]).unwrap();
        let b = Fingerprint::from_points(1, &[(60_000, 0, 5_000), (64_000, 900, 5_400)]).unwrap();
        let ha = StretchHull::of(&a);
        let hb = StretchHull::of(&b);
        let lb = stretch_lower_bound(&ha, &hb, &cfg);
        let exact = fingerprint_stretch(&a, &b, &cfg);
        assert!(lb > 0.0);
        assert!(
            lb <= exact + 1e-12,
            "bound {lb} must not exceed the true effort {exact}"
        );
        // Symmetric in its arguments.
        assert_eq!(lb, stretch_lower_bound(&hb, &ha, &cfg));
    }

    #[test]
    fn hull_lower_bound_is_zero_for_overlapping_hulls() {
        let cfg = cfg();
        let a = Fingerprint::from_points(0, &[(0, 0, 10), (5_000, 5_000, 900)]).unwrap();
        let b = Fingerprint::from_points(1, &[(2_500, 2_500, 500)]).unwrap();
        let lb = stretch_lower_bound(&StretchHull::of(&a), &StretchHull::of(&b), &cfg);
        assert_eq!(lb, 0.0);
    }

    #[test]
    fn hull_covers_every_sample() {
        let f = Fingerprint::from_points(3, &[(100, -300, 7), (-2_000, 900, 1_440)]).unwrap();
        let h = StretchHull::of(&f);
        assert_eq!(h.len, 2);
        for s in f.samples() {
            assert!(h.x_min <= s.x && s.x_end() <= h.x_end);
            assert!(h.y_min <= s.y && s.y_end() <= h.y_end);
            assert!(h.t_min <= i64::from(s.t) && s.t_end() as i64 <= h.t_end);
        }
    }

    #[test]
    fn cutoff_infinity_is_bitwise_exact() {
        // Unequal and equal lengths, both inner paths trivially covered by
        // structured data; the exact path of the cutoff evaluator must be
        // bit-identical to the plain one.
        let a = Fingerprint::from_points(0, &[(0, 0, 5), (3_000, 200, 300), (0, 0, 900)]).unwrap();
        let b = Fingerprint::from_points(1, &[(100, 0, 20), (2_500, 0, 310)]).unwrap();
        let c = Fingerprint::from_points(2, &[(40, 80, 25), (2_600, -100, 330)]).unwrap();
        for (x, y) in [(&a, &b), (&b, &a), (&b, &c)] {
            let exact = fingerprint_stretch(x, y, &cfg());
            match fingerprint_stretch_cutoff(x, y, &cfg(), f64::INFINITY) {
                StretchEval::Exact(d) => {
                    assert_eq!(d.to_bits(), exact.to_bits(), "must be bit-identical")
                }
                StretchEval::AtLeast(_) => panic!("infinite cutoff must never abandon"),
            }
        }
    }

    #[test]
    fn cutoff_abandonment_is_admissible_and_strict() {
        let cfg = cfg();
        let a = Fingerprint::from_points(0, &[(0, 0, 10), (500, 0, 2_000), (0, 0, 4_000)]).unwrap();
        let b = Fingerprint::from_points(1, &[(90_000, 0, 10_000)]).unwrap();
        let exact = fingerprint_stretch(&a, &b, &cfg);
        assert!(exact > 0.5);
        // A cutoff below the true effort: abandonment must return a lower
        // bound that is strictly above the cutoff yet never above the truth.
        match fingerprint_stretch_cutoff(&a, &b, &cfg, 0.1) {
            StretchEval::AtLeast(lb) => {
                assert!(lb > 0.1);
                assert!(lb <= exact + 1e-12);
            }
            StretchEval::Exact(d) => assert_eq!(d, exact, "finishing anyway is also fine"),
        }
        // A cutoff that ties the true effort must NOT abandon (strictness
        // preserves tie-breaking downstream).
        match fingerprint_stretch_cutoff(&a, &b, &cfg, exact) {
            StretchEval::Exact(d) => assert_eq!(d.to_bits(), exact.to_bits()),
            StretchEval::AtLeast(lb) => {
                panic!("tie with the cutoff must evaluate exactly, got AtLeast({lb})")
            }
        }
    }

    #[test]
    fn cutoff_equal_length_bounds_stay_admissible() {
        let cfg = cfg();
        let a = Fingerprint::from_points(0, &[(0, 0, 10), (1_000, 0, 5_000)]).unwrap();
        let b = Fingerprint::from_points(1, &[(70_000, 0, 10), (71_000, 0, 5_000)]).unwrap();
        let exact = fingerprint_stretch(&a, &b, &cfg);
        for cutoff in [0.0, 0.1, 0.24, 0.4] {
            match fingerprint_stretch_cutoff(&a, &b, &cfg, cutoff) {
                StretchEval::AtLeast(lb) => {
                    assert!(lb > cutoff, "abandonment must prove the cutoff exceeded");
                    assert!(lb <= exact + 1e-12, "bound {lb} exceeds exact {exact}");
                }
                StretchEval::Exact(d) => assert_eq!(d.to_bits(), exact.to_bits()),
            }
        }
    }

    #[test]
    fn hull_union_matches_recomputation() {
        let a = Fingerprint::from_points(0, &[(0, 0, 10), (5_000, -2_000, 700)]).unwrap();
        let b = Fingerprint::from_points(1, &[(-3_000, 9_000, 40), (200, 100, 1_440)]).unwrap();
        let mut samples = a.samples().to_vec();
        samples.extend_from_slice(b.samples());
        let merged = Fingerprint::with_users(vec![0, 1], samples).unwrap();
        let union = StretchHull::of(&a).union(&StretchHull::of(&b), merged.len());
        assert_eq!(union, StretchHull::of(&merged));
    }

    #[test]
    fn decomposed_total_matches_plain() {
        let a = Fingerprint::from_points(0, &[(0, 0, 5), (3_000, 200, 300), (0, 0, 900)]).unwrap();
        let b = Fingerprint::from_points(1, &[(100, 0, 20), (2_500, 0, 310)]).unwrap();
        let (total, parts) = fingerprint_stretch_decomposed(&a, &b, &cfg());
        assert_eq!(parts.len(), 3);
        let recomputed: f64 = parts.iter().map(|(s, t)| s + t).sum::<f64>() / 3.0;
        assert!((total - recomputed).abs() < 1e-12);
        let plain = fingerprint_stretch(&a, &b, &cfg());
        assert!((total - plain).abs() < 1e-12);
    }
}
