//! GLOVE — Algorithm 1 of §6.1.
//!
//! The algorithm greedily builds k-anonymous groups:
//!
//! 1. compute the fingerprint stretch effort (Eq. 10) between all pairs of
//!    fingerprints;
//! 2. repeatedly take the two not-yet-k-anonymized fingerprints at minimum
//!    effort, merge them (§6.2), and put the merged fingerprint back —
//!    recomputing its efforts to everything still in play — until it hides
//!    at least `k` subscribers;
//! 3. stop when no two under-`k` fingerprints remain.
//!
//! Attaining optimal k-anonymity is NP-hard [Bettini et al., SDM'05]; GLOVE
//! is a polynomial greedy approximation, quadratic in both the number of
//! users and the fingerprint length (§6.3).
//!
//! ### Implementation notes
//!
//! * The pairwise matrix is stored triangularly over an append-only slot
//!   arena as struct-of-arrays pages (`PairPage`): one `f64` value column
//!   and one `u8` tier column per row, so scans touch dense homogeneous
//!   memory. Merged inputs retire, merged outputs append (slots that leave
//!   the game keep an empty, lazily absent page). The arena compacts itself
//!   when retired slots dominate, bounding memory at O(active²).
//! * Each active slot caches its row minimum, so one iteration costs O(A)
//!   for extraction plus O(A·n̄²) for the new row (A = active slots) — the
//!   complexity stated in §6.3. The per-round extraction scan itself runs
//!   as a deterministic parallel min-reduction once the active set is large
//!   enough (see `global_best`).
//! * Matrix construction and row recomputation fan out over
//!   [`crate::parallel`], the stand-in for the paper's GPU kernel.
//! * With [`GloveConfig::pruning`] on (the default), matrix cells hold an
//!   admissible lower bound on Eq. 10 until an exact value is actually
//!   needed to decide a row minimum. Bounds escalate through a cascade of
//!   tiers (see DESIGN.md "Distance cascade"): tier 0 is the bit-packed
//!   popcount signature bound of [`crate::compact`], tier 1 the hull bound
//!   of [`crate::stretch::stretch_lower_bound`], tier 2 the exact — but
//!   cutoff-aware, early-abandoning — Eq. 10 evaluation of
//!   [`crate::stretch::fingerprint_stretch_cutoff`]. [`GloveConfig::cascade`]
//!   gates tiers 0 and the early abandonment, and the loop additionally
//!   engages them only when fingerprints are long enough for the filter to
//!   pay for itself (`CASCADE_MIN_MEAN_SAMPLES`); otherwise it degrades to the
//!   plain hull-bound pruning of earlier revisions. Either way the
//!   published output is byte-identical to the unpruned path.
//! * Hull summaries are maintained *incrementally*: a merge that suppresses
//!   no samples unions the parents' hulls in O(1) instead of rescanning the
//!   merged fingerprint ([`StretchHull::union`]); suppressing merges fall
//!   back to recomputation.
//! * At most one fingerprint can be left with multiplicity < `k` when the
//!   loop exhausts mergeable pairs; [`ResidualPolicy`] decides its fate
//!   (the paper does not specify — see DESIGN.md).
//! * [`GloveConfig::shard`] routes the run through [`crate::shard`], which
//!   partitions the dataset and runs this loop per shard.

use crate::compact::{
    signature_lower_bound, CompactSignature, SampleSpan, SampleStore, SignatureSpace, StoreSlice,
};
use crate::config::{GloveConfig, ResidualPolicy, StretchConfig};
use crate::error::GloveError;
use crate::ledger::MemoryLedger;
use crate::merge::merge_fingerprints;
use crate::model::{Dataset, Fingerprint, UserId};
use crate::parallel::{effective_threads, par_map};
use crate::policy::KPlan;
use crate::reshape::reshape_suppressed;
use crate::shard::ShardStat;
use crate::stretch::{
    fingerprint_stretch_cutoff_resume_seq, fingerprint_stretch_seq, stretch_lower_bound,
    StretchEval, StretchHull, StretchOperand, StretchProgress,
};
use crate::suppress::SuppressionLedger;
use std::borrow::Cow;
use std::time::Instant;

/// Statistics of one GLOVE run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GloveStats {
    /// Number of pairwise merges performed.
    pub merges: u64,
    /// Number of fingerprint-pair stretch efforts computed *to completion*
    /// (full Eq. 10 evaluations) — the unit of the paper's §6.3 throughput
    /// figure. With pruning on, only pairs no cascade tier could rule out
    /// are counted here; the rest land in `pairs_pruned`.
    pub pairs_computed: u64,
    /// Distinct pairs whose full Eq. 10 evaluation was never needed: some
    /// tier of the admissible distance cascade ruled them out of every row
    /// minimum they participated in (0 when pruning is disabled). Always
    /// equals `pairs_skipped_tier0 + pairs_skipped_tier1 + pairs_abandoned`,
    /// and `pairs_computed + pairs_pruned` equals the number of pairs the
    /// unpruned kernel would have evaluated.
    pub pairs_pruned: u64,
    /// Pairs dismissed by the tier-0 bit-packed signature bound alone:
    /// their hull bound was never even computed. 0 when
    /// [`GloveConfig::cascade`] is off or the run's mean fingerprint length
    /// sits below the engagement gate (the hull tier then fields every
    /// pair). Pairs involving an already-k-anonymous input fingerprint are
    /// counted here in cascade runs — no tier ever needs to look at them.
    pub pairs_skipped_tier0: u64,
    /// Pairs dismissed by the tier-1 hull bound: promoted past the
    /// signature tier but never worth starting an exact evaluation.
    pub pairs_skipped_tier1: u64,
    /// Pairs whose exact evaluation was *started* but abandoned early (tier
    /// 2): the partial Eq. 10 mean proved them strictly above every cutoff
    /// they were ever tested against, so the evaluation never ran to
    /// completion. 0 when [`GloveConfig::cascade`] is off or not engaged.
    pub pairs_abandoned: u64,
    /// Per-shard breakdown when the run was sharded (empty for monolithic
    /// runs).
    pub per_shard: Vec<ShardStat>,
    /// Suppression bookkeeping (§7.1); all-zero when suppression is off.
    pub suppressed: SuppressionLedger,
    /// Samples absorbed by the final reshaping pass (§6.2).
    pub reshaped_samples: u64,
    /// Fingerprints (and their subscribers) dropped by
    /// [`ResidualPolicy::Suppress`].
    pub discarded_fingerprints: u64,
    /// Subscribers dropped with those fingerprints.
    pub discarded_users: u64,
    /// Peak memory accounting of the run: arena bytes, columnar store
    /// bytes/pages and process peak-RSS (summed across shards for sharded
    /// runs, RSS excepted — see [`MemoryLedger::absorb`]).
    pub ledger: MemoryLedger,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_s: f64,
}

impl GloveStats {
    /// Total pair decisions made: every candidate pair was either evaluated
    /// in full (`pairs_computed`) or dismissed by an admissible cascade
    /// tier (`pairs_pruned`). This is the work the unpruned kernel would
    /// have evaluated exactly, making throughput figures comparable across
    /// pruning configurations.
    pub fn candidate_pairs(&self) -> u64 {
        self.pairs_computed + self.pairs_pruned
    }

    /// Pair-decision throughput in pairs/second — comparable to the paper's
    /// "20–50,000 fingerprint pairs per second" (§6.3). Counts
    /// [`candidate_pairs`](Self::candidate_pairs), not just full
    /// evaluations: under the distance cascade most candidates are resolved
    /// by a cheap admissible bound, and each such resolution is a unit of
    /// useful work the paper's kernel would have spent a full evaluation
    /// on.
    pub fn pairs_per_second(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.candidate_pairs() as f64 / self.elapsed_s
        } else {
            0.0
        }
    }
}

/// Result of a GLOVE run: the anonymized dataset plus run statistics.
#[derive(Debug, Clone)]
pub struct GloveOutput {
    /// The anonymized dataset: every fingerprint hides ≥ `k` subscribers.
    pub dataset: Dataset,
    /// Run statistics.
    pub stats: GloveStats,
}

/// State of a slot in the arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotState {
    /// Multiplicity < k: participates in merging.
    Active,
    /// Multiplicity ≥ k: finished, waits for publication.
    Done,
    /// Consumed by a merge.
    Retired,
}

/// Cached minimum of a slot's matrix row over *active* partners.
#[derive(Clone, Copy, Debug)]
struct RowMin {
    value: f64,
    partner: usize,
}

const NO_PARTNER: usize = usize::MAX;

/// Cell tiers of the distance cascade, in escalation order. A cell only
/// ever moves to a higher tier, and its value is an admissible lower bound
/// on the pair's Eq. 10 effort at every tier below [`TIER_EXACT`].
const TIER_SIG: u8 = 0;
/// The cell holds the hull-derived lower bound (tier 1).
const TIER_HULL: u8 = 1;
/// The cell holds a partial-evaluation lower bound: an exact evaluation was
/// started and abandoned (tier 2, unfinished).
const TIER_PARTIAL: u8 = 2;
/// The cell holds the exact Eq. 10 effort (or `+∞` for cells that can never
/// be read again).
const TIER_EXACT: u8 = 3;

/// One triangular matrix row in struct-of-arrays layout: the value column
/// and the tier column live in separate dense vectors, so bound-only scans
/// stream `f64`s and tier tests stream bytes instead of interleaving both
/// through one encoded cell. The progress column carries the saved prefix
/// of partially evaluated cells so a re-escalated cell resumes its exact
/// scan instead of restarting from sample zero; unpruned runs leave it
/// empty (every cell is exact on creation, so it is never read).
#[derive(Debug, Clone, Default)]
struct PairPage {
    val: Vec<f64>,
    tier: Vec<u8>,
    prog: Vec<StretchProgress>,
}

/// Transition counters of the distance cascade. Counting *transitions*
/// (rather than scanning cell states at the end) keeps the attribution
/// exact across arena compactions, which overwrite dead cells.
///
/// Every created cell ends in exactly one derived bucket:
/// `created = skipped_tier0 + skipped_tier1 + abandoned + exact`, with
/// `exact = exact_from_hull + exact_from_partial` the cells whose full
/// evaluation completed (counted in `GloveStats::pairs_computed`).
#[derive(Debug, Clone, Copy, Default)]
struct CascadeCounters {
    /// Bound cells created (every pair the unpruned kernel would evaluate).
    created: u64,
    /// Cells that reached the hull tier (in hull-only runs, all of them).
    hulled: u64,
    /// Cells whose exact evaluation was started and abandoned at least
    /// once.
    entered_partial: u64,
    /// Cells evaluated to completion directly from the hull tier.
    exact_from_hull: u64,
    /// Cells evaluated to completion after at least one abandonment.
    exact_from_partial: u64,
}

impl CascadeCounters {
    fn absorb(&mut self, o: CascadeCounters) {
        self.created += o.created;
        self.hulled += o.hulled;
        self.entered_partial += o.entered_partial;
        self.exact_from_hull += o.exact_from_hull;
        self.exact_from_partial += o.exact_from_partial;
    }

    /// Cells the signature bound dismissed before a hull bound existed.
    fn skipped_tier0(&self) -> u64 {
        self.created - self.hulled
    }

    /// Cells the hull bound dismissed before an exact evaluation started.
    fn skipped_tier1(&self) -> u64 {
        self.hulled - self.entered_partial - self.exact_from_hull
    }

    /// Cells whose started evaluation never ran to completion.
    fn abandoned(&self) -> u64 {
        self.entered_partial - self.exact_from_partial
    }
}

/// Read/write access to one matrix row, abstracting over rows that live in
/// the arena's triangular pages versus local rows still under construction.
trait CellRow {
    fn get(&self, j: usize) -> (f64, u8);
    fn set(&mut self, j: usize, val: f64, tier: u8);
    /// Saved evaluation prefix of the cell, for resumable tier-2 scans.
    fn progress(&mut self, j: usize) -> &mut StretchProgress;
}

/// A row of the installed triangular matrix: cell `(i, j)` lives in
/// `pages[max(i,j)]` at column `min(i,j)`.
struct TriRow<'a> {
    pages: &'a mut [PairPage],
    i: usize,
}

impl CellRow for TriRow<'_> {
    #[inline]
    fn get(&self, j: usize) -> (f64, u8) {
        debug_assert_ne!(self.i, j);
        let (r, c) = if self.i > j { (self.i, j) } else { (j, self.i) };
        (self.pages[r].val[c], self.pages[r].tier[c])
    }

    #[inline]
    fn set(&mut self, j: usize, val: f64, tier: u8) {
        debug_assert_ne!(self.i, j);
        let (r, c) = if self.i > j { (self.i, j) } else { (j, self.i) };
        self.pages[r].val[c] = val;
        self.pages[r].tier[c] = tier;
    }

    #[inline]
    fn progress(&mut self, j: usize) -> &mut StretchProgress {
        debug_assert_ne!(self.i, j);
        let (r, c) = if self.i > j { (self.i, j) } else { (j, self.i) };
        &mut self.pages[r].prog[c]
    }
}

/// A row under construction (matrix build or merged-row fill), not yet
/// installed in the arena.
struct LocalRow<'a> {
    val: &'a mut [f64],
    tier: &'a mut [u8],
    prog: &'a mut [StretchProgress],
}

impl CellRow for LocalRow<'_> {
    #[inline]
    fn get(&self, j: usize) -> (f64, u8) {
        (self.val[j], self.tier[j])
    }

    #[inline]
    fn set(&mut self, j: usize, val: f64, tier: u8) {
        self.val[j] = val;
        self.tier[j] = tier;
    }

    #[inline]
    fn progress(&mut self, j: usize) -> &mut StretchProgress {
        &mut self.prog[j]
    }
}

/// The cascade walk shared by matrix construction, merged-row filling and
/// row-minimum rescans: sorts `cand` by ascending `(bound, j)` and
/// escalates each candidate whose bound could still produce — or tie — the
/// minimum through the remaining tiers, folding completed evaluations into
/// `best` under the `(value, smaller j)` rule.
///
/// Stops at the first stored bound strictly above the current best value:
/// every remaining candidate's exact effort is ≥ that bound, so it can
/// neither win nor tie. Inside the walk, a tier-0 candidate is first
/// promoted to the max of its signature and hull bounds (both admissible,
/// neither dominating: the hull sees convex extents, the signature sees
/// occupancy holes); if that already rules it out the candidate is skipped
/// without touching the fingerprints. Survivors are evaluated with the current best as the
/// abandonment cutoff (when `early_abandon` is on): an abandoned candidate
/// proved itself *strictly* worse than the best, so it cannot win or tie,
/// and it leaves behind both a tighter admissible bound for later rounds
/// and its saved evaluation prefix, so a re-escalation resumes the exact
/// scan where it stopped instead of restarting from sample zero. A
/// candidate whose exact effort equals the final minimum
/// always survives every tier and is evaluated in full — which keeps
/// tie-breaking, and hence the published output, byte-identical to the
/// unpruned scan.
#[allow(clippy::too_many_arguments)]
fn cascade_walk<R: CellRow>(
    mut cand: Vec<(f64, usize)>,
    best: &mut RowMin,
    row: &mut R,
    mut hull_bound: impl FnMut(usize) -> f64,
    mut eval: impl FnMut(usize, f64, &mut StretchProgress) -> StretchEval,
    early_abandon: bool,
    counters: &mut CascadeCounters,
    computed: &mut u64,
) {
    cand.sort_unstable_by(|a, b| a.partial_cmp(b).expect("bounds are finite"));
    for &(bound, j) in &cand {
        if bound > best.value {
            break;
        }
        let (mut val, mut tier) = row.get(j);
        if tier == TIER_SIG {
            counters.hulled += 1;
            // Both bounds are admissible but incomparable: the hull bound
            // sees the convex extent (tight for separated clouds), the
            // signature bound sees occupancy holes (tight for interleaved
            // extents with disjoint cells) — so keep the larger.
            val = hull_bound(j).max(val);
            tier = TIER_HULL;
            row.set(j, val, tier);
            if val > best.value {
                continue;
            }
        }
        if tier != TIER_EXACT {
            let cutoff = if early_abandon {
                best.value
            } else {
                f64::INFINITY
            };
            match eval(j, cutoff, row.progress(j)) {
                StretchEval::Exact(d) => {
                    if tier == TIER_PARTIAL {
                        counters.exact_from_partial += 1;
                    } else {
                        counters.exact_from_hull += 1;
                    }
                    *computed += 1;
                    val = d;
                    row.set(j, d, TIER_EXACT);
                }
                StretchEval::AtLeast(p) => {
                    if tier != TIER_PARTIAL {
                        counters.entered_partial += 1;
                    }
                    row.set(j, p, TIER_PARTIAL);
                    continue;
                }
            }
        }
        if val < best.value || (val == best.value && j < best.partner) {
            *best = RowMin {
                value: val,
                partner: j,
            };
        }
    }
}

/// Minimum mean samples per fingerprint for the distance cascade to
/// engage. The tier-0 signature machinery trades a fixed per-cell cost
/// (bitmap builds, XOR/popcount dilation probes, suffix-floor bookkeeping)
/// against the exact evaluations it avoids — whose cost scales with the
/// *product* of the two fingerprints' lengths. Short fingerprints make the
/// exact kernel cheaper than the filter: on daily metro stream windows
/// (~4 samples per fingerprint) the cascade measures ~0.8x, while on the
/// 600-user batch anchor (~41 samples) it measures ~2.5x. Below this mean
/// the run falls back to the hull-only pruner, which is already within a
/// few percent of optimal there. Purely a performance gate: every tier is
/// an admissible filter, so engagement never changes the published output.
const CASCADE_MIN_MEAN_SAMPLES: usize = 16;

/// Below this many active slots the per-round best-pair extraction stays
/// sequential: [`par_map`] spawns OS threads per call, whose setup cost
/// dwarfs a sub-microsecond scan. Above it, the scan runs as a
/// deterministic parallel min-reduction.
const PAR_SCAN_MIN: usize = 8192;

/// The per-round global best-pair extraction over cached row minima.
///
/// Deterministic min-reduction (documented in DESIGN.md): the active list —
/// kept in ascending slot order by construction — is split at fixed chunk
/// boundaries; each chunk folds locally in slot order under the
/// `(value, smaller slot)` rule, and the chunk winners fold in chunk order
/// under the same rule. Because the comparison is a total lexicographic
/// order on `(value, slot)` and both folds visit candidates in ascending
/// slot order, the result is the unique minimum — identical to the
/// sequential scan, bit for bit, for any thread count.
fn global_best(active: &[usize], row_min: &[RowMin], threads: usize) -> (usize, RowMin) {
    let init = (
        NO_PARTNER,
        RowMin {
            value: f64::INFINITY,
            partner: NO_PARTNER,
        },
    );
    let fold = |acc: (usize, RowMin), i: usize| {
        let rm = row_min[i];
        if rm.value < acc.1.value || (rm.value == acc.1.value && i < acc.0) {
            (i, rm)
        } else {
            acc
        }
    };
    let workers = effective_threads(threads);
    if active.len() < PAR_SCAN_MIN || workers <= 1 {
        return active.iter().fold(init, |acc, &i| fold(acc, i));
    }
    let chunks = workers.min(active.len());
    let chunk_len = active.len().div_ceil(chunks);
    let winners = par_map(chunks, threads, |c| {
        let lo = c * chunk_len;
        let hi = (lo + chunk_len).min(active.len());
        active[lo..hi].iter().fold(init, |acc, &i| fold(acc, i))
    });
    winners.into_iter().fold(init, |acc, w| {
        if w.1.value < acc.1.value || (w.1.value == acc.1.value && w.0 < acc.0) {
            w
        } else {
            acc
        }
    })
}

/// Backing storage of the arena's fingerprints: either the classic
/// one-`Vec<Sample>`-per-fingerprint reference layout, or the columnar
/// [`SampleStore`] whose packed pages the kernels read directly.
///
/// Both layouts expose the same [`StretchOperand<StoreSlice>`] operand, so
/// the hot loop is written once against one concrete type and the published
/// output is byte-identical across layouts (the generic kernels run the
/// same arithmetic over both).
enum SlotSamples {
    /// Reference layout: whole fingerprints, one heap allocation each.
    Reference(Vec<Fingerprint>),
    /// Columnar layout: samples bit-packed in struct-of-arrays pages,
    /// per-slot spans, and the user lists kept out of the hot data.
    Columnar {
        store: SampleStore,
        spans: Vec<SampleSpan>,
        users: Vec<Vec<UserId>>,
    },
}

impl SlotSamples {
    fn of(dataset: &Dataset, columnar: bool) -> Self {
        if columnar {
            let mut store = SampleStore::new();
            let mut spans = Vec::with_capacity(dataset.fingerprints.len());
            let mut users = Vec::with_capacity(dataset.fingerprints.len());
            for fp in &dataset.fingerprints {
                spans.push(store.push(fp.samples()));
                users.push(fp.users().to_vec());
            }
            Self::Columnar {
                store,
                spans,
                users,
            }
        } else {
            Self::Reference(dataset.fingerprints.clone())
        }
    }

    fn len(&self) -> usize {
        match self {
            Self::Reference(fps) => fps.len(),
            Self::Columnar { spans, .. } => spans.len(),
        }
    }

    fn multiplicity(&self, i: usize) -> usize {
        match self {
            Self::Reference(fps) => fps[i].multiplicity(),
            Self::Columnar { users, .. } => users[i].len(),
        }
    }

    /// The kernel operand of slot `i` — one concrete type for both layouts,
    /// so the hot loop needs no generic dispatch of its own.
    #[inline]
    fn operand(&self, i: usize) -> StretchOperand<StoreSlice<'_>> {
        match self {
            Self::Reference(fps) => StretchOperand {
                samples: StoreSlice::wide(fps[i].samples()),
                multiplicity: fps[i].multiplicity(),
            },
            Self::Columnar {
                store,
                spans,
                users,
            } => StretchOperand {
                samples: store.slice(spans[i]),
                multiplicity: users[i].len(),
            },
        }
    }

    /// Slot `i` as a fingerprint: borrowed on the reference path,
    /// materialized bit-identically from the pages on the columnar path.
    fn fingerprint(&self, i: usize) -> Cow<'_, Fingerprint> {
        match self {
            Self::Reference(fps) => Cow::Borrowed(&fps[i]),
            Self::Columnar {
                store,
                spans,
                users,
            } => Cow::Owned(
                Fingerprint::with_users(users[i].clone(), store.materialize(spans[i]))
                    .expect("stored fingerprints preserve the model invariants"),
            ),
        }
    }

    fn push(&mut self, fp: Fingerprint) {
        match self {
            Self::Reference(fps) => fps.push(fp),
            Self::Columnar {
                store,
                spans,
                users,
            } => {
                spans.push(store.push(fp.samples()));
                users.push(fp.users().to_vec());
            }
        }
    }

    fn replace(&mut self, i: usize, fp: Fingerprint) {
        match self {
            Self::Reference(fps) => fps[i] = fp,
            Self::Columnar {
                store,
                spans,
                users,
            } => {
                // The old span's samples become garbage in the store; the
                // next compaction (or run end) drops them.
                spans[i] = store.push(fp.samples());
                users[i] = fp.users().to_vec();
            }
        }
    }

    /// Keeps only `old_ids`, in order — the slot side of arena compaction.
    /// The columnar store is rebuilt densely, dropping retired samples.
    fn compacted(&mut self, old_ids: &[usize]) {
        match self {
            Self::Reference(fps) => {
                let mut out = Vec::with_capacity(old_ids.len());
                for &i in old_ids {
                    out.push(std::mem::replace(
                        &mut fps[i],
                        Fingerprint::with_users(
                            vec![0],
                            vec![crate::model::Sample::point(0, 0, 0)],
                        )
                        .expect("placeholder"),
                    ));
                }
                *fps = out;
            }
            Self::Columnar {
                store,
                spans,
                users,
            } => {
                let live: Vec<SampleSpan> = old_ids.iter().map(|&i| spans[i]).collect();
                let (new_store, new_spans) = store.rebuilt(&live);
                *store = new_store;
                *spans = new_spans;
                *users = old_ids
                    .iter()
                    .map(|&i| std::mem::take(&mut users[i]))
                    .collect();
            }
        }
    }

    /// Bytes held by columnar sample pages (0 on the reference layout,
    /// whose samples are scattered across per-fingerprint allocations).
    fn store_bytes(&self) -> u64 {
        match self {
            Self::Reference(_) => 0,
            Self::Columnar { store, .. } => store.bytes(),
        }
    }

    /// Resident columnar pages (0 on the reference layout).
    fn resident_pages(&self) -> u64 {
        match self {
            Self::Reference(_) => 0,
            Self::Columnar { store, .. } => store.resident_pages(),
        }
    }
}

struct Arena {
    slots: SlotSamples,
    states: Vec<SlotState>,
    /// Per-slot k requirement: the maximum policy k over the slot's member
    /// users. Uniform runs hold `config.k` everywhere; merged slots take
    /// the max of their parents.
    kreq: Vec<usize>,
    /// Per-slot hull summaries feeding the tier-1 bound, maintained
    /// incrementally on merge.
    hulls: Vec<StretchHull>,
    /// Per-slot bit-packed signatures feeding the tier-0 bound; empty when
    /// the cascade is off.
    sigs: Vec<CompactSignature>,
    /// Lower-triangular effort matrix in struct-of-arrays pages:
    /// `pages[i]` holds columns `0..i`.
    pages: Vec<PairPage>,
    row_min: Vec<RowMin>,
    active: Vec<usize>,
    retired_count: usize,
    counters: CascadeCounters,
}

impl Arena {
    #[inline]
    fn cell(&self, i: usize, j: usize) -> (f64, u8) {
        debug_assert_ne!(i, j);
        let (r, c) = if i > j { (i, j) } else { (j, i) };
        (self.pages[r].val[c], self.pages[r].tier[c])
    }

    /// Recomputes the cached row minimum of slot `i` by scanning the active
    /// set, escalating non-exact cells through the cascade in
    /// ascending-bound order until the stored bounds alone rule the
    /// remainder out.
    ///
    /// The result is the exact minimum by `(value, partner)`: every cell
    /// whose exact effort could equal the final minimum survives every tier
    /// and is evaluated before the walk stops, so ties break on the same
    /// partner the unpruned scan would pick.
    fn rescan_row_min(
        &mut self,
        i: usize,
        cfg: &StretchConfig,
        cascade: bool,
        stats: &mut GloveStats,
    ) {
        let mut best = RowMin {
            value: f64::INFINITY,
            partner: NO_PARTNER,
        };
        let mut deferred: Vec<(f64, usize)> = Vec::new();
        for &j in &self.active {
            if j == i {
                continue;
            }
            let (val, tier) = self.cell(i, j);
            if tier == TIER_EXACT {
                if val < best.value || (val == best.value && j < best.partner) {
                    best = RowMin {
                        value: val,
                        partner: j,
                    };
                }
            } else {
                deferred.push((val, j));
            }
        }
        let Arena {
            ref slots,
            ref hulls,
            ref mut pages,
            ref mut counters,
            ..
        } = *self;
        let mut computed = 0u64;
        let mut row = TriRow { pages, i };
        cascade_walk(
            deferred,
            &mut best,
            &mut row,
            |j| stretch_lower_bound(&hulls[i], &hulls[j], cfg),
            |j, cutoff, prog| {
                // Canonical orientation (larger slot first): the saved
                // prefix of an equal-length pair is direction-specific, so
                // every evaluation of one cell must walk the directions in
                // the same order regardless of which row triggered it. The
                // published value is symmetric either way.
                let (r, c) = if i > j { (i, j) } else { (j, i) };
                fingerprint_stretch_cutoff_resume_seq(
                    slots.operand(r),
                    slots.operand(c),
                    cfg,
                    cutoff,
                    prog,
                )
            },
            cascade,
            counters,
            &mut computed,
        );
        stats.pairs_computed += computed;
        self.row_min[i] = best;
    }

    /// Drops retired slots and remaps ids, shrinking the matrix. Cascade
    /// attribution is unaffected: the transition counters live on the arena,
    /// not in the cells this rewrites.
    fn compact(&mut self) {
        let old_ids: Vec<usize> = (0..self.states.len())
            .filter(|&i| self.states[i] != SlotState::Retired)
            .collect();
        let mut remap = vec![usize::MAX; self.states.len()];
        for (new_id, &old_id) in old_ids.iter().enumerate() {
            remap[old_id] = new_id;
        }

        let track_sigs = !self.sigs.is_empty();
        let mut states = Vec::with_capacity(old_ids.len());
        let mut kreq = Vec::with_capacity(old_ids.len());
        let mut hulls = Vec::with_capacity(old_ids.len());
        let mut sigs = Vec::with_capacity(if track_sigs { old_ids.len() } else { 0 });
        let mut pages = Vec::with_capacity(old_ids.len());
        let mut row_min = Vec::with_capacity(old_ids.len());
        for (new_i, &old_i) in old_ids.iter().enumerate() {
            states.push(self.states[old_i]);
            kreq.push(self.kreq[old_i]);
            hulls.push(self.hulls[old_i]);
            if track_sigs {
                sigs.push(self.sigs[old_i]);
            }
            // Only Active–Active cells are ever read again; Done slots
            // appended mid-run have empty rows, so copying their entries
            // would be both wrong and out of bounds.
            let i_active = self.states[old_i] == SlotState::Active;
            // Unpruned runs never track progress (`prog` stays empty), and
            // the empty rows of Done slots appended mid-run have none to
            // copy either; their placeholder cells are never read.
            let track_prog = !self.pages[old_i].prog.is_empty();
            let mut val = Vec::with_capacity(new_i);
            let mut tier = Vec::with_capacity(new_i);
            let mut prog = Vec::with_capacity(new_i);
            for &old_j in &old_ids[..new_i] {
                if i_active && self.states[old_j] == SlotState::Active {
                    let (v, t) = self.cell(old_i, old_j);
                    val.push(v);
                    tier.push(t);
                    prog.push(if track_prog {
                        self.pages[old_i].prog[old_j]
                    } else {
                        StretchProgress::start()
                    });
                } else {
                    val.push(f64::INFINITY);
                    tier.push(TIER_EXACT);
                    prog.push(StretchProgress::start());
                }
            }
            pages.push(PairPage { val, tier, prog });
            let old_min = self.row_min[old_i];
            row_min.push(RowMin {
                value: old_min.value,
                partner: if old_min.partner == NO_PARTNER {
                    NO_PARTNER
                } else {
                    remap[old_min.partner]
                },
            });
        }
        self.active = self.active.iter().map(|&i| remap[i]).collect();
        self.slots.compacted(&old_ids);
        self.states = states;
        self.kreq = kreq;
        self.hulls = hulls;
        self.sigs = sigs;
        self.pages = pages;
        self.row_min = row_min;
        self.retired_count = 0;
    }

    /// Current bytes held by the arena's own structures: matrix pages,
    /// hulls, signatures and cached minima. Sample storage is accounted
    /// separately by the slot layer.
    fn bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for p in &self.pages {
            bytes += (p.val.capacity() * std::mem::size_of::<f64>()
                + p.tier.capacity()
                + p.prog.capacity() * std::mem::size_of::<StretchProgress>())
                as u64;
        }
        bytes += (self.hulls.capacity() * std::mem::size_of::<StretchHull>()) as u64;
        bytes += (self.sigs.capacity() * std::mem::size_of::<CompactSignature>()) as u64;
        bytes += (self.row_min.capacity() * std::mem::size_of::<RowMin>()) as u64;
        bytes +=
            (self.states.capacity() + self.active.capacity() * std::mem::size_of::<usize>()) as u64;
        bytes
    }

    /// Folds the arena's current footprint into the run ledger. Arena and
    /// store memory grow monotonically between compactions, so observing at
    /// build end, just before each compaction, and at loop end captures the
    /// true peaks without per-round scans.
    fn observe(&self, ledger: &mut MemoryLedger) {
        ledger.observe_arena(self.bytes());
        ledger.observe_store(self.slots.store_bytes(), self.slots.resident_pages());
    }
}

/// Runs GLOVE on a dataset, returning the k-anonymized dataset and run
/// statistics.
///
/// When [`GloveConfig::shard`] is set with more than one shard, the run is
/// routed through the sharded engine ([`crate::shard`]); otherwise the
/// monolithic Alg. 1 processes the whole dataset.
///
/// # Errors
///
/// * [`GloveError::InvalidConfig`] for invalid configurations;
/// * [`GloveError::Unsatisfiable`] when the dataset holds fewer than `k`
///   subscribers (no grouping can reach k-anonymity);
/// * [`GloveError::InvalidDataset`] for an empty dataset.
pub fn anonymize(dataset: &Dataset, config: &GloveConfig) -> Result<GloveOutput, GloveError> {
    anonymize_with_plan(dataset, config, None)
}

/// [`anonymize`] under a per-user k plan from the policy plane
/// (see [`crate::policy`]).
///
/// Every published fingerprint hides at least `config.k` subscribers, and
/// additionally at least `plan.k_of(u)` subscribers for each member user
/// `u` — a group is done only once its deepest member is hidden. Passing
/// `None` (or a uniform plan) is byte-identical to [`anonymize`].
///
/// # Errors
///
/// As [`anonymize`]; additionally [`GloveError::Unsatisfiable`] when the
/// dataset is smaller than the deepest k required by the plan.
pub fn anonymize_with_plan(
    dataset: &Dataset,
    config: &GloveConfig,
    plan: Option<&KPlan>,
) -> Result<GloveOutput, GloveError> {
    config.validate()?;
    if dataset.fingerprints.is_empty() {
        return Err(GloveError::InvalidDataset(
            "cannot anonymize an empty dataset".into(),
        ));
    }
    // Satisfiability: the deepest requirement any fingerprint in this
    // dataset actually carries must be coverable by the population.
    let need = match plan {
        Some(p) => dataset
            .fingerprints
            .iter()
            .map(|f| p.required_k(f.users()))
            .max()
            .unwrap_or(config.k)
            .max(config.k),
        None => config.k,
    };
    if dataset.num_users() < need {
        return Err(GloveError::Unsatisfiable(format!(
            "dataset has {} subscribers, fewer than k = {}",
            dataset.num_users(),
            need
        )));
    }
    match config.shard {
        Some(policy) if policy.shards > 1 => {
            crate::shard::anonymize_sharded(dataset, config, policy, plan)
        }
        _ => run_monolithic(dataset, config, plan),
    }
}

/// The monolithic Alg. 1 loop over one (possibly shard-sized) dataset.
/// Callers guarantee a validated config and a non-empty dataset holding at
/// least `k` subscribers (the plan's deepest k when one is given).
pub(crate) fn run_monolithic(
    dataset: &Dataset,
    config: &GloveConfig,
    plan: Option<&KPlan>,
) -> Result<GloveOutput, GloveError> {
    let started = Instant::now();
    let mut stats = GloveStats::default();
    let threads = config.threads;
    let cfg = &config.stretch;
    let n = dataset.fingerprints.len();
    // Engage the cascade only where the filter is cheaper than what it
    // filters (see `CASCADE_MIN_MEAN_SAMPLES`); sharded runs pass through
    // here per shard, so the gate adapts to each shard's population.
    let cascade =
        config.pruning && config.cascade && dataset.num_samples() >= CASCADE_MIN_MEAN_SAMPLES * n;
    let space = SignatureSpace::of(cfg);
    let init_tier = if cascade { TIER_SIG } else { TIER_HULL };

    // ---- Initialization (Alg. 1 lines 1–3) -------------------------------
    let mut ledger = MemoryLedger::default();
    // Per-slot k requirement: `config.k` uniformly, raised per fingerprint
    // by the plan's deepest member. Uniform plans collapse to the same
    // comparisons as the pre-policy code, so the merge order is unchanged.
    let kreq: Vec<usize> = dataset
        .fingerprints
        .iter()
        .map(|f| plan.map_or(config.k, |p| p.required_k(f.users()).max(config.k)))
        .collect();
    let mut arena = Arena {
        slots: SlotSamples::of(dataset, config.columnar),
        states: dataset
            .fingerprints
            .iter()
            .enumerate()
            .map(|(i, f)| {
                if f.multiplicity() >= kreq[i] {
                    SlotState::Done
                } else {
                    SlotState::Active
                }
            })
            .collect(),
        kreq,
        hulls: dataset.fingerprints.iter().map(StretchHull::of).collect(),
        sigs: if cascade {
            dataset
                .fingerprints
                .iter()
                .map(|f| CompactSignature::of(f, &space))
                .collect()
        } else {
            Vec::new()
        },
        pages: Vec::with_capacity(n),
        row_min: vec![
            RowMin {
                value: f64::INFINITY,
                partner: NO_PARTNER,
            };
            n
        ],
        active: Vec::new(),
        retired_count: 0,
        counters: CascadeCounters::default(),
    };
    arena.active = (0..n)
        .filter(|&i| arena.states[i] == SlotState::Active)
        .collect();

    // Triangular matrix, rows in parallel. Pruned runs seed every
    // Active–Active cell with the cheapest admissible bound of the cascade
    // (tier-0 signature with the cascade on, tier-1 hull without) and,
    // still inside the parallel row pass, walk the row's candidates in
    // ascending-bound order escalating tiers exactly until the bounds rule
    // the rest out — so the bulk of the exact efforts is computed in
    // parallel and the sequential row-minimum rescans below only top up
    // cells a row-local walk cannot see (j > i). Cells with an
    // already-k-anonymous endpoint are created but never read, so they stay
    // at the cheapest tier without even a bound computation. Unpruned runs
    // evaluate everything up front (the paper's full-matrix GPU kernel).
    if config.pruning {
        let hulls_ref = &arena.hulls;
        let sigs_ref = &arena.sigs;
        let slots_ref = &arena.slots;
        let states_ref = &arena.states;
        let rows: Vec<(PairPage, CascadeCounters, u64)> = par_map(n, threads, |i| {
            let mut val = Vec::with_capacity(i);
            let mut tier = Vec::with_capacity(i);
            let mut prog = vec![StretchProgress::start(); i];
            let mut cand: Vec<(f64, usize)> = Vec::new();
            let mut counters = CascadeCounters {
                created: i as u64,
                ..CascadeCounters::default()
            };
            if !cascade {
                counters.hulled += i as u64;
            }
            for j in 0..i {
                if states_ref[i] == SlotState::Active && states_ref[j] == SlotState::Active {
                    let b = if cascade {
                        signature_lower_bound(&sigs_ref[i], &sigs_ref[j], cfg, &space)
                    } else {
                        stretch_lower_bound(&hulls_ref[i], &hulls_ref[j], cfg)
                    };
                    val.push(b);
                    tier.push(init_tier);
                    cand.push((b, j));
                } else {
                    val.push(f64::INFINITY);
                    tier.push(init_tier);
                }
            }
            let mut best = RowMin {
                value: f64::INFINITY,
                partner: NO_PARTNER,
            };
            let mut computed = 0u64;
            let mut row = LocalRow {
                val: &mut val,
                tier: &mut tier,
                prog: &mut prog,
            };
            cascade_walk(
                cand,
                &mut best,
                &mut row,
                |j| stretch_lower_bound(&hulls_ref[i], &hulls_ref[j], cfg),
                |j, cutoff, prog| {
                    fingerprint_stretch_cutoff_resume_seq(
                        slots_ref.operand(i),
                        slots_ref.operand(j),
                        cfg,
                        cutoff,
                        prog,
                    )
                },
                cascade,
                &mut counters,
                &mut computed,
            );
            (PairPage { val, tier, prog }, counters, computed)
        });
        for (page, counters, computed) in rows {
            stats.pairs_computed += computed;
            arena.counters.absorb(counters);
            arena.pages.push(page);
        }
    } else {
        let slots_ref = &arena.slots;
        arena.pages = par_map(n, threads, |i| {
            let mut val = Vec::with_capacity(i);
            for j in 0..i {
                val.push(fingerprint_stretch_seq(
                    slots_ref.operand(i),
                    slots_ref.operand(j),
                    cfg,
                ));
            }
            PairPage {
                tier: vec![TIER_EXACT; i],
                val,
                prog: Vec::new(),
            }
        });
        stats.pairs_computed += (n as u64) * (n as u64 - 1) / 2;
    }

    let actives: Vec<usize> = arena.active.clone();
    for &i in &actives {
        arena.rescan_row_min(i, cfg, cascade, &mut stats);
    }
    arena.observe(&mut ledger);

    // ---- Main loop (Alg. 1 lines 4–15) ------------------------------------
    while arena.active.len() >= 2 {
        // Global minimum over cached row minima (parallel min-reduction for
        // large active sets; see `global_best`).
        let (best_i, best) = global_best(&arena.active, &arena.row_min, threads);
        let (a, b) = (best_i, best.partner);
        debug_assert_ne!(b, NO_PARTNER, "active set of >= 2 must yield a pair");

        // Merge and retire (lines 5–8).
        let outcome = {
            let fa = arena.slots.fingerprint(a);
            let fb = arena.slots.fingerprint(b);
            merge_fingerprints(&fa, &fb, cfg, &config.suppression)?
        };
        let merge_dropped = outcome.suppressed.samples;
        stats.merges += 1;
        stats.suppressed.absorb(outcome.suppressed);
        arena.states[a] = SlotState::Retired;
        arena.states[b] = SlotState::Retired;
        arena.retired_count += 2;
        arena.active.retain(|&i| i != a && i != b);

        let m = arena.slots.len();
        let m_multiplicity = outcome.fingerprint.multiplicity();
        // A merged group must hide its deepest member.
        let m_kreq = arena.kreq[a].max(arena.kreq[b]);
        arena.kreq.push(m_kreq);
        // Incremental hull maintenance: when the merge suppressed nothing,
        // every parent sample is covered by some merged sample and every
        // merged sample is a bounding box of parent samples, so the merged
        // hull is exactly the union of the parents' hulls — no O(n) rescan.
        // Suppression can shrink the true hull, so those merges refresh.
        let hull = if merge_dropped == 0 {
            let h = arena.hulls[a].union(&arena.hulls[b], outcome.fingerprint.len());
            debug_assert_eq!(
                h,
                StretchHull::of(&outcome.fingerprint),
                "suppression-free merges must preserve the union hull"
            );
            h
        } else {
            StretchHull::of(&outcome.fingerprint)
        };
        arena.hulls.push(hull);
        if cascade {
            arena
                .sigs
                .push(CompactSignature::of(&outcome.fingerprint, &space));
        }
        arena.slots.push(outcome.fingerprint);
        arena.pages.push(PairPage::default());
        arena.row_min.push(RowMin {
            value: f64::INFINITY,
            partner: NO_PARTNER,
        });

        if m_multiplicity >= m_kreq {
            // The merged fingerprint is k-anonymous: it leaves the game
            // (lines 10–14 skip recomputation).
            arena.states.push(SlotState::Done);
            // Rows that pointed at a or b must find a new minimum.
            let stale: Vec<usize> = arena
                .active
                .iter()
                .copied()
                .filter(|&i| {
                    let p = arena.row_min[i].partner;
                    p == a || p == b
                })
                .collect();
            for i in stale {
                arena.rescan_row_min(i, cfg, cascade, &mut stats);
            }
        } else {
            // Compute efforts of the merged fingerprint to every remaining
            // active fingerprint (lines 11–13).
            arena.states.push(SlotState::Active);
            let partners = arena.active.clone();

            if config.pruning {
                // Seed every candidate with the cheapest bound, then walk
                // in ascending-bound order escalating tiers until the
                // bounds alone rule the remainder out.
                let mut val = vec![f64::INFINITY; m];
                let mut tier = vec![TIER_EXACT; m];
                let mut prog = vec![StretchProgress::start(); m];
                let mut cand: Vec<(f64, usize)> = Vec::with_capacity(partners.len());
                for &j in &partners {
                    let b = if cascade {
                        signature_lower_bound(&arena.sigs[m], &arena.sigs[j], cfg, &space)
                    } else {
                        stretch_lower_bound(&arena.hulls[m], &arena.hulls[j], cfg)
                    };
                    val[j] = b;
                    tier[j] = init_tier;
                    cand.push((b, j));
                }
                arena.counters.created += partners.len() as u64;
                if !cascade {
                    arena.counters.hulled += partners.len() as u64;
                }
                let mut new_min = RowMin {
                    value: f64::INFINITY,
                    partner: NO_PARTNER,
                };
                let mut computed = 0u64;
                {
                    let Arena {
                        ref slots,
                        ref hulls,
                        ref mut counters,
                        ..
                    } = arena;
                    let mut row = LocalRow {
                        val: &mut val,
                        tier: &mut tier,
                        prog: &mut prog,
                    };
                    cascade_walk(
                        cand,
                        &mut new_min,
                        &mut row,
                        |j| stretch_lower_bound(&hulls[m], &hulls[j], cfg),
                        |j, cutoff, prog| {
                            fingerprint_stretch_cutoff_resume_seq(
                                slots.operand(m),
                                slots.operand(j),
                                cfg,
                                cutoff,
                                prog,
                            )
                        },
                        cascade,
                        counters,
                        &mut computed,
                    );
                }
                stats.pairs_computed += computed;
                arena.pages[m] = PairPage { val, tier, prog };
                arena.row_min[m] = new_min;

                // Partners whose minimum pointed at a retired slot rescan
                // first (their iterations are independent of the updates
                // below: rescans touch cells among pre-existing slots,
                // updates only the new slot's row). The stale set is fixed
                // *before* rescanning: a rescanned row does not fold the
                // newcomer in this round (its rescan ran while `m` was not
                // yet active), exactly like the unpruned path — folding it
                // would shift tie attribution and the merge order.
                let stale_rows: Vec<usize> = partners
                    .iter()
                    .copied()
                    .filter(|&j| {
                        let p = arena.row_min[j].partner;
                        p == a || p == b
                    })
                    .collect();
                for &j in &stale_rows {
                    arena.rescan_row_min(j, cfg, cascade, &mut stats);
                }
                // The rest only escalate the new pair's cell while its
                // bound could actually beat their cached minimum (a tie
                // never wins: `m` is the largest id).
                let Arena {
                    ref slots,
                    ref hulls,
                    ref mut pages,
                    ref mut counters,
                    ref mut row_min,
                    ..
                } = arena;
                let mut computed = 0u64;
                for &j in &partners {
                    if stale_rows.binary_search(&j).is_ok() {
                        continue;
                    }
                    let (mut val, mut tier) = (pages[m].val[j], pages[m].tier[j]);
                    let d = if tier == TIER_EXACT {
                        val
                    } else {
                        if val >= row_min[j].value {
                            continue;
                        }
                        if tier == TIER_SIG {
                            counters.hulled += 1;
                            // Admissible but incomparable bounds: keep the
                            // larger (see `cascade_walk`).
                            val = stretch_lower_bound(&hulls[m], &hulls[j], cfg).max(val);
                            tier = TIER_HULL;
                            pages[m].val[j] = val;
                            pages[m].tier[j] = tier;
                            if val >= row_min[j].value {
                                continue;
                            }
                        }
                        let cutoff = if cascade {
                            row_min[j].value
                        } else {
                            f64::INFINITY
                        };
                        match fingerprint_stretch_cutoff_resume_seq(
                            slots.operand(m),
                            slots.operand(j),
                            cfg,
                            cutoff,
                            &mut pages[m].prog[j],
                        ) {
                            StretchEval::Exact(d) => {
                                if tier == TIER_PARTIAL {
                                    counters.exact_from_partial += 1;
                                } else {
                                    counters.exact_from_hull += 1;
                                }
                                computed += 1;
                                pages[m].val[j] = d;
                                pages[m].tier[j] = TIER_EXACT;
                                d
                            }
                            StretchEval::AtLeast(p) => {
                                if tier != TIER_PARTIAL {
                                    counters.entered_partial += 1;
                                }
                                pages[m].val[j] = p;
                                pages[m].tier[j] = TIER_PARTIAL;
                                continue;
                            }
                        }
                    };
                    if d < row_min[j].value || (d == row_min[j].value && m < row_min[j].partner) {
                        row_min[j] = RowMin {
                            value: d,
                            partner: m,
                        };
                    }
                }
                stats.pairs_computed += computed;
            } else {
                // Unpruned: the full new row, in parallel.
                let slots_ref = &arena.slots;
                let dists = par_map(partners.len(), threads, |idx| {
                    fingerprint_stretch_seq(
                        slots_ref.operand(m),
                        slots_ref.operand(partners[idx]),
                        cfg,
                    )
                });
                stats.pairs_computed += partners.len() as u64;

                // Fill the new slot's triangular row (it is the largest id,
                // so everything fits in pages[m]).
                arena.pages[m] = PairPage {
                    val: vec![f64::INFINITY; m],
                    tier: vec![TIER_EXACT; m],
                    prog: Vec::new(),
                };
                let mut new_min = RowMin {
                    value: f64::INFINITY,
                    partner: NO_PARTNER,
                };
                for (idx, &j) in partners.iter().enumerate() {
                    let d = dists[idx];
                    arena.pages[m].val[j] = d;
                    if d < new_min.value || (d == new_min.value && j < new_min.partner) {
                        new_min = RowMin {
                            value: d,
                            partner: j,
                        };
                    }
                }
                arena.row_min[m] = new_min;

                // Update the partners' cached minima against the newcomer,
                // and rescan rows whose minimum pointed at a retired slot.
                for (idx, &j) in partners.iter().enumerate() {
                    let p = arena.row_min[j].partner;
                    if p == a || p == b {
                        arena.rescan_row_min(j, cfg, cascade, &mut stats);
                    } else {
                        let d = dists[idx];
                        if d < arena.row_min[j].value
                            || (d == arena.row_min[j].value && m < arena.row_min[j].partner)
                        {
                            arena.row_min[j] = RowMin {
                                value: d,
                                partner: m,
                            };
                        }
                    }
                }
            }
            arena.active.push(m);
        }

        // Keep memory proportional to the live set. Memory grows
        // monotonically between compactions, so observing just before each
        // one captures the intervening peak.
        if arena.retired_count > 64 && arena.retired_count * 2 > arena.states.len() {
            arena.observe(&mut ledger);
            arena.compact();
        }
    }
    arena.observe(&mut ledger);

    // ---- Residual handling (not specified by Alg. 1; see DESIGN.md) -------
    if let Some(&r) = arena.active.first() {
        match config.residual {
            ResidualPolicy::MergeIntoNearest => {
                let done: Vec<usize> = (0..arena.states.len())
                    .filter(|&i| arena.states[i] == SlotState::Done)
                    .collect();
                if done.is_empty() {
                    // Fewer than k users in total was rejected up front, so
                    // this can only happen if every user sits in the single
                    // residual fingerprint — which then cannot be helped.
                    return Err(GloveError::Unsatisfiable(format!(
                        "no k-anonymous group exists to absorb the residual fingerprint \
                         ({} users < k = {})",
                        arena.slots.multiplicity(r),
                        arena.kreq[r]
                    )));
                }
                let slots_ref = &arena.slots;
                let dists = par_map(done.len(), threads, |idx| {
                    fingerprint_stretch_seq(slots_ref.operand(r), slots_ref.operand(done[idx]), cfg)
                });
                stats.pairs_computed += done.len() as u64;
                let (best_idx, _) = dists
                    .iter()
                    .enumerate()
                    .min_by(|(i, x), (j, y)| x.partial_cmp(y).unwrap().then(i.cmp(j)))
                    .expect("done is non-empty");
                let target = done[best_idx];
                let outcome = {
                    let ft = arena.slots.fingerprint(target);
                    let fr = arena.slots.fingerprint(r);
                    merge_fingerprints(&ft, &fr, cfg, &config.suppression)?
                };
                stats.merges += 1;
                stats.suppressed.absorb(outcome.suppressed);
                arena.slots.replace(target, outcome.fingerprint);
                arena.states[r] = SlotState::Retired;
            }
            ResidualPolicy::Suppress => {
                stats.discarded_fingerprints += 1;
                stats.discarded_users += arena.slots.multiplicity(r) as u64;
                arena.states[r] = SlotState::Retired;
            }
        }
    }

    // ---- Publication -------------------------------------------------------
    let mut published = Vec::new();
    for i in 0..arena.states.len() {
        if arena.states[i] == SlotState::Done {
            let mut fp = arena.slots.fingerprint(i).into_owned();
            if config.reshape {
                stats.reshaped_samples +=
                    reshape_suppressed(&mut fp, &config.suppression, &mut stats.suppressed)? as u64;
            }
            published.push(fp);
        }
    }
    // Every pair cell ever created ended in exactly one cascade bucket:
    // dismissed at tier 0 or 1, abandoned mid-evaluation, or evaluated to
    // completion (`pairs_computed`).
    stats.pairs_skipped_tier0 = arena.counters.skipped_tier0();
    stats.pairs_skipped_tier1 = arena.counters.skipped_tier1();
    stats.pairs_abandoned = arena.counters.abandoned();
    stats.pairs_pruned =
        stats.pairs_skipped_tier0 + stats.pairs_skipped_tier1 + stats.pairs_abandoned;
    arena.observe(&mut ledger);
    ledger.capture_rss();
    stats.ledger = ledger;
    stats.elapsed_s = started.elapsed().as_secs_f64();

    let dataset = Dataset::new(format!("{}-glove-k{}", dataset.name, config.k), published)?;
    debug_assert!(dataset.is_k_anonymous(config.k));
    Ok(GloveOutput { dataset, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GloveConfig, SuppressionThresholds};
    use crate::model::Sample;

    fn toy_dataset(n: usize) -> Dataset {
        // n users in two spatial clusters with slightly jittered times.
        let fps = (0..n)
            .map(|u| {
                let cluster = (u % 2) as i64;
                Fingerprint::from_points(
                    u as u32,
                    &[
                        (
                            cluster * 50_000 + (u as i64 % 7) * 100,
                            0,
                            60 + u as u32 % 5,
                        ),
                        (cluster * 50_000 + 1_000, 2_000, 600 + (u as u32 % 11)),
                        (cluster * 50_000, 4_000, 1_200 + (u as u32 % 3)),
                    ],
                )
                .unwrap()
            })
            .collect();
        Dataset::new("toy", fps).unwrap()
    }

    #[test]
    fn k2_yields_k_anonymity_and_keeps_all_users() {
        let ds = toy_dataset(20);
        let out = anonymize(&ds, &GloveConfig::default()).unwrap();
        assert!(out.dataset.is_k_anonymous(2));
        assert_eq!(out.dataset.num_users(), 20);
        assert!(out.stats.merges >= 10);
        // The unpruned path evaluates the full matrix; pruning may only
        // reduce the count, never change the published output.
        let unpruned = anonymize(
            &ds,
            &GloveConfig {
                pruning: false,
                ..GloveConfig::default()
            },
        )
        .unwrap();
        assert!(unpruned.stats.pairs_computed >= 190);
        assert_eq!(unpruned.stats.pairs_pruned, 0);
        assert!(out.stats.pairs_computed <= unpruned.stats.pairs_computed);
        // Computed + distinct-pruned accounts for exactly the pairs the
        // unpruned kernel evaluates.
        assert_eq!(
            out.stats.pairs_computed + out.stats.pairs_pruned,
            unpruned.stats.pairs_computed
        );
        assert_eq!(out.dataset.fingerprints, unpruned.dataset.fingerprints);
        assert_eq!(out.stats.merges, unpruned.stats.merges);
    }

    /// Two spatial clusters of fingerprints long enough to clear the
    /// cascade's mean-length engagement gate (`CASCADE_MIN_MEAN_SAMPLES`).
    fn long_toy_dataset(n: usize) -> Dataset {
        let fps = (0..n)
            .map(|u| {
                let cluster = (u % 2) as i64;
                let points: Vec<(i64, i64, u32)> = (0..20)
                    .map(|p| {
                        (
                            cluster * 50_000 + (u as i64 % 7) * 100 + p * 250,
                            (p % 5) * 300,
                            60 * p as u32 + u as u32 % 5,
                        )
                    })
                    .collect();
                Fingerprint::from_points(u as u32, &points).unwrap()
            })
            .collect();
        Dataset::new("long-toy", fps).unwrap()
    }

    #[test]
    fn cascade_tiers_account_for_every_pair_and_stay_byte_identical() {
        let ds = long_toy_dataset(24);
        let unpruned = anonymize(
            &ds,
            &GloveConfig {
                pruning: false,
                ..GloveConfig::default()
            },
        )
        .unwrap();
        assert_eq!(unpruned.stats.pairs_skipped_tier0, 0);
        assert_eq!(unpruned.stats.pairs_skipped_tier1, 0);
        assert_eq!(unpruned.stats.pairs_abandoned, 0);

        // Hull-only pruning (the pre-cascade comparator) and the full
        // cascade must both reproduce the unpruned output byte for byte
        // and account for every candidate pair exactly once.
        let hull_only = anonymize(
            &ds,
            &GloveConfig {
                cascade: false,
                ..GloveConfig::default()
            },
        )
        .unwrap();
        let cascade = anonymize(&ds, &GloveConfig::default()).unwrap();
        for out in [&hull_only, &cascade] {
            assert_eq!(out.dataset.fingerprints, unpruned.dataset.fingerprints);
            assert_eq!(out.stats.merges, unpruned.stats.merges);
            assert_eq!(
                out.stats.pairs_pruned,
                out.stats.pairs_skipped_tier0
                    + out.stats.pairs_skipped_tier1
                    + out.stats.pairs_abandoned
            );
            assert_eq!(
                out.stats.pairs_computed + out.stats.pairs_pruned,
                unpruned.stats.pairs_computed
            );
            assert_eq!(out.stats.candidate_pairs(), unpruned.stats.pairs_computed);
        }
        // Hull-only runs have no tier-0 or abandonment activity by
        // construction.
        assert_eq!(hull_only.stats.pairs_skipped_tier0, 0);
        assert_eq!(hull_only.stats.pairs_abandoned, 0);
        // The cascade never evaluates more pairs in full than hull-only
        // pruning does, and on this fixture it actually fields candidates
        // at every tier (the fixture clears the engagement gate).
        assert!(cascade.stats.pairs_computed <= hull_only.stats.pairs_computed);
        assert!(cascade.stats.pairs_skipped_tier0 > 0);
        assert!(cascade.stats.pairs_abandoned > 0);
    }

    #[test]
    fn cascade_gate_disengages_on_short_fingerprints() {
        // toy_dataset fingerprints hold 3 samples — well under the
        // engagement gate — so a default run must behave exactly like the
        // hull-only pruner: no signature activity, no abandonments, same
        // published bytes (the gate is a performance decision, never a
        // semantic one).
        let ds = toy_dataset(20);
        let gated = anonymize(&ds, &GloveConfig::default()).unwrap();
        let hull_only = anonymize(
            &ds,
            &GloveConfig {
                cascade: false,
                ..GloveConfig::default()
            },
        )
        .unwrap();
        assert_eq!(gated.stats.pairs_skipped_tier0, 0);
        assert_eq!(gated.stats.pairs_abandoned, 0);
        assert_eq!(gated.dataset.fingerprints, hull_only.dataset.fingerprints);
        assert_eq!(gated.stats.pairs_computed, hull_only.stats.pairs_computed);
    }

    #[test]
    fn k5_grouping() {
        let ds = toy_dataset(23);
        let cfg = GloveConfig {
            k: 5,
            ..GloveConfig::default()
        };
        let out = anonymize(&ds, &cfg).unwrap();
        assert!(out.dataset.is_k_anonymous(5));
        assert_eq!(out.dataset.num_users(), 23);
        // 23 users in groups of >= 5 means at most 4 groups.
        assert!(out.dataset.fingerprints.len() <= 4);
    }

    #[test]
    fn odd_user_count_residual_merge() {
        let ds = toy_dataset(7);
        let out = anonymize(&ds, &GloveConfig::default()).unwrap();
        assert!(out.dataset.is_k_anonymous(2));
        assert_eq!(out.dataset.num_users(), 7);
        // One group must have absorbed the residual (size 3).
        assert!(out
            .dataset
            .fingerprints
            .iter()
            .any(|f| f.multiplicity() == 3));
    }

    #[test]
    fn odd_user_count_residual_suppress() {
        let ds = toy_dataset(7);
        let cfg = GloveConfig {
            residual: ResidualPolicy::Suppress,
            ..GloveConfig::default()
        };
        let out = anonymize(&ds, &cfg).unwrap();
        assert!(out.dataset.is_k_anonymous(2));
        assert_eq!(
            out.dataset.num_users() as u64 + out.stats.discarded_users,
            7
        );
        assert_eq!(out.stats.discarded_fingerprints, 1);
    }

    #[test]
    fn identical_fingerprints_merge_at_zero_cost() {
        let samples = vec![Sample::point(0, 0, 100), Sample::point(5_000, 0, 700)];
        let fps = (0..4)
            .map(|u| Fingerprint::with_users(vec![u], samples.clone()).unwrap())
            .collect();
        let ds = Dataset::new("dup", fps).unwrap();
        let out = anonymize(&ds, &GloveConfig::default()).unwrap();
        // All published samples are exactly the originals: zero stretching.
        for fp in &out.dataset.fingerprints {
            assert_eq!(fp.samples(), &samples[..]);
        }
    }

    #[test]
    fn rejects_k_larger_than_population() {
        let ds = toy_dataset(3);
        let cfg = GloveConfig {
            k: 5,
            ..GloveConfig::default()
        };
        assert!(matches!(
            anonymize(&ds, &cfg),
            Err(GloveError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn rejects_empty_dataset() {
        let ds = Dataset::new("empty", vec![]).unwrap();
        assert!(anonymize(&ds, &GloveConfig::default()).is_err());
    }

    #[test]
    fn suppression_reduces_extents() {
        // One user has an outlier sample extremely far away; with
        // suppression the published boxes stay within the threshold.
        let fps = vec![
            Fingerprint::from_points(0, &[(0, 0, 10), (800_000, 0, 20)]).unwrap(),
            Fingerprint::from_points(1, &[(200, 0, 12)]).unwrap(),
        ];
        let ds = Dataset::new("outlier", fps).unwrap();
        let cfg = GloveConfig {
            suppression: SuppressionThresholds {
                max_space_m: Some(10_000),
                max_time_min: None,
            },
            ..GloveConfig::default()
        };
        let out = anonymize(&ds, &cfg).unwrap();
        assert!(out.stats.suppressed.samples >= 1);
        for fp in &out.dataset.fingerprints {
            for s in fp.samples() {
                assert!(s.dx.max(s.dy) <= 10_000);
            }
        }
    }

    #[test]
    fn published_fingerprints_have_disjoint_windows() {
        let ds = toy_dataset(12);
        let out = anonymize(&ds, &GloveConfig::default()).unwrap();
        for fp in &out.dataset.fingerprints {
            for w in fp.samples().windows(2) {
                assert!(!w[0].overlaps_in_time(&w[1]));
            }
        }
    }

    #[test]
    fn no_reshape_option_skips_reshaping() {
        let ds = toy_dataset(12);
        let cfg = GloveConfig {
            reshape: false,
            ..GloveConfig::default()
        };
        let out = anonymize(&ds, &cfg).unwrap();
        assert_eq!(out.stats.reshaped_samples, 0);
    }

    #[test]
    fn compaction_preserves_result() {
        // Large enough run to trigger compaction paths with k = 5 (which
        // keeps intermediate groups active).
        let ds = toy_dataset(64);
        let cfg = GloveConfig {
            k: 5,
            ..GloveConfig::default()
        };
        let out = anonymize(&ds, &cfg).unwrap();
        assert!(out.dataset.is_k_anonymous(5));
        assert_eq!(out.dataset.num_users(), 64);
        // Compaction must not disturb the exactness anchor either.
        let unpruned = anonymize(
            &ds,
            &GloveConfig {
                k: 5,
                pruning: false,
                ..GloveConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.dataset.fingerprints, unpruned.dataset.fingerprints);
        assert_eq!(
            out.stats.pairs_computed + out.stats.pairs_pruned,
            unpruned.stats.pairs_computed
        );
    }

    #[test]
    fn incremental_hulls_match_recomputation_after_merge_sequences() {
        // Satellite regression: drive arbitrary (seeded) merge sequences
        // through `merge_fingerprints` and check the O(1) union hull equals
        // the recomputed hull at every step, as long as nothing was
        // suppressed (the engine falls back to recomputation otherwise).
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let cfg = StretchConfig::default();
        for _round in 0..4 {
            let mut pool: Vec<Fingerprint> = (0..12u32)
                .map(|u| {
                    let base_x = (next() % 40_000) as i64;
                    let base_y = (next() % 40_000) as i64;
                    let base_t = (next() % 1_000) as u32;
                    Fingerprint::from_points(
                        u,
                        &[
                            (base_x, base_y, base_t),
                            (
                                base_x + (next() % 8_000) as i64,
                                base_y + (next() % 8_000) as i64,
                                base_t + 60 + (next() % 300) as u32,
                            ),
                            (
                                base_x - (next() % 5_000) as i64,
                                base_y,
                                base_t + 400 + (next() % 300) as u32,
                            ),
                        ],
                    )
                    .unwrap()
                })
                .collect();
            let mut hulls: Vec<StretchHull> = pool.iter().map(StretchHull::of).collect();
            while pool.len() > 1 {
                let i = (next() % pool.len() as u64) as usize;
                let mut j = (next() % pool.len() as u64) as usize;
                if i == j {
                    j = (j + 1) % pool.len();
                }
                let (i, j) = (i.min(j), i.max(j));
                let b_fp = pool.swap_remove(j);
                let b_hull = hulls.swap_remove(j);
                let a_fp = pool.swap_remove(i);
                let a_hull = hulls.swap_remove(i);
                let outcome =
                    merge_fingerprints(&a_fp, &b_fp, &cfg, &SuppressionThresholds::default())
                        .unwrap();
                assert_eq!(outcome.suppressed.samples, 0, "no thresholds, no drops");
                let union = a_hull.union(&b_hull, outcome.fingerprint.len());
                assert_eq!(
                    union,
                    StretchHull::of(&outcome.fingerprint),
                    "incremental hull diverged from recomputation"
                );
                hulls.push(union);
                pool.push(outcome.fingerprint);
            }
        }
    }

    #[test]
    fn throughput_counter_sane() {
        let ds = toy_dataset(10);
        let out = anonymize(&ds, &GloveConfig::default()).unwrap();
        assert!(out.stats.pairs_per_second() > 0.0);
        assert!(out.stats.elapsed_s > 0.0);
        assert_eq!(
            out.stats.candidate_pairs(),
            out.stats.pairs_computed + out.stats.pairs_pruned
        );
    }
}
