//! GLOVE — Algorithm 1 of §6.1.
//!
//! The algorithm greedily builds k-anonymous groups:
//!
//! 1. compute the fingerprint stretch effort (Eq. 10) between all pairs of
//!    fingerprints;
//! 2. repeatedly take the two not-yet-k-anonymized fingerprints at minimum
//!    effort, merge them (§6.2), and put the merged fingerprint back —
//!    recomputing its efforts to everything still in play — until it hides
//!    at least `k` subscribers;
//! 3. stop when no two under-`k` fingerprints remain.
//!
//! Attaining optimal k-anonymity is NP-hard [Bettini et al., SDM'05]; GLOVE
//! is a polynomial greedy approximation, quadratic in both the number of
//! users and the fingerprint length (§6.3).
//!
//! ### Implementation notes
//!
//! * The pairwise matrix is stored triangularly over an append-only slot
//!   arena; merged inputs retire, merged outputs append. The arena compacts
//!   itself when retired slots dominate, bounding memory at O(active²).
//! * Each active slot caches its row minimum, so one iteration costs O(A)
//!   for extraction plus O(A·n̄²) for the new row (A = active slots) — the
//!   complexity stated in §6.3.
//! * Matrix construction and row recomputation fan out over
//!   [`crate::parallel`], the stand-in for the paper's GPU kernel.
//! * With [`GloveConfig::pruning`] on (the default), matrix cells hold an
//!   admissible hull-derived lower bound on Eq. 10 until an exact value is
//!   actually needed to decide a row minimum; pairs whose bound exceeds the
//!   row's best exact effort are never evaluated at all. The published
//!   output is byte-identical to the unpruned path — see
//!   [`crate::stretch::stretch_lower_bound`] and DESIGN.md.
//! * At most one fingerprint can be left with multiplicity < `k` when the
//!   loop exhausts mergeable pairs; [`ResidualPolicy`] decides its fate
//!   (the paper does not specify — see DESIGN.md).
//! * [`GloveConfig::shard`] routes the run through [`crate::shard`], which
//!   partitions the dataset and runs this loop per shard.

use crate::config::{GloveConfig, ResidualPolicy, StretchConfig};
use crate::error::GloveError;
use crate::merge::merge_fingerprints;
use crate::model::{Dataset, Fingerprint};
use crate::parallel::par_map;
use crate::reshape::reshape_suppressed;
use crate::shard::ShardStat;
use crate::stretch::{fingerprint_stretch, stretch_lower_bound, StretchHull};
use crate::suppress::SuppressionLedger;
use std::time::Instant;

/// Statistics of one GLOVE run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GloveStats {
    /// Number of pairwise merges performed.
    pub merges: u64,
    /// Number of fingerprint-pair stretch efforts computed (Eq. 10
    /// evaluations) — the unit of the paper's §6.3 throughput figure. With
    /// pruning on, only pairs whose lower bound could not rule them out are
    /// counted here; the rest land in `pairs_pruned`.
    pub pairs_computed: u64,
    /// Distinct pairs whose full Eq. 10 evaluation was never needed: their
    /// admissible lower bound ruled them out of every row minimum they
    /// participated in (0 when pruning is disabled). `pairs_computed +
    /// pairs_pruned` equals the number of pairs the unpruned kernel would
    /// have evaluated.
    pub pairs_pruned: u64,
    /// Per-shard breakdown when the run was sharded (empty for monolithic
    /// runs).
    pub per_shard: Vec<ShardStat>,
    /// Suppression bookkeeping (§7.1); all-zero when suppression is off.
    pub suppressed: SuppressionLedger,
    /// Samples absorbed by the final reshaping pass (§6.2).
    pub reshaped_samples: u64,
    /// Fingerprints (and their subscribers) dropped by
    /// [`ResidualPolicy::Suppress`].
    pub discarded_fingerprints: u64,
    /// Subscribers dropped with those fingerprints.
    pub discarded_users: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_s: f64,
}

impl GloveStats {
    /// Pairwise-effort throughput in pairs/second — comparable to the
    /// paper's "20–50,000 fingerprint pairs per second" (§6.3).
    pub fn pairs_per_second(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.pairs_computed as f64 / self.elapsed_s
        } else {
            0.0
        }
    }
}

/// Result of a GLOVE run: the anonymized dataset plus run statistics.
#[derive(Debug, Clone)]
pub struct GloveOutput {
    /// The anonymized dataset: every fingerprint hides ≥ `k` subscribers.
    pub dataset: Dataset,
    /// Run statistics.
    pub stats: GloveStats,
}

/// State of a slot in the arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotState {
    /// Multiplicity < k: participates in merging.
    Active,
    /// Multiplicity ≥ k: finished, waits for publication.
    Done,
    /// Consumed by a merge.
    Retired,
}

/// Cached minimum of a slot's matrix row over *active* partners.
#[derive(Clone, Copy, Debug)]
struct RowMin {
    value: f64,
    partner: usize,
}

const NO_PARTNER: usize = usize::MAX;

/// Matrix cells hold either an exact Eq. 10 effort (`≥ 0`, with `+∞` for
/// pairs that can never be read again) or an admissible lower bound awaiting
/// lazy evaluation, encoded as `-bound - 1.0` (`≤ -1.0`) so one f64 carries
/// both cases.
#[inline]
fn encode_bound(bound: f64) -> f64 {
    -bound - 1.0
}

#[inline]
fn decode_bound(cell: f64) -> f64 {
    -cell - 1.0
}

#[inline]
fn is_exact(cell: f64) -> bool {
    cell >= 0.0
}

/// The pruning walk shared by matrix construction, merged-row filling and
/// row-minimum rescans: sorts `cand` by ascending `(bound, j)` and evaluates
/// each candidate whose bound could still produce — or tie — the minimum,
/// folding results into `best` under the `(value, smaller j)` rule.
///
/// Stops at the first bound strictly above the current best value: every
/// remaining candidate's exact effort is ≥ that bound, so it can neither win
/// nor tie. A candidate whose exact effort equals the final minimum always
/// has a bound ≤ it and is therefore evaluated, which keeps tie-breaking —
/// and hence the published output — byte-identical to the unpruned scan.
///
/// `eval` computes the exact effort for partner `j` and is responsible for
/// storing it and counting the evaluation.
fn ascending_bound_walk(
    mut cand: Vec<(f64, usize)>,
    best: &mut RowMin,
    mut eval: impl FnMut(usize) -> f64,
) {
    cand.sort_unstable_by(|a, b| a.partial_cmp(b).expect("bounds are finite"));
    for &(bound, j) in &cand {
        if bound > best.value {
            break;
        }
        let d = eval(j);
        if d < best.value || (d == best.value && j < best.partner) {
            *best = RowMin {
                value: d,
                partner: j,
            };
        }
    }
}

struct Arena {
    fps: Vec<Fingerprint>,
    states: Vec<SlotState>,
    /// Per-slot hull summaries feeding the admissible lower bound.
    hulls: Vec<StretchHull>,
    /// Lower-triangular effort matrix: `tri[i][j]` = Δ between slots i and j
    /// for j < i (encoded; see [`encode_bound`]).
    tri: Vec<Vec<f64>>,
    row_min: Vec<RowMin>,
    active: Vec<usize>,
    retired_count: usize,
    /// Bound cells later upgraded to exact by a lazy evaluation. Together
    /// with the count of bound cells ever created this yields the distinct
    /// never-evaluated pairs (`GloveStats::pairs_pruned`).
    lazy_evaluated: u64,
}

impl Arena {
    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        debug_assert_ne!(i, j);
        if i > j {
            self.tri[i][j]
        } else {
            self.tri[j][i]
        }
    }

    #[inline]
    fn set_dist(&mut self, i: usize, j: usize, cell: f64) {
        debug_assert_ne!(i, j);
        if i > j {
            self.tri[i][j] = cell;
        } else {
            self.tri[j][i] = cell;
        }
    }

    /// Recomputes the cached row minimum of slot `i` by scanning the active
    /// set, lazily evaluating bound-only cells in ascending-bound order
    /// until the bound alone rules the remainder out.
    ///
    /// The result is the exact minimum by `(value, partner)`: every cell
    /// whose exact effort could equal the final minimum has a bound no
    /// larger than it and is therefore evaluated before the walk stops, so
    /// ties break on the same partner the unpruned scan would pick.
    fn rescan_row_min(&mut self, i: usize, cfg: &StretchConfig, stats: &mut GloveStats) {
        let mut best = RowMin {
            value: f64::INFINITY,
            partner: NO_PARTNER,
        };
        let mut deferred: Vec<(f64, usize)> = Vec::new();
        for &j in &self.active {
            if j == i {
                continue;
            }
            let cell = self.dist(i, j);
            if is_exact(cell) {
                if cell < best.value || (cell == best.value && j < best.partner) {
                    best = RowMin {
                        value: cell,
                        partner: j,
                    };
                }
            } else {
                deferred.push((decode_bound(cell), j));
            }
        }
        ascending_bound_walk(deferred, &mut best, |j| {
            let d = fingerprint_stretch(&self.fps[i], &self.fps[j], cfg);
            stats.pairs_computed += 1;
            self.lazy_evaluated += 1;
            self.set_dist(i, j, d);
            d
        });
        self.row_min[i] = best;
    }

    /// Drops retired slots and remaps ids, shrinking the matrix.
    fn compact(&mut self) {
        let old_ids: Vec<usize> = (0..self.states.len())
            .filter(|&i| self.states[i] != SlotState::Retired)
            .collect();
        let mut remap = vec![usize::MAX; self.states.len()];
        for (new_id, &old_id) in old_ids.iter().enumerate() {
            remap[old_id] = new_id;
        }

        let mut fps = Vec::with_capacity(old_ids.len());
        let mut states = Vec::with_capacity(old_ids.len());
        let mut hulls = Vec::with_capacity(old_ids.len());
        let mut tri = Vec::with_capacity(old_ids.len());
        let mut row_min = Vec::with_capacity(old_ids.len());
        for (new_i, &old_i) in old_ids.iter().enumerate() {
            fps.push(std::mem::replace(
                &mut self.fps[old_i],
                Fingerprint::with_users(vec![0], vec![crate::model::Sample::point(0, 0, 0)])
                    .expect("placeholder"),
            ));
            states.push(self.states[old_i]);
            hulls.push(self.hulls[old_i]);
            // Only Active–Active distances are ever read again; Done slots
            // appended mid-run have empty rows, so copying their entries
            // would be both wrong and out of bounds.
            let i_active = self.states[old_i] == SlotState::Active;
            let mut row = Vec::with_capacity(new_i);
            for &old_j in &old_ids[..new_i] {
                if i_active && self.states[old_j] == SlotState::Active {
                    row.push(self.dist(old_i, old_j));
                } else {
                    row.push(f64::INFINITY);
                }
            }
            tri.push(row);
            let old_min = self.row_min[old_i];
            row_min.push(RowMin {
                value: old_min.value,
                partner: if old_min.partner == NO_PARTNER {
                    NO_PARTNER
                } else {
                    remap[old_min.partner]
                },
            });
        }
        self.active = self.active.iter().map(|&i| remap[i]).collect();
        self.fps = fps;
        self.states = states;
        self.hulls = hulls;
        self.tri = tri;
        self.row_min = row_min;
        self.retired_count = 0;
    }
}

/// Runs GLOVE on a dataset, returning the k-anonymized dataset and run
/// statistics.
///
/// When [`GloveConfig::shard`] is set with more than one shard, the run is
/// routed through the sharded engine ([`crate::shard`]); otherwise the
/// monolithic Alg. 1 processes the whole dataset.
///
/// # Errors
///
/// * [`GloveError::InvalidConfig`] for invalid configurations;
/// * [`GloveError::Unsatisfiable`] when the dataset holds fewer than `k`
///   subscribers (no grouping can reach k-anonymity);
/// * [`GloveError::InvalidDataset`] for an empty dataset.
pub fn anonymize(dataset: &Dataset, config: &GloveConfig) -> Result<GloveOutput, GloveError> {
    config.validate()?;
    if dataset.fingerprints.is_empty() {
        return Err(GloveError::InvalidDataset(
            "cannot anonymize an empty dataset".into(),
        ));
    }
    if dataset.num_users() < config.k {
        return Err(GloveError::Unsatisfiable(format!(
            "dataset has {} subscribers, fewer than k = {}",
            dataset.num_users(),
            config.k
        )));
    }
    match config.shard {
        Some(policy) if policy.shards > 1 => {
            crate::shard::anonymize_sharded(dataset, config, policy)
        }
        _ => run_monolithic(dataset, config),
    }
}

/// The monolithic Alg. 1 loop over one (possibly shard-sized) dataset.
/// Callers guarantee a validated config and a non-empty dataset holding at
/// least `k` subscribers.
pub(crate) fn run_monolithic(
    dataset: &Dataset,
    config: &GloveConfig,
) -> Result<GloveOutput, GloveError> {
    let started = Instant::now();
    let mut stats = GloveStats::default();
    let threads = config.threads;
    let cfg = &config.stretch;

    // ---- Initialization (Alg. 1 lines 1–3) -------------------------------
    let n = dataset.fingerprints.len();
    let mut arena = Arena {
        fps: dataset.fingerprints.clone(),
        states: dataset
            .fingerprints
            .iter()
            .map(|f| {
                if f.multiplicity() >= config.k {
                    SlotState::Done
                } else {
                    SlotState::Active
                }
            })
            .collect(),
        hulls: dataset.fingerprints.iter().map(StretchHull::of).collect(),
        tri: Vec::with_capacity(n),
        row_min: vec![
            RowMin {
                value: f64::INFINITY,
                partner: NO_PARTNER,
            };
            n
        ],
        active: Vec::new(),
        retired_count: 0,
        lazy_evaluated: 0,
    };
    arena.active = (0..n)
        .filter(|&i| arena.states[i] == SlotState::Active)
        .collect();

    // Triangular matrix, rows in parallel. Pruned runs seed every cell with
    // the O(1) hull bound and, still inside the parallel row pass, walk the
    // row's active candidates in ascending-bound order evaluating exactly
    // until the bound rules the rest out — so the bulk of the exact efforts
    // is computed in parallel and the sequential row-minimum rescans below
    // only top up cells a row-local walk cannot see (j > i). Unpruned runs
    // evaluate everything up front (the paper's full-matrix GPU kernel).
    let mut bound_created: u64 = 0;
    if config.pruning {
        let hulls_ref = &arena.hulls;
        let fps_ref = &arena.fps;
        let states_ref = &arena.states;
        let rows: Vec<(Vec<f64>, u64)> = par_map(n, threads, |i| {
            let mut row = Vec::with_capacity(i);
            let mut cand: Vec<(f64, usize)> = Vec::new();
            for j in 0..i {
                let b = stretch_lower_bound(&hulls_ref[i], &hulls_ref[j], cfg);
                row.push(encode_bound(b));
                if states_ref[i] == SlotState::Active && states_ref[j] == SlotState::Active {
                    cand.push((b, j));
                }
            }
            let mut evals = 0u64;
            let mut best = RowMin {
                value: f64::INFINITY,
                partner: NO_PARTNER,
            };
            ascending_bound_walk(cand, &mut best, |j| {
                let d = fingerprint_stretch(&fps_ref[i], &fps_ref[j], cfg);
                evals += 1;
                row[j] = d;
                d
            });
            (row, evals)
        });
        let mut tri = Vec::with_capacity(n);
        for (row, evals) in rows {
            stats.pairs_computed += evals;
            bound_created += row.len() as u64 - evals;
            tri.push(row);
        }
        arena.tri = tri;
    } else {
        let fps_ref = &arena.fps;
        arena.tri = par_map(n, threads, |i| {
            let mut row = Vec::with_capacity(i);
            for j in 0..i {
                row.push(fingerprint_stretch(&fps_ref[i], &fps_ref[j], cfg));
            }
            row
        });
        stats.pairs_computed += (n as u64) * (n as u64 - 1) / 2;
    }

    let actives: Vec<usize> = arena.active.clone();
    for &i in &actives {
        arena.rescan_row_min(i, cfg, &mut stats);
    }

    // ---- Main loop (Alg. 1 lines 4–15) ------------------------------------
    while arena.active.len() >= 2 {
        // Global minimum over cached row minima.
        let mut best = RowMin {
            value: f64::INFINITY,
            partner: NO_PARTNER,
        };
        let mut best_i = NO_PARTNER;
        for &i in &arena.active {
            let rm = arena.row_min[i];
            if rm.value < best.value || (rm.value == best.value && i < best_i) {
                best = rm;
                best_i = i;
            }
        }
        let (a, b) = (best_i, best.partner);
        debug_assert_ne!(b, NO_PARTNER, "active set of >= 2 must yield a pair");

        // Merge and retire (lines 5–8).
        let outcome = merge_fingerprints(&arena.fps[a], &arena.fps[b], cfg, &config.suppression)?;
        stats.merges += 1;
        stats.suppressed.absorb(outcome.suppressed);
        arena.states[a] = SlotState::Retired;
        arena.states[b] = SlotState::Retired;
        arena.retired_count += 2;
        arena.active.retain(|&i| i != a && i != b);

        let m = arena.fps.len();
        let m_multiplicity = outcome.fingerprint.multiplicity();
        arena.hulls.push(StretchHull::of(&outcome.fingerprint));
        arena.fps.push(outcome.fingerprint);
        arena.tri.push(Vec::new());
        arena.row_min.push(RowMin {
            value: f64::INFINITY,
            partner: NO_PARTNER,
        });

        if m_multiplicity >= config.k {
            // The merged fingerprint is k-anonymous: it leaves the game
            // (lines 10–14 skip recomputation).
            arena.states.push(SlotState::Done);
            // Rows that pointed at a or b must find a new minimum.
            let stale: Vec<usize> = arena
                .active
                .iter()
                .copied()
                .filter(|&i| {
                    let p = arena.row_min[i].partner;
                    p == a || p == b
                })
                .collect();
            for i in stale {
                arena.rescan_row_min(i, cfg, &mut stats);
            }
        } else {
            // Compute efforts of the merged fingerprint to every remaining
            // active fingerprint (lines 11–13).
            arena.states.push(SlotState::Active);
            let partners = arena.active.clone();

            if config.pruning {
                // Bound every candidate, then evaluate in ascending-bound
                // order until the bound alone rules the remainder out.
                let mut row = vec![f64::INFINITY; m];
                let mut cand: Vec<(f64, usize)> = Vec::with_capacity(partners.len());
                for &j in &partners {
                    let b = stretch_lower_bound(&arena.hulls[m], &arena.hulls[j], cfg);
                    row[j] = encode_bound(b);
                    cand.push((b, j));
                }
                let n_cand = cand.len() as u64;
                let mut new_min = RowMin {
                    value: f64::INFINITY,
                    partner: NO_PARTNER,
                };
                let mut evals = 0u64;
                let fps_ref = &arena.fps;
                ascending_bound_walk(cand, &mut new_min, |j| {
                    let d = fingerprint_stretch(&fps_ref[m], &fps_ref[j], cfg);
                    evals += 1;
                    row[j] = d;
                    d
                });
                stats.pairs_computed += evals;
                bound_created += n_cand - evals;
                arena.tri[m] = row;
                arena.row_min[m] = new_min;

                // Partners whose minimum pointed at a retired slot rescan;
                // the rest only evaluate the new pair when its bound could
                // actually beat their cached minimum (a tie never wins: `m`
                // is the largest id).
                for &j in &partners {
                    let p = arena.row_min[j].partner;
                    if p == a || p == b {
                        arena.rescan_row_min(j, cfg, &mut stats);
                        continue;
                    }
                    let cell = arena.dist(m, j);
                    let d = if is_exact(cell) {
                        cell
                    } else {
                        if decode_bound(cell) >= arena.row_min[j].value {
                            continue;
                        }
                        let d = fingerprint_stretch(&arena.fps[m], &arena.fps[j], cfg);
                        stats.pairs_computed += 1;
                        arena.lazy_evaluated += 1;
                        arena.set_dist(m, j, d);
                        d
                    };
                    if d < arena.row_min[j].value
                        || (d == arena.row_min[j].value && m < arena.row_min[j].partner)
                    {
                        arena.row_min[j] = RowMin {
                            value: d,
                            partner: m,
                        };
                    }
                }
            } else {
                // Unpruned: the full new row, in parallel.
                let fps_ref = &arena.fps;
                let dists = par_map(partners.len(), threads, |idx| {
                    fingerprint_stretch(&fps_ref[m], &fps_ref[partners[idx]], cfg)
                });
                stats.pairs_computed += partners.len() as u64;

                // Fill the new slot's triangular row (it is the largest id,
                // so everything fits in tri[m]).
                arena.tri[m] = vec![f64::INFINITY; m];
                let mut new_min = RowMin {
                    value: f64::INFINITY,
                    partner: NO_PARTNER,
                };
                for (idx, &j) in partners.iter().enumerate() {
                    let d = dists[idx];
                    arena.tri[m][j] = d;
                    if d < new_min.value || (d == new_min.value && j < new_min.partner) {
                        new_min = RowMin {
                            value: d,
                            partner: j,
                        };
                    }
                }
                arena.row_min[m] = new_min;

                // Update the partners' cached minima against the newcomer,
                // and rescan rows whose minimum pointed at a retired slot.
                for (idx, &j) in partners.iter().enumerate() {
                    let p = arena.row_min[j].partner;
                    if p == a || p == b {
                        arena.rescan_row_min(j, cfg, &mut stats);
                    } else {
                        let d = dists[idx];
                        if d < arena.row_min[j].value
                            || (d == arena.row_min[j].value && m < arena.row_min[j].partner)
                        {
                            arena.row_min[j] = RowMin {
                                value: d,
                                partner: m,
                            };
                        }
                    }
                }
            }
            arena.active.push(m);
        }

        // Keep memory proportional to the live set.
        if arena.retired_count > 64 && arena.retired_count * 2 > arena.states.len() {
            arena.compact();
        }
    }

    // ---- Residual handling (not specified by Alg. 1; see DESIGN.md) -------
    if let Some(&r) = arena.active.first() {
        match config.residual {
            ResidualPolicy::MergeIntoNearest => {
                let done: Vec<usize> = (0..arena.states.len())
                    .filter(|&i| arena.states[i] == SlotState::Done)
                    .collect();
                if done.is_empty() {
                    // Fewer than k users in total was rejected up front, so
                    // this can only happen if every user sits in the single
                    // residual fingerprint — which then cannot be helped.
                    return Err(GloveError::Unsatisfiable(format!(
                        "no k-anonymous group exists to absorb the residual fingerprint \
                         ({} users < k = {})",
                        arena.fps[r].multiplicity(),
                        config.k
                    )));
                }
                let fps_ref = &arena.fps;
                let dists = par_map(done.len(), threads, |idx| {
                    fingerprint_stretch(&fps_ref[r], &fps_ref[done[idx]], cfg)
                });
                stats.pairs_computed += done.len() as u64;
                let (best_idx, _) = dists
                    .iter()
                    .enumerate()
                    .min_by(|(i, x), (j, y)| x.partial_cmp(y).unwrap().then(i.cmp(j)))
                    .expect("done is non-empty");
                let target = done[best_idx];
                let outcome = merge_fingerprints(
                    &arena.fps[target],
                    &arena.fps[r],
                    cfg,
                    &config.suppression,
                )?;
                stats.merges += 1;
                stats.suppressed.absorb(outcome.suppressed);
                arena.fps[target] = outcome.fingerprint;
                arena.states[r] = SlotState::Retired;
            }
            ResidualPolicy::Suppress => {
                stats.discarded_fingerprints += 1;
                stats.discarded_users += arena.fps[r].multiplicity() as u64;
                arena.states[r] = SlotState::Retired;
            }
        }
    }

    // ---- Publication -------------------------------------------------------
    let mut published = Vec::new();
    for i in 0..arena.states.len() {
        if arena.states[i] == SlotState::Done {
            let mut fp = arena.fps[i].clone();
            if config.reshape {
                stats.reshaped_samples +=
                    reshape_suppressed(&mut fp, &config.suppression, &mut stats.suppressed)? as u64;
            }
            published.push(fp);
        }
    }
    // Every pair cell ever created was either evaluated (at creation or
    // lazily) or survived the whole run on its bound alone.
    stats.pairs_pruned = bound_created.saturating_sub(arena.lazy_evaluated);
    stats.elapsed_s = started.elapsed().as_secs_f64();

    let dataset = Dataset::new(format!("{}-glove-k{}", dataset.name, config.k), published)?;
    debug_assert!(dataset.is_k_anonymous(config.k));
    Ok(GloveOutput { dataset, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GloveConfig, SuppressionThresholds};
    use crate::model::Sample;

    fn toy_dataset(n: usize) -> Dataset {
        // n users in two spatial clusters with slightly jittered times.
        let fps = (0..n)
            .map(|u| {
                let cluster = (u % 2) as i64;
                Fingerprint::from_points(
                    u as u32,
                    &[
                        (
                            cluster * 50_000 + (u as i64 % 7) * 100,
                            0,
                            60 + u as u32 % 5,
                        ),
                        (cluster * 50_000 + 1_000, 2_000, 600 + (u as u32 % 11)),
                        (cluster * 50_000, 4_000, 1_200 + (u as u32 % 3)),
                    ],
                )
                .unwrap()
            })
            .collect();
        Dataset::new("toy", fps).unwrap()
    }

    #[test]
    fn k2_yields_k_anonymity_and_keeps_all_users() {
        let ds = toy_dataset(20);
        let out = anonymize(&ds, &GloveConfig::default()).unwrap();
        assert!(out.dataset.is_k_anonymous(2));
        assert_eq!(out.dataset.num_users(), 20);
        assert!(out.stats.merges >= 10);
        // The unpruned path evaluates the full matrix; pruning may only
        // reduce the count, never change the published output.
        let unpruned = anonymize(
            &ds,
            &GloveConfig {
                pruning: false,
                ..GloveConfig::default()
            },
        )
        .unwrap();
        assert!(unpruned.stats.pairs_computed >= 190);
        assert_eq!(unpruned.stats.pairs_pruned, 0);
        assert!(out.stats.pairs_computed <= unpruned.stats.pairs_computed);
        // Computed + distinct-pruned accounts for exactly the pairs the
        // unpruned kernel evaluates.
        assert_eq!(
            out.stats.pairs_computed + out.stats.pairs_pruned,
            unpruned.stats.pairs_computed
        );
        assert_eq!(out.dataset.fingerprints, unpruned.dataset.fingerprints);
        assert_eq!(out.stats.merges, unpruned.stats.merges);
    }

    #[test]
    fn k5_grouping() {
        let ds = toy_dataset(23);
        let cfg = GloveConfig {
            k: 5,
            ..GloveConfig::default()
        };
        let out = anonymize(&ds, &cfg).unwrap();
        assert!(out.dataset.is_k_anonymous(5));
        assert_eq!(out.dataset.num_users(), 23);
        // 23 users in groups of >= 5 means at most 4 groups.
        assert!(out.dataset.fingerprints.len() <= 4);
    }

    #[test]
    fn odd_user_count_residual_merge() {
        let ds = toy_dataset(7);
        let out = anonymize(&ds, &GloveConfig::default()).unwrap();
        assert!(out.dataset.is_k_anonymous(2));
        assert_eq!(out.dataset.num_users(), 7);
        // One group must have absorbed the residual (size 3).
        assert!(out
            .dataset
            .fingerprints
            .iter()
            .any(|f| f.multiplicity() == 3));
    }

    #[test]
    fn odd_user_count_residual_suppress() {
        let ds = toy_dataset(7);
        let cfg = GloveConfig {
            residual: ResidualPolicy::Suppress,
            ..GloveConfig::default()
        };
        let out = anonymize(&ds, &cfg).unwrap();
        assert!(out.dataset.is_k_anonymous(2));
        assert_eq!(
            out.dataset.num_users() as u64 + out.stats.discarded_users,
            7
        );
        assert_eq!(out.stats.discarded_fingerprints, 1);
    }

    #[test]
    fn identical_fingerprints_merge_at_zero_cost() {
        let samples = vec![Sample::point(0, 0, 100), Sample::point(5_000, 0, 700)];
        let fps = (0..4)
            .map(|u| Fingerprint::with_users(vec![u], samples.clone()).unwrap())
            .collect();
        let ds = Dataset::new("dup", fps).unwrap();
        let out = anonymize(&ds, &GloveConfig::default()).unwrap();
        // All published samples are exactly the originals: zero stretching.
        for fp in &out.dataset.fingerprints {
            assert_eq!(fp.samples(), &samples[..]);
        }
    }

    #[test]
    fn rejects_k_larger_than_population() {
        let ds = toy_dataset(3);
        let cfg = GloveConfig {
            k: 5,
            ..GloveConfig::default()
        };
        assert!(matches!(
            anonymize(&ds, &cfg),
            Err(GloveError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn rejects_empty_dataset() {
        let ds = Dataset::new("empty", vec![]).unwrap();
        assert!(anonymize(&ds, &GloveConfig::default()).is_err());
    }

    #[test]
    fn suppression_reduces_extents() {
        // One user has an outlier sample extremely far away; with
        // suppression the published boxes stay within the threshold.
        let fps = vec![
            Fingerprint::from_points(0, &[(0, 0, 10), (800_000, 0, 20)]).unwrap(),
            Fingerprint::from_points(1, &[(200, 0, 12)]).unwrap(),
        ];
        let ds = Dataset::new("outlier", fps).unwrap();
        let cfg = GloveConfig {
            suppression: SuppressionThresholds {
                max_space_m: Some(10_000),
                max_time_min: None,
            },
            ..GloveConfig::default()
        };
        let out = anonymize(&ds, &cfg).unwrap();
        assert!(out.stats.suppressed.samples >= 1);
        for fp in &out.dataset.fingerprints {
            for s in fp.samples() {
                assert!(s.dx.max(s.dy) <= 10_000);
            }
        }
    }

    #[test]
    fn published_fingerprints_have_disjoint_windows() {
        let ds = toy_dataset(12);
        let out = anonymize(&ds, &GloveConfig::default()).unwrap();
        for fp in &out.dataset.fingerprints {
            for w in fp.samples().windows(2) {
                assert!(!w[0].overlaps_in_time(&w[1]));
            }
        }
    }

    #[test]
    fn no_reshape_option_skips_reshaping() {
        let ds = toy_dataset(12);
        let cfg = GloveConfig {
            reshape: false,
            ..GloveConfig::default()
        };
        let out = anonymize(&ds, &cfg).unwrap();
        assert_eq!(out.stats.reshaped_samples, 0);
    }

    #[test]
    fn compaction_preserves_result() {
        // Large enough run to trigger compaction paths with k = 5 (which
        // keeps intermediate groups active).
        let ds = toy_dataset(64);
        let cfg = GloveConfig {
            k: 5,
            ..GloveConfig::default()
        };
        let out = anonymize(&ds, &cfg).unwrap();
        assert!(out.dataset.is_k_anonymous(5));
        assert_eq!(out.dataset.num_users(), 64);
    }

    #[test]
    fn throughput_counter_sane() {
        let ds = toy_dataset(10);
        let out = anonymize(&ds, &GloveConfig::default()).unwrap();
        assert!(out.stats.pairs_per_second() > 0.0);
        assert!(out.stats.elapsed_s > 0.0);
    }
}
