//! Sharded GLOVE: the §6.3 batching idea as an architectural seam.
//!
//! The paper reaches national scale by "grouping fingerprints of similar
//! activity" into batches its GPU kernel can digest; the same observation
//! powers scalable fingerprinting work on both the defense and attack side.
//! This module makes that batching a first-class engine: a [`Dataset`] is
//! cut into [`ShardPolicy::shards`] buckets, the monolithic Alg. 1 loop runs
//! per shard across [`crate::parallel`] workers, and the outputs — dataset,
//! [`crate::glove::GloveStats`] and the suppression ledger — are stitched
//! back together.
//!
//! ### Semantics (see DESIGN.md "Sharded anonymization")
//!
//! * **k-anonymity still holds.** Every shard is anonymized to the same
//!   `k`, so every published fingerprint hides ≥ `k` subscribers — the
//!   property is per-record and survives concatenation.
//! * **What is forfeited**: cross-shard merges. A pair split across shards
//!   can never be grouped, so accuracy can only be equal or worse than the
//!   monolithic run — the partitioners exist to keep the loss small by
//!   putting likely merge partners (similar activity, or spatial neighbours)
//!   in the same shard.
//! * **What is gained**: the O(n²) pair matrix shrinks `shards`-fold in
//!   total (each shard is quadratic only in its own size), and shards are
//!   embarrassingly parallel. This is the scaling knob every later PR
//!   (async pipelines, multi-node) hangs off.
//!
//! Shards that would hold fewer than `k` subscribers are coalesced with a
//! neighbouring bucket, so every shard is independently satisfiable; users
//! are conserved up to the per-shard residual policy (suppressed residuals
//! are counted in `discarded_users` exactly as in a monolithic run).

use crate::config::{GloveConfig, ShardBy, ShardPolicy};
use crate::error::GloveError;
use crate::glove::{run_monolithic, GloveOutput, GloveStats};
use crate::ledger::MemoryLedger;
use crate::model::{Dataset, Fingerprint};
use crate::parallel::par_map;
use crate::policy::KPlan;
use glove_geo::{Grid, MetricPoint};
use std::time::Instant;

/// Per-shard slice of a sharded run's statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStat {
    /// Shard index (stitch order).
    pub shard: usize,
    /// Fingerprints assigned to the shard.
    pub fingerprints_in: usize,
    /// Subscribers assigned to the shard.
    pub users_in: usize,
    /// k-anonymous groups the shard published.
    pub fingerprints_out: usize,
    /// Merges performed inside the shard.
    pub merges: u64,
    /// Eq. 10 evaluations inside the shard.
    pub pairs_computed: u64,
    /// Pair evaluations skipped by the admissible bound inside the shard.
    pub pairs_pruned: u64,
    /// Prunes decided by the tier-0 bit-packed signature bound alone.
    pub pairs_skipped_tier0: u64,
    /// Prunes decided by the tier-1 stretch-hull bound.
    pub pairs_skipped_tier1: u64,
    /// Exact evaluations abandoned early by the partial-mean cutoff.
    pub pairs_abandoned: u64,
    /// Peak memory accounting of the shard's own run.
    pub ledger: MemoryLedger,
    /// Wall-clock seconds of the shard's own run (shards overlap in time
    /// when workers run them concurrently).
    pub elapsed_s: f64,
}

/// Computes the shard assignment: a list of fingerprint-index buckets, in
/// stitch order. Every bucket holds at least `k` subscribers — an
/// undersized bucket is folded forward into its successor, and a trailing
/// undersized remainder joins the last viable bucket — so each shard is
/// independently k-anonymizable.
///
/// The assignment is a pure function of the dataset and the policy —
/// thread counts never influence it, keeping sharded runs bit-identical
/// across `threads` settings.
pub fn partition(dataset: &Dataset, policy: &ShardPolicy, config: &GloveConfig) -> Vec<Vec<usize>> {
    let n = dataset.fingerprints.len();
    let shards = policy.shards.max(1).min(n.max(1));

    // Order fingerprints by the shard key, stably by input index, and cut
    // into contiguous buckets.
    let mut order: Vec<usize> = (0..n).collect();
    let buckets: Vec<Vec<usize>> = match policy.by {
        ShardBy::Activity => {
            order.sort_by_key(|&i| (dataset.fingerprints[i].len(), i));
            cut(&order, shards)
        }
        ShardBy::Spatial => {
            let keys = spatial_keys(dataset, config);
            order.sort_by_key(|&i| (keys[i], i));
            cut(&order, shards)
        }
        ShardBy::TwoLevel => {
            // Outer level: a Z-order spatial cut into ⌈√shards⌉ contiguous
            // buckets keeps each bucket geographically coherent. Inner
            // level: every outer bucket is re-sorted by activity and cut
            // again, with the total shard count distributed near-evenly
            // across outer buckets — shards end up both spatially coherent
            // and length-homogeneous.
            let keys = spatial_keys(dataset, config);
            order.sort_by_key(|&i| (keys[i], i));
            let outer_n = (shards as f64).sqrt().ceil() as usize;
            let outer = cut(&order, outer_n);
            let base = shards / outer.len();
            let extra = shards % outer.len();
            let mut buckets = Vec::with_capacity(shards);
            for (o, mut bucket) in outer.into_iter().enumerate() {
                bucket.sort_by_key(|&i| (dataset.fingerprints[i].len(), i));
                let inner_n = (base + usize::from(o < extra)).max(1);
                buckets.extend(cut(&bucket, inner_n));
            }
            buckets
        }
    };

    // Coalesce buckets below the `k`-subscriber floor forward into their
    // successor (an undersized run keeps accumulating until it clears the
    // floor); only a trailing remainder falls back to the last emitted
    // bucket.
    let users_of = |bucket: &[usize]| -> usize {
        bucket
            .iter()
            .map(|&i| dataset.fingerprints[i].multiplicity())
            .sum()
    };
    let mut coalesced: Vec<Vec<usize>> = Vec::with_capacity(buckets.len());
    let mut pending: Vec<usize> = Vec::new();
    for bucket in buckets {
        pending.extend(bucket);
        if users_of(&pending) >= config.k {
            coalesced.push(std::mem::take(&mut pending));
        }
    }
    if !pending.is_empty() {
        match coalesced.last_mut() {
            Some(last) => last.extend(pending),
            // Fewer than k subscribers in total is rejected before
            // partitioning; a single bucket is still returned for
            // robustness.
            None => coalesced.push(pending),
        }
    }
    coalesced
}

/// Cuts an ordered index run into `parts` near-equal contiguous buckets
/// (first `n % parts` buckets get one extra element; empty buckets are
/// dropped when `parts > n`).
fn cut(order: &[usize], parts: usize) -> Vec<Vec<usize>> {
    let n = order.len();
    let parts = parts.max(1).min(n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut buckets = Vec::with_capacity(parts);
    let mut cursor = 0usize;
    for s in 0..parts {
        let len = base + usize::from(s < extra);
        if len == 0 {
            continue;
        }
        buckets.push(order[cursor..cursor + len].to_vec());
        cursor += len;
    }
    buckets
}

/// Z-order spatial sort keys: one grid cell per spatial saturation cap, so
/// fingerprints whose merge could cost less than a saturated move share a
/// locality.
fn spatial_keys(dataset: &Dataset, config: &GloveConfig) -> Vec<u64> {
    let grid = Grid::new(config.stretch.phi_max_space_m.max(1.0));
    dataset
        .fingerprints
        .iter()
        .map(|fp| grid.cell_of(centroid(fp)).z_index())
        .collect()
}

/// Mean of the sample-box centers of a fingerprint, on the metric plane.
fn centroid(fp: &Fingerprint) -> MetricPoint {
    let mut x = 0.0;
    let mut y = 0.0;
    for s in fp.samples() {
        x += s.x as f64 + f64::from(s.dx) / 2.0;
        y += s.y as f64 + f64::from(s.dy) / 2.0;
    }
    let n = fp.len() as f64;
    MetricPoint { x: x / n, y: y / n }
}

/// Runs GLOVE shard by shard and stitches the outputs. Called by
/// [`crate::glove::anonymize`] when the config carries a [`ShardPolicy`]
/// with more than one shard; callers guarantee a validated config and a
/// dataset holding at least `k` subscribers.
pub(crate) fn anonymize_sharded(
    dataset: &Dataset,
    config: &GloveConfig,
    policy: ShardPolicy,
    plan: Option<&KPlan>,
) -> Result<GloveOutput, GloveError> {
    let started = Instant::now();
    let chunks = partition(dataset, &policy, config);

    // The shard fan-out is the primary parallel axis; when there are fewer
    // shards than workers, each shard run gets a slice of the remaining
    // thread budget. The monolithic loop is thread-count invariant (see
    // crates/core/tests/determinism.rs), so the split affects wall clock
    // only — the partition alone fixes the output.
    let budget = crate::parallel::effective_threads(config.threads);
    let inner = GloveConfig {
        shard: None,
        threads: (budget / chunks.len().max(1)).max(1),
        ..*config
    };
    let shard_inputs: Vec<Dataset> = chunks
        .iter()
        .enumerate()
        .map(|(s, idxs)| {
            Dataset::new(
                format!("{}-shard{s}", dataset.name),
                idxs.iter()
                    .map(|&i| dataset.fingerprints[i].clone())
                    .collect(),
            )
        })
        .collect::<Result<_, _>>()?;

    // A shard whose population cannot cover its deepest plan requirement
    // would fail mid-run; detect it up front with the same error the
    // monolithic entry point raises.
    if let Some(p) = plan {
        for input in &shard_inputs {
            let need = input
                .fingerprints
                .iter()
                .map(|f| p.required_k(f.users()))
                .max()
                .unwrap_or(config.k)
                .max(config.k);
            if input.num_users() < need {
                return Err(GloveError::Unsatisfiable(format!(
                    "shard '{}' has {} subscribers, fewer than the policy k = {}",
                    input.name,
                    input.num_users(),
                    need
                )));
            }
        }
    }

    let outputs = par_map(shard_inputs.len(), config.threads, |s| {
        run_monolithic(&shard_inputs[s], &inner, plan)
    });

    let mut stats = GloveStats::default();
    let mut published = Vec::new();
    for (s, output) in outputs.into_iter().enumerate() {
        let output = output?;
        stats.merges += output.stats.merges;
        stats.pairs_computed += output.stats.pairs_computed;
        stats.pairs_pruned += output.stats.pairs_pruned;
        stats.pairs_skipped_tier0 += output.stats.pairs_skipped_tier0;
        stats.pairs_skipped_tier1 += output.stats.pairs_skipped_tier1;
        stats.pairs_abandoned += output.stats.pairs_abandoned;
        stats.suppressed.absorb(output.stats.suppressed);
        stats.reshaped_samples += output.stats.reshaped_samples;
        stats.discarded_fingerprints += output.stats.discarded_fingerprints;
        stats.discarded_users += output.stats.discarded_users;
        stats.ledger.absorb(&output.stats.ledger);
        stats.per_shard.push(ShardStat {
            shard: s,
            fingerprints_in: shard_inputs[s].fingerprints.len(),
            users_in: shard_inputs[s].num_users(),
            fingerprints_out: output.dataset.fingerprints.len(),
            merges: output.stats.merges,
            pairs_computed: output.stats.pairs_computed,
            pairs_pruned: output.stats.pairs_pruned,
            pairs_skipped_tier0: output.stats.pairs_skipped_tier0,
            pairs_skipped_tier1: output.stats.pairs_skipped_tier1,
            pairs_abandoned: output.stats.pairs_abandoned,
            ledger: output.stats.ledger,
            elapsed_s: output.stats.elapsed_s,
        });
        published.extend(output.dataset.fingerprints);
    }
    stats.ledger.capture_rss();
    stats.elapsed_s = started.elapsed().as_secs_f64();

    let dataset = Dataset::new(format!("{}-glove-k{}", dataset.name, config.k), published)?;
    debug_assert!(dataset.is_k_anonymous(config.k));
    Ok(GloveOutput { dataset, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glove::anonymize;

    /// Two spatial clusters, heterogeneous activity.
    fn clustered_dataset(n: usize) -> Dataset {
        let fps = (0..n)
            .map(|u| {
                let cluster = (u % 2) as i64;
                let extra = u % 4; // 1..=4 samples: activity spread
                let mut points = vec![(cluster * 200_000, 0, 60 + u as u32 % 7)];
                for e in 0..extra {
                    points.push((
                        cluster * 200_000 + 500 * (e as i64 + 1),
                        300,
                        500 + 300 * e as u32 + u as u32 % 5,
                    ));
                }
                Fingerprint::from_points(u as u32, &points).unwrap()
            })
            .collect();
        Dataset::new("clustered", fps).unwrap()
    }

    #[test]
    fn partition_conserves_and_balances() {
        let ds = clustered_dataset(40);
        let config = GloveConfig::default();
        for by in [ShardBy::Activity, ShardBy::Spatial] {
            let policy = ShardPolicy { shards: 4, by };
            let chunks = partition(&ds, &policy, &config);
            assert_eq!(chunks.len(), 4);
            let mut all: Vec<usize> = chunks.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..40).collect::<Vec<_>>(), "every fp exactly once");
            for c in &chunks {
                assert_eq!(c.len(), 10, "even fingerprint split");
            }
        }
    }

    #[test]
    fn activity_partition_groups_similar_lengths() {
        let ds = clustered_dataset(40);
        let config = GloveConfig::default();
        let chunks = partition(&ds, &ShardPolicy::activity(4), &config);
        // Within the ordered chunks, max length of chunk i <= min length of
        // chunk i+1 (contiguous cut of the length-sorted order).
        for w in chunks.windows(2) {
            let max_prev = w[0].iter().map(|&i| ds.fingerprints[i].len()).max();
            let min_next = w[1].iter().map(|&i| ds.fingerprints[i].len()).min();
            assert!(max_prev <= min_next);
        }
    }

    #[test]
    fn spatial_partition_separates_clusters() {
        let ds = clustered_dataset(40);
        let config = GloveConfig::default();
        let chunks = partition(&ds, &ShardPolicy::spatial(2), &config);
        assert_eq!(chunks.len(), 2);
        // The two 200 km-apart clusters must not share a shard.
        for c in &chunks {
            let clusters: std::collections::BTreeSet<i64> = c
                .iter()
                .map(|&i| ds.fingerprints[i].samples()[0].x / 100_000)
                .collect();
            assert_eq!(clusters.len(), 1, "shard mixes spatial clusters");
        }
    }

    #[test]
    fn undersized_buckets_are_coalesced() {
        // 5 fingerprints, k = 4: at most one viable shard.
        let ds = clustered_dataset(5);
        let config = GloveConfig {
            k: 4,
            ..GloveConfig::default()
        };
        let chunks = partition(&ds, &ShardPolicy::activity(4), &config);
        for c in &chunks {
            let users: usize = c.iter().map(|&i| ds.fingerprints[i].multiplicity()).sum();
            assert!(users >= 4, "shard below the k floor");
        }
        let total: usize = chunks.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn sharded_run_preserves_k_anonymity_and_users() {
        let ds = clustered_dataset(32);
        let config = GloveConfig {
            shard: Some(ShardPolicy::activity(4)),
            ..GloveConfig::default()
        };
        let out = anonymize(&ds, &config).unwrap();
        assert!(out.dataset.is_k_anonymous(2));
        assert_eq!(out.dataset.num_users(), 32);
        assert_eq!(out.stats.per_shard.len(), 4);
        let shard_merges: u64 = out.stats.per_shard.iter().map(|s| s.merges).sum();
        assert_eq!(shard_merges, out.stats.merges);
        let users_in: usize = out.stats.per_shard.iter().map(|s| s.users_in).sum();
        assert_eq!(users_in, 32);
    }

    #[test]
    fn single_shard_policy_matches_monolithic() {
        let ds = clustered_dataset(12);
        let mono = anonymize(&ds, &GloveConfig::default()).unwrap();
        let config = GloveConfig {
            shard: Some(ShardPolicy::activity(1)),
            ..GloveConfig::default()
        };
        let sharded = anonymize(&ds, &config).unwrap();
        assert_eq!(mono.dataset.fingerprints, sharded.dataset.fingerprints);
        assert!(sharded.stats.per_shard.is_empty());
    }

    #[test]
    fn sharded_output_fingerprints_stay_within_shard_users() {
        // Users assigned to different shards never share a published group.
        let ds = clustered_dataset(24);
        let config = GloveConfig {
            shard: Some(ShardPolicy::spatial(2)),
            ..GloveConfig::default()
        };
        let chunks = partition(&ds, &ShardPolicy::spatial(2), &config);
        let mut shard_of: std::collections::BTreeMap<u32, usize> =
            std::collections::BTreeMap::new();
        for (s, c) in chunks.iter().enumerate() {
            for &i in c {
                for &u in ds.fingerprints[i].users() {
                    shard_of.insert(u, s);
                }
            }
        }
        let out = anonymize(&ds, &config).unwrap();
        for fp in &out.dataset.fingerprints {
            let shards: std::collections::BTreeSet<usize> =
                fp.users().iter().map(|u| shard_of[u]).collect();
            assert_eq!(shards.len(), 1, "published group spans shards");
        }
    }

    #[test]
    fn sharded_residual_suppress_counts_add_up() {
        let ds = clustered_dataset(21);
        let config = GloveConfig {
            k: 2,
            residual: crate::config::ResidualPolicy::Suppress,
            shard: Some(ShardPolicy::activity(3)),
            ..GloveConfig::default()
        };
        let out = anonymize(&ds, &config).unwrap();
        assert!(out.dataset.is_k_anonymous(2));
        assert_eq!(
            out.dataset.num_users() as u64 + out.stats.discarded_users,
            21
        );
    }

    #[test]
    fn more_shards_than_fingerprints_is_clamped() {
        let ds = clustered_dataset(6);
        let config = GloveConfig {
            shard: Some(ShardPolicy::activity(64)),
            ..GloveConfig::default()
        };
        let out = anonymize(&ds, &config).unwrap();
        assert!(out.dataset.is_k_anonymous(2));
        assert_eq!(out.dataset.num_users(), 6);
        assert!(out.stats.per_shard.len() <= 3);
    }
}
