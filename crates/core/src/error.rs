//! Error type shared across the GLOVE workspace core.

use std::fmt;

/// Errors produced by the GLOVE core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GloveError {
    /// A sample violated the box invariants (zero extents, …).
    InvalidSample(String),
    /// A fingerprint violated its invariants (no samples, no users, …).
    InvalidFingerprint(String),
    /// A dataset violated its invariants (duplicate subscribers, …).
    InvalidDataset(String),
    /// A configuration value is out of range.
    InvalidConfig(String),
    /// The requested anonymity level cannot be met (e.g. fewer than `k`
    /// subscribers in the dataset).
    Unsatisfiable(String),
    /// A streaming event arrived with a timestamp earlier than an event
    /// already consumed (the stream engine requires time order).
    OutOfOrderEvent(String),
}

impl fmt::Display for GloveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GloveError::InvalidSample(msg) => write!(f, "invalid sample: {msg}"),
            GloveError::InvalidFingerprint(msg) => write!(f, "invalid fingerprint: {msg}"),
            GloveError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            GloveError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            GloveError::Unsatisfiable(msg) => write!(f, "unsatisfiable request: {msg}"),
            GloveError::OutOfOrderEvent(msg) => write!(f, "out-of-order event: {msg}"),
        }
    }
}

impl std::error::Error for GloveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GloveError::InvalidConfig("k must be at least 2".into());
        let s = e.to_string();
        assert!(s.contains("invalid configuration"));
        assert!(s.contains("k must be at least 2"));
    }
}
