//! Memory-audit ledger: peak arena bytes, resident columnar pages and
//! process peak-RSS, threaded through every engine's statistics.
//!
//! The ROADMAP north star is a million-user metro on one box; at that scale
//! "how much memory did this run actually need" is a first-class result,
//! not a profiler afterthought. Every engine therefore records a
//! [`MemoryLedger`] alongside its counters: the greedy core tracks the peak
//! footprint of its pair arena and columnar [`SampleStore`] pages, the
//! sharded engine sums the per-shard peaks (a sound bound — shards run
//! concurrently), and everything captures the kernel's own high-water mark
//! (`VmHWM`) at the end of the run.
//!
//! [`SampleStore`]: crate::compact::SampleStore

/// Peak memory accounting for one run (or one shard of a run).
///
/// All byte figures are *peaks over the run*, not final values: an arena
/// that grows to 2 GiB and is then compacted to 200 MiB reports 2 GiB.
/// `peak_rss_bytes` is process-wide (the kernel's `VmHWM`), so in a sharded
/// run every shard observes the same number; [`MemoryLedger::absorb`] takes
/// the max rather than summing it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryLedger {
    /// Peak bytes held by the pairwise-distance arena (pages, hulls,
    /// signatures, row minima) over the run.
    pub peak_arena_bytes: u64,
    /// Peak bytes held by the columnar sample store's pages over the run
    /// (zero when the engine runs on the `Vec<Sample>` reference path).
    pub peak_store_bytes: u64,
    /// Columnar pages resident when the store peaked (zero on the
    /// reference path).
    pub resident_pages: u64,
    /// Process peak resident-set size (`VmHWM` from `/proc/self/status`)
    /// captured at the end of the run; 0 on platforms without procfs.
    pub peak_rss_bytes: u64,
}

impl MemoryLedger {
    /// Records an arena footprint observation, keeping the maximum.
    pub fn observe_arena(&mut self, bytes: u64) {
        self.peak_arena_bytes = self.peak_arena_bytes.max(bytes);
    }

    /// Records a columnar-store footprint observation, keeping the byte
    /// maximum and the page count at that maximum.
    pub fn observe_store(&mut self, bytes: u64, pages: u64) {
        if bytes >= self.peak_store_bytes {
            self.peak_store_bytes = bytes;
            self.resident_pages = self.resident_pages.max(pages);
        }
    }

    /// Captures the process high-water mark into `peak_rss_bytes`.
    pub fn capture_rss(&mut self) {
        self.peak_rss_bytes = self.peak_rss_bytes.max(process_peak_rss_bytes());
    }

    /// Folds another ledger into this one: arena/store peaks and page
    /// counts add (shards run concurrently, so the sum bounds the true
    /// simultaneous footprint), process RSS takes the max (it is already
    /// process-wide).
    pub fn absorb(&mut self, other: &MemoryLedger) {
        self.peak_arena_bytes += other.peak_arena_bytes;
        self.peak_store_bytes += other.peak_store_bytes;
        self.resident_pages += other.resident_pages;
        self.peak_rss_bytes = self.peak_rss_bytes.max(other.peak_rss_bytes);
    }

    /// Folds another ledger into this one taking element-wise maxima: the
    /// right combination for *sequential* phases (stream epochs), whose
    /// footprints are released before the next observation rather than
    /// coexisting — summing them would overstate the bound by the epoch
    /// count.
    pub fn merge_max(&mut self, other: &MemoryLedger) {
        self.peak_arena_bytes = self.peak_arena_bytes.max(other.peak_arena_bytes);
        self.peak_store_bytes = self.peak_store_bytes.max(other.peak_store_bytes);
        self.resident_pages = self.resident_pages.max(other.resident_pages);
        self.peak_rss_bytes = self.peak_rss_bytes.max(other.peak_rss_bytes);
    }
}

/// Reads the process peak resident-set size in bytes from the kernel's
/// `VmHWM` line in `/proc/self/status`. Returns 0 when procfs is absent
/// (non-Linux platforms) or unparsable, never errors.
pub fn process_peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kib = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse::<u64>()
                    .unwrap_or(0);
                return kib.saturating_mul(1024);
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_keeps_peaks() {
        let mut ledger = MemoryLedger::default();
        ledger.observe_arena(100);
        ledger.observe_arena(50);
        ledger.observe_store(1_000, 2);
        ledger.observe_store(500, 9);
        assert_eq!(ledger.peak_arena_bytes, 100);
        assert_eq!(ledger.peak_store_bytes, 1_000);
        assert_eq!(ledger.resident_pages, 2);
    }

    #[test]
    fn absorb_sums_arena_and_maxes_rss() {
        let mut a = MemoryLedger {
            peak_arena_bytes: 10,
            peak_store_bytes: 20,
            resident_pages: 1,
            peak_rss_bytes: 5_000,
        };
        let b = MemoryLedger {
            peak_arena_bytes: 7,
            peak_store_bytes: 3,
            resident_pages: 2,
            peak_rss_bytes: 9_000,
        };
        a.absorb(&b);
        assert_eq!(a.peak_arena_bytes, 17);
        assert_eq!(a.peak_store_bytes, 23);
        assert_eq!(a.resident_pages, 3);
        assert_eq!(a.peak_rss_bytes, 9_000);
    }

    #[test]
    fn rss_capture_is_nonzero_on_linux() {
        let rss = process_peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "VmHWM should be readable on Linux");
        }
    }
}
