//! Spatiotemporal accuracy of anonymized datasets (§7, Figs. 7–11).
//!
//! Generalization publishes boxes instead of points; the accuracy of a
//! published sample is the extent of its box: position accuracy is the mean
//! spatial side `(dx + dy)/2` (100 m for untouched samples) and time
//! accuracy is the window length `dt` (1 min for untouched samples). See
//! DESIGN.md §1 for the rationale of these estimators against the paper's
//! unlabeled axes.
//!
//! Accuracy vectors are *user-weighted*: a sample shared by a group of `n`
//! subscribers contributes `n` observations, so the CDFs answer "how
//! accurate is the data of a random subscriber's sample", matching §7.

use crate::model::Dataset;

/// Position accuracy (meters) of every user-sample in the dataset.
pub fn position_accuracy_m(dataset: &Dataset) -> Vec<f64> {
    let mut out = Vec::with_capacity(dataset.num_user_samples());
    for fp in &dataset.fingerprints {
        let weight = fp.multiplicity();
        for s in fp.samples() {
            let v = s.position_accuracy_m();
            for _ in 0..weight {
                out.push(v);
            }
        }
    }
    out
}

/// Time accuracy (minutes) of every user-sample in the dataset.
pub fn time_accuracy_min(dataset: &Dataset) -> Vec<f64> {
    let mut out = Vec::with_capacity(dataset.num_user_samples());
    for fp in &dataset.fingerprints {
        let weight = fp.multiplicity();
        for s in fp.samples() {
            let v = s.time_accuracy_min();
            for _ in 0..weight {
                out.push(v);
            }
        }
    }
    out
}

/// Fraction of user-samples that kept the original spatial accuracy
/// (≤ `native_m`, default 100 m) — the "20 % to 40 % of the samples retain
/// their original spatial accuracy" statistic of §7.
pub fn fraction_at_native_position(dataset: &Dataset, native_m: f64) -> f64 {
    let acc = position_accuracy_m(dataset);
    if acc.is_empty() {
        return 0.0;
    }
    acc.iter().filter(|&&v| v <= native_m).count() as f64 / acc.len() as f64
}

/// Mean position accuracy in meters (the Table 2 "Mean position error" for
/// GLOVE-anonymized data).
pub fn mean_position_accuracy_m(dataset: &Dataset) -> f64 {
    let acc = position_accuracy_m(dataset);
    if acc.is_empty() {
        return 0.0;
    }
    acc.iter().sum::<f64>() / acc.len() as f64
}

/// Mean time accuracy in minutes (the Table 2 "Mean time error" for
/// GLOVE-anonymized data).
pub fn mean_time_accuracy_min(dataset: &Dataset) -> f64 {
    let acc = time_accuracy_min(dataset);
    if acc.is_empty() {
        return 0.0;
    }
    acc.iter().sum::<f64>() / acc.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Fingerprint, Sample};

    fn dataset() -> Dataset {
        let fps = vec![
            // 1 user, native samples.
            Fingerprint::from_points(0, &[(0, 0, 0), (100, 0, 10)]).unwrap(),
            // 3 users sharing one generalized sample 1 km x 3 km x 60 min.
            Fingerprint::with_users(
                vec![1, 2, 3],
                vec![Sample::new(0, 0, 1_000, 3_000, 0, 60).unwrap()],
            )
            .unwrap(),
        ];
        Dataset::new("acc", fps).unwrap()
    }

    #[test]
    fn accuracy_vectors_are_user_weighted() {
        let ds = dataset();
        let pos = position_accuracy_m(&ds);
        // 2 samples x 1 user + 1 sample x 3 users = 5 observations.
        assert_eq!(pos.len(), 5);
        assert_eq!(pos.iter().filter(|&&v| v == 100.0).count(), 2);
        assert_eq!(pos.iter().filter(|&&v| v == 2_000.0).count(), 3);

        let time = time_accuracy_min(&ds);
        assert_eq!(time.len(), 5);
        assert_eq!(time.iter().filter(|&&v| v == 1.0).count(), 2);
        assert_eq!(time.iter().filter(|&&v| v == 60.0).count(), 3);
    }

    #[test]
    fn native_fraction() {
        let ds = dataset();
        let f = fraction_at_native_position(&ds, 100.0);
        assert!((f - 0.4).abs() < 1e-12);
    }

    #[test]
    fn means() {
        let ds = dataset();
        let mp = mean_position_accuracy_m(&ds);
        assert!((mp - (100.0 * 2.0 + 2_000.0 * 3.0) / 5.0).abs() < 1e-9);
        let mt = mean_time_accuracy_min(&ds);
        assert!((mt - (1.0 * 2.0 + 60.0 * 3.0) / 5.0).abs() < 1e-9);
    }

    #[test]
    fn untouched_dataset_is_fully_native() {
        let fps = vec![Fingerprint::from_points(0, &[(0, 0, 0)]).unwrap()];
        let ds = Dataset::new("native", fps).unwrap();
        assert_eq!(fraction_at_native_position(&ds, 100.0), 1.0);
        assert_eq!(mean_position_accuracy_m(&ds), 100.0);
        assert_eq!(mean_time_accuracy_min(&ds), 1.0);
    }
}
