//! The k-gap anonymizability measure of §4.2 (Eq. 11) and its
//! spatial/temporal decomposition (§5.3).
//!
//! The k-gap `Δᵏ_a` of a subscriber is the average fingerprint stretch
//! effort from `a` to its k−1 nearest fingerprints: how much accuracy the
//! dataset must give up to hide `a` in a crowd of `k`. `Δᵏ_a = 0` means `a`
//! is already k-anonymous; `Δᵏ_a = 1` means `a` is so isolated that hiding
//! them saturates both the spatial and temporal caps.
//!
//! That textbook definition — Eq. 11 verbatim — assumes every record hides
//! exactly one subscriber, which is true of raw input but false of
//! anonymized output, where a published record is a merged group. [`kgap`]
//! and [`kgap_all`] are therefore **multiplicity-aware**: a record hiding
//! ≥ `k` subscribers has a gap of 0, and otherwise the crowd of `k` is
//! assembled counting each neighbouring record's multiplicity (see the
//! function docs and DESIGN.md "k-gap on anonymized output"). On raw
//! single-subscriber data this reduces exactly to Eq. 11. The sweep
//! helpers [`kgap_many`] and [`kgap_decomposed_all`] are §5 *raw-data*
//! workloads and keep the single-subscriber assumption.
//!
//! For the root-cause analysis of §5.3, [`kgap_decomposed_all`] additionally
//! returns, per subscriber, the matched per-sample efforts split into their
//! spatial (`w_σ φ_σ`) and temporal (`w_τ φ_τ`) components — the sets `Sᵏ_a`
//! and `Tᵏ_a` whose tail weights explain why uniform generalization fails.

use crate::config::StretchConfig;
use crate::model::Dataset;
use crate::parallel::par_map;
use crate::policy::KPlan;
use crate::stretch::{fingerprint_stretch, fingerprint_stretch_decomposed};

/// Computes the k-gap of a single fingerprint (by index) against the rest of
/// the dataset.
///
/// Records that already hide `k` or more subscribers (merged groups in an
/// anonymized dataset) have a k-gap of 0; otherwise the crowd of `k` is
/// assembled from the nearest fingerprints, each contributing as many
/// subscribers as it hides, and the gap is the contribution-weighted mean
/// effort to them. On raw single-subscriber data this reduces exactly to
/// Eq. 11: the average effort to the k−1 nearest fingerprints.
///
/// Returns `None` when the dataset holds fewer than `k` subscribers (no
/// crowd of `k` exists) or `k < 2`.
///
/// ```
/// use glove_core::prelude::*;
///
/// let ds = Dataset::new("demo", vec![
///     Fingerprint::from_points(0, &[(0, 0, 600)]).unwrap(),
///     Fingerprint::from_points(1, &[(0, 0, 600)]).unwrap(),  // twin of 0
///     Fingerprint::from_points(2, &[(50_000, 0, 6_000)]).unwrap(), // loner
/// ]).unwrap();
/// let cfg = StretchConfig::default();
///
/// // User 0 has an identical twin: already 2-anonymous.
/// assert_eq!(kgap(&ds, 0, 2, &cfg), Some(0.0));
/// // The loner is expensive to hide.
/// assert!(kgap(&ds, 2, 2, &cfg).unwrap() > 0.5);
/// ```
pub fn kgap(dataset: &Dataset, index: usize, k: usize, cfg: &StretchConfig) -> Option<f64> {
    if k < 2 || dataset.num_users() < k {
        return None;
    }
    let a = &dataset.fingerprints[index];
    let mut need = k.saturating_sub(a.multiplicity());
    if need == 0 {
        return Some(0.0);
    }
    let mut efforts: Vec<(f64, usize)> = dataset
        .fingerprints
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != index)
        .map(|(j, b)| (fingerprint_stretch(a, b, cfg), j))
        .collect();
    // Every record contributes at least one subscriber, so at most `need`
    // fingerprints are consumed: select that prefix in O(n) and sort only
    // it, rather than sorting all n-1 efforts.
    let cmp = |x: &(f64, usize), y: &(f64, usize)| {
        x.0.partial_cmp(&y.0).expect("finite").then(x.1.cmp(&y.1))
    };
    let take = need.min(efforts.len());
    if take < efforts.len() {
        efforts.select_nth_unstable_by(take - 1, cmp);
        efforts.truncate(take);
    }
    efforts.sort_unstable_by(cmp);
    let mut total = 0.0;
    let mut taken = 0usize;
    for (d, j) in efforts {
        let contributed = dataset.fingerprints[j].multiplicity().min(need);
        total += d * contributed as f64;
        taken += contributed;
        need -= contributed;
        if need == 0 {
            break;
        }
    }
    Some(total / taken as f64)
}

/// Computes the k-gap of every fingerprint in the dataset, in parallel.
///
/// Returns one value per fingerprint, in dataset order. This is the workload
/// behind the paper's Fig. 3 and Fig. 4 CDFs — and, on an anonymized
/// dataset, the audit that every published record reports a gap of 0.
pub fn kgap_all(dataset: &Dataset, k: usize, threads: usize, cfg: &StretchConfig) -> Vec<f64> {
    assert!(k >= 2, "k-gap requires k >= 2");
    assert!(
        dataset.num_users() >= k,
        "dataset must contain at least k subscribers"
    );
    par_map(dataset.fingerprints.len(), threads, |i| {
        kgap(dataset, i, k, cfg).expect("bounds checked above")
    })
}

/// The policy-aware variant of [`kgap_all`]: each fingerprint is audited
/// against its *own* required k under `plan` — the maximum of the plan's
/// per-user requirements over its member subscribers, floored at `k`.
///
/// On the output of [`crate::glove::anonymize_with_plan`] every record
/// reports a gap of 0 under the same plan — that is the policy plane's
/// k-gap audit. A record whose required k exceeds the dataset population
/// reports a gap of 1 (nothing can hide it; the uniform audit panics in
/// that situation, but a cohort floor can legitimately exceed a small
/// shard).
pub fn kgap_all_plan(
    dataset: &Dataset,
    k: usize,
    plan: &KPlan,
    threads: usize,
    cfg: &StretchConfig,
) -> Vec<f64> {
    assert!(k >= 2, "k-gap requires k >= 2");
    assert!(
        dataset.num_users() >= k,
        "dataset must contain at least k subscribers"
    );
    par_map(dataset.fingerprints.len(), threads, |i| {
        let need = plan.required_k(dataset.fingerprints[i].users()).max(k);
        kgap(dataset, i, need, cfg).unwrap_or(1.0)
    })
}

/// Computes the k-gap of every fingerprint for *several* values of `k` in a
/// single pass over the pairwise efforts (the Fig. 3b workload: one curve
/// per k). Returns one vector per requested `k`, in the same order.
///
/// This is a §5 analysis workload over *raw* data: records are assumed to
/// be single-subscriber (use [`kgap`] for multiplicity-aware audits of
/// anonymized output).
///
/// `ks` must be sorted ascending, all ≥ 2 and ≤ the number of fingerprints.
pub fn kgap_many(
    dataset: &Dataset,
    ks: &[usize],
    threads: usize,
    cfg: &StretchConfig,
) -> Vec<Vec<f64>> {
    assert!(!ks.is_empty(), "need at least one k");
    assert!(ks.windows(2).all(|w| w[0] < w[1]), "ks must be ascending");
    let k_max = *ks.last().expect("non-empty");
    assert!(ks[0] >= 2, "k-gap requires k >= 2");
    assert!(
        dataset.fingerprints.len() >= k_max,
        "dataset must contain at least max(k) fingerprints"
    );

    // Per fingerprint: the k_max - 1 smallest efforts, sorted ascending.
    let nearest: Vec<Vec<f64>> = par_map(dataset.fingerprints.len(), threads, |i| {
        let a = &dataset.fingerprints[i];
        let mut efforts: Vec<f64> = dataset
            .fingerprints
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, b)| fingerprint_stretch(a, b, cfg))
            .collect();
        let kn = k_max - 1;
        efforts.select_nth_unstable_by(kn - 1, |x, y| x.partial_cmp(y).expect("finite"));
        let mut head = efforts[..kn].to_vec();
        head.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        head
    });

    ks.iter()
        .map(|&k| {
            let kn = k - 1;
            nearest
                .iter()
                .map(|head| head[..kn].iter().sum::<f64>() / kn as f64)
                .collect()
        })
        .collect()
}

/// Per-subscriber decomposition of the k-gap (§5.3).
#[derive(Debug, Clone)]
pub struct KgapDecomposition {
    /// The k-gap `Δᵏ_a`.
    pub kgap: f64,
    /// Matched per-sample efforts `δ` across all k−1 neighbours (the inputs
    /// to the Fig. 5a "δ" TWI curve).
    pub deltas: Vec<f64>,
    /// Spatial components `w_σ φ_σ` of those efforts — the set `Sᵏ_a`.
    pub spatial: Vec<f64>,
    /// Temporal components `w_τ φ_τ` of those efforts — the set `Tᵏ_a`.
    pub temporal: Vec<f64>,
}

impl KgapDecomposition {
    /// The temporal share of the total stretch effort,
    /// `Σ T / (Σ S + Σ T)` — the quantity plotted in Fig. 5b. `None` when
    /// the total effort is zero (the fingerprint is already hidden).
    pub fn temporal_share(&self) -> Option<f64> {
        let s: f64 = self.spatial.iter().sum();
        let t: f64 = self.temporal.iter().sum();
        let total = s + t;
        if total > 0.0 {
            Some(t / total)
        } else {
            None
        }
    }
}

/// Computes, for every fingerprint, the k-gap together with the
/// spatial/temporal decomposition of the matched sample efforts over the
/// k−1 nearest fingerprints. Like [`kgap_many`], this is a raw-data (§5.3)
/// workload assuming single-subscriber records.
pub fn kgap_decomposed_all(
    dataset: &Dataset,
    k: usize,
    threads: usize,
    cfg: &StretchConfig,
) -> Vec<KgapDecomposition> {
    assert!(k >= 2, "k-gap requires k >= 2");
    assert!(
        dataset.fingerprints.len() >= k,
        "dataset must contain at least k fingerprints"
    );
    par_map(dataset.fingerprints.len(), threads, |i| {
        let a = &dataset.fingerprints[i];
        // Rank all neighbours by effort.
        let mut efforts: Vec<(f64, usize)> = dataset
            .fingerprints
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, b)| (fingerprint_stretch(a, b, cfg), j))
            .collect();
        let kn = k - 1;
        efforts.select_nth_unstable_by(kn - 1, |x, y| {
            x.0.partial_cmp(&y.0).expect("finite").then(x.1.cmp(&y.1))
        });
        let neighbours = &efforts[..kn];

        let mut deltas = Vec::new();
        let mut spatial = Vec::new();
        let mut temporal = Vec::new();
        let mut total = 0.0;
        for &(_, j) in neighbours {
            let (d, parts) = fingerprint_stretch_decomposed(a, &dataset.fingerprints[j], cfg);
            total += d;
            for (s, t) in parts {
                deltas.push(s + t);
                spatial.push(s);
                temporal.push(t);
            }
        }
        KgapDecomposition {
            kgap: total / kn as f64,
            deltas,
            spatial,
            temporal,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Fingerprint;

    fn cfg() -> StretchConfig {
        StretchConfig::default()
    }

    fn three_user_dataset() -> Dataset {
        // Users 0 and 1 are near-identical; user 2 is far away in time.
        let fps = vec![
            Fingerprint::from_points(0, &[(0, 0, 100), (5_000, 0, 700)]).unwrap(),
            Fingerprint::from_points(1, &[(100, 0, 102), (5_100, 0, 705)]).unwrap(),
            Fingerprint::from_points(2, &[(0, 0, 5_000), (5_000, 0, 9_000)]).unwrap(),
        ];
        Dataset::new("three", fps).unwrap()
    }

    #[test]
    fn kgap_of_duplicate_is_zero() {
        let fps = vec![
            Fingerprint::from_points(0, &[(0, 0, 100)]).unwrap(),
            Fingerprint::from_points(1, &[(0, 0, 100)]).unwrap(),
        ];
        let ds = Dataset::new("dup", fps).unwrap();
        assert_eq!(kgap(&ds, 0, 2, &cfg()), Some(0.0));
        assert_eq!(kgap(&ds, 1, 2, &cfg()), Some(0.0));
    }

    #[test]
    fn kgap_picks_nearest_neighbour() {
        let ds = three_user_dataset();
        // For user 0, the nearest is user 1, not the far-away user 2.
        let g0 = kgap(&ds, 0, 2, &cfg()).unwrap();
        let d01 = fingerprint_stretch(&ds.fingerprints[0], &ds.fingerprints[1], &cfg());
        assert!((g0 - d01).abs() < 1e-12);
    }

    #[test]
    fn kgap_grows_with_k() {
        let ds = three_user_dataset();
        let g2 = kgap(&ds, 0, 2, &cfg()).unwrap();
        let g3 = kgap(&ds, 0, 3, &cfg()).unwrap();
        assert!(g3 >= g2, "hiding in a larger crowd cannot be cheaper");
    }

    #[test]
    fn kgap_requires_enough_fingerprints() {
        let ds = three_user_dataset();
        assert!(kgap(&ds, 0, 4, &cfg()).is_none());
        assert!(kgap(&ds, 0, 1, &cfg()).is_none());
    }

    #[test]
    fn kgap_accounts_for_record_multiplicity() {
        use crate::model::Sample;
        let fps = vec![
            Fingerprint::with_users(vec![0, 1], vec![Sample::point(0, 0, 100)]).unwrap(),
            Fingerprint::from_points(2, &[(0, 0, 5_000)]).unwrap(),
        ];
        let ds = Dataset::new("merged", fps).unwrap();
        // The merged pair already hides 2 subscribers: gap 0.
        assert_eq!(kgap(&ds, 0, 2, &cfg()), Some(0.0));
        // The loner can borrow 1 of the group's 2 users; the cost is the
        // full pair effort.
        let d = fingerprint_stretch(&ds.fingerprints[0], &ds.fingerprints[1], &cfg());
        let g = kgap(&ds, 1, 2, &cfg()).unwrap();
        assert!((g - d).abs() < 1e-12);
        // At k = 3 even the group needs one companion.
        assert!(kgap(&ds, 0, 3, &cfg()).unwrap() > 0.0);
        // An anonymized dataset audits as all-zero.
        let gaps = kgap_all(&ds, 2, 1, &cfg());
        assert_eq!(gaps[0], 0.0);
    }

    #[test]
    fn kgap_all_matches_singles() {
        let ds = three_user_dataset();
        let all = kgap_all(&ds, 2, 2, &cfg());
        for (i, &v) in all.iter().enumerate() {
            assert_eq!(Some(v), kgap(&ds, i, 2, &cfg()));
        }
    }

    #[test]
    fn kgap_all_plan_audits_per_record_requirements() {
        use crate::model::Sample;
        use std::collections::BTreeMap;
        let fps = vec![
            Fingerprint::with_users(
                vec![0, 1, 2],
                vec![Sample::point(0, 0, 100), Sample::point(0, 0, 101)],
            )
            .unwrap(),
            Fingerprint::with_users(vec![3, 4], vec![Sample::point(0, 0, 102)]).unwrap(),
        ];
        let ds = Dataset::new("plan-audit", fps).unwrap();
        // Uniform plan: both groups clear their base k = 2.
        let plan = KPlan::new(2, BTreeMap::new());
        let gaps = kgap_all_plan(&ds, 2, &plan, 1, &cfg());
        assert_eq!(gaps, vec![0.0, 0.0]);
        // User 3 requires k = 4: its group (2 users) now audits non-zero,
        // the other group (3 users, requirement still 2) stays at 0.
        let plan = KPlan::new(2, BTreeMap::from([(3u32, 4usize)]));
        let gaps = kgap_all_plan(&ds, 2, &plan, 1, &cfg());
        assert_eq!(gaps[0], 0.0);
        assert!(gaps[1] > 0.0, "under-deep group must report a gap");
    }

    #[test]
    fn kgap_many_matches_individual_calls() {
        let fps = (0..8)
            .map(|u| {
                Fingerprint::from_points(
                    u,
                    &[
                        ((u as i64) * 700, 0, 100 + u * 13),
                        (0, (u as i64) * 300, 900 + u * 7),
                    ],
                )
                .unwrap()
            })
            .collect();
        let ds = Dataset::new("many", fps).unwrap();
        let many = kgap_many(&ds, &[2, 3, 5], 1, &cfg());
        assert_eq!(many.len(), 3);
        for (slot, k) in [(0usize, 2usize), (1, 3), (2, 5)] {
            let single = kgap_all(&ds, k, 1, &cfg());
            for (a, b) in many[slot].iter().zip(&single) {
                assert!((a - b).abs() < 1e-12, "k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn decomposition_total_matches_kgap() {
        let ds = three_user_dataset();
        let plain = kgap_all(&ds, 2, 1, &cfg());
        let decomposed = kgap_decomposed_all(&ds, 2, 1, &cfg());
        for (p, d) in plain.iter().zip(&decomposed) {
            assert!((p - d.kgap).abs() < 1e-12);
            // Per-sample parts recompose into deltas.
            for ((&delta, &s), &t) in d.deltas.iter().zip(&d.spatial).zip(&d.temporal) {
                assert!((delta - (s + t)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn temporal_share_detects_time_dominated_cost() {
        // Same place, far apart in time: the share must be 1.
        let fps = vec![
            Fingerprint::from_points(0, &[(0, 0, 0)]).unwrap(),
            Fingerprint::from_points(1, &[(0, 0, 10_000)]).unwrap(),
        ];
        let ds = Dataset::new("time-only", fps).unwrap();
        let d = kgap_decomposed_all(&ds, 2, 1, &cfg());
        assert_eq!(d[0].temporal_share(), Some(1.0));
    }

    #[test]
    fn temporal_share_none_for_identical() {
        let fps = vec![
            Fingerprint::from_points(0, &[(0, 0, 0)]).unwrap(),
            Fingerprint::from_points(1, &[(0, 0, 0)]).unwrap(),
        ];
        let ds = Dataset::new("ident", fps).unwrap();
        let d = kgap_decomposed_all(&ds, 2, 1, &cfg());
        assert_eq!(d[0].temporal_share(), None);
    }
}
