//! Configuration of the stretch-effort algebra and the GLOVE algorithm.

use crate::error::GloveError;

/// Parameters of the sample stretch effort `δ` (paper §4.1, Eqs. 1–3).
///
/// The defaults are the paper's choices: `φmax_σ = 20 km`, `φmax_τ = 8 h`,
/// `w_σ = w_τ = ½`. Footnote 3 of the paper explains the calibration: the
/// ratio `φmax_σ / φmax_τ` fixes which spatial loss is "worth" which temporal
/// loss (≈ 0.5 km ↔ 15 min), and values beyond the caps are considered
/// uninformative (effort saturates at 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchConfig {
    /// Spatial saturation threshold `φmax_σ`, meters. Default 20 000 m.
    pub phi_max_space_m: f64,
    /// Temporal saturation threshold `φmax_τ`, minutes. Default 480 min.
    pub phi_max_time_min: f64,
    /// Spatial weight `w_σ`. Default 0.5.
    pub w_space: f64,
    /// Temporal weight `w_τ`. Default 0.5.
    pub w_time: f64,
    /// Weight the per-direction stretches by group multiplicity (the
    /// `n_a/(n_a+n_b)` factors of Eqs. 4 and 7). Disabling this is an
    /// ablation of the paper's design choice: merged groups then count like
    /// single users when pricing further merges. Default: true.
    pub population_weighting: bool,
}

impl Default for StretchConfig {
    fn default() -> Self {
        Self {
            phi_max_space_m: 20_000.0,
            phi_max_time_min: 480.0,
            w_space: 0.5,
            w_time: 0.5,
            population_weighting: true,
        }
    }
}

impl StretchConfig {
    /// Validates the configuration: positive caps, non-negative weights
    /// summing to 1 (which keeps `δ ∈ [0, 1]`, Eq. 1).
    pub fn validate(&self) -> Result<(), GloveError> {
        if !(self.phi_max_space_m.is_finite() && self.phi_max_space_m > 0.0) {
            return Err(GloveError::InvalidConfig(
                "phi_max_space_m must be positive and finite".into(),
            ));
        }
        if !(self.phi_max_time_min.is_finite() && self.phi_max_time_min > 0.0) {
            return Err(GloveError::InvalidConfig(
                "phi_max_time_min must be positive and finite".into(),
            ));
        }
        if self.w_space < 0.0 || self.w_time < 0.0 {
            return Err(GloveError::InvalidConfig(
                "stretch weights must be non-negative".into(),
            ));
        }
        if (self.w_space + self.w_time - 1.0).abs() > 1e-9 {
            return Err(GloveError::InvalidConfig(
                "stretch weights must sum to 1 so that delta stays in [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

/// Suppression thresholds of §7.1: during a merge, a sample whose
/// generalization would exceed either bound is discarded instead of merged.
///
/// `None` on an axis disables the threshold on that axis (the paper's Fig. 9
/// right plot uses temporal-only thresholds; footnote 8 notes spatial-only
/// thresholding gains little).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SuppressionThresholds {
    /// Maximum tolerated spatial extent of a merged sample, meters
    /// (`max(dx, dy)` is compared against this).
    pub max_space_m: Option<u32>,
    /// Maximum tolerated temporal extent of a merged sample, minutes.
    pub max_time_min: Option<u32>,
}

impl SuppressionThresholds {
    /// Thresholds used for the paper's Table 2 runs: 15 km and 6 h.
    pub fn table2() -> Self {
        Self {
            max_space_m: Some(15_000),
            max_time_min: Some(360),
        }
    }

    /// True if no axis is constrained (suppression disabled).
    pub fn is_disabled(&self) -> bool {
        self.max_space_m.is_none() && self.max_time_min.is_none()
    }
}

/// What to do with the at-most-one fingerprint that can remain with
/// multiplicity `< k` when Alg. 1's main loop runs out of mergeable pairs
/// (see DESIGN.md "Residual fingerprints").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResidualPolicy {
    /// Merge the residual fingerprint into the nearest (minimum stretch
    /// effort) already-k-anonymized group. Keeps every subscriber in the
    /// published dataset. This is the default.
    #[default]
    MergeIntoNearest,
    /// Drop the residual fingerprint (its subscribers are not published).
    Suppress,
}

/// How the sharded engine assigns fingerprints to shards (see
/// `core::shard` and DESIGN.md "Sharded anonymization").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBy {
    /// Bucket by activity: fingerprints are ordered by sample count and cut
    /// into contiguous runs, so each shard holds similar-length fingerprints
    /// — the §6.3 batching idea ("grouping fingerprints of similar activity").
    /// This is the default.
    #[default]
    Activity,
    /// Bucket spatially: fingerprints are ordered by the Z-order index of
    /// their centroid's cell on a coarse grid (one cell per `φmax_σ`), so
    /// each shard holds geographically coherent users and cheap merges stay
    /// available within the shard.
    Spatial,
    /// Hierarchical two-level bucketing for metro-scale datasets: an outer
    /// spatial Z-order cut into `⌈√shards⌉` contiguous buckets, each
    /// re-sorted by activity and cut again so the total shard count comes
    /// out to `shards`. Shards are then both geographically coherent (outer
    /// level keeps cheap merges available) *and* length-homogeneous (inner
    /// level keeps the quadratic kernel's work per shard balanced).
    TwoLevel,
}

impl std::str::FromStr for ShardBy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "activity" => Ok(ShardBy::Activity),
            "spatial" => Ok(ShardBy::Spatial),
            "two-level" => Ok(ShardBy::TwoLevel),
            other => Err(format!(
                "shard key must be activity|spatial|two-level, got '{other}'"
            )),
        }
    }
}

/// Sharding policy: split the dataset into `shards` buckets, anonymize each
/// independently, and stitch the outputs back together.
///
/// Sharding trades away cross-shard merges (a pair living in different
/// shards can never be grouped) for a `shards`-fold reduction of the
/// quadratic pair matrix and embarrassing parallelism across shards.
/// k-anonymity is preserved: every shard is anonymized to the same `k`, so
/// every published fingerprint still hides ≥ `k` subscribers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPolicy {
    /// Number of shards to cut the dataset into. `1` behaves exactly like a
    /// monolithic run. Shards that would fall below `k` subscribers are
    /// coalesced with a neighbour, so the effective count can be lower.
    pub shards: usize,
    /// Shard assignment key.
    pub by: ShardBy,
}

impl ShardPolicy {
    /// An activity-bucketed policy with `shards` shards.
    pub fn activity(shards: usize) -> Self {
        Self {
            shards,
            by: ShardBy::Activity,
        }
    }

    /// A spatially-bucketed policy with `shards` shards.
    pub fn spatial(shards: usize) -> Self {
        Self {
            shards,
            by: ShardBy::Spatial,
        }
    }

    /// A hierarchical two-level (spatial outer, activity inner) policy with
    /// `shards` shards.
    pub fn two_level(shards: usize) -> Self {
        Self {
            shards,
            by: ShardBy::TwoLevel,
        }
    }
}

/// Continuity policy of the streaming engine (`core::stream`): what an
/// epoch inherits from the previous one (see DESIGN.md "Streaming
/// anonymization").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CarryPolicy {
    /// Regroup from scratch every window: each epoch's groups are chosen
    /// only from that window's data. Maximizes per-epoch accuracy and is the
    /// policy under which a single full-horizon window reproduces the batch
    /// run byte for byte. This is the default.
    #[default]
    Fresh,
    /// Seed each epoch's pair arena with the previous window's groups:
    /// subscribers who shared a published fingerprint and are all active
    /// again enter pre-merged, so stable cohorts keep their merge partners
    /// across epochs instead of being reshuffled.
    Sticky,
}

impl std::str::FromStr for CarryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fresh" => Ok(CarryPolicy::Fresh),
            "sticky" => Ok(CarryPolicy::Sticky),
            other => Err(format!("carry policy must be fresh|sticky, got '{other}'")),
        }
    }
}

/// What the streaming engine does with a window whose population is below
/// `k` (no k-anonymous release is possible for that window at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnderKPolicy {
    /// Drop the window's users for this epoch; their samples are never
    /// published. Counted in the stream's under-k ledger. This is the
    /// default (publication never lags the stream).
    #[default]
    Suppress,
    /// Defer the window's users to the next epoch: their samples ride along
    /// and are published once a window with enough co-travellers closes.
    /// Users still deferred when the stream ends are suppressed.
    Defer,
}

impl std::str::FromStr for UnderKPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "suppress" => Ok(UnderKPolicy::Suppress),
            "defer" => Ok(UnderKPolicy::Defer),
            other => Err(format!(
                "under-k policy must be suppress|defer, got '{other}'"
            )),
        }
    }
}

/// Configuration of the streaming engine (`core::stream`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Window (epoch) length `W` in minutes: an epoch closes, is anonymized
    /// and emitted every time the event clock crosses a multiple of `W`.
    /// Default: 1440 (one day).
    pub window_min: u32,
    /// Cross-epoch continuity policy.
    pub carry: CarryPolicy,
    /// Policy for windows whose population falls below `k`.
    pub under_k: UnderKPolicy,
    /// The per-epoch GLOVE configuration (k, stretch, suppression, sharding,
    /// pruning, threads) — each closed window is anonymized with exactly
    /// this configuration.
    pub glove: GloveConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            window_min: 1_440,
            carry: CarryPolicy::default(),
            under_k: UnderKPolicy::default(),
            glove: GloveConfig::default(),
        }
    }
}

impl StreamConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), GloveError> {
        if self.window_min == 0 {
            return Err(GloveError::InvalidConfig(
                "stream window length must be at least 1 minute".into(),
            ));
        }
        self.glove.validate()
    }
}

/// Full configuration of a GLOVE run (Alg. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GloveConfig {
    /// The anonymity level `k`: every published fingerprint must hide at
    /// least `k` subscribers. Default 2.
    pub k: usize,
    /// Stretch-effort parameters.
    pub stretch: StretchConfig,
    /// Optional suppression thresholds (§7.1). Default: disabled.
    pub suppression: SuppressionThresholds,
    /// Residual-fingerprint policy. Default: merge into nearest group.
    pub residual: ResidualPolicy,
    /// Apply the reshaping step of §6.2 to every published fingerprint,
    /// resolving temporal overlaps. Default: true.
    pub reshape: bool,
    /// Worker threads for the parallel kernel; 0 = one per available core.
    pub threads: usize,
    /// Optional sharding policy. `None` (the default) runs the monolithic
    /// Alg. 1 over the whole dataset.
    pub shard: Option<ShardPolicy>,
    /// Admissible pair pruning: skip full Eq. 10 evaluations whose
    /// hull-derived lower bound proves they cannot be a row minimum. The
    /// published output is byte-identical with pruning on or off (the bound
    /// is admissible, not approximate); only `pairs_computed` shrinks.
    /// Default: true.
    pub pruning: bool,
    /// Distance cascade on top of pruning: seed candidate pairs with the
    /// bit-packed tier-0 signature bound of `core::compact` before the hull
    /// bound, and let surviving exact evaluations abandon early once their
    /// partial mean proves them out of contention. Only active when
    /// `pruning` is on, and the engine engages it only when the mean
    /// fingerprint length clears a small threshold — for short fingerprints
    /// the exact kernel is cheaper than the filter, so the run falls back
    /// to hull-only pruning. The published output stays byte-identical either
    /// way — the cascade only changes how much work each decision costs
    /// (`pairs_skipped_tier0`/`pairs_skipped_tier1`/`pairs_abandoned`
    /// record where candidates were dismissed). Default: true.
    pub cascade: bool,
    /// Columnar sample storage: keep the arena's samples in the bit-packed
    /// struct-of-arrays pages of `core::compact::SampleStore` (24 bytes per
    /// sample, no per-fingerprint heap allocation) instead of one
    /// `Vec<Sample>` per fingerprint. The stretch kernels read the pages
    /// directly through the same generic arithmetic as the reference
    /// layout, so the published output is byte-identical either way; only
    /// the memory footprint changes (see `GloveStats::ledger`).
    /// Default: true.
    pub columnar: bool,
}

impl Default for GloveConfig {
    fn default() -> Self {
        Self {
            k: 2,
            stretch: StretchConfig::default(),
            suppression: SuppressionThresholds::default(),
            residual: ResidualPolicy::default(),
            reshape: true,
            threads: 0,
            shard: None,
            pruning: true,
            cascade: true,
            columnar: true,
        }
    }
}

impl GloveConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), GloveError> {
        if self.k < 2 {
            return Err(GloveError::InvalidConfig(
                "k must be at least 2 (k = 1 is the identity transformation)".into(),
            ));
        }
        if let Some(policy) = &self.shard {
            if policy.shards == 0 {
                return Err(GloveError::InvalidConfig(
                    "shard count must be at least 1".into(),
                ));
            }
        }
        self.stretch.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = StretchConfig::default();
        assert_eq!(c.phi_max_space_m, 20_000.0);
        assert_eq!(c.phi_max_time_min, 480.0);
        assert_eq!(c.w_space, 0.5);
        assert_eq!(c.w_time, 0.5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_bad_weights() {
        let c = StretchConfig {
            w_space: 0.7,
            w_time: 0.7,
            ..StretchConfig::default()
        };
        assert!(c.validate().is_err());
        let c = StretchConfig {
            w_space: -0.5,
            w_time: 1.5,
            ..StretchConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_caps() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let c = StretchConfig {
                phi_max_space_m: bad,
                ..StretchConfig::default()
            };
            assert!(c.validate().is_err(), "cap {bad} should be rejected");
        }
    }

    #[test]
    fn glove_config_rejects_k_below_two() {
        let c = GloveConfig {
            k: 1,
            ..GloveConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GloveConfig::default();
        assert!(c.validate().is_ok());
    }

    #[test]
    fn suppression_disabled_detection() {
        assert!(SuppressionThresholds::default().is_disabled());
        assert!(!SuppressionThresholds::table2().is_disabled());
    }

    #[test]
    fn stream_config_validation_and_parsing() {
        assert!(StreamConfig::default().validate().is_ok());
        let c = StreamConfig {
            window_min: 0,
            ..StreamConfig::default()
        };
        assert!(c.validate().is_err());
        let c = StreamConfig {
            glove: GloveConfig {
                k: 1,
                ..GloveConfig::default()
            },
            ..StreamConfig::default()
        };
        assert!(c.validate().is_err(), "inner glove config is validated too");

        assert_eq!("fresh".parse::<CarryPolicy>().unwrap(), CarryPolicy::Fresh);
        assert_eq!(
            "sticky".parse::<CarryPolicy>().unwrap(),
            CarryPolicy::Sticky
        );
        assert!("warm".parse::<CarryPolicy>().is_err());
        assert_eq!(
            "suppress".parse::<UnderKPolicy>().unwrap(),
            UnderKPolicy::Suppress
        );
        assert_eq!(
            "defer".parse::<UnderKPolicy>().unwrap(),
            UnderKPolicy::Defer
        );
        assert!("drop".parse::<UnderKPolicy>().is_err());
    }

    #[test]
    fn shard_policy_validation_and_parsing() {
        let c = GloveConfig {
            shard: Some(ShardPolicy::activity(0)),
            ..GloveConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GloveConfig {
            shard: Some(ShardPolicy::spatial(8)),
            ..GloveConfig::default()
        };
        assert!(c.validate().is_ok());

        assert_eq!("activity".parse::<ShardBy>().unwrap(), ShardBy::Activity);
        assert_eq!("spatial".parse::<ShardBy>().unwrap(), ShardBy::Spatial);
        assert!("geohash".parse::<ShardBy>().is_err());
    }
}
