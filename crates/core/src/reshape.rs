//! Reshaping of merged fingerprints (§6.2, Fig. 6b).
//!
//! When the minimum stretch effort is dominated by the spatial component,
//! merging can produce samples whose time windows overlap while referring to
//! different places — formally correct but hard to read or analyze. The
//! paper resolves "all temporal overlappings, either partial or complete, by
//! creating a new sample for each such case", covering the overlapping time
//! intervals and merging the geographical areas of the samples it replaces
//! (per Eqs. 12–13).
//!
//! [`reshape`] therefore collapses every maximal run of mutually
//! time-overlapping samples into a single generalized sample, leaving the
//! fingerprint with pairwise-disjoint time windows. Reshaping costs spatial
//! granularity but improves usability; GLOVE applies it to published
//! fingerprints.

use crate::config::SuppressionThresholds;
use crate::error::GloveError;
use crate::model::{Fingerprint, Sample};
use crate::suppress::{violates, SuppressionLedger};

/// Resolves all temporal overlaps in a fingerprint by generalizing
/// overlapping samples together. Returns the number of samples absorbed
/// (input length minus output length).
pub fn reshape(fingerprint: &mut Fingerprint) -> Result<usize, GloveError> {
    let merged = reshape_samples(fingerprint.samples())?;
    let absorbed = fingerprint.len() - merged.len();
    fingerprint.replace_samples(merged)?;
    Ok(absorbed)
}

/// Threshold-aware reshaping: overlap resolution uses the same Eqs. (12)–(13)
/// generalization as merging, so the suppression rule of §7.1 applies to it
/// as well — an overlapping sample whose union box would exceed the
/// configured extents is *dropped* (suppressed) instead of merged, keeping
/// the guarantee that every published sample respects the thresholds.
///
/// Returns the number of samples absorbed by generalization; suppressed
/// drops are recorded in `ledger` weighted by `multiplicity`.
pub fn reshape_suppressed(
    fingerprint: &mut Fingerprint,
    thresholds: &SuppressionThresholds,
    ledger: &mut SuppressionLedger,
) -> Result<usize, GloveError> {
    if thresholds.is_disabled() {
        return reshape(fingerprint);
    }
    let multiplicity = fingerprint.multiplicity();
    let mut out: Vec<Sample> = Vec::with_capacity(fingerprint.len());
    let mut absorbed = 0usize;
    for s in fingerprint.samples() {
        match out.last_mut() {
            Some(last) if s.overlaps_in_time(last) => {
                let candidate = last.generalize_with(s)?;
                if violates(&candidate, thresholds) {
                    // Union would blow the budget: suppress the incoming
                    // sample (the emitted one already satisfies the
                    // thresholds and keeps the fingerprint non-empty).
                    ledger.record(multiplicity);
                } else {
                    *last = candidate;
                    absorbed += 1;
                }
            }
            _ => out.push(*s),
        }
    }
    fingerprint.replace_samples(out)?;
    Ok(absorbed)
}

/// Pure-function core of [`reshape`]: samples must be sorted by start time
/// (a [`Fingerprint`] invariant).
///
/// # Errors
///
/// [`GloveError::InvalidSample`] when a generalized span overflows `u32`
/// (see [`Sample::generalize_with`]).
pub fn reshape_samples(samples: &[Sample]) -> Result<Vec<Sample>, GloveError> {
    let mut out: Vec<Sample> = Vec::with_capacity(samples.len());
    for s in samples {
        match out.last_mut() {
            Some(last) if s.overlaps_in_time(last) => {
                *last = last.generalize_with(s)?;
            }
            _ => out.push(*s),
        }
    }
    // A generalization can extend `last` far enough to overlap samples that
    // were already emitted? No: input is sorted by start time and we only
    // ever grow the *last* element's end, so earlier emitted samples end at
    // or before the current one's start. A single pass suffices; assert the
    // postcondition in debug builds.
    debug_assert!(out.windows(2).all(|w| !w[0].overlaps_in_time(&w[1])));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(samples: Vec<Sample>) -> Fingerprint {
        Fingerprint::with_users(vec![0], samples).unwrap()
    }

    #[test]
    fn disjoint_windows_untouched() {
        let samples = vec![
            Sample::new(0, 0, 100, 100, 0, 10).unwrap(),
            Sample::new(5_000, 0, 100, 100, 10, 10).unwrap(),
            Sample::new(0, 9_000, 100, 100, 50, 5).unwrap(),
        ];
        let mut f = fp(samples.clone());
        let absorbed = reshape(&mut f).unwrap();
        assert_eq!(absorbed, 0);
        assert_eq!(f.samples(), &samples[..]);
    }

    #[test]
    fn partial_overlap_collapses_to_union() {
        let a = Sample::new(0, 0, 100, 100, 0, 10).unwrap(); // [0, 10)
        let b = Sample::new(5_000, 2_000, 100, 100, 5, 10).unwrap(); // [5, 15)
        let mut f = fp(vec![a, b]);
        let absorbed = reshape(&mut f).unwrap();
        assert_eq!(absorbed, 1);
        assert_eq!(f.len(), 1);
        let m = f.samples()[0];
        assert!(m.covers(&a) && m.covers(&b));
        assert_eq!(m.t, 0);
        assert_eq!(m.t_end(), 15);
    }

    #[test]
    fn touching_windows_do_not_merge() {
        let a = Sample::new(0, 0, 100, 100, 0, 10).unwrap(); // [0, 10)
        let b = Sample::new(9_000, 0, 100, 100, 10, 10).unwrap(); // [10, 20)
        let mut f = fp(vec![a, b]);
        assert_eq!(reshape(&mut f).unwrap(), 0);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn chain_of_overlaps_collapses_transitively() {
        // [0,10), [8,18), [16,26): pairwise chain — all three must collapse.
        let samples = vec![
            Sample::new(0, 0, 100, 100, 0, 10).unwrap(),
            Sample::new(1_000, 0, 100, 100, 8, 10).unwrap(),
            Sample::new(2_000, 0, 100, 100, 16, 10).unwrap(),
        ];
        let mut f = fp(samples);
        assert_eq!(reshape(&mut f).unwrap(), 2);
        assert_eq!(f.len(), 1);
        let m = f.samples()[0];
        assert_eq!((m.t, m.t_end()), (0, 26));
        assert_eq!((m.x, m.x_end()), (0, 2_100));
    }

    #[test]
    fn containment_collapses() {
        // A long window containing a short one.
        let outer = Sample::new(0, 0, 100, 100, 0, 100).unwrap();
        let inner = Sample::new(50_000, 0, 100, 100, 40, 5).unwrap();
        let mut f = fp(vec![outer, inner]);
        assert_eq!(reshape(&mut f).unwrap(), 1);
        let m = f.samples()[0];
        assert!(m.covers(&outer) && m.covers(&inner));
    }

    #[test]
    fn output_windows_are_pairwise_disjoint() {
        // Messy mix of overlapping runs.
        let samples = vec![
            Sample::new(0, 0, 100, 100, 0, 30).unwrap(),
            Sample::new(500, 0, 100, 100, 10, 10).unwrap(),
            Sample::new(0, 500, 100, 100, 25, 10).unwrap(),
            Sample::new(0, 0, 100, 100, 40, 5).unwrap(),
            Sample::new(900, 900, 100, 100, 44, 10).unwrap(),
            Sample::new(0, 0, 100, 100, 100, 1).unwrap(),
        ];
        let mut f = fp(samples);
        reshape(&mut f).unwrap();
        for w in f.samples().windows(2) {
            assert!(!w[0].overlaps_in_time(&w[1]));
        }
    }
}
