//! The policy plane: per-epoch / per-cohort defense policies.
//!
//! Historically every layer of the engine cloned one
//! [`GloveConfig`](crate::config::GloveConfig) / [`StreamConfig`] and
//! applied it uniformly to every subscriber and every
//! epoch. The policy plane generalizes that spine: a [`PolicyPlane`] maps
//! `(epoch index, cohort)` to an [`EffectivePolicy`] — the `k`, window
//! length, carry policy, under-k policy and suppression thresholds in force
//! for that slice of the run. [`PolicyPlane::uniform`] (the default,
//! an empty rule set) resolves every query to the base configuration
//! unchanged, and the engines are byte-identical to their pre-policy
//! behavior under it (anchored by tests in `api_properties.rs`).
//!
//! ## Resolution contract
//!
//! * Rules are applied in declaration order; a later rule overrides an
//!   earlier one for the fields it sets.
//! * A rule applies to epoch `e` when `from_epoch <= e` and either
//!   `to_epoch` is unset or `e < to_epoch` (half-open interval).
//! * Global rules (no cohort) may set any field. Cohort-scoped rules may
//!   only set `k`: window length, carry and under-k are stream-global
//!   properties — one clock and one ledger per stream — so a cohort cannot
//!   have its own epoch grid.
//! * Cohort `k` is a *floor raise*: the effective k of a cohort member is
//!   `max(global k, cohort k)`. A cohort can be hidden deeper than the
//!   population, never shallower — the k-anonymity guarantee of the base
//!   configuration is monotone under every plane.
//!
//! Per-epoch resolution happens at window boundaries only: a policy change
//! never splits an open window, and a [`SharedPolicy`] swapped mid-run
//! (the `serve` RECONFIG path) takes effect when the next window opens.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use crate::api::json::JsonValue;
use crate::config::{CarryPolicy, StreamConfig, SuppressionThresholds, UnderKPolicy};
use crate::error::GloveError;
use crate::model::UserId;

/// The policy in force for one `(epoch, cohort)` slice of a run: the
/// resolved output of [`PolicyPlane::resolve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectivePolicy {
    /// Anonymity level in force.
    pub k: usize,
    /// Window (epoch) length in minutes in force when this epoch opened.
    pub window_min: u32,
    /// Cross-epoch continuity policy in force.
    pub carry: CarryPolicy,
    /// Under-k policy in force.
    pub under_k: UnderKPolicy,
    /// Suppression thresholds in force.
    pub suppression: SuppressionThresholds,
}

impl EffectivePolicy {
    /// The policy that reproduces `base` exactly (what the uniform plane
    /// resolves to for every query).
    pub fn of(base: &StreamConfig) -> Self {
        Self {
            k: base.glove.k,
            window_min: base.window_min,
            carry: base.carry,
            under_k: base.under_k,
            suppression: base.glove.suppression,
        }
    }

    fn apply(&mut self, set: &PolicyOverride) {
        if let Some(k) = set.k {
            self.k = k;
        }
        if let Some(w) = set.window_min {
            self.window_min = w;
        }
        if let Some(c) = set.carry {
            self.carry = c;
        }
        if let Some(u) = set.under_k {
            self.under_k = u;
        }
        if let Some(s) = set.suppression {
            self.suppression = s;
        }
    }
}

/// The fields a [`PolicyRule`] overrides. Unset fields inherit from the
/// base configuration (or from an earlier matching rule).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PolicyOverride {
    /// Override the anonymity level. For cohort-scoped rules this is a
    /// floor raise over the global k, never a reduction.
    pub k: Option<usize>,
    /// Override the window length (global rules only).
    pub window_min: Option<u32>,
    /// Override the carry policy (global rules only).
    pub carry: Option<CarryPolicy>,
    /// Override the under-k policy (global rules only).
    pub under_k: Option<UnderKPolicy>,
    /// Override the suppression thresholds (global rules only).
    pub suppression: Option<SuppressionThresholds>,
}

impl PolicyOverride {
    /// True when no field is set (the rule is a no-op).
    pub fn is_empty(&self) -> bool {
        self.k.is_none()
            && self.window_min.is_none()
            && self.carry.is_none()
            && self.under_k.is_none()
            && self.suppression.is_none()
    }

    /// True when only `k` is set — the full budget of a cohort-scoped rule.
    pub fn is_k_only(&self) -> bool {
        self.window_min.is_none()
            && self.carry.is_none()
            && self.under_k.is_none()
            && self.suppression.is_none()
    }
}

/// One rule of the plane: an epoch interval, an optional cohort scope, and
/// the overrides in force there.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRule {
    /// First epoch (inclusive) the rule applies to.
    pub from_epoch: u64,
    /// First epoch the rule no longer applies to (exclusive); `None` means
    /// the rule applies to every epoch from `from_epoch` on.
    pub to_epoch: Option<u64>,
    /// Cohort the rule is scoped to; `None` scopes it to the whole
    /// population.
    pub cohort: Option<String>,
    /// The overridden fields.
    pub set: PolicyOverride,
}

impl PolicyRule {
    /// True when the rule's epoch interval covers `epoch`.
    pub fn applies_at(&self, epoch: u64) -> bool {
        self.from_epoch <= epoch && self.to_epoch.is_none_or(|to| epoch < to)
    }
}

/// A named set of subscribers the plane can scope k-rules to (night-shift
/// workers, hyper-mobile users, a tenant's premium tier, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct CohortSpec {
    /// Cohort name, referenced by [`PolicyRule::cohort`].
    pub name: String,
    /// The members. Order is irrelevant; duplicates are tolerated.
    pub users: Vec<UserId>,
}

/// The policy plane: cohort declarations plus an ordered rule list.
///
/// The empty plane ([`PolicyPlane::uniform`]) resolves every query to the
/// base configuration and is the default everywhere — engines behave
/// exactly as they did before the plane existed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicyPlane {
    /// Declared cohorts.
    pub cohorts: Vec<CohortSpec>,
    /// Rules, applied in declaration order (later wins per field).
    pub rules: Vec<PolicyRule>,
}

impl PolicyPlane {
    /// The uniform plane: no cohorts, no rules. Every resolution returns
    /// the base configuration unchanged.
    pub fn uniform() -> Self {
        Self::default()
    }

    /// True when the plane carries no rules at all (cohort declarations
    /// alone change nothing).
    pub fn is_uniform(&self) -> bool {
        self.rules.is_empty()
    }

    /// Validates the plane: rule intervals are non-empty, overridden values
    /// are in range, cohort-scoped rules only touch `k`, and every cohort
    /// reference resolves to a declaration.
    pub fn validate(&self) -> Result<(), GloveError> {
        let mut seen = std::collections::HashSet::new();
        for c in &self.cohorts {
            if c.name.is_empty() {
                return Err(GloveError::InvalidConfig(
                    "policy cohort name must be non-empty".into(),
                ));
            }
            if !seen.insert(c.name.as_str()) {
                return Err(GloveError::InvalidConfig(format!(
                    "policy cohort '{}' declared twice",
                    c.name
                )));
            }
        }
        for r in &self.rules {
            if let Some(to) = r.to_epoch {
                if to <= r.from_epoch {
                    return Err(GloveError::InvalidConfig(format!(
                        "policy rule epoch interval [{}, {}) is empty",
                        r.from_epoch, to
                    )));
                }
            }
            if let Some(k) = r.set.k {
                if k < 2 {
                    return Err(GloveError::InvalidConfig(
                        "policy rule k must be at least 2".into(),
                    ));
                }
            }
            if let Some(w) = r.set.window_min {
                if w == 0 {
                    return Err(GloveError::InvalidConfig(
                        "policy rule window_min must be at least 1".into(),
                    ));
                }
            }
            if let Some(name) = &r.cohort {
                if !self.cohorts.iter().any(|c| &c.name == name) {
                    return Err(GloveError::InvalidConfig(format!(
                        "policy rule references undeclared cohort '{name}'"
                    )));
                }
                if !r.set.is_k_only() {
                    return Err(GloveError::InvalidConfig(format!(
                        "cohort-scoped rule on '{name}' may only override k \
                         (window/carry/under-k/suppression are stream-global)"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Resolves the policy in force at `epoch` for `cohort` (or the global
    /// population when `None`), starting from `base`.
    pub fn resolve(
        &self,
        epoch: u64,
        cohort: Option<&str>,
        base: &StreamConfig,
    ) -> EffectivePolicy {
        let mut eff = EffectivePolicy::of(base);
        for rule in &self.rules {
            if !rule.applies_at(epoch) {
                continue;
            }
            match &rule.cohort {
                None => eff.apply(&rule.set),
                Some(c) if Some(c.as_str()) == cohort => {
                    if let Some(k) = rule.set.k {
                        eff.k = eff.k.max(k);
                    }
                }
                Some(_) => {}
            }
        }
        eff
    }

    /// The name of the first declared cohort containing `user`, if any.
    pub fn cohort_of(&self, user: UserId) -> Option<&str> {
        self.cohorts
            .iter()
            .find(|c| c.users.contains(&user))
            .map(|c| c.name.as_str())
    }

    /// True when any rule overrides the window length — the streaming
    /// engine then tracks window boundaries cumulatively instead of by
    /// plain division.
    pub fn has_window_rules(&self) -> bool {
        self.rules.iter().any(|r| r.set.window_min.is_some())
    }

    /// The per-user k plan in force at `epoch`, or `None` when every user
    /// shares the global k (the common case, and the fast path downstream).
    pub fn kplan(&self, epoch: u64, base: &StreamConfig) -> Option<KPlan> {
        let global = self.resolve(epoch, None, base);
        let mut overrides: BTreeMap<UserId, usize> = BTreeMap::new();
        for cohort in &self.cohorts {
            let k = self.resolve(epoch, Some(&cohort.name), base).k;
            if k > global.k {
                for &u in &cohort.users {
                    let slot = overrides.entry(u).or_insert(k);
                    *slot = (*slot).max(k);
                }
            }
        }
        if overrides.is_empty() {
            None
        } else {
            Some(KPlan {
                base: global.k,
                overrides,
            })
        }
    }

    /// Serializes the plane to the dependency-free JSON tree of
    /// [`crate::api::json`].
    pub fn to_value(&self) -> JsonValue {
        let cohorts = self
            .cohorts
            .iter()
            .map(|c| {
                JsonValue::obj(vec![
                    ("name", JsonValue::Str(c.name.clone())),
                    (
                        "users",
                        JsonValue::Arr(
                            c.users
                                .iter()
                                .map(|&u| JsonValue::Int(i128::from(u)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let rules = self
            .rules
            .iter()
            .map(|r| {
                let mut fields = vec![(
                    "from_epoch".to_string(),
                    JsonValue::Int(i128::from(r.from_epoch)),
                )];
                if let Some(to) = r.to_epoch {
                    fields.push(("to_epoch".to_string(), JsonValue::Int(i128::from(to))));
                }
                if let Some(c) = &r.cohort {
                    fields.push(("cohort".to_string(), JsonValue::Str(c.clone())));
                }
                if let Some(k) = r.set.k {
                    fields.push(("k".to_string(), JsonValue::Int(k as i128)));
                }
                if let Some(w) = r.set.window_min {
                    fields.push(("window_min".to_string(), JsonValue::Int(i128::from(w))));
                }
                if let Some(c) = r.set.carry {
                    let s = match c {
                        CarryPolicy::Fresh => "fresh",
                        CarryPolicy::Sticky => "sticky",
                    };
                    fields.push(("carry".to_string(), JsonValue::Str(s.into())));
                }
                if let Some(u) = r.set.under_k {
                    let s = match u {
                        UnderKPolicy::Suppress => "suppress",
                        UnderKPolicy::Defer => "defer",
                    };
                    fields.push(("under_k".to_string(), JsonValue::Str(s.into())));
                }
                if let Some(s) = r.set.suppression {
                    let opt = |v: Option<u32>| match v {
                        Some(x) => JsonValue::Int(i128::from(x)),
                        None => JsonValue::Null,
                    };
                    fields.push((
                        "suppression".to_string(),
                        JsonValue::obj(vec![
                            ("space_m", opt(s.max_space_m)),
                            ("time_min", opt(s.max_time_min)),
                        ]),
                    ));
                }
                JsonValue::Obj(fields)
            })
            .collect();
        JsonValue::obj(vec![
            ("cohorts", JsonValue::Arr(cohorts)),
            ("rules", JsonValue::Arr(rules)),
        ])
    }

    /// Parses a plane from the JSON tree produced by
    /// [`PolicyPlane::to_value`] (lenient: unknown keys are ignored, absent
    /// arrays read as empty). The result is validated before it is
    /// returned.
    pub fn from_value(value: &JsonValue) -> Result<Self, GloveError> {
        let bad = |msg: &str| GloveError::InvalidConfig(format!("policy plane: {msg}"));
        let mut plane = PolicyPlane::default();
        if let Some(cohorts) = value.get("cohorts").and_then(JsonValue::as_arr) {
            for c in cohorts {
                let name = c
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| bad("cohort needs a string 'name'"))?
                    .to_string();
                let mut users = Vec::new();
                for u in c
                    .get("users")
                    .and_then(JsonValue::as_arr)
                    .unwrap_or_default()
                {
                    let id = u
                        .as_u64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| bad("cohort user ids must be u32"))?;
                    users.push(id);
                }
                plane.cohorts.push(CohortSpec { name, users });
            }
        }
        if let Some(rules) = value.get("rules").and_then(JsonValue::as_arr) {
            for r in rules {
                let from_epoch = r.get("from_epoch").and_then(JsonValue::as_u64).unwrap_or(0);
                let to_epoch = r.get("to_epoch").and_then(JsonValue::as_u64);
                let cohort = r
                    .get("cohort")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string);
                let mut set = PolicyOverride {
                    k: r.get("k").and_then(JsonValue::as_usize),
                    window_min: r
                        .get("window_min")
                        .and_then(JsonValue::as_u64)
                        .and_then(|v| u32::try_from(v).ok()),
                    ..PolicyOverride::default()
                };
                if let Some(s) = r.get("carry").and_then(JsonValue::as_str) {
                    set.carry = Some(s.parse().map_err(|e: String| bad(&e))?);
                }
                if let Some(s) = r.get("under_k").and_then(JsonValue::as_str) {
                    set.under_k = Some(s.parse().map_err(|e: String| bad(&e))?);
                }
                if let Some(s) = r.get("suppression") {
                    let axis = |key: &str| -> Result<Option<u32>, GloveError> {
                        match s.get(key) {
                            None | Some(JsonValue::Null) => Ok(None),
                            Some(v) => v
                                .as_u64()
                                .and_then(|x| u32::try_from(x).ok())
                                .map(Some)
                                .ok_or_else(|| bad("suppression bounds must be u32")),
                        }
                    };
                    set.suppression = Some(SuppressionThresholds {
                        max_space_m: axis("space_m")?,
                        max_time_min: axis("time_min")?,
                    });
                }
                plane.rules.push(PolicyRule {
                    from_epoch,
                    to_epoch,
                    cohort,
                    set,
                });
            }
        }
        plane.validate()?;
        Ok(plane)
    }

    /// Parses a plane from JSON text (see [`PolicyPlane::from_value`]).
    pub fn from_json(text: &str) -> Result<Self, GloveError> {
        let value = JsonValue::parse(text)
            .map_err(|e| GloveError::InvalidConfig(format!("policy plane: {e}")))?;
        Self::from_value(&value)
    }
}

/// A shareable, swappable handle to a plane: the streaming engine reads it
/// at every window boundary, so a writer (the `serve` RECONFIG path, the
/// adaptive loop) can retarget a live run between epochs.
pub type SharedPolicy = Arc<RwLock<PolicyPlane>>;

/// Wraps a plane into a [`SharedPolicy`] handle.
pub fn shared(plane: PolicyPlane) -> SharedPolicy {
    Arc::new(RwLock::new(plane))
}

/// The per-user k requirements in force for one epoch: the resolved output
/// of [`PolicyPlane::kplan`], consumed by the greedy loop. A fingerprint's
/// required k is the maximum requirement over its member users — a merged
/// group is done only once its deepest member is hidden.
#[derive(Debug, Clone, PartialEq)]
pub struct KPlan {
    base: usize,
    overrides: BTreeMap<UserId, usize>,
}

impl KPlan {
    /// A plan with explicit per-user overrides over `base`. Overrides below
    /// `base` are floors, not reductions: `k_of` never returns less than
    /// `base`.
    pub fn new(base: usize, overrides: BTreeMap<UserId, usize>) -> Self {
        Self { base, overrides }
    }

    /// The global k every user gets unless overridden.
    pub fn base(&self) -> usize {
        self.base
    }

    /// The k requirement of one user.
    pub fn k_of(&self, user: UserId) -> usize {
        self.overrides
            .get(&user)
            .map_or(self.base, |&k| k.max(self.base))
    }

    /// The k requirement of a group: the maximum over its members.
    pub fn required_k(&self, users: &[UserId]) -> usize {
        users
            .iter()
            .map(|&u| self.k_of(u))
            .max()
            .unwrap_or(self.base)
    }

    /// The largest requirement any user can have under this plan.
    pub fn max_k(&self) -> usize {
        self.overrides
            .values()
            .copied()
            .max()
            .unwrap_or(self.base)
            .max(self.base)
    }

    /// True when no user is overridden (the plan degenerates to uniform k).
    pub fn is_uniform(&self) -> bool {
        self.overrides.values().all(|&k| k <= self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GloveConfig;

    fn base() -> StreamConfig {
        StreamConfig::default()
    }

    fn k_rule(from: u64, to: Option<u64>, cohort: Option<&str>, k: usize) -> PolicyRule {
        PolicyRule {
            from_epoch: from,
            to_epoch: to,
            cohort: cohort.map(str::to_string),
            set: PolicyOverride {
                k: Some(k),
                ..PolicyOverride::default()
            },
        }
    }

    #[test]
    fn uniform_plane_resolves_to_base() {
        let plane = PolicyPlane::uniform();
        assert!(plane.is_uniform());
        let base = base();
        for epoch in [0, 1, 7, 10_000] {
            let eff = plane.resolve(epoch, None, &base);
            assert_eq!(eff, EffectivePolicy::of(&base));
        }
        assert!(plane.kplan(0, &base).is_none());
        assert!(!plane.has_window_rules());
    }

    #[test]
    fn later_rules_win_per_field() {
        let plane = PolicyPlane {
            cohorts: vec![],
            rules: vec![
                PolicyRule {
                    from_epoch: 0,
                    to_epoch: None,
                    cohort: None,
                    set: PolicyOverride {
                        k: Some(4),
                        carry: Some(CarryPolicy::Sticky),
                        ..PolicyOverride::default()
                    },
                },
                k_rule(2, None, None, 6),
            ],
        };
        plane.validate().unwrap();
        let base = base();
        let e1 = plane.resolve(1, None, &base);
        assert_eq!((e1.k, e1.carry), (4, CarryPolicy::Sticky));
        let e2 = plane.resolve(2, None, &base);
        // k overridden by the later rule; carry inherited from the earlier.
        assert_eq!((e2.k, e2.carry), (6, CarryPolicy::Sticky));
    }

    #[test]
    fn epoch_interval_is_half_open() {
        let rule = k_rule(2, Some(4), None, 5);
        assert!(!rule.applies_at(1));
        assert!(rule.applies_at(2));
        assert!(rule.applies_at(3));
        assert!(!rule.applies_at(4));
    }

    #[test]
    fn cohort_k_is_a_floor_raise() {
        let plane = PolicyPlane {
            cohorts: vec![CohortSpec {
                name: "night".into(),
                users: vec![3, 5],
            }],
            rules: vec![k_rule(0, None, Some("night"), 4)],
        };
        plane.validate().unwrap();
        let base = base(); // global k = 2
        assert_eq!(plane.resolve(0, Some("night"), &base).k, 4);
        assert_eq!(plane.resolve(0, None, &base).k, 2);
        let plan = plane.kplan(0, &base).expect("cohort raises k");
        assert_eq!(plan.base(), 2);
        assert_eq!(plan.k_of(3), 4);
        assert_eq!(plan.k_of(0), 2);
        assert_eq!(plan.required_k(&[0, 1]), 2);
        assert_eq!(plan.required_k(&[0, 5]), 4);
        assert_eq!(plan.max_k(), 4);
        assert!(!plan.is_uniform());

        // A cohort k below the global k never lowers anything.
        let mut higher_base = base;
        higher_base.glove.k = 6;
        assert_eq!(plane.resolve(0, Some("night"), &higher_base).k, 6);
        assert!(plane.kplan(0, &higher_base).is_none());
    }

    #[test]
    fn cohort_of_finds_first_declaration() {
        let plane = PolicyPlane {
            cohorts: vec![
                CohortSpec {
                    name: "a".into(),
                    users: vec![1, 2],
                },
                CohortSpec {
                    name: "b".into(),
                    users: vec![2, 3],
                },
            ],
            rules: vec![],
        };
        assert_eq!(plane.cohort_of(2), Some("a"));
        assert_eq!(plane.cohort_of(3), Some("b"));
        assert_eq!(plane.cohort_of(9), None);
    }

    #[test]
    fn validation_rejects_bad_planes() {
        // Empty interval.
        let plane = PolicyPlane {
            cohorts: vec![],
            rules: vec![k_rule(3, Some(3), None, 4)],
        };
        assert!(plane.validate().is_err());
        // k below 2.
        let plane = PolicyPlane {
            cohorts: vec![],
            rules: vec![k_rule(0, None, None, 1)],
        };
        assert!(plane.validate().is_err());
        // Undeclared cohort.
        let plane = PolicyPlane {
            cohorts: vec![],
            rules: vec![k_rule(0, None, Some("ghost"), 4)],
        };
        assert!(plane.validate().is_err());
        // Cohort rule touching a stream-global field.
        let plane = PolicyPlane {
            cohorts: vec![CohortSpec {
                name: "c".into(),
                users: vec![1],
            }],
            rules: vec![PolicyRule {
                from_epoch: 0,
                to_epoch: None,
                cohort: Some("c".into()),
                set: PolicyOverride {
                    carry: Some(CarryPolicy::Fresh),
                    ..PolicyOverride::default()
                },
            }],
        };
        assert!(plane.validate().is_err());
        // Duplicate cohort name.
        let plane = PolicyPlane {
            cohorts: vec![
                CohortSpec {
                    name: "c".into(),
                    users: vec![1],
                },
                CohortSpec {
                    name: "c".into(),
                    users: vec![2],
                },
            ],
            rules: vec![],
        };
        assert!(plane.validate().is_err());
        // Zero-length window.
        let plane = PolicyPlane {
            cohorts: vec![],
            rules: vec![PolicyRule {
                from_epoch: 0,
                to_epoch: None,
                cohort: None,
                set: PolicyOverride {
                    window_min: Some(0),
                    ..PolicyOverride::default()
                },
            }],
        };
        assert!(plane.validate().is_err());
    }

    #[test]
    fn json_round_trip_preserves_the_plane() {
        let plane = PolicyPlane {
            cohorts: vec![CohortSpec {
                name: "night-shift".into(),
                users: vec![7, 11, 13],
            }],
            rules: vec![
                PolicyRule {
                    from_epoch: 0,
                    to_epoch: Some(3),
                    cohort: None,
                    set: PolicyOverride {
                        k: Some(3),
                        window_min: Some(720),
                        carry: Some(CarryPolicy::Sticky),
                        under_k: Some(UnderKPolicy::Defer),
                        suppression: Some(SuppressionThresholds {
                            max_space_m: Some(15_000),
                            max_time_min: None,
                        }),
                    },
                },
                k_rule(3, None, Some("night-shift"), 6),
            ],
        };
        plane.validate().unwrap();
        let text = plane.to_value().render();
        let back = PolicyPlane::from_json(&text).unwrap();
        assert_eq!(back, plane);
    }

    #[test]
    fn from_json_rejects_invalid_planes() {
        assert!(PolicyPlane::from_json("not json").is_err());
        assert!(PolicyPlane::from_json(r#"{"rules":[{"from_epoch":0,"k":1}]}"#).is_err());
        assert!(
            PolicyPlane::from_json(r#"{"rules":[{"cohort":"ghost","k":4}]}"#).is_err(),
            "undeclared cohort must fail"
        );
        // Lenient: absent arrays mean the uniform plane.
        let plane = PolicyPlane::from_json("{}").unwrap();
        assert!(plane.is_uniform());
    }

    #[test]
    fn window_rules_are_detected() {
        let plane = PolicyPlane {
            cohorts: vec![],
            rules: vec![PolicyRule {
                from_epoch: 1,
                to_epoch: None,
                cohort: None,
                set: PolicyOverride {
                    window_min: Some(720),
                    ..PolicyOverride::default()
                },
            }],
        };
        assert!(plane.has_window_rules());
        assert_eq!(plane.resolve(0, None, &base()).window_min, 1_440);
        assert_eq!(plane.resolve(1, None, &base()).window_min, 720);
    }

    #[test]
    fn shared_policy_swaps_between_reads() {
        let handle = shared(PolicyPlane::uniform());
        assert!(handle.read().unwrap().is_uniform());
        let mut plane = PolicyPlane::uniform();
        plane.rules.push(k_rule(1, None, None, 4));
        *handle.write().unwrap() = plane;
        let base = base();
        assert_eq!(handle.read().unwrap().resolve(1, None, &base).k, 4);
    }

    #[test]
    fn glove_config_base_is_respected() {
        let mut base = base();
        base.glove = GloveConfig {
            k: 5,
            ..GloveConfig::default()
        };
        let eff = PolicyPlane::uniform().resolve(0, None, &base);
        assert_eq!(eff.k, 5);
    }
}
