//! The unified, serializable run report every engine produces.
//!
//! [`RunReport`] supersedes the ad-hoc stats plumbing that used to leak
//! into every consumer (`GloveStats` for batch/sharded runs, `StreamStats`
//! for streams, the baselines' own types): one top-level shape carries the
//! counters every engine shares, and the engine-specific types survive as
//! embedded **detail sections** ([`RunDetail`]) for consumers that need the
//! per-shard / per-epoch breakdowns.
//!
//! Reports serialize to JSON ([`RunReport::to_json`]) and parse back
//! ([`RunReport::from_json`]) with exact round-trip fidelity — enforced by
//! the `api_properties` test suite — so they can travel through bench
//! artifacts, CI trajectories and external tooling without this crate.

use crate::api::json::JsonValue;
use crate::config::{CarryPolicy, UnderKPolicy};
use crate::glove::GloveStats;
use crate::ledger::MemoryLedger;
use crate::shard::ShardStat;
use crate::stream::{EpochStat, StreamStats};
use crate::suppress::SuppressionLedger;

/// Wall-clock duration of one run phase (see the ordering guarantees in
/// [`crate::api::observer`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMetric {
    /// Phase name (`"prepare"`, `"run"`, `"flush"`, …).
    pub phase: String,
    /// Elapsed wall-clock seconds.
    pub elapsed_s: f64,
}

/// Engine-specific detail embedded in a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Default)]
pub enum RunDetail {
    /// No engine-specific detail.
    #[default]
    None,
    /// Batch / sharded GLOVE statistics (per-shard breakdown included).
    Glove(GloveStats),
    /// Streaming statistics (per-epoch breakdown included).
    Stream(StreamStats),
    /// Detail of an engine outside this crate (the baselines adapters),
    /// as a JSON tree under the engine's name.
    External {
        /// The producing engine's identifier.
        engine: String,
        /// Engine-defined payload.
        data: JsonValue,
    },
}

impl RunDetail {
    /// The embedded GLOVE stats, if this is a batch/sharded detail.
    pub fn as_glove(&self) -> Option<&GloveStats> {
        match self {
            RunDetail::Glove(stats) => Some(stats),
            _ => None,
        }
    }

    /// The embedded stream stats, if this is a streaming detail.
    pub fn as_stream(&self) -> Option<&StreamStats> {
        match self {
            RunDetail::Stream(stats) => Some(stats),
            _ => None,
        }
    }

    /// The embedded external payload, if any.
    pub fn as_external(&self) -> Option<&JsonValue> {
        match self {
            RunDetail::External { data, .. } => Some(data),
            _ => None,
        }
    }
}

/// The unified result summary of one anonymization run, whatever the
/// engine.
///
/// Counters an engine does not produce stay zero (e.g. `merges` for the
/// uniform baseline, `created_samples` for every engine but W4M); `k` is 0
/// for engines without an anonymity parameter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Engine identifier (`"glove-batch"`, `"glove-sharded"`,
    /// `"glove-stream"`, `"uniform"`, `"w4m-lc"`).
    pub engine: String,
    /// Input dataset / stream name.
    pub dataset: String,
    /// Anonymity level of the run (0 when the engine has none).
    pub k: usize,
    /// Fingerprints in the input (0 when unknown, e.g. a pure event
    /// stream).
    pub fingerprints_in: usize,
    /// Subscribers in the input (0 when unknown).
    pub users_in: usize,
    /// Samples in the input; for event streams, the events consumed.
    pub samples_in: usize,
    /// Published fingerprints (summed over epochs for streams).
    pub fingerprints_out: usize,
    /// Published subscribers (user-slices summed over epochs for streams).
    pub users_out: usize,
    /// Published samples (summed over epochs for streams).
    pub samples_out: usize,
    /// Pairwise merges performed.
    pub merges: u64,
    /// Eq. 10 evaluations performed.
    pub pairs_computed: u64,
    /// Pair evaluations skipped by the admissible bound.
    pub pairs_pruned: u64,
    /// Pairs dismissed by the tier-0 bit-packed signature bound of the
    /// distance cascade (0 for engines or configurations without it).
    pub pairs_skipped_tier0: u64,
    /// Pairs dismissed by the tier-1 hull bound of the distance cascade.
    pub pairs_skipped_tier1: u64,
    /// Exact evaluations started but abandoned early by the partial-mean
    /// bound (tier 2 of the distance cascade).
    pub pairs_abandoned: u64,
    /// Samples dropped by §7.1 suppression (merge decisions).
    pub suppressed_samples: u64,
    /// Suppressed samples weighted by fingerprint multiplicity.
    pub suppressed_user_samples: u64,
    /// Synthetic samples fabricated (W4M resampling; GLOVE never creates).
    pub created_samples: u64,
    /// Original samples deleted by resampling (W4M).
    pub deleted_samples: u64,
    /// Fingerprints discarded (residual suppression, W4M trashing, stream
    /// under-k user-slices).
    pub discarded_fingerprints: u64,
    /// Subscribers dropped with those fingerprints.
    pub discarded_users: u64,
    /// Total wall-clock seconds of the run.
    pub elapsed_s: f64,
    /// Wall-clock phases, in execution order.
    pub phases: Vec<PhaseMetric>,
    /// Engine-specific detail section.
    pub detail: RunDetail,
}

impl RunReport {
    /// Fraction of candidate pairs the admissible bound skipped, in
    /// `[0, 1]` (0 when the engine evaluates no pairs).
    pub fn pruned_fraction(&self) -> f64 {
        let candidates = self.pairs_computed + self.pairs_pruned;
        if candidates > 0 {
            self.pairs_pruned as f64 / candidates as f64
        } else {
            0.0
        }
    }

    /// Serializes the report as compact JSON.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// Parses a report serialized by [`RunReport::to_json`].
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        Self::from_value(&JsonValue::parse(text)?)
    }

    /// The report as a JSON tree.
    pub fn to_value(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("engine", JsonValue::Str(self.engine.clone())),
            ("dataset", JsonValue::Str(self.dataset.clone())),
            ("k", uint(self.k as u64)),
            ("fingerprints_in", uint(self.fingerprints_in as u64)),
            ("users_in", uint(self.users_in as u64)),
            ("samples_in", uint(self.samples_in as u64)),
            ("fingerprints_out", uint(self.fingerprints_out as u64)),
            ("users_out", uint(self.users_out as u64)),
            ("samples_out", uint(self.samples_out as u64)),
            ("merges", uint(self.merges)),
            ("pairs_computed", uint(self.pairs_computed)),
            ("pairs_pruned", uint(self.pairs_pruned)),
            ("pairs_skipped_tier0", uint(self.pairs_skipped_tier0)),
            ("pairs_skipped_tier1", uint(self.pairs_skipped_tier1)),
            ("pairs_abandoned", uint(self.pairs_abandoned)),
            ("suppressed_samples", uint(self.suppressed_samples)),
            (
                "suppressed_user_samples",
                uint(self.suppressed_user_samples),
            ),
            ("created_samples", uint(self.created_samples)),
            ("deleted_samples", uint(self.deleted_samples)),
            ("discarded_fingerprints", uint(self.discarded_fingerprints)),
            ("discarded_users", uint(self.discarded_users)),
            ("elapsed_s", num(self.elapsed_s)),
            (
                "phases",
                JsonValue::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            JsonValue::obj(vec![
                                ("phase", JsonValue::Str(p.phase.clone())),
                                ("elapsed_s", num(p.elapsed_s)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("detail", detail_to_value(&self.detail)),
        ])
    }

    /// Reconstructs a report from a JSON tree.
    pub fn from_value(v: &JsonValue) -> Result<RunReport, String> {
        let phases = v
            .get("phases")
            .and_then(JsonValue::as_arr)
            .ok_or("missing phases")?
            .iter()
            .map(|p| {
                Ok(PhaseMetric {
                    phase: str_field(p, "phase")?,
                    elapsed_s: f64_field(p, "elapsed_s")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RunReport {
            engine: str_field(v, "engine")?,
            dataset: str_field(v, "dataset")?,
            k: usize_field(v, "k")?,
            fingerprints_in: usize_field(v, "fingerprints_in")?,
            users_in: usize_field(v, "users_in")?,
            samples_in: usize_field(v, "samples_in")?,
            fingerprints_out: usize_field(v, "fingerprints_out")?,
            users_out: usize_field(v, "users_out")?,
            samples_out: usize_field(v, "samples_out")?,
            merges: u64_field(v, "merges")?,
            pairs_computed: u64_field(v, "pairs_computed")?,
            pairs_pruned: u64_field(v, "pairs_pruned")?,
            pairs_skipped_tier0: u64_field(v, "pairs_skipped_tier0")?,
            pairs_skipped_tier1: u64_field(v, "pairs_skipped_tier1")?,
            pairs_abandoned: u64_field(v, "pairs_abandoned")?,
            suppressed_samples: u64_field(v, "suppressed_samples")?,
            suppressed_user_samples: u64_field(v, "suppressed_user_samples")?,
            created_samples: u64_field(v, "created_samples")?,
            deleted_samples: u64_field(v, "deleted_samples")?,
            discarded_fingerprints: u64_field(v, "discarded_fingerprints")?,
            discarded_users: u64_field(v, "discarded_users")?,
            elapsed_s: f64_field(v, "elapsed_s")?,
            phases,
            detail: detail_from_value(v.get("detail").ok_or("missing detail")?)?,
        })
    }
}

#[inline]
fn num(v: f64) -> JsonValue {
    JsonValue::Num(v)
}

/// The dedicated integer path for counters: `u64` values ride through
/// [`JsonValue::Int`] and survive at any magnitude, where the old
/// `as f64` route silently lost precision past 2⁵³.
#[inline]
fn uint(v: u64) -> JsonValue {
    JsonValue::Int(v as i128)
}

fn str_field(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn f64_field(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn usize_field(v: &JsonValue, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn detail_to_value(detail: &RunDetail) -> JsonValue {
    match detail {
        RunDetail::None => JsonValue::Null,
        RunDetail::Glove(stats) => JsonValue::obj(vec![
            ("type", JsonValue::Str("glove".into())),
            ("stats", glove_stats_to_value(stats)),
        ]),
        RunDetail::Stream(stats) => JsonValue::obj(vec![
            ("type", JsonValue::Str("stream".into())),
            ("stats", stream_stats_to_value(stats)),
        ]),
        RunDetail::External { engine, data } => JsonValue::obj(vec![
            ("type", JsonValue::Str("external".into())),
            ("engine", JsonValue::Str(engine.clone())),
            ("data", data.clone()),
        ]),
    }
}

fn detail_from_value(v: &JsonValue) -> Result<RunDetail, String> {
    if *v == JsonValue::Null {
        return Ok(RunDetail::None);
    }
    match v.get("type").and_then(JsonValue::as_str) {
        Some("glove") => Ok(RunDetail::Glove(glove_stats_from_value(
            v.get("stats").ok_or("missing glove stats")?,
        )?)),
        Some("stream") => Ok(RunDetail::Stream(stream_stats_from_value(
            v.get("stats").ok_or("missing stream stats")?,
        )?)),
        Some("external") => Ok(RunDetail::External {
            engine: str_field(v, "engine")?,
            data: v.get("data").cloned().ok_or("missing external data")?,
        }),
        other => Err(format!("unknown detail type {other:?}")),
    }
}

fn ledger_to_value(ledger: &SuppressionLedger) -> JsonValue {
    JsonValue::obj(vec![
        ("samples", num(ledger.samples as f64)),
        ("user_samples", num(ledger.user_samples as f64)),
    ])
}

fn ledger_from_value(v: &JsonValue) -> Result<SuppressionLedger, String> {
    Ok(SuppressionLedger {
        samples: u64_field(v, "samples")?,
        user_samples: u64_field(v, "user_samples")?,
    })
}

fn memory_to_value(ledger: &MemoryLedger) -> JsonValue {
    JsonValue::obj(vec![
        ("peak_arena_bytes", uint(ledger.peak_arena_bytes)),
        ("peak_store_bytes", uint(ledger.peak_store_bytes)),
        ("resident_pages", uint(ledger.resident_pages)),
        ("peak_rss_bytes", uint(ledger.peak_rss_bytes)),
    ])
}

fn memory_from_value(v: &JsonValue) -> Result<MemoryLedger, String> {
    Ok(MemoryLedger {
        peak_arena_bytes: u64_field(v, "peak_arena_bytes")?,
        peak_store_bytes: u64_field(v, "peak_store_bytes")?,
        resident_pages: u64_field(v, "resident_pages")?,
        peak_rss_bytes: u64_field(v, "peak_rss_bytes")?,
    })
}

fn shard_stat_to_value(stat: &ShardStat) -> JsonValue {
    JsonValue::obj(vec![
        ("shard", uint(stat.shard as u64)),
        ("fingerprints_in", uint(stat.fingerprints_in as u64)),
        ("users_in", uint(stat.users_in as u64)),
        ("fingerprints_out", uint(stat.fingerprints_out as u64)),
        ("merges", uint(stat.merges)),
        ("pairs_computed", uint(stat.pairs_computed)),
        ("pairs_pruned", uint(stat.pairs_pruned)),
        ("pairs_skipped_tier0", uint(stat.pairs_skipped_tier0)),
        ("pairs_skipped_tier1", uint(stat.pairs_skipped_tier1)),
        ("pairs_abandoned", uint(stat.pairs_abandoned)),
        ("memory", memory_to_value(&stat.ledger)),
        ("elapsed_s", num(stat.elapsed_s)),
    ])
}

fn shard_stat_from_value(v: &JsonValue) -> Result<ShardStat, String> {
    Ok(ShardStat {
        shard: usize_field(v, "shard")?,
        fingerprints_in: usize_field(v, "fingerprints_in")?,
        users_in: usize_field(v, "users_in")?,
        fingerprints_out: usize_field(v, "fingerprints_out")?,
        merges: u64_field(v, "merges")?,
        pairs_computed: u64_field(v, "pairs_computed")?,
        pairs_pruned: u64_field(v, "pairs_pruned")?,
        pairs_skipped_tier0: u64_field(v, "pairs_skipped_tier0")?,
        pairs_skipped_tier1: u64_field(v, "pairs_skipped_tier1")?,
        pairs_abandoned: u64_field(v, "pairs_abandoned")?,
        ledger: memory_from_value(v.get("memory").ok_or("missing shard memory")?)?,
        elapsed_s: f64_field(v, "elapsed_s")?,
    })
}

/// Serializes [`GloveStats`] (the batch/sharded detail section).
pub fn glove_stats_to_value(stats: &GloveStats) -> JsonValue {
    JsonValue::obj(vec![
        ("merges", uint(stats.merges)),
        ("pairs_computed", uint(stats.pairs_computed)),
        ("pairs_pruned", uint(stats.pairs_pruned)),
        ("pairs_skipped_tier0", uint(stats.pairs_skipped_tier0)),
        ("pairs_skipped_tier1", uint(stats.pairs_skipped_tier1)),
        ("pairs_abandoned", uint(stats.pairs_abandoned)),
        (
            "per_shard",
            JsonValue::Arr(stats.per_shard.iter().map(shard_stat_to_value).collect()),
        ),
        ("suppressed", ledger_to_value(&stats.suppressed)),
        ("reshaped_samples", uint(stats.reshaped_samples)),
        ("discarded_fingerprints", uint(stats.discarded_fingerprints)),
        ("discarded_users", uint(stats.discarded_users)),
        ("memory", memory_to_value(&stats.ledger)),
        ("elapsed_s", num(stats.elapsed_s)),
    ])
}

/// Parses a [`GloveStats`] detail section.
pub fn glove_stats_from_value(v: &JsonValue) -> Result<GloveStats, String> {
    Ok(GloveStats {
        merges: u64_field(v, "merges")?,
        pairs_computed: u64_field(v, "pairs_computed")?,
        pairs_pruned: u64_field(v, "pairs_pruned")?,
        pairs_skipped_tier0: u64_field(v, "pairs_skipped_tier0")?,
        pairs_skipped_tier1: u64_field(v, "pairs_skipped_tier1")?,
        pairs_abandoned: u64_field(v, "pairs_abandoned")?,
        per_shard: v
            .get("per_shard")
            .and_then(JsonValue::as_arr)
            .ok_or("missing per_shard")?
            .iter()
            .map(shard_stat_from_value)
            .collect::<Result<Vec<_>, _>>()?,
        suppressed: ledger_from_value(v.get("suppressed").ok_or("missing suppressed")?)?,
        reshaped_samples: u64_field(v, "reshaped_samples")?,
        discarded_fingerprints: u64_field(v, "discarded_fingerprints")?,
        discarded_users: u64_field(v, "discarded_users")?,
        ledger: memory_from_value(v.get("memory").ok_or("missing memory")?)?,
        elapsed_s: f64_field(v, "elapsed_s")?,
    })
}

fn epoch_stat_to_value(stat: &EpochStat) -> JsonValue {
    JsonValue::obj(vec![
        ("epoch", uint(stat.epoch)),
        ("window_start_min", uint(stat.window_start_min)),
        ("fingerprints_in", uint(stat.fingerprints_in as u64)),
        ("users_in", uint(stat.users_in as u64)),
        ("seeded_groups", uint(stat.seeded_groups as u64)),
        ("groups_out", uint(stat.groups_out as u64)),
        ("merges", uint(stat.merges)),
        ("pairs_computed", uint(stat.pairs_computed)),
        ("pairs_pruned", uint(stat.pairs_pruned)),
        ("pairs_skipped_tier0", uint(stat.pairs_skipped_tier0)),
        ("pairs_skipped_tier1", uint(stat.pairs_skipped_tier1)),
        ("pairs_abandoned", uint(stat.pairs_abandoned)),
        (
            "policy",
            JsonValue::obj(vec![
                ("k", uint(stat.policy_k as u64)),
                ("window_min", uint(u64::from(stat.policy_window_min))),
                (
                    "carry",
                    JsonValue::Str(
                        match stat.policy_carry {
                            CarryPolicy::Fresh => "fresh",
                            CarryPolicy::Sticky => "sticky",
                        }
                        .into(),
                    ),
                ),
                (
                    "under_k",
                    JsonValue::Str(
                        match stat.policy_under_k {
                            UnderKPolicy::Suppress => "suppress",
                            UnderKPolicy::Defer => "defer",
                        }
                        .into(),
                    ),
                ),
                ("cohort_users", uint(stat.policy_cohort_users as u64)),
            ]),
        ),
        ("elapsed_s", num(stat.elapsed_s)),
    ])
}

fn epoch_stat_from_value(v: &JsonValue) -> Result<EpochStat, String> {
    // The per-epoch policy snapshot is parsed leniently: reports written
    // before the policy plane existed simply read back the zero snapshot.
    let policy = v.get("policy");
    let pfield = |key: &str| policy.and_then(|p| p.get(key));
    Ok(EpochStat {
        epoch: u64_field(v, "epoch")?,
        window_start_min: u64_field(v, "window_start_min")?,
        fingerprints_in: usize_field(v, "fingerprints_in")?,
        users_in: usize_field(v, "users_in")?,
        seeded_groups: usize_field(v, "seeded_groups")?,
        groups_out: usize_field(v, "groups_out")?,
        merges: u64_field(v, "merges")?,
        pairs_computed: u64_field(v, "pairs_computed")?,
        pairs_pruned: u64_field(v, "pairs_pruned")?,
        pairs_skipped_tier0: u64_field(v, "pairs_skipped_tier0")?,
        pairs_skipped_tier1: u64_field(v, "pairs_skipped_tier1")?,
        pairs_abandoned: u64_field(v, "pairs_abandoned")?,
        policy_k: pfield("k").and_then(JsonValue::as_usize).unwrap_or(0),
        policy_window_min: pfield("window_min")
            .and_then(JsonValue::as_u64)
            .and_then(|w| u32::try_from(w).ok())
            .unwrap_or(0),
        policy_carry: match pfield("carry").and_then(JsonValue::as_str) {
            Some("sticky") => CarryPolicy::Sticky,
            _ => CarryPolicy::Fresh,
        },
        policy_under_k: match pfield("under_k").and_then(JsonValue::as_str) {
            Some("defer") => UnderKPolicy::Defer,
            _ => UnderKPolicy::Suppress,
        },
        policy_cohort_users: pfield("cohort_users")
            .and_then(JsonValue::as_usize)
            .unwrap_or(0),
        elapsed_s: f64_field(v, "elapsed_s")?,
    })
}

/// Serializes [`StreamStats`] (the streaming detail section).
pub fn stream_stats_to_value(stats: &StreamStats) -> JsonValue {
    JsonValue::obj(vec![
        ("events", uint(stats.events)),
        ("epochs", uint(stats.epochs)),
        (
            "peak_resident_fingerprints",
            uint(stats.peak_resident_fingerprints as u64),
        ),
        (
            "peak_resident_samples",
            uint(stats.peak_resident_samples as u64),
        ),
        ("merges", uint(stats.merges)),
        ("pairs_computed", uint(stats.pairs_computed)),
        ("pairs_pruned", uint(stats.pairs_pruned)),
        ("pairs_skipped_tier0", uint(stats.pairs_skipped_tier0)),
        ("pairs_skipped_tier1", uint(stats.pairs_skipped_tier1)),
        ("pairs_abandoned", uint(stats.pairs_abandoned)),
        ("seeded_groups", uint(stats.seeded_groups)),
        ("suppressed_users", uint(stats.suppressed_users)),
        ("suppressed_samples", uint(stats.suppressed_samples)),
        ("deferred_users", uint(stats.deferred_users)),
        ("deferred_samples", uint(stats.deferred_samples)),
        ("seed_suppressed", ledger_to_value(&stats.seed_suppressed)),
        ("shed_events", uint(stats.shed_events)),
        (
            "per_epoch",
            JsonValue::Arr(stats.per_epoch.iter().map(epoch_stat_to_value).collect()),
        ),
        ("memory", memory_to_value(&stats.ledger)),
        ("elapsed_s", num(stats.elapsed_s)),
    ])
}

/// Parses a [`StreamStats`] detail section.
pub fn stream_stats_from_value(v: &JsonValue) -> Result<StreamStats, String> {
    Ok(StreamStats {
        events: u64_field(v, "events")?,
        epochs: u64_field(v, "epochs")?,
        peak_resident_fingerprints: usize_field(v, "peak_resident_fingerprints")?,
        peak_resident_samples: usize_field(v, "peak_resident_samples")?,
        merges: u64_field(v, "merges")?,
        pairs_computed: u64_field(v, "pairs_computed")?,
        pairs_pruned: u64_field(v, "pairs_pruned")?,
        pairs_skipped_tier0: u64_field(v, "pairs_skipped_tier0")?,
        pairs_skipped_tier1: u64_field(v, "pairs_skipped_tier1")?,
        pairs_abandoned: u64_field(v, "pairs_abandoned")?,
        seeded_groups: u64_field(v, "seeded_groups")?,
        suppressed_users: u64_field(v, "suppressed_users")?,
        suppressed_samples: u64_field(v, "suppressed_samples")?,
        deferred_users: u64_field(v, "deferred_users")?,
        deferred_samples: u64_field(v, "deferred_samples")?,
        seed_suppressed: ledger_from_value(v.get("seed_suppressed").ok_or("missing ledger")?)?,
        // Absent in reports serialized before the shed ledger existed.
        shed_events: match v.get("shed_events") {
            Some(_) => u64_field(v, "shed_events")?,
            None => 0,
        },
        per_epoch: v
            .get("per_epoch")
            .and_then(JsonValue::as_arr)
            .ok_or("missing per_epoch")?
            .iter()
            .map(epoch_stat_from_value)
            .collect::<Result<Vec<_>, _>>()?,
        ledger: memory_from_value(v.get("memory").ok_or("missing memory")?)?,
        elapsed_s: f64_field(v, "elapsed_s")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            engine: "glove-sharded".into(),
            dataset: "civ-like".into(),
            k: 2,
            fingerprints_in: 100,
            users_in: 100,
            samples_in: 1_234,
            fingerprints_out: 50,
            users_out: 100,
            samples_out: 900,
            merges: 50,
            pairs_computed: 4_000,
            pairs_pruned: 950,
            pairs_skipped_tier0: 600,
            pairs_skipped_tier1: 300,
            pairs_abandoned: 50,
            suppressed_samples: 3,
            suppressed_user_samples: 5,
            created_samples: 0,
            deleted_samples: 0,
            discarded_fingerprints: 1,
            discarded_users: 1,
            elapsed_s: 0.12345,
            phases: vec![
                PhaseMetric {
                    phase: "prepare".into(),
                    elapsed_s: 0.0001,
                },
                PhaseMetric {
                    phase: "run".into(),
                    elapsed_s: 0.123,
                },
            ],
            detail: RunDetail::Glove(GloveStats {
                merges: 50,
                pairs_computed: 4_000,
                pairs_pruned: 950,
                pairs_skipped_tier0: 600,
                pairs_skipped_tier1: 300,
                pairs_abandoned: 50,
                per_shard: vec![ShardStat {
                    shard: 0,
                    fingerprints_in: 100,
                    users_in: 100,
                    fingerprints_out: 50,
                    merges: 50,
                    pairs_computed: 4_000,
                    pairs_pruned: 950,
                    pairs_skipped_tier0: 600,
                    pairs_skipped_tier1: 300,
                    pairs_abandoned: 50,
                    ledger: MemoryLedger {
                        peak_arena_bytes: 1 << 20,
                        peak_store_bytes: 24 * 1_234,
                        resident_pages: 1,
                        peak_rss_bytes: 64 << 20,
                    },
                    elapsed_s: 0.11,
                }],
                suppressed: SuppressionLedger {
                    samples: 3,
                    user_samples: 5,
                },
                reshaped_samples: 7,
                discarded_fingerprints: 1,
                discarded_users: 1,
                ledger: MemoryLedger {
                    peak_arena_bytes: 1 << 20,
                    peak_store_bytes: 24 * 1_234,
                    resident_pages: 1,
                    peak_rss_bytes: 64 << 20,
                },
                elapsed_s: 0.12,
            }),
        }
    }

    #[test]
    fn report_json_round_trips() {
        let report = sample_report();
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn stream_detail_round_trips() {
        let mut report = sample_report();
        report.engine = "glove-stream".into();
        report.detail = RunDetail::Stream(StreamStats {
            events: 10_000,
            epochs: 3,
            peak_resident_fingerprints: 42,
            peak_resident_samples: 321,
            merges: 77,
            pairs_computed: 5_000,
            pairs_pruned: 123,
            pairs_skipped_tier0: 70,
            pairs_skipped_tier1: 40,
            pairs_abandoned: 13,
            seeded_groups: 4,
            suppressed_users: 2,
            suppressed_samples: 9,
            deferred_users: 1,
            deferred_samples: 3,
            seed_suppressed: SuppressionLedger::default(),
            shed_events: 6,
            ledger: MemoryLedger {
                peak_arena_bytes: 512 << 10,
                peak_store_bytes: 24 * 321,
                resident_pages: 1,
                peak_rss_bytes: 48 << 20,
            },
            per_epoch: vec![EpochStat {
                epoch: 0,
                window_start_min: 1_440,
                fingerprints_in: 40,
                users_in: 40,
                seeded_groups: 0,
                groups_out: 20,
                merges: 20,
                pairs_computed: 780,
                pairs_pruned: 12,
                pairs_skipped_tier0: 7,
                pairs_skipped_tier1: 4,
                pairs_abandoned: 1,
                policy_k: 2,
                policy_window_min: 1_440,
                policy_carry: CarryPolicy::Sticky,
                policy_under_k: UnderKPolicy::Defer,
                policy_cohort_users: 3,
                elapsed_s: 0.05,
            }],
            elapsed_s: 0.2,
        });
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn external_detail_round_trips() {
        let mut report = sample_report();
        report.engine = "w4m-lc".into();
        report.detail = RunDetail::External {
            engine: "w4m-lc".into(),
            data: JsonValue::obj(vec![
                ("mean_position_error_m", JsonValue::Num(812.5)),
                ("mean_time_error_min", JsonValue::Num(44.25)),
            ]),
        };
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(
            parsed
                .detail
                .as_external()
                .and_then(|d| d.get("mean_position_error_m"))
                .and_then(JsonValue::as_f64),
            Some(812.5)
        );
    }

    #[test]
    fn none_detail_round_trips() {
        let mut report = sample_report();
        report.detail = RunDetail::None;
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn from_json_rejects_mangled_reports() {
        let report = sample_report();
        let json = report.to_json();
        assert!(RunReport::from_json(&json.replace("\"engine\"", "\"motor\"")).is_err());
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("not json").is_err());
    }

    /// Regression: counters used to ride through `f64`, which silently
    /// rounds integers past 2⁵³ — a week-long metro run's pair count no
    /// longer survives that path. The dedicated integer path must
    /// round-trip every `u64` exactly.
    #[test]
    fn counters_beyond_2_53_round_trip_exactly() {
        let mut report = sample_report();
        report.pairs_computed = (1u64 << 53) + 1;
        report.pairs_pruned = u64::MAX;
        report.merges = (1u64 << 60) + 7;
        let json = report.to_json();
        assert!(
            json.contains(&((1u64 << 53) + 1).to_string()),
            "integer counters must render as exact integer literals"
        );
        let parsed = RunReport::from_json(&json).unwrap();
        assert_eq!(parsed.pairs_computed, (1u64 << 53) + 1);
        assert_eq!(parsed.pairs_pruned, u64::MAX);
        assert_eq!(parsed.merges, (1u64 << 60) + 7);
        assert_eq!(parsed, report);
    }

    #[test]
    fn memory_ledger_round_trips_in_detail() {
        let report = sample_report();
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        let stats = parsed.detail.as_glove().unwrap();
        assert_eq!(stats.ledger.peak_arena_bytes, 1 << 20);
        assert_eq!(stats.ledger.peak_store_bytes, 24 * 1_234);
        assert_eq!(stats.ledger.resident_pages, 1);
        assert_eq!(stats.ledger.peak_rss_bytes, 64 << 20);
        assert_eq!(stats.per_shard[0].ledger, stats.ledger);
    }

    #[test]
    fn pruned_fraction_is_well_defined() {
        let mut report = sample_report();
        assert!((report.pruned_fraction() - 950.0 / 4_950.0).abs() < 1e-12);
        report.pairs_computed = 0;
        report.pairs_pruned = 0;
        assert_eq!(report.pruned_fraction(), 0.0);
    }
}
